//! Property tests for the sampling layer.

use neurodeanon_linalg::par::with_thread_count;
use neurodeanon_linalg::{Matrix, Rng64};
use neurodeanon_sampling::sketch::{best_rank_k_error, projection_error};
use neurodeanon_sampling::{principal_features, row_sample, LeverageBank, SamplingDistribution};
use neurodeanon_testkit::gen::{matrix_in, u64_in, usize_in, Gen};
use neurodeanon_testkit::{forall, tk_assert, tk_assert_eq, Config};

fn cfg() -> Config {
    Config::cases(48)
}

fn matrix(rows: usize, cols: usize) -> impl Gen<Value = Matrix> {
    matrix_in(rows, cols, -3.0, 3.0)
}

#[test]
fn probabilities_are_distributions() {
    forall!(cfg(), (a in matrix(25, 4)) => {
        for dist in [SamplingDistribution::Uniform, SamplingDistribution::L2Norm, SamplingDistribution::Leverage] {
            match dist.probabilities(&a) {
                Ok(p) => {
                    tk_assert_eq!(p.len(), 25);
                    let total: f64 = p.iter().sum();
                    tk_assert!((total - 1.0).abs() < 1e-8);
                    tk_assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
                }
                // All-zero matrices legitimately degenerate for norm-based
                // distributions.
                Err(_) => tk_assert!(a.max_abs() == 0.0),
            }
        }
    });
}

#[test]
fn row_sample_shape_and_indices() {
    forall!(cfg(), (a in matrix(30, 3), s in usize_in(1..20), seed in u64_in(0..500)) => {
        let out = row_sample(&a, s, SamplingDistribution::Uniform, &mut Rng64::new(seed)).unwrap();
        tk_assert_eq!(out.sketch.shape(), (s, 3));
        tk_assert_eq!(out.indices.len(), s);
        tk_assert!(out.indices.iter().all(|&i| i < 30));
    });
}

#[test]
fn principal_features_count_and_determinism() {
    forall!(cfg(), (a in matrix(40, 4), t in usize_in(1..=40)) => {
        let x = principal_features(&a, t, None).unwrap();
        let y = principal_features(&a, t, None).unwrap();
        tk_assert_eq!(&x.indices, &y.indices);
        tk_assert_eq!(x.indices.len(), t);
        // Indices are valid and distinct.
        let mut sorted = x.indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        tk_assert_eq!(sorted.len(), t);
        tk_assert!(x.indices.iter().all(|&i| i < 40));
    });
}

/// The memoized bank must be indistinguishable from the direct selector:
/// for any matrix, any sampled `t`, both rank paths, and at 1 or 8 threads,
/// indices and scores agree bit-for-bit. This is the contract that lets the
/// attack plan amortize one SVD across a whole experiment sweep without
/// changing a single published number.
#[test]
fn leverage_bank_equals_principal_features_bitwise() {
    forall!(Config::cases(24), (a in matrix(40, 5), t in usize_in(1..=40), k in usize_in(1..=5)) => {
        for threads in [1usize, 8] {
            with_thread_count(threads, || -> Result<(), String> {
                let bank = LeverageBank::new(&a).unwrap();
                for rank_k in [None, Some(k)] {
                    let direct = principal_features(&a, t, rank_k).unwrap();
                    let banked = bank.select(t, rank_k).unwrap();
                    tk_assert_eq!(
                        &banked.indices, &direct.indices,
                        "threads={} t={} rank_k={:?}", threads, t, rank_k
                    );
                    tk_assert_eq!(banked.scores.len(), direct.scores.len());
                    for (i, (x, y)) in banked.scores.iter().zip(&direct.scores).enumerate() {
                        tk_assert_eq!(
                            x.to_bits(), y.to_bits(),
                            "score {} diverges: {} vs {} (threads={} rank_k={:?})",
                            i, x, y, threads, rank_k
                        );
                    }
                    tk_assert_eq!(bank.select_indices(t, rank_k).unwrap(), direct.indices);
                }
                Ok(())
            })?;
        }
    });
}

#[test]
fn projection_error_nonincreasing_in_t() {
    forall!(cfg(), (a in matrix(30, 4)) => {
        let mut prev = f64::INFINITY;
        for t in [3usize, 10, 30] {
            let r = principal_features(&a, t, None).unwrap().reduce(&a).unwrap();
            let e = projection_error(&a, &r).unwrap();
            tk_assert!(e <= prev + 1e-6, "t={} error {} > prev {}", t, e, prev);
            prev = e;
        }
    });
}

#[test]
fn best_rank_error_brackets_projection() {
    forall!(cfg(), (a in matrix(20, 4)) => {
        // For any sketch, projection error ≥ best same-rank truncation error.
        let sk = principal_features(&a, 4, None).unwrap().reduce(&a).unwrap();
        let err = projection_error(&a, &sk).unwrap();
        let opt = best_rank_k_error(&a, 4).unwrap();
        tk_assert!(err + 1e-8 >= opt);
    });
}
