//! Property tests for the sampling layer.

use neurodeanon_linalg::{Matrix, Rng64};
use neurodeanon_sampling::sketch::{best_rank_k_error, projection_error};
use neurodeanon_sampling::{principal_features, row_sample, SamplingDistribution};
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-3.0_f64..3.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).expect("sized"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn probabilities_are_distributions(a in matrix(25, 4)) {
        for dist in [SamplingDistribution::Uniform, SamplingDistribution::L2Norm, SamplingDistribution::Leverage] {
            match dist.probabilities(&a) {
                Ok(p) => {
                    prop_assert_eq!(p.len(), 25);
                    let total: f64 = p.iter().sum();
                    prop_assert!((total - 1.0).abs() < 1e-8);
                    prop_assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
                }
                // All-zero matrices legitimately degenerate for norm-based
                // distributions.
                Err(_) => prop_assert!(a.max_abs() == 0.0),
            }
        }
    }

    #[test]
    fn row_sample_shape_and_indices(a in matrix(30, 3), s in 1usize..20, seed in 0u64..500) {
        let out = row_sample(&a, s, SamplingDistribution::Uniform, &mut Rng64::new(seed)).unwrap();
        prop_assert_eq!(out.sketch.shape(), (s, 3));
        prop_assert_eq!(out.indices.len(), s);
        prop_assert!(out.indices.iter().all(|&i| i < 30));
    }

    #[test]
    fn principal_features_count_and_determinism(a in matrix(40, 4), t in 1usize..=40) {
        let x = principal_features(&a, t, None).unwrap();
        let y = principal_features(&a, t, None).unwrap();
        prop_assert_eq!(&x.indices, &y.indices);
        prop_assert_eq!(x.indices.len(), t);
        // Indices are valid and distinct.
        let mut sorted = x.indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), t);
        prop_assert!(x.indices.iter().all(|&i| i < 40));
    }

    #[test]
    fn projection_error_nonincreasing_in_t(a in matrix(30, 4)) {
        let mut prev = f64::INFINITY;
        for t in [3usize, 10, 30] {
            let r = principal_features(&a, t, None).unwrap().reduce(&a).unwrap();
            let e = projection_error(&a, &r).unwrap();
            prop_assert!(e <= prev + 1e-6, "t={} error {} > prev {}", t, e, prev);
            prev = e;
        }
    }

    #[test]
    fn best_rank_error_brackets_projection(a in matrix(20, 4)) {
        // For any sketch, projection error ≥ best same-rank truncation error.
        let sk = principal_features(&a, 4, None).unwrap().reduce(&a).unwrap();
        let err = projection_error(&a, &sk).unwrap();
        let opt = best_rank_k_error(&a, 4).unwrap();
        prop_assert!(err + 1e-8 >= opt);
    }
}
