//! Sampling distributions over matrix rows.
//!
//! Algorithm 1 is parameterized by a probability distribution `P` over the
//! rows of `A`; the paper discusses three choices with increasingly strong
//! guarantees: uniform (poor), ℓ₂ row norms (Equation 1, additive error
//! bound of Equation 2), and leverage scores (Equation 3, relative error
//! bound of Equation 4).

use crate::error::SamplingError;
use crate::Result;
use neurodeanon_linalg::svd::leverage_scores;
use neurodeanon_linalg::vector::norm2_sq;
use neurodeanon_linalg::Matrix;

/// The row-sampling distribution family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingDistribution {
    /// Uniform over rows — the straw-man baseline the paper notes
    /// "performs poorly in practice".
    Uniform,
    /// ℓ₂ row-norm weighting (Equation 1): `pᵢ = ‖Aᵢ‖² / ‖A‖_F²`.
    L2Norm,
    /// Leverage scores (Equation 3): `pᵢ = ‖Uᵢ‖² / n` with `U` an
    /// orthonormal column-space basis of `A`.
    Leverage,
}

impl SamplingDistribution {
    /// Computes the probability vector for rows of `a` (sums to 1).
    pub fn probabilities(&self, a: &Matrix) -> Result<Vec<f64>> {
        let m = a.rows();
        if m == 0 || a.cols() == 0 {
            return Err(SamplingError::Linalg(
                neurodeanon_linalg::LinalgError::EmptyMatrix {
                    op: "sampling probabilities",
                },
            ));
        }
        let weights = match self {
            SamplingDistribution::Uniform => vec![1.0; m],
            SamplingDistribution::L2Norm => {
                (0..m).map(|r| norm2_sq(a.row(r))).collect::<Vec<f64>>()
            }
            SamplingDistribution::Leverage => leverage_scores(a, None)?,
        };
        let total: f64 = weights.iter().sum();
        if total <= 0.0 || !total.is_finite() {
            return Err(SamplingError::DegenerateDistribution);
        }
        Ok(weights.into_iter().map(|w| w / total).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> Matrix {
        Matrix::from_fn(30, 4, |r, c| ((r * 7 + c * 3) % 11) as f64 - 5.0)
    }

    #[test]
    fn all_distributions_sum_to_one() {
        let a = sample_matrix();
        for d in [
            SamplingDistribution::Uniform,
            SamplingDistribution::L2Norm,
            SamplingDistribution::Leverage,
        ] {
            let p = d.probabilities(&a).unwrap();
            assert_eq!(p.len(), 30);
            let s: f64 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "{d:?} sums to {s}");
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn uniform_is_flat() {
        let p = SamplingDistribution::Uniform
            .probabilities(&sample_matrix())
            .unwrap();
        assert!(p.iter().all(|&x| (x - 1.0 / 30.0).abs() < 1e-12));
    }

    #[test]
    fn l2_matches_equation_one() {
        let a = sample_matrix();
        let p = SamplingDistribution::L2Norm.probabilities(&a).unwrap();
        let fro2 = a.frobenius_norm().powi(2);
        for r in 0..a.rows() {
            let expect = norm2_sq(a.row(r)) / fro2;
            assert!((p[r] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn l2_weights_large_rows_heavier() {
        let mut a = Matrix::filled(10, 3, 0.1);
        a.set_row(4, &[10.0, 10.0, 10.0]).unwrap();
        let p = SamplingDistribution::L2Norm.probabilities(&a).unwrap();
        assert!(p[4] > 0.9);
    }

    #[test]
    fn leverage_highlights_unique_direction_over_l2() {
        // Rows 0..19 large but all along (1,0); row 20 small but along (0,1).
        // ℓ₂ barely weights row 20; leverage gives it ~1/2 of its mass
        // (it is the *only* row expressing the second direction).
        let mut a = Matrix::zeros(21, 2);
        for r in 0..20 {
            a.set_row(r, &[5.0, 0.0]).unwrap();
        }
        a.set_row(20, &[0.0, 0.5]).unwrap();
        let l2 = SamplingDistribution::L2Norm.probabilities(&a).unwrap();
        let lev = SamplingDistribution::Leverage.probabilities(&a).unwrap();
        assert!(l2[20] < 0.01, "l2 {}", l2[20]);
        assert!(lev[20] > 0.4, "leverage {}", lev[20]);
    }

    #[test]
    fn zero_matrix_is_degenerate_for_norm_based() {
        let a = Matrix::zeros(5, 2);
        assert!(matches!(
            SamplingDistribution::L2Norm.probabilities(&a),
            Err(SamplingError::DegenerateDistribution)
        ));
    }

    #[test]
    fn empty_matrix_rejected() {
        let a = Matrix::zeros(0, 0);
        assert!(SamplingDistribution::Uniform.probabilities(&a).is_err());
    }
}
