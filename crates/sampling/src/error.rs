//! Sampling error type.

use std::fmt;

/// Errors from sampling algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum SamplingError {
    /// Requested more samples/features than available rows, or zero.
    InvalidSampleCount {
        /// Requested count.
        requested: usize,
        /// Rows available.
        available: usize,
    },
    /// The sampling distribution degenerated (all-zero weights).
    DegenerateDistribution,
    /// Error propagated from the linear-algebra layer.
    Linalg(neurodeanon_linalg::LinalgError),
}

impl fmt::Display for SamplingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplingError::InvalidSampleCount {
                requested,
                available,
            } => write!(
                f,
                "invalid sample count: requested {requested} of {available} rows"
            ),
            SamplingError::DegenerateDistribution => {
                write!(f, "sampling distribution is all zeros")
            }
            SamplingError::Linalg(e) => write!(f, "linalg error: {e}"),
        }
    }
}

impl std::error::Error for SamplingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SamplingError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<neurodeanon_linalg::LinalgError> for SamplingError {
    fn from(e: neurodeanon_linalg::LinalgError) -> Self {
        SamplingError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = SamplingError::InvalidSampleCount {
            requested: 10,
            available: 5,
        };
        assert!(e.to_string().contains("10"));
        assert!(SamplingError::DegenerateDistribution
            .to_string()
            .contains("zero"));
    }
}
