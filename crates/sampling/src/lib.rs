#![warn(missing_docs)]

//! # neurodeanon-sampling
//!
//! Matrix row-sampling algorithms (§3.1.2 of the paper): the machinery that
//! finds the small set of connectome features ("signature edges") that
//! discriminates individuals.
//!
//! * [`distribution`] — the sampling distributions of Algorithm 1: uniform,
//!   ℓ₂ row-norm (Equation 1), and leverage scores (Equation 3).
//! * [`mod@row_sample`] — the randomized meta-algorithm (Algorithm 1) with the
//!   `1/√(s·pᵢ)` rescaling that makes `ÃᵀÃ` an unbiased estimate of `AᵀA`.
//! * [`principal`] — the deterministic top-`t` leverage selection, the
//!   *Principal Features Subspace* method of Ravindra et al. (2018) that the
//!   attack actually uses, plus [`LeverageBank`], the memoized form that
//!   factors a matrix once and serves every `(t, rank_k)` selection.
//! * [`sketch`] — error functionals for both guarantees: the additive bound
//!   of Equation 2 and the relative projection bound of Equation 4.
//! * [`support`] — feature-support intersection for degraded inputs: which
//!   rows of a NaN-containing known/anonymous pair the attack can still use.

pub mod distribution;
pub mod error;
pub mod principal;
pub mod row_sample;
pub mod sketch;
pub mod support;

pub use distribution::SamplingDistribution;
pub use error::SamplingError;
pub use principal::{
    principal_features, principal_features_approx, LeverageBank, PrincipalFeatures,
};
pub use row_sample::{row_sample, RowSample};
pub use support::{finite_rows, intersect_sorted, rows_with_any_finite, shared_support};

/// Result alias for sampling operations.
pub type Result<T> = std::result::Result<T, SamplingError>;
