//! Feature-support computation for degraded (NaN-containing) group matrices.
//!
//! When a query connectome arrives with censored frames or dropped regions,
//! some of its feature rows are NaN. The attack can still run on the
//! *intersection* of the features both sides actually observed: the known
//! matrix contributes the rows its SVD can be trusted on (fully finite), the
//! anonymous matrix contributes every row with at least one usable subject
//! entry, and per-pair missingness inside that intersection is handled by
//! the pairwise-complete correlation kernel downstream.

use neurodeanon_linalg::Matrix;

/// Indices of rows of `m` whose entries are all finite, ascending.
///
/// This is the support definition for the *known* (de-anonymized) side: the
/// leverage-score factorization is only meaningful on rows with no missing
/// observations.
pub fn finite_rows(m: &Matrix) -> Vec<usize> {
    (0..m.rows())
        .filter(|&r| m.row(r).iter().all(|x| x.is_finite()))
        .collect()
}

/// Indices of rows of `m` with at least one finite entry, ascending.
///
/// This is the support definition for the *anonymous* side: a row missing
/// for some subjects still carries signal for the others, and the masked
/// correlation kernel drops the missing pairs per column. Requiring full
/// finiteness here would let a single all-NaN subject column (a
/// whole-missing-subject fault) empty the entire support.
pub fn rows_with_any_finite(m: &Matrix) -> Vec<usize> {
    (0..m.rows())
        .filter(|&r| m.row(r).iter().any(|x| x.is_finite()))
        .collect()
}

/// Intersection of two ascending, duplicate-free index lists, ascending.
pub fn intersect_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// The shared feature support of a known/anonymous matrix pair:
/// fully-finite rows of `known` ∩ rows of `anon` with any finite entry.
///
/// Returns the global (pre-restriction) row indices, ascending, so selected
/// features can be reported in the original feature space.
pub fn shared_support(known: &Matrix, anon: &Matrix) -> Vec<usize> {
    intersect_sorted(&finite_rows(known), &rows_with_any_finite(anon))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_rows_drops_any_nan() {
        let mut m = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f64);
        m[(1, 2)] = f64::NAN;
        m[(3, 0)] = f64::INFINITY;
        assert_eq!(finite_rows(&m), vec![0, 2]);
    }

    #[test]
    fn any_finite_keeps_partial_rows() {
        let mut m = Matrix::from_fn(3, 2, |_, _| 1.0);
        m[(1, 0)] = f64::NAN;
        m[(2, 0)] = f64::NAN;
        m[(2, 1)] = f64::NAN;
        assert_eq!(rows_with_any_finite(&m), vec![0, 1]);
    }

    #[test]
    fn intersect_sorted_basics() {
        assert_eq!(intersect_sorted(&[0, 2, 4, 6], &[1, 2, 3, 6]), vec![2, 6]);
        assert_eq!(intersect_sorted(&[], &[1, 2]), Vec::<usize>::new());
        assert_eq!(intersect_sorted(&[5], &[5]), vec![5]);
    }

    #[test]
    fn shared_support_asymmetric_definitions() {
        // Row 0: clean both sides. Row 1: partial NaN on anon side only
        // (kept). Row 2: partial NaN on known side (dropped).
        let mut known = Matrix::from_fn(3, 2, |r, c| (r + c) as f64);
        let mut anon = known.clone();
        anon[(1, 0)] = f64::NAN;
        known[(2, 1)] = f64::NAN;
        assert_eq!(shared_support(&known, &anon), vec![0, 1]);
    }

    #[test]
    fn shared_support_full_on_clean() {
        let m = Matrix::from_fn(5, 2, |r, c| (r * 2 + c) as f64);
        assert_eq!(shared_support(&m, &m), vec![0, 1, 2, 3, 4]);
    }
}
