//! The Principal Features Subspace method (deterministic top-`t` leverage
//! selection, §3.1.2).
//!
//! "We sort the leverage scores and retain the features corresponding to
//! the top t leverage scores. … In contrast to prior randomized approaches,
//! we select features in a deterministic manner." This is the feature
//! selector the actual attack uses: compute it once on the de-anonymized
//! group matrix, then restrict *both* group matrices to the selected rows.

use crate::error::SamplingError;
use crate::Result;
use neurodeanon_linalg::rsvd::{randomized_leverage_scores, RsvdConfig};
use neurodeanon_linalg::svd::{leverage_scores_from_svd, thin_svd};
use neurodeanon_linalg::vector::argsort_desc;
use neurodeanon_linalg::Matrix;

/// Output of the deterministic leverage-score feature selection.
#[derive(Debug, Clone)]
pub struct PrincipalFeatures {
    /// Selected row (feature) indices, in decreasing leverage order.
    pub indices: Vec<usize>,
    /// Leverage score of every row of the input (not just the selected).
    pub scores: Vec<f64>,
}

impl PrincipalFeatures {
    /// The reduced matrix: input restricted to the selected rows.
    pub fn reduce(&self, a: &Matrix) -> Result<Matrix> {
        Ok(a.select_rows(&self.indices)?)
    }
}

/// Selects the `t` rows of `a` with the highest leverage scores
/// (Equation 5: `ℓᵢ = ‖Uᵢ‖²`, `U` from the thin SVD of `a`).
///
/// Ties break on the lower row index, so the selection is fully
/// deterministic. `rank_k = Some(k)` restricts the scores to the top `k`
/// singular directions (the rank-`k` leverage scores of the Equation 4
/// guarantee); `None` uses the full column space, the paper's default.
pub fn principal_features(
    a: &Matrix,
    t: usize,
    rank_k: Option<usize>,
) -> Result<PrincipalFeatures> {
    if t == 0 || t > a.rows() {
        return Err(SamplingError::InvalidSampleCount {
            requested: t,
            available: a.rows(),
        });
    }
    let svd = thin_svd(a)?;
    let scores = leverage_scores_from_svd(&svd, rank_k);
    let mut indices = argsort_desc(&scores);
    indices.truncate(t);
    Ok(PrincipalFeatures { indices, scores })
}

/// Approximate top-`t` leverage selection via the randomized SVD — the
/// fast path when the group matrix is too large for an exact thin SVD
/// (e.g. voxel-level feature spaces). Scores come from the leading
/// `config.rank` randomized singular directions.
pub fn principal_features_approx(
    a: &Matrix,
    t: usize,
    config: &RsvdConfig,
) -> Result<PrincipalFeatures> {
    if t == 0 || t > a.rows() {
        return Err(SamplingError::InvalidSampleCount {
            requested: t,
            available: a.rows(),
        });
    }
    let scores = randomized_leverage_scores(a, config)?;
    let mut indices = argsort_desc(&scores);
    indices.truncate(t);
    Ok(PrincipalFeatures { indices, scores })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_requested_count_in_descending_score_order() {
        let a = Matrix::from_fn(50, 4, |r, c| ((r * 7 + c * 11) % 19) as f64 - 9.0);
        let pf = principal_features(&a, 10, None).unwrap();
        assert_eq!(pf.indices.len(), 10);
        assert_eq!(pf.scores.len(), 50);
        for w in pf.indices.windows(2) {
            assert!(pf.scores[w[0]] >= pf.scores[w[1]]);
        }
        // Selected scores dominate unselected ones.
        let min_sel = pf
            .indices
            .iter()
            .map(|&i| pf.scores[i])
            .fold(f64::INFINITY, f64::min);
        for (i, &s) in pf.scores.iter().enumerate() {
            if !pf.indices.contains(&i) {
                assert!(s <= min_sel + 1e-12);
            }
        }
    }

    #[test]
    fn finds_planted_signature_rows() {
        // Bulk rows live in a 1-D subspace; three planted rows carry
        // independent directions — exactly the paper's "discriminating
        // features" situation. Top-3 selection must find them.
        let mut a = Matrix::zeros(40, 4);
        for r in 0..40 {
            let v = ((r % 5) as f64 + 1.0) * 0.6;
            a.set_row(r, &[v, 2.0 * v, -v, 0.5 * v]).unwrap();
        }
        a.set_row(7, &[4.0, -1.0, 0.0, 0.0]).unwrap();
        a.set_row(19, &[0.0, 0.0, 3.0, 1.0]).unwrap();
        a.set_row(33, &[-1.0, 1.0, 1.0, -3.0]).unwrap();
        let pf = principal_features(&a, 3, None).unwrap();
        let mut sel = pf.indices.clone();
        sel.sort_unstable();
        assert_eq!(sel, vec![7, 19, 33]);
    }

    #[test]
    fn deterministic_across_calls() {
        let a = Matrix::from_fn(30, 3, |r, c| ((r + c * 13) % 7) as f64);
        let x = principal_features(&a, 8, None).unwrap();
        let y = principal_features(&a, 8, None).unwrap();
        assert_eq!(x.indices, y.indices);
    }

    #[test]
    fn reduce_restricts_rows() {
        let a = Matrix::from_fn(20, 3, |r, _| r as f64);
        let pf = principal_features(&a, 5, None).unwrap();
        let r = pf.reduce(&a).unwrap();
        assert_eq!(r.shape(), (5, 3));
        for (k, &i) in pf.indices.iter().enumerate() {
            assert_eq!(r.row(k), a.row(i));
        }
    }

    #[test]
    fn rank_k_changes_selection_for_low_rank_tail() {
        // Rows along direction 1 have large rank-1 leverage; with full-rank
        // scores, the oddball rows matter more.
        let mut a = Matrix::zeros(30, 3);
        for r in 0..28 {
            a.set_row(r, &[(r as f64 + 1.0) * 0.1, 0.0, 0.0]).unwrap();
        }
        a.set_row(28, &[0.0, 0.01, 0.0]).unwrap();
        a.set_row(29, &[0.0, 0.0, 0.01]).unwrap();
        let full = principal_features(&a, 2, None).unwrap();
        let rank1 = principal_features(&a, 2, Some(1)).unwrap();
        let mut f = full.indices.clone();
        f.sort_unstable();
        assert_eq!(f, vec![28, 29]); // unique-direction rows dominate
                                     // Rank-1 scores ignore those directions entirely.
        assert!(!rank1.indices.contains(&28) || !rank1.indices.contains(&29));
    }

    #[test]
    fn approx_selection_overlaps_exact_on_decaying_spectra() {
        // Rank-k leverage via randomized SVD finds the same planted rows.
        let mut a = Matrix::zeros(60, 4);
        for r in 0..60 {
            let v = ((r % 7) as f64 + 1.0) * 0.4;
            a.set_row(r, &[v, -v, 2.0 * v, 0.3 * v]).unwrap();
        }
        a.set_row(11, &[5.0, 0.0, 0.0, 1.0]).unwrap();
        a.set_row(37, &[0.0, 4.0, -1.0, 0.0]).unwrap();
        let exact = principal_features(&a, 2, None).unwrap();
        let approx = principal_features_approx(
            &a,
            2,
            &RsvdConfig {
                rank: 3,
                power_iters: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let mut e = exact.indices.clone();
        let mut x = approx.indices.clone();
        e.sort_unstable();
        x.sort_unstable();
        assert_eq!(e, x);
    }

    #[test]
    fn approx_validates_t() {
        let a = Matrix::from_fn(10, 2, |r, c| (r + c) as f64);
        assert!(principal_features_approx(&a, 0, &RsvdConfig::default()).is_err());
        assert!(principal_features_approx(&a, 11, &RsvdConfig::default()).is_err());
    }

    #[test]
    fn validates_t() {
        let a = Matrix::from_fn(10, 2, |r, c| (r + c) as f64);
        assert!(principal_features(&a, 0, None).is_err());
        assert!(principal_features(&a, 11, None).is_err());
        assert!(principal_features(&a, 10, None).is_ok());
    }
}
