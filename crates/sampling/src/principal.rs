//! The Principal Features Subspace method (deterministic top-`t` leverage
//! selection, §3.1.2).
//!
//! "We sort the leverage scores and retain the features corresponding to
//! the top t leverage scores. … In contrast to prior randomized approaches,
//! we select features in a deterministic manner." This is the feature
//! selector the actual attack uses: compute it once on the de-anonymized
//! group matrix, then restrict *both* group matrices to the selected rows.

use crate::error::SamplingError;
use crate::Result;
use neurodeanon_linalg::rsvd::{randomized_leverage_scores, randomized_svd_auto, RsvdConfig};
use neurodeanon_linalg::svd::{leverage_scores_from_svd, thin_svd};
use neurodeanon_linalg::vector::argsort_desc;
use neurodeanon_linalg::Matrix;

/// Output of the deterministic leverage-score feature selection.
#[derive(Debug, Clone)]
pub struct PrincipalFeatures {
    /// Selected row (feature) indices, in decreasing leverage order.
    pub indices: Vec<usize>,
    /// Leverage score of every row of the input (not just the selected).
    pub scores: Vec<f64>,
}

impl PrincipalFeatures {
    /// The reduced matrix: input restricted to the selected rows.
    pub fn reduce(&self, a: &Matrix) -> Result<Matrix> {
        Ok(a.select_rows(&self.indices)?)
    }
}

/// Selects the `t` rows of `a` with the highest leverage scores
/// (Equation 5: `ℓᵢ = ‖Uᵢ‖²`, `U` from the thin SVD of `a`).
///
/// Ties break on the lower row index, so the selection is fully
/// deterministic. `rank_k = Some(k)` restricts the scores to the top `k`
/// singular directions (the rank-`k` leverage scores of the Equation 4
/// guarantee); `None` uses the full column space, the paper's default.
///
/// One call costs one thin SVD. A sweep that selects from the *same* matrix
/// many times (varying `t` or `rank_k`) should build a [`LeverageBank`]
/// once instead — its selections are bit-for-bit identical to this function
/// at a fraction of the cost.
pub fn principal_features(
    a: &Matrix,
    t: usize,
    rank_k: Option<usize>,
) -> Result<PrincipalFeatures> {
    if t == 0 || t > a.rows() {
        return Err(SamplingError::InvalidSampleCount {
            requested: t,
            available: a.rows(),
        });
    }
    let svd = thin_svd(a)?;
    let scores = leverage_scores_from_svd(&svd, rank_k);
    let mut indices = argsort_desc(&scores);
    indices.truncate(t);
    Ok(PrincipalFeatures { indices, scores })
}

/// A memoized leverage-score selector: the thin SVD of one matrix, factored
/// once, serving every `(t, rank_k)` selection that matrix can answer.
///
/// The leverage ordering is a function of the matrix alone, not of the
/// retained-feature count, so the paper's sweep-shaped evaluation (Figure 4
/// varies `t`, Figure 5 runs an 8 × 8 task grid, Table 2 sweeps noise
/// levels) never needs more than one factorization per de-anonymized group
/// matrix. The bank holds the thin `U` (`m × n`; ~52 MB for the paper's
/// 64,620 × 100 HCP group matrix) plus the full descending ordering of the
/// default full-column-space scores:
///
/// * `rank_k = None` selections are an O(`t`) slice of the precomputed
///   ordering;
/// * `rank_k = Some(k)` selections rescore from the cached `U` rows —
///   an O(`m·k`) pass — without a second SVD.
///
/// Every selection is **bit-for-bit identical** to calling
/// [`principal_features`] on the same matrix: the scores come from the same
/// deterministic factorization, summed in the same order, and ties break on
/// the same lower-index rule (see the property suite in
/// `tests/properties.rs`, which checks this across thread counts).
#[derive(Debug, Clone)]
pub struct LeverageBank {
    /// Thin left singular vectors of the factored matrix (`m × n`).
    u: Matrix,
    /// Singular values, descending.
    sigma: Vec<f64>,
    /// Numerical rank of the factorization (`Svd::rank` at build time).
    rank: usize,
    /// Full-column-space leverage scores (the `rank_k = None` default).
    scores: Vec<f64>,
    /// `argsort_desc(scores)` — the full descending leverage ordering.
    order: Vec<usize>,
}

impl LeverageBank {
    /// Factors `a` (one thin SVD — the only factorization this bank will
    /// ever perform) and precomputes the default descending ordering.
    pub fn new(a: &Matrix) -> Result<Self> {
        let _span = neurodeanon_obs::span("bank.build");
        let svd = thin_svd(a)?;
        let rank = svd.rank();
        let scores = leverage_scores_from_svd(&svd, None);
        let order = argsort_desc(&scores);
        Ok(LeverageBank {
            u: svd.u,
            sigma: svd.sigma,
            rank,
            scores,
            order,
        })
    }

    /// Builds the bank from a blocked randomized subspace iteration
    /// ([`randomized_svd_auto`]: the seeded Gram-operator subspace
    /// iteration for tall inputs, the Gaussian range finder for squarish
    /// ones, both with `config.power_iters` power iterations) instead of
    /// the exact thin SVD. Only the leading `config.rank` singular
    /// directions are computed — the ones that dominate the leverage mass
    /// on the spectrally decaying group matrices the attack builds — so at
    /// paper scale (64,620 × 100) the `U` recovery touches `rank` columns
    /// instead of all `n`.
    ///
    /// Selections from this bank are **approximate**: scores come from the
    /// leading subspace, so feature sets can differ from
    /// [`LeverageBank::new`] on rows whose leverage mass lives in the
    /// discarded tail. On the paper's cohorts the feature-count ablation
    /// accuracy moves by < 0.5pp (asserted in the core integration tests
    /// and the `kernels` bench). The build is seeded and deterministic:
    /// the same `config` reproduces the same bank bit-for-bit at any
    /// thread count. [`principal_features`] and [`LeverageBank::new`]
    /// remain the exact paths and are untouched by this constructor.
    pub fn new_subspace(a: &Matrix, config: &RsvdConfig) -> Result<Self> {
        let _span = neurodeanon_obs::span("bank.build_subspace");
        let svd = randomized_svd_auto(a, config)?;
        let rank = svd.rank();
        let scores = leverage_scores_from_svd(&svd, None);
        let order = argsort_desc(&scores);
        Ok(LeverageBank {
            u: svd.u,
            sigma: svd.sigma,
            rank,
            scores,
            order,
        })
    }

    /// Number of rows (features) of the factored matrix.
    pub fn n_rows(&self) -> usize {
        self.u.rows()
    }

    /// Numerical rank of the factored matrix.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Singular values of the factored matrix, descending.
    pub fn singular_values(&self) -> &[f64] {
        &self.sigma
    }

    /// Leverage scores for the given rank restriction, matching
    /// [`neurodeanon_linalg::svd::leverage_scores_from_svd`] bit-for-bit.
    /// `None` returns the cached full-column-space scores; `Some(k)`
    /// rescores from the cached `U` without refactorizing.
    pub fn scores(&self, rank_k: Option<usize>) -> Vec<f64> {
        match rank_k {
            None => self.scores.clone(),
            Some(k) => {
                let keep = k.min(self.rank);
                let mut scores = vec![0.0; self.u.rows()];
                for (r, score) in scores.iter_mut().enumerate() {
                    let row = self.u.row(r);
                    *score = row[..keep].iter().map(|x| x * x).sum();
                }
                scores
            }
        }
    }

    /// Top-`t` selected row indices, in decreasing leverage order — the
    /// `indices` field of [`principal_features`]' result, without the
    /// full score vector. O(`t`) for `rank_k = None`.
    pub fn select_indices(&self, t: usize, rank_k: Option<usize>) -> Result<Vec<usize>> {
        self.validate_t(t)?;
        match rank_k {
            None => Ok(self.order[..t].to_vec()),
            Some(_) => {
                let mut indices = argsort_desc(&self.scores(rank_k));
                indices.truncate(t);
                Ok(indices)
            }
        }
    }

    /// Full selection result, interchangeable with
    /// [`principal_features`]`(a, t, rank_k)` for the factored matrix.
    pub fn select(&self, t: usize, rank_k: Option<usize>) -> Result<PrincipalFeatures> {
        self.validate_t(t)?;
        match rank_k {
            None => Ok(PrincipalFeatures {
                indices: self.order[..t].to_vec(),
                scores: self.scores.clone(),
            }),
            Some(_) => {
                let scores = self.scores(rank_k);
                let mut indices = argsort_desc(&scores);
                indices.truncate(t);
                Ok(PrincipalFeatures { indices, scores })
            }
        }
    }

    fn validate_t(&self, t: usize) -> Result<()> {
        if t == 0 || t > self.u.rows() {
            return Err(SamplingError::InvalidSampleCount {
                requested: t,
                available: self.u.rows(),
            });
        }
        Ok(())
    }
}

/// Approximate top-`t` leverage selection via the randomized SVD — the
/// fast path when the group matrix is too large for an exact thin SVD
/// (e.g. voxel-level feature spaces). Scores come from the leading
/// `config.rank` randomized singular directions.
pub fn principal_features_approx(
    a: &Matrix,
    t: usize,
    config: &RsvdConfig,
) -> Result<PrincipalFeatures> {
    if t == 0 || t > a.rows() {
        return Err(SamplingError::InvalidSampleCount {
            requested: t,
            available: a.rows(),
        });
    }
    let scores = randomized_leverage_scores(a, config)?;
    let mut indices = argsort_desc(&scores);
    indices.truncate(t);
    Ok(PrincipalFeatures { indices, scores })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_requested_count_in_descending_score_order() {
        let a = Matrix::from_fn(50, 4, |r, c| ((r * 7 + c * 11) % 19) as f64 - 9.0);
        let pf = principal_features(&a, 10, None).unwrap();
        assert_eq!(pf.indices.len(), 10);
        assert_eq!(pf.scores.len(), 50);
        for w in pf.indices.windows(2) {
            assert!(pf.scores[w[0]] >= pf.scores[w[1]]);
        }
        // Selected scores dominate unselected ones.
        let min_sel = pf
            .indices
            .iter()
            .map(|&i| pf.scores[i])
            .fold(f64::INFINITY, f64::min);
        for (i, &s) in pf.scores.iter().enumerate() {
            if !pf.indices.contains(&i) {
                assert!(s <= min_sel + 1e-12);
            }
        }
    }

    #[test]
    fn finds_planted_signature_rows() {
        // Bulk rows live in a 1-D subspace; three planted rows carry
        // independent directions — exactly the paper's "discriminating
        // features" situation. Top-3 selection must find them.
        let mut a = Matrix::zeros(40, 4);
        for r in 0..40 {
            let v = ((r % 5) as f64 + 1.0) * 0.6;
            a.set_row(r, &[v, 2.0 * v, -v, 0.5 * v]).unwrap();
        }
        a.set_row(7, &[4.0, -1.0, 0.0, 0.0]).unwrap();
        a.set_row(19, &[0.0, 0.0, 3.0, 1.0]).unwrap();
        a.set_row(33, &[-1.0, 1.0, 1.0, -3.0]).unwrap();
        let pf = principal_features(&a, 3, None).unwrap();
        let mut sel = pf.indices.clone();
        sel.sort_unstable();
        assert_eq!(sel, vec![7, 19, 33]);
    }

    #[test]
    fn deterministic_across_calls() {
        let a = Matrix::from_fn(30, 3, |r, c| ((r + c * 13) % 7) as f64);
        let x = principal_features(&a, 8, None).unwrap();
        let y = principal_features(&a, 8, None).unwrap();
        assert_eq!(x.indices, y.indices);
    }

    #[test]
    fn reduce_restricts_rows() {
        let a = Matrix::from_fn(20, 3, |r, _| r as f64);
        let pf = principal_features(&a, 5, None).unwrap();
        let r = pf.reduce(&a).unwrap();
        assert_eq!(r.shape(), (5, 3));
        for (k, &i) in pf.indices.iter().enumerate() {
            assert_eq!(r.row(k), a.row(i));
        }
    }

    #[test]
    fn rank_k_changes_selection_for_low_rank_tail() {
        // Rows along direction 1 have large rank-1 leverage; with full-rank
        // scores, the oddball rows matter more.
        let mut a = Matrix::zeros(30, 3);
        for r in 0..28 {
            a.set_row(r, &[(r as f64 + 1.0) * 0.1, 0.0, 0.0]).unwrap();
        }
        a.set_row(28, &[0.0, 0.01, 0.0]).unwrap();
        a.set_row(29, &[0.0, 0.0, 0.01]).unwrap();
        let full = principal_features(&a, 2, None).unwrap();
        let rank1 = principal_features(&a, 2, Some(1)).unwrap();
        let mut f = full.indices.clone();
        f.sort_unstable();
        assert_eq!(f, vec![28, 29]); // unique-direction rows dominate
                                     // Rank-1 scores ignore those directions entirely.
        assert!(!rank1.indices.contains(&28) || !rank1.indices.contains(&29));
    }

    #[test]
    fn approx_selection_overlaps_exact_on_decaying_spectra() {
        // Rank-k leverage via randomized SVD finds the same planted rows.
        let mut a = Matrix::zeros(60, 4);
        for r in 0..60 {
            let v = ((r % 7) as f64 + 1.0) * 0.4;
            a.set_row(r, &[v, -v, 2.0 * v, 0.3 * v]).unwrap();
        }
        a.set_row(11, &[5.0, 0.0, 0.0, 1.0]).unwrap();
        a.set_row(37, &[0.0, 4.0, -1.0, 0.0]).unwrap();
        let exact = principal_features(&a, 2, None).unwrap();
        let approx = principal_features_approx(
            &a,
            2,
            &RsvdConfig {
                rank: 3,
                power_iters: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let mut e = exact.indices.clone();
        let mut x = approx.indices.clone();
        e.sort_unstable();
        x.sort_unstable();
        assert_eq!(e, x);
    }

    #[test]
    fn approx_validates_t() {
        let a = Matrix::from_fn(10, 2, |r, c| (r + c) as f64);
        assert!(principal_features_approx(&a, 0, &RsvdConfig::default()).is_err());
        assert!(principal_features_approx(&a, 11, &RsvdConfig::default()).is_err());
    }

    #[test]
    fn validates_t() {
        let a = Matrix::from_fn(10, 2, |r, c| (r + c) as f64);
        assert!(principal_features(&a, 0, None).is_err());
        assert!(principal_features(&a, 11, None).is_err());
        assert!(principal_features(&a, 10, None).is_ok());
    }

    #[test]
    fn bank_matches_direct_selection_for_all_t() {
        let a = Matrix::from_fn(50, 4, |r, c| ((r * 7 + c * 11) % 19) as f64 - 9.0);
        let bank = LeverageBank::new(&a).unwrap();
        assert_eq!(bank.n_rows(), 50);
        for t in [1usize, 3, 10, 50] {
            for rank_k in [None, Some(1), Some(2), Some(4), Some(9)] {
                let direct = principal_features(&a, t, rank_k).unwrap();
                let banked = bank.select(t, rank_k).unwrap();
                assert_eq!(banked.indices, direct.indices, "t={t} rank_k={rank_k:?}");
                for (x, y) in banked.scores.iter().zip(&direct.scores) {
                    assert_eq!(x.to_bits(), y.to_bits(), "t={t} rank_k={rank_k:?}");
                }
                assert_eq!(bank.select_indices(t, rank_k).unwrap(), direct.indices);
            }
        }
    }

    /// A tall matrix with sharply decaying spectrum (rank-3 + noise) —
    /// the regime the subspace bank targets.
    fn structured(m: usize, n: usize) -> Matrix {
        Matrix::from_fn(m, n, |r, c| {
            let u1 = (r as f64 * 0.13).sin();
            let u2 = (r as f64 * 0.041).cos();
            let u3 = ((r * r) as f64 * 0.002).sin();
            8.0 * u1 * ((c + 1) as f64 * 0.5).cos()
                + 3.0 * u2 * (c as f64 * 0.9).sin()
                + 1.0 * u3 * ((c * c) as f64 * 0.1).cos()
                + 0.01 * (((r * 31 + c * 7) % 13) as f64 - 6.0)
        })
    }

    #[test]
    fn subspace_bank_matches_exact_selection_on_decaying_spectrum() {
        let a = structured(600, 24);
        let exact = LeverageBank::new(&a).unwrap();
        let config = RsvdConfig {
            rank: 6,
            power_iters: 2,
            ..Default::default()
        };
        let approx = LeverageBank::new_subspace(&a, &config).unwrap();
        assert_eq!(approx.n_rows(), 600);
        assert!(approx.rank() <= config.rank);
        // Leading singular values agree to a small relative error.
        for i in 0..3 {
            let rel = (approx.singular_values()[i] - exact.singular_values()[i]).abs()
                / exact.singular_values()[i];
            assert!(rel < 0.02, "σ_{i} off by {rel}");
        }
        // Top-t selections overlap heavily with the exact rank-restricted
        // path (sets, not order: near-tied scores may swap positions).
        for t in [10usize, 25, 50] {
            let e: std::collections::HashSet<usize> = exact
                .select_indices(t, Some(config.rank))
                .unwrap()
                .into_iter()
                .collect();
            let overlap = approx
                .select_indices(t, None)
                .unwrap()
                .iter()
                .filter(|i| e.contains(i))
                .count();
            assert!(overlap * 10 >= t * 9, "t={t}: only {overlap}/{t} overlap");
        }
    }

    #[test]
    fn subspace_bank_deterministic_per_seed_and_validates_t() {
        let a = structured(200, 12);
        let config = RsvdConfig {
            rank: 4,
            ..Default::default()
        };
        let b1 = LeverageBank::new_subspace(&a, &config).unwrap();
        let b2 = LeverageBank::new_subspace(&a, &config).unwrap();
        for (x, y) in b1.scores(None).iter().zip(&b2.scores(None)) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(
            b1.select_indices(30, None).unwrap(),
            b2.select_indices(30, None).unwrap()
        );
        assert!(b1.select(0, None).is_err());
        assert!(b1.select(201, None).is_err());
        // rank_k rescoring works off the truncated U as well.
        let r2 = b1.select(30, Some(2)).unwrap();
        assert_eq!(r2.indices.len(), 30);
    }

    #[test]
    fn bank_validates_t_and_reports_rank() {
        let a = Matrix::from_fn(12, 3, |r, c| ((r * 5 + c) % 7) as f64);
        let bank = LeverageBank::new(&a).unwrap();
        assert!(bank.select(0, None).is_err());
        assert!(bank.select(13, None).is_err());
        assert!(bank.select_indices(0, None).is_err());
        let svd = thin_svd(&a).unwrap();
        assert_eq!(bank.rank(), svd.rank());
        assert_eq!(bank.singular_values().len(), svd.sigma.len());
    }
}
