//! Algorithm 1: the randomized row-sampling meta-algorithm.
//!
//! `s` rows are drawn i.i.d. from the distribution `P`; sampled row `i` with
//! probability `pᵢ` is rescaled by `1/√(s·pᵢ)` so that `E[ÃᵀÃ] = AᵀA`
//! (Drineas, Kannan & Mahoney 2006).

use crate::distribution::SamplingDistribution;
use crate::error::SamplingError;
use crate::Result;
use neurodeanon_linalg::{Matrix, Rng64};

/// Output of the randomized row sampler.
#[derive(Debug, Clone)]
pub struct RowSample {
    /// The sketch matrix `Ã ∈ R^{s×n}` (rescaled rows).
    pub sketch: Matrix,
    /// Original row index of each sketch row (may repeat — sampling is
    /// with replacement, per the algorithm).
    pub indices: Vec<usize>,
}

/// Runs Algorithm 1: samples `s` rows of `a` according to `distribution`.
pub fn row_sample(
    a: &Matrix,
    s: usize,
    distribution: SamplingDistribution,
    rng: &mut Rng64,
) -> Result<RowSample> {
    if s == 0 {
        return Err(SamplingError::InvalidSampleCount {
            requested: s,
            available: a.rows(),
        });
    }
    let probs = distribution.probabilities(a)?;
    let mut sketch = Matrix::zeros(s, a.cols());
    let mut indices = Vec::with_capacity(s);
    for t in 0..s {
        let i = rng
            .weighted_index(&probs)
            .ok_or(SamplingError::DegenerateDistribution)?;
        indices.push(i);
        let scale = 1.0 / (s as f64 * probs[i]).sqrt();
        let src = a.row(i);
        let dst = sketch.row_mut(t);
        for (d, &x) in dst.iter_mut().zip(src) {
            *d = scale * x;
        }
    }
    Ok(RowSample { sketch, indices })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tall() -> Matrix {
        Matrix::from_fn(60, 5, |r, c| ((r * 13 + c * 7) % 17) as f64 - 8.0)
    }

    #[test]
    fn sketch_has_requested_shape() {
        let a = tall();
        let s = row_sample(&a, 25, SamplingDistribution::L2Norm, &mut Rng64::new(1)).unwrap();
        assert_eq!(s.sketch.shape(), (25, 5));
        assert_eq!(s.indices.len(), 25);
        assert!(s.indices.iter().all(|&i| i < 60));
    }

    #[test]
    fn rejects_zero_samples() {
        let a = tall();
        assert!(row_sample(&a, 0, SamplingDistribution::Uniform, &mut Rng64::new(1)).is_err());
    }

    #[test]
    fn sketch_rows_are_rescaled_source_rows() {
        let a = tall();
        let probs = SamplingDistribution::L2Norm.probabilities(&a).unwrap();
        let s = 10;
        let out = row_sample(&a, s, SamplingDistribution::L2Norm, &mut Rng64::new(3)).unwrap();
        for (t, &i) in out.indices.iter().enumerate() {
            let scale = 1.0 / (s as f64 * probs[i]).sqrt();
            for c in 0..5 {
                assert!((out.sketch[(t, c)] - scale * a[(i, c)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gram_estimate_is_unbiased() {
        // Average ÃᵀÃ over many runs ≈ AᵀA (the unbiasedness property the
        // 1/√(s·pᵢ) rescaling exists for).
        let a = Matrix::from_fn(20, 3, |r, c| ((r * 5 + c * 3) % 7) as f64 - 3.0);
        let target = a.gram();
        let runs = 600;
        let mut rng = Rng64::new(2024);
        let mut acc = Matrix::zeros(3, 3);
        for _ in 0..runs {
            let out = row_sample(&a, 8, SamplingDistribution::L2Norm, &mut rng).unwrap();
            acc = acc.add(&out.sketch.gram()).unwrap();
        }
        acc.scale_mut(1.0 / runs as f64);
        let rel = acc.sub(&target).unwrap().frobenius_norm() / target.frobenius_norm();
        assert!(rel < 0.1, "relative deviation {rel}");
    }

    #[test]
    fn equation_two_additive_bound_holds_on_average() {
        // E‖AᵀA − ÃᵀÃ‖_F ≤ ‖A‖_F² / √s for ℓ₂ sampling.
        let a = Matrix::from_fn(40, 4, |r, c| (((r * 11 + c * 5) % 13) as f64 - 6.0) * 0.5);
        let fro2 = a.frobenius_norm().powi(2);
        let s = 16;
        let bound = fro2 / (s as f64).sqrt();
        let mut rng = Rng64::new(7);
        let runs = 200;
        let mut mean_err = 0.0;
        for _ in 0..runs {
            let out = row_sample(&a, s, SamplingDistribution::L2Norm, &mut rng).unwrap();
            mean_err += out.sketch.gram().sub(&a.gram()).unwrap().frobenius_norm();
        }
        mean_err /= runs as f64;
        assert!(mean_err <= bound, "mean err {mean_err} > bound {bound}");
    }

    #[test]
    fn l2_beats_uniform_on_skewed_matrices() {
        // A matrix where a few rows carry all the mass: ℓ₂ sampling gives a
        // much better Gram estimate than uniform, the paper's motivation
        // for norm-biased sampling.
        let mut a = Matrix::filled(100, 3, 0.01);
        for r in 0..5 {
            a.set_row(r, &[3.0, -2.0, 1.0]).unwrap();
        }
        let target = a.gram();
        let mut rng = Rng64::new(5);
        let runs = 100;
        let mut err_uniform = 0.0;
        let mut err_l2 = 0.0;
        for _ in 0..runs {
            let u = row_sample(&a, 10, SamplingDistribution::Uniform, &mut rng).unwrap();
            err_uniform += u.sketch.gram().sub(&target).unwrap().frobenius_norm();
            let l = row_sample(&a, 10, SamplingDistribution::L2Norm, &mut rng).unwrap();
            err_l2 += l.sketch.gram().sub(&target).unwrap().frobenius_norm();
        }
        assert!(
            err_l2 < err_uniform * 0.7,
            "l2 {err_l2} vs uniform {err_uniform}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = tall();
        let x = row_sample(&a, 12, SamplingDistribution::Leverage, &mut Rng64::new(9)).unwrap();
        let y = row_sample(&a, 12, SamplingDistribution::Leverage, &mut Rng64::new(9)).unwrap();
        assert_eq!(x.indices, y.indices);
    }
}
