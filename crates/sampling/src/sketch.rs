//! Sketch-quality functionals for the paper's two guarantees.
//!
//! * Equation 2 (additive): `E‖AᵀA − ÃᵀÃ‖_F ≤ ‖A‖_F²/√s` for ℓ₂ sampling.
//! * Equation 4 (relative): `‖A − A Ã†Ã‖ ≤ (1+ε)‖A − A_k‖` for leverage
//!   sampling of `O(k log k / ε²)` rows.
//!
//! These are used by the ablation benches and integration tests to verify
//! that the implemented samplers actually deliver their theory.

use crate::Result;
use neurodeanon_linalg::pinv::pinv;
use neurodeanon_linalg::svd::thin_svd;
use neurodeanon_linalg::Matrix;

/// Additive sketch error `‖AᵀA − ÃᵀÃ‖_F` (the left side of Equation 2).
pub fn gram_error(a: &Matrix, sketch: &Matrix) -> Result<f64> {
    let ga = a.gram();
    let gs = sketch.gram();
    Ok(ga.sub(&gs)?.frobenius_norm())
}

/// The Equation-2 bound `‖A‖_F² / √s` for a sketch of `s` rows.
pub fn additive_bound(a: &Matrix, s: usize) -> f64 {
    a.frobenius_norm().powi(2) / (s as f64).sqrt()
}

/// Relative projection error `‖A − A Ã†Ã‖_F` (the left side of Equation 4):
/// how much of `A` is lost by projecting onto the row space of the sketch.
pub fn projection_error(a: &Matrix, sketch: &Matrix) -> Result<f64> {
    // P = Ã†Ã projects onto the sketch's row space; shapes: (n×s)(s×n) = n×n.
    let p = pinv(sketch)?.matmul(sketch)?;
    let projected = a.matmul(&p)?;
    Ok(a.sub(&projected)?.frobenius_norm())
}

/// Frobenius error of the best rank-`k` approximation `‖A − A_k‖_F`
/// (the right-side reference of Equation 4, via Eckart–Young).
pub fn best_rank_k_error(a: &Matrix, k: usize) -> Result<f64> {
    let svd = thin_svd(a)?;
    let tail: f64 = svd.sigma.iter().skip(k).map(|s| s * s).sum();
    Ok(tail.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::SamplingDistribution;
    use crate::principal::principal_features;
    use crate::row_sample::row_sample;
    use neurodeanon_linalg::Rng64;

    /// A low-rank-plus-noise matrix: rank-2 structure with a small tail.
    fn structured(m: usize) -> Matrix {
        Matrix::from_fn(m, 6, |r, c| {
            let u1 = (r as f64 * 0.17).sin();
            let u2 = (r as f64 * 0.05).cos();
            3.0 * u1 * (c as f64 + 1.0)
                + 2.0 * u2 * ((c * c) as f64 - 2.0)
                + 0.01 * (((r * 31 + c * 7) % 13) as f64 - 6.0)
        })
    }

    #[test]
    fn gram_error_zero_for_full_sketch() {
        let a = structured(30);
        assert!(gram_error(&a, &a).unwrap() < 1e-9);
    }

    #[test]
    fn projection_error_zero_when_sketch_spans_rows() {
        // Any row basis that spans A's row space gives zero loss; use A itself.
        let a = structured(25);
        assert!(projection_error(&a, &a).unwrap() < 1e-6);
    }

    #[test]
    fn best_rank_k_error_decreases_in_k() {
        let a = structured(40);
        let mut prev = f64::INFINITY;
        for k in 0..=6 {
            let e = best_rank_k_error(&a, k).unwrap();
            assert!(e <= prev + 1e-12);
            prev = e;
        }
        assert!(best_rank_k_error(&a, 6).unwrap() < 1e-9);
    }

    #[test]
    fn leverage_sampling_achieves_near_optimal_projection() {
        // Equation 4 in action: a leverage sketch of modest size projects A
        // almost as well as the best rank-k approximation.
        let a = structured(200);
        let k = 2;
        let opt = best_rank_k_error(&a, k).unwrap();
        let mut rng = Rng64::new(31);
        let sketch = row_sample(&a, 40, SamplingDistribution::Leverage, &mut rng)
            .unwrap()
            .sketch;
        let err = projection_error(&a, &sketch).unwrap();
        // ε well under 1 for this comfortable oversampling.
        assert!(err <= 2.0 * opt + 1e-9, "err {err} vs opt {opt}");
    }

    #[test]
    fn deterministic_top_t_error_shrinks_with_t() {
        // Projection error of the deterministic selection is (weakly)
        // monotone in t and hits ~0 when every row is kept.
        let a = structured(60);
        let mut prev = f64::INFINITY;
        for t in [5, 15, 30, 60] {
            let r = principal_features(&a, t, None).unwrap().reduce(&a).unwrap();
            let err = projection_error(&a, &r).unwrap();
            assert!(err <= prev + 1e-6, "t={t}: {err} > {prev}");
            prev = err;
        }
        assert!(prev < 1e-6, "full selection should be lossless: {prev}");
    }

    #[test]
    fn deterministic_leverage_beats_uniform_on_skewed_input() {
        // On a matrix whose informative rows are few, deterministic
        // leverage selection dominates uniform random picks of equal size.
        let mut a = Matrix::filled(120, 4, 0.05);
        a.set_row(10, &[5.0, 0.0, 0.0, 0.0]).unwrap();
        a.set_row(50, &[0.0, 4.0, 0.0, 0.0]).unwrap();
        a.set_row(90, &[0.0, 0.0, 3.0, 2.0]).unwrap();
        let det = principal_features(&a, 4, None).unwrap().reduce(&a).unwrap();
        let det_err = projection_error(&a, &det).unwrap();
        let mut rng = Rng64::new(17);
        let mut uni_mean = 0.0;
        for _ in 0..20 {
            let s = row_sample(&a, 4, SamplingDistribution::Uniform, &mut rng).unwrap();
            uni_mean += projection_error(&a, &s.sketch).unwrap();
        }
        uni_mean /= 20.0;
        assert!(
            det_err < uni_mean * 0.5,
            "deterministic {det_err} vs uniform mean {uni_mean}"
        );
    }

    #[test]
    fn additive_bound_formula() {
        let a = structured(20);
        let b = additive_bound(&a, 16);
        assert!((b - a.frobenius_norm().powi(2) / 4.0).abs() < 1e-12);
    }
}
