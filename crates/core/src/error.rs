//! Error type for the attack layer.

use std::fmt;

/// Errors surfaced by the attack and experiment drivers.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The two group matrices are incompatible (different feature counts).
    IncompatibleGroups {
        /// Features in the de-anonymized matrix.
        known: usize,
        /// Features in the anonymous matrix.
        anon: usize,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint description.
        reason: &'static str,
    },
    /// An input matrix contained NaN/inf under the
    /// [`Reject`](crate::attack::DegradedInput::Reject) degradation policy,
    /// or a similarity matrix handed to the Hungarian assignment was
    /// partially degraded.
    NonFiniteInput {
        /// Which operand (`"known"`, `"anon"`, or `"similarity"`).
        side: &'static str,
        /// How many cells were non-finite.
        n_non_finite: usize,
    },
    /// Under the [`Mask`](crate::attack::DegradedInput::Mask) policy, the
    /// usable-feature intersection of a degraded known/anonymous pair was
    /// too small for any correlation to be trustworthy.
    InsufficientSupport {
        /// Fully finite feature rows in the known matrix.
        known_valid: usize,
        /// Feature rows with at least one finite entry in the anonymous
        /// matrix.
        anon_valid: usize,
        /// Rows in the intersection (what the attack would have to run on).
        shared: usize,
    },
    /// A similarity column contained no finite entry, so the corresponding
    /// anonymous subject cannot be matched at all (e.g. a whole-missing
    /// subject column under strict matching).
    UnmatchableColumn {
        /// The offending anonymous-subject column.
        column: usize,
    },
    /// Error propagated from a substrate crate.
    Linalg(neurodeanon_linalg::LinalgError),
    /// Error from the connectome layer.
    Connectome(neurodeanon_connectome::ConnectomeError),
    /// Error from the sampling layer.
    Sampling(neurodeanon_sampling::SamplingError),
    /// Error from the embedding layer.
    Embedding(neurodeanon_embedding::EmbeddingError),
    /// Error from the ML layer.
    Ml(neurodeanon_ml::MlError),
    /// Error from the dataset generators.
    Dataset(neurodeanon_datasets::DatasetError),
    /// Error from the fMRI layer.
    Fmri(neurodeanon_fmri::FmriError),
    /// Error from the preprocessing layer.
    Preprocess(neurodeanon_preprocess::PreprocessError),
    /// Error from the atlas layer.
    Atlas(neurodeanon_atlas::AtlasError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::IncompatibleGroups { known, anon } => write!(
                f,
                "group matrices have different feature counts: {known} vs {anon}"
            ),
            CoreError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            CoreError::NonFiniteInput { side, n_non_finite } => {
                write!(f, "{side} matrix has {n_non_finite} non-finite cells")?;
                if *side != "similarity" {
                    write!(
                        f,
                        " (policy: reject; use the mask or impute degradation \
                         policy to attack anyway)"
                    )?;
                }
                Ok(())
            }
            CoreError::InsufficientSupport {
                known_valid,
                anon_valid,
                shared,
            } => write!(
                f,
                "degraded inputs share only {shared} usable features \
                 (known has {known_valid}, anon has {anon_valid}); too few to correlate"
            ),
            CoreError::UnmatchableColumn { column } => write!(
                f,
                "similarity column {column} has no finite entries; anonymous subject unmatchable"
            ),
            CoreError::Linalg(e) => write!(f, "linalg: {e}"),
            CoreError::Connectome(e) => write!(f, "connectome: {e}"),
            CoreError::Sampling(e) => write!(f, "sampling: {e}"),
            CoreError::Embedding(e) => write!(f, "embedding: {e}"),
            CoreError::Ml(e) => write!(f, "ml: {e}"),
            CoreError::Dataset(e) => write!(f, "dataset: {e}"),
            CoreError::Fmri(e) => write!(f, "fmri: {e}"),
            CoreError::Preprocess(e) => write!(f, "preprocess: {e}"),
            CoreError::Atlas(e) => write!(f, "atlas: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Linalg(e) => Some(e),
            CoreError::Connectome(e) => Some(e),
            CoreError::Sampling(e) => Some(e),
            CoreError::Embedding(e) => Some(e),
            CoreError::Ml(e) => Some(e),
            CoreError::Dataset(e) => Some(e),
            CoreError::Fmri(e) => Some(e),
            CoreError::Preprocess(e) => Some(e),
            CoreError::Atlas(e) => Some(e),
            _ => None,
        }
    }
}

macro_rules! impl_from {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for CoreError {
            fn from(e: $ty) -> Self {
                CoreError::$variant(e)
            }
        }
    };
}

impl_from!(Linalg, neurodeanon_linalg::LinalgError);
impl_from!(Connectome, neurodeanon_connectome::ConnectomeError);
impl_from!(Sampling, neurodeanon_sampling::SamplingError);
impl_from!(Embedding, neurodeanon_embedding::EmbeddingError);
impl_from!(Ml, neurodeanon_ml::MlError);
impl_from!(Dataset, neurodeanon_datasets::DatasetError);
impl_from!(Fmri, neurodeanon_fmri::FmriError);
impl_from!(Preprocess, neurodeanon_preprocess::PreprocessError);
impl_from!(Atlas, neurodeanon_atlas::AtlasError);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::IncompatibleGroups {
            known: 64620,
            anon: 6670,
        };
        assert!(e.to_string().contains("64620"));
        let e: CoreError = neurodeanon_linalg::LinalgError::EmptyMatrix { op: "x" }.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
