#![warn(missing_docs)]

//! # neurodeanon-core
//!
//! The primary contribution of *"De-anonymization Attacks on Neuroimaging
//! Datasets"* (Ravindra & Grama, SIGMOD 2021), on top of the workspace
//! substrates:
//!
//! * [`attack`] — [`attack::DeanonAttack`]: given a de-anonymized group
//!   matrix and an anonymous one, select the principal-features subspace by
//!   leverage scores of the de-anonymized matrix, correlate subjects across
//!   the reduced matrices, and match (Figure 3's workflow).
//! * [`matching`] — greedy argmax matching (the paper's rule), an optimal
//!   Hungarian assignment for the ablation, and the open-world
//!   score/decision layer ([`matching::match_scores`],
//!   [`matching::Decision`]).
//! * [`splits`] — deterministic seeded enrollment splits for open-world
//!   evaluation: only a fraction of query subjects are enrolled in the
//!   gallery, the rest query as impostors.
//! * [`task_id`] — the t-SNE task-identification attack (§3.3.2): stack all
//!   conditions, embed to 2-D, transfer labels by 1-NN.
//! * [`performance`] — task-performance prediction (§3.3.3): leverage
//!   features + linear SVR, nRMSE on held-out subjects.
//! * [`defense`] — the paper's §4 countermeasure: localize the signature
//!   edges with the attacker's own selection and add targeted noise.
//! * [`experiments`] — one driver per paper table/figure (DESIGN.md §3),
//!   consumed by the `repro` binary and the Criterion benches.
//! * [`serve`] — attack-as-a-service (DESIGN.md §1.7): a long-lived batched
//!   match server over a memoized [`attack::AttackPlan`] with backpressure,
//!   per-query deadlines, poison-query isolation, and deterministic worker
//!   respawn.
//!
//! ## Quickstart
//!
//! ```
//! use neurodeanon_core::attack::{AttackConfig, DeanonAttack};
//! use neurodeanon_datasets::{HcpCohort, HcpCohortConfig, Session, Task};
//!
//! let cohort = HcpCohort::generate(HcpCohortConfig::small(6, 1)).unwrap();
//! let known = cohort.group_matrix(Task::Rest, Session::One).unwrap();
//! let anon = cohort.group_matrix(Task::Rest, Session::Two).unwrap();
//! let attack = DeanonAttack::new(AttackConfig::default()).unwrap();
//! let outcome = attack.run(&known, &anon).unwrap();
//! assert!(outcome.accuracy > 0.5); // small cohorts identify easily
//! ```

pub mod attack;
pub mod defense;
pub mod error;
pub mod experiments;
pub mod matching;
pub mod performance;
pub mod serve;
pub mod splits;
pub mod task_id;

pub use attack::{
    match_with_features, AttackConfig, AttackOutcome, AttackPlan, DeanonAttack, DegradedInput,
    Dtype, MASKED_MIN_OVERLAP,
};
pub use error::CoreError;
pub use matching::{Decision, MatchScore};
pub use serve::{
    MatchResponse, MatchServer, Query, QueryError, QueryResult, ServeConfig, ServeReport,
    SubmitError,
};
pub use splits::{enrollment_split, EnrollmentSplit};

/// Result alias for attack operations.
pub type Result<T> = std::result::Result<T, CoreError>;
