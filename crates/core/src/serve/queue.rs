//! A bounded multi-producer / multi-consumer queue with backpressure.
//!
//! The match server's spine: producers block (up to a deadline) when the
//! queue is full instead of growing it without bound, consumers block (up
//! to a timeout) when it is empty instead of spinning, and closing the
//! queue lets consumers drain every item already accepted before they see
//! [`QueueError::Closed`] — the "clean drain" half of the serve contract.
//!
//! Implemented on `std` only (`Mutex` + two `Condvar`s), like every other
//! concurrency primitive in the workspace: no external crates, no lock-free
//! cleverness — the queue guards milliseconds-scale GEMM batches, so a
//! mutex hop is noise.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a queue operation did not hand over an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueError {
    /// The queue was at capacity (non-blocking push only).
    Full {
        /// The configured capacity that was exhausted.
        capacity: usize,
    },
    /// The deadline (push) or timeout (pop) expired first.
    Timeout,
    /// The queue is closed: closed-and-drained for pops, closed for pushes
    /// (a closed queue accepts nothing, but pops still drain what it holds).
    Closed,
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::Full { capacity } => write!(f, "queue full (capacity {capacity})"),
            QueueError::Timeout => write!(f, "queue operation timed out"),
            QueueError::Closed => write!(f, "queue closed"),
        }
    }
}

impl std::error::Error for QueueError {}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded blocking MPMC queue. See the module docs for the contract.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity.max(1)` items.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is empty right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        // A panicking queue user cannot corrupt a VecDeque push/pop, so
        // poisoning is cleared rather than propagated: the serve layer
        // contains worker panics and must keep the queue usable afterwards.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Non-blocking push. On failure the item is handed back with the
    /// typed reason ([`QueueError::Full`] or [`QueueError::Closed`]).
    pub fn try_push(&self, item: T) -> Result<(), (T, QueueError)> {
        let mut g = self.lock();
        if g.closed {
            return Err((item, QueueError::Closed));
        }
        if g.items.len() >= self.capacity {
            return Err((
                item,
                QueueError::Full {
                    capacity: self.capacity,
                },
            ));
        }
        g.items.push_back(item);
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push with a deadline: waits for space until `deadline`,
    /// then hands the item back with [`QueueError::Timeout`]. This is the
    /// backpressure edge — a producer ahead of the service's capacity slows
    /// to the consumers' pace instead of growing an unbounded backlog.
    pub fn push_deadline(&self, item: T, deadline: Instant) -> Result<(), (T, QueueError)> {
        let mut g = self.lock();
        loop {
            if g.closed {
                return Err((item, QueueError::Closed));
            }
            if g.items.len() < self.capacity {
                g.items.push_back(item);
                drop(g);
                self.not_empty.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            let Some(wait) = deadline
                .checked_duration_since(now)
                .filter(|w| !w.is_zero())
            else {
                return Err((item, QueueError::Timeout));
            };
            let (guard, _timeout) = match self.not_full.wait_timeout(g, wait) {
                Ok(r) => r,
                Err(poisoned) => poisoned.into_inner(),
            };
            g = guard;
        }
    }

    /// Non-blocking pop. Drains items even after close (`None` only when
    /// nothing is queued).
    pub fn try_pop(&self) -> Option<T> {
        let mut g = self.lock();
        let item = g.items.pop_front();
        if item.is_some() {
            drop(g);
            self.not_full.notify_one();
        }
        item
    }

    /// Blocking pop with a timeout. [`QueueError::Closed`] only once the
    /// queue is closed **and** drained — accepted items always reach a
    /// consumer; [`QueueError::Timeout`] when the queue stayed empty (and
    /// open) for the whole window.
    pub fn pop_timeout(&self, timeout: Duration) -> Result<T, QueueError> {
        let deadline = Instant::now() + timeout;
        let mut g = self.lock();
        loop {
            if let Some(item) = g.items.pop_front() {
                drop(g);
                self.not_full.notify_one();
                return Ok(item);
            }
            if g.closed {
                return Err(QueueError::Closed);
            }
            let now = Instant::now();
            let Some(wait) = deadline
                .checked_duration_since(now)
                .filter(|w| !w.is_zero())
            else {
                return Err(QueueError::Timeout);
            };
            let (guard, _timeout) = match self.not_empty.wait_timeout(g, wait) {
                Ok(r) => r,
                Err(poisoned) => poisoned.into_inner(),
            };
            g = guard;
        }
    }

    /// Closes the queue: pushes fail from now on, pops drain the remainder
    /// then report [`QueueError::Closed`]. Wakes every waiter.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let (item, err) = q.try_push(3).unwrap_err();
        assert_eq!(item, 3);
        assert_eq!(err, QueueError::Full { capacity: 2 });
        assert_eq!(q.len(), 2);
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn push_deadline_times_out_on_full_queue() {
        let q = BoundedQueue::new(1);
        q.try_push(1).unwrap();
        let t0 = Instant::now();
        let (item, err) = q
            .push_deadline(2, Instant::now() + Duration::from_millis(30))
            .unwrap_err();
        assert_eq!(item, 2);
        assert_eq!(err, QueueError::Timeout);
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn push_deadline_succeeds_when_space_frees() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            q2.try_pop()
        });
        q.push_deadline(2, Instant::now() + Duration::from_secs(5))
            .unwrap();
        assert_eq!(h.join().unwrap(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
    }

    #[test]
    fn pop_timeout_empty_and_closed_semantics() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        assert_eq!(
            q.pop_timeout(Duration::from_millis(10)),
            Err(QueueError::Timeout)
        );
        q.try_push(7).unwrap();
        q.close();
        // Close rejects new pushes but never drops accepted items.
        assert_eq!(
            q.try_push(8).unwrap_err().1,
            QueueError::Closed,
            "closed queue must reject pushes"
        );
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), Ok(7));
        assert_eq!(
            q.pop_timeout(Duration::from_millis(10)),
            Err(QueueError::Closed)
        );
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), Err(QueueError::Closed));
    }

    #[test]
    fn mpmc_under_contention_delivers_everything_once() {
        let q: Arc<BoundedQueue<u64>> = Arc::new(BoundedQueue::new(8));
        let n_producers = 4u64;
        let per_producer = 500u64;
        let mut handles = Vec::new();
        for p in 0..n_producers {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_producer {
                    q.push_deadline(
                        p * per_producer + i,
                        Instant::now() + Duration::from_secs(30),
                    )
                    .map_err(|(_, e)| e)
                    .unwrap();
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match q.pop_timeout(Duration::from_millis(200)) {
                        Ok(v) => got.push(v),
                        Err(QueueError::Closed) => break,
                        Err(QueueError::Timeout) => continue,
                        Err(QueueError::Full { .. }) => unreachable!(),
                    }
                }
                got
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        all.sort_unstable();
        let expect: Vec<u64> = (0..n_producers * per_producer).collect();
        assert_eq!(all, expect);
    }
}
