//! Attack-as-a-service: a long-lived, batched, fault-tolerant match server
//! over a memoized [`AttackPlan`] (DESIGN.md §1.7).
//!
//! The paper's attack is a one-shot batch job; the serving shape is a
//! gallery prepared once and a stream of query connectomes answered for as
//! long as the process lives. This module supplies that shape with
//! robustness as the headline contract:
//!
//! * **Batched queries** — workers collect up to `batch_max` queued queries
//!   and answer them with *one* fused z-score + cross-correlation GEMM
//!   ([`AttackPlan::correlate_batch`]), bit-identical per column to running
//!   each query alone. Batching buys throughput and can never change a
//!   response.
//! * **Backpressure** — a bounded MPMC queue ([`BoundedQueue`]) between
//!   producers and workers. [`MatchServer::submit`] blocks until space or a
//!   deadline ([`SubmitError::Timeout`]); [`MatchServer::try_submit`] fails
//!   fast ([`SubmitError::QueueFull`]). Overload degrades batch size first
//!   (smaller GEMMs ⇒ more frequent deadline checks ⇒ shedding engages as
//!   late as possible) and sheds by per-query deadline second
//!   ([`QueryError::DeadlineExceeded`]); accepted queries are never
//!   silently dropped.
//! * **Poison isolation** — every query is validated individually; a
//!   malformed or degraded query yields a typed [`QueryError`] while the
//!   rest of its batch completes. A worker panic (chaos-injected or
//!   otherwise) is contained by `catch_unwind`: the worker rebuilds its
//!   plan from the pristine copy (deterministic respawn), re-runs the batch
//!   one query at a time so exactly the poison query fails
//!   ([`QueryError::WorkerPanicked`]), and applies a capped exponential
//!   backoff *in units of work* (the next `2^respawns` batches run at size
//!   1 — deterministic, unlike wall-clock backoff). A worker exceeding
//!   `max_respawns` parks; the last worker to park closes the queue so
//!   nothing hangs.
//! * **Clean drain** — [`MatchServer::shutdown`] closes the queue, lets
//!   workers drain every accepted query, joins them, and answers anything
//!   left (only possible when all workers died) with [`QueryError::Closed`]:
//!   every submitted query receives exactly one reply.
//!
//! Determinism: a response depends only on its own query and the prepared
//! plan — never on batch packing, arrival order, worker count, or thread
//! count — so serve output is byte-identical across all of those (asserted
//! by `tests/serve_properties.rs` and the CI serve smoke). The `serve.*`
//! obs metrics (queue depth, batches, sheds, quarantines) *are*
//! arrival-timing-dependent and are excluded from the observability
//! fingerprint like the `rt.` namespace.

mod queue;

pub use queue::{BoundedQueue, QueueError};

use crate::attack::{AttackPlan, DegradedInput, MatchRule};
use crate::error::CoreError;
use crate::matching::{match_scores, Decision, MatchScore};
use crate::Result;
use neurodeanon_connectome::GroupMatrix;
use neurodeanon_datasets::ServiceFaultKind;
use neurodeanon_linalg::Matrix;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, OnceLock};
use std::time::{Duration, Instant};

/// Interval at which an idle worker re-checks its (possibly closed) queue.
const IDLE_POP_TIMEOUT: Duration = Duration::from_millis(25);

/// Queue-depth fraction (numerator/denominator of capacity) above which
/// workers halve their batch size — the "degrade before dropping" stage of
/// overload shedding.
const SHED_WATERMARK_NUM: usize = 3;
const SHED_WATERMARK_DEN: usize = 4;

/// Cap on the exponent of the respawn backoff (`2^min(respawns, CAP)`
/// size-1 batches after a contained panic).
const BACKOFF_EXP_CAP: u32 = 6;

/// Name prefix of the server's worker threads; the panic hook below keys
/// on it to keep contained panics quiet.
const WORKER_THREAD_PREFIX: &str = "serve-worker-";

/// Installs (once per process) a panic hook that demotes panics on serve
/// worker threads to a single stderr line. Worker panics are *contained* —
/// caught, quarantined, and reported as typed [`QueryError::WorkerPanicked`]
/// per query — so the default full-backtrace dump would be pure noise on a
/// path the server survives by design. Panics on every other thread keep
/// the previously installed hook's behavior.
fn install_worker_panic_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let on_worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with(WORKER_THREAD_PREFIX));
            if on_worker {
                let message = info
                    .payload()
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| info.payload().downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                eprintln!("[serve] contained worker panic: {message}");
            } else {
                previous(info);
            }
        }));
    });
}

/// Configuration of a [`MatchServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads answering queries. Each owns a full clone of the
    /// prepared plan (gallery buffers included).
    pub workers: usize,
    /// Bounded queue capacity between producers and workers.
    pub queue_capacity: usize,
    /// Most queries a worker folds into one batched GEMM.
    pub batch_max: usize,
    /// How long [`MatchServer::submit`] blocks for queue space before
    /// returning [`SubmitError::Timeout`].
    pub submit_timeout: Duration,
    /// Consecutive contained panics a worker survives (respawning its plan
    /// each time) before it parks as dead.
    pub max_respawns: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            batch_max: 16,
            submit_timeout: Duration::from_millis(200),
            max_respawns: 64,
        }
    }
}

impl ServeConfig {
    /// Validates the parameter domains.
    pub fn validate(&self) -> Result<()> {
        if self.workers == 0 {
            return Err(CoreError::InvalidParameter {
                name: "workers",
                reason: "need at least one worker thread",
            });
        }
        if self.queue_capacity == 0 {
            return Err(CoreError::InvalidParameter {
                name: "queue_capacity",
                reason: "need a queue capacity of at least one",
            });
        }
        if self.batch_max == 0 {
            return Err(CoreError::InvalidParameter {
                name: "batch_max",
                reason: "need a batch size of at least one",
            });
        }
        Ok(())
    }
}

/// One query connectome submitted to the server.
#[derive(Debug, Clone)]
pub struct Query {
    /// Caller-chosen id echoed in the response (dedup/ordering handle).
    pub id: u64,
    /// Label echoed in the response (the anonymous record's id).
    pub subject_id: String,
    /// Full-length feature vector (the gallery's `n_features`).
    pub values: Vec<f64>,
    /// Optional service deadline: a query still queued past it is shed
    /// with [`QueryError::DeadlineExceeded`] instead of computed late.
    pub deadline: Option<Instant>,
    /// Chaos-testing hook: a [`ServiceFaultKind::WorkerPanic`] marker makes
    /// the processing worker panic mid-batch (the injected fault the
    /// containment contract is tested against). Payload faults are already
    /// materialized in `values` by [`neurodeanon_datasets::ChaosSpec`];
    /// other kinds are inert here.
    pub injected: Option<ServiceFaultKind>,
}

impl Query {
    /// A plain query with no deadline and no injected fault.
    pub fn new(id: u64, subject_id: impl Into<String>, values: Vec<f64>) -> Self {
        Query {
            id,
            subject_id: subject_id.into(),
            values,
            deadline: None,
            injected: None,
        }
    }

    /// Sets the service deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// A successfully computed match for one query.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchResponse {
    /// Echo of [`Query::id`].
    pub query_id: u64,
    /// Echo of [`Query::subject_id`].
    pub subject_id: String,
    /// Gallery index of the best candidate (`None` when the query had no
    /// usable candidate at all — only reachable on degraded-policy paths).
    pub best: Option<usize>,
    /// Identity of the best candidate.
    pub best_id: Option<String>,
    /// Best similarity (`NaN` when `best` is `None`).
    pub score: f64,
    /// Margin over the runner-up (`NaN` when undefined).
    pub margin: f64,
    /// The open-world decision under the plan's `reject_margin`.
    pub decision: Decision,
}

/// Typed per-query failure: one bad query fails alone, with a reason.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Payload length differs from the gallery's feature count (malformed
    /// payload, or a mid-stream gallery-shape change).
    WrongDimension {
        /// Features the payload carried.
        got: usize,
        /// Features the gallery expects.
        want: usize,
    },
    /// Non-finite payload cells under the `Reject` degraded-input policy.
    NonFinite {
        /// Number of non-finite cells.
        n_non_finite: usize,
    },
    /// The query's deadline passed while it waited (overload shedding).
    DeadlineExceeded,
    /// The worker processing this query panicked; the query is quarantined
    /// (its batchmates were re-run and answered normally).
    WorkerPanicked,
    /// The server shut down (or every worker died) before this query was
    /// processed.
    Closed,
    /// The attack itself reported a typed error for this query (e.g.
    /// insufficient masked support).
    Attack {
        /// Rendered [`CoreError`].
        message: String,
    },
}

impl QueryError {
    /// Stable lowercase taxonomy name (JSONL records, CLI output).
    pub fn taxonomy(&self) -> &'static str {
        match self {
            QueryError::WrongDimension { .. } => "wrong_dimension",
            QueryError::NonFinite { .. } => "non_finite",
            QueryError::DeadlineExceeded => "deadline",
            QueryError::WorkerPanicked => "panic",
            QueryError::Closed => "closed",
            QueryError::Attack { .. } => "attack",
        }
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::WrongDimension { got, want } => {
                write!(
                    f,
                    "wrong dimension: query has {got} features, gallery expects {want}"
                )
            }
            QueryError::NonFinite { n_non_finite } => {
                write!(
                    f,
                    "query has {n_non_finite} non-finite cell(s) under the reject policy"
                )
            }
            QueryError::DeadlineExceeded => write!(f, "deadline exceeded before processing"),
            QueryError::WorkerPanicked => write!(f, "worker panicked on this query (quarantined)"),
            QueryError::Closed => write!(f, "server closed before processing"),
            QueryError::Attack { message } => write!(f, "attack error: {message}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Typed submission failure; the query is handed back untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// Non-blocking submit found the queue at capacity.
    QueueFull {
        /// The configured capacity.
        capacity: usize,
    },
    /// Blocking submit waited the full timeout without space freeing.
    Timeout {
        /// How long it waited.
        waited: Duration,
    },
    /// The server is shut down (or every worker died).
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            SubmitError::Timeout { waited } => {
                write!(f, "backpressure timeout after {waited:?}")
            }
            SubmitError::Closed => write!(f, "server closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Outcome delivered on a query's reply channel: exactly one per
/// successfully submitted query.
pub type QueryResult = std::result::Result<MatchResponse, QueryError>;

/// Per-server counters (authoritative, unlike the process-global `serve.*`
/// obs metrics, which aggregate over every server in the process).
#[derive(Debug, Default)]
struct ServeStats {
    submitted: AtomicU64,
    answered: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    quarantined: AtomicU64,
    respawns: AtomicU64,
    batches: AtomicU64,
    drained: AtomicU64,
}

/// Snapshot of a server's lifetime counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeReport {
    /// Queries accepted into the queue.
    pub submitted: u64,
    /// Queries answered with a [`MatchResponse`].
    pub answered: u64,
    /// Queries answered with a [`QueryError`] (includes sheds, quarantines,
    /// and drain-time closures).
    pub failed: u64,
    /// Queries shed on deadline.
    pub shed: u64,
    /// Queries quarantined after a contained worker panic.
    pub quarantined: u64,
    /// Plan rebuilds performed by panic containment.
    pub respawns: u64,
    /// Batches processed (each one GEMM on the happy path).
    pub batches: u64,
    /// Queries answered [`QueryError::Closed`] by the shutdown drain.
    pub drained: u64,
}

impl ServeReport {
    /// The clean-drain invariant: every accepted query was answered.
    pub fn clean_drain(&self) -> bool {
        self.submitted == self.answered + self.failed
    }
}

impl ServeStats {
    fn report(&self) -> ServeReport {
        ServeReport {
            submitted: self.submitted.load(Ordering::Relaxed),
            answered: self.answered.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            drained: self.drained.load(Ordering::Relaxed),
        }
    }
}

/// Cached handles for the `serve.*` runtime metrics (excluded from the obs
/// fingerprint: batching and shedding are arrival-timing-dependent).
mod metrics {
    use super::OnceLock;
    fn handle_counter(name: &'static str) -> &'static neurodeanon_obs::Counter {
        neurodeanon_obs::counter(name)
    }
    fn handle_gauge(name: &'static str) -> &'static neurodeanon_obs::Gauge {
        neurodeanon_obs::gauge(name)
    }
    pub(super) fn queue_depth() -> &'static neurodeanon_obs::Gauge {
        static H: OnceLock<&'static neurodeanon_obs::Gauge> = OnceLock::new();
        H.get_or_init(|| handle_gauge("serve.queue_depth"))
    }
    pub(super) fn batches() -> &'static neurodeanon_obs::Counter {
        static H: OnceLock<&'static neurodeanon_obs::Counter> = OnceLock::new();
        H.get_or_init(|| handle_counter("serve.batches"))
    }
    pub(super) fn sheds() -> &'static neurodeanon_obs::Counter {
        static H: OnceLock<&'static neurodeanon_obs::Counter> = OnceLock::new();
        H.get_or_init(|| handle_counter("serve.sheds"))
    }
    pub(super) fn quarantined() -> &'static neurodeanon_obs::Counter {
        static H: OnceLock<&'static neurodeanon_obs::Counter> = OnceLock::new();
        H.get_or_init(|| handle_counter("serve.quarantined"))
    }
}

/// A queued query plus its reply channel.
struct Job {
    query: Query,
    reply: mpsc::Sender<QueryResult>,
}

/// The long-lived batched match server. See the module docs.
pub struct MatchServer {
    queue: Arc<BoundedQueue<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    stats: Arc<ServeStats>,
    cfg: ServeConfig,
    n_features: usize,
}

impl MatchServer {
    /// Starts `cfg.workers` worker threads over clones of `plan`.
    ///
    /// The plan's selection is warmed once here, so worker clones share the
    /// prepared gallery buffers instead of each re-deriving them. Serve
    /// requires the argmax rule (Hungarian assignment is defined over a
    /// whole anon *group*, not a stream) and a factorizable plan (a
    /// mask-degraded known matrix has no memoized batch path).
    pub fn start(mut plan: AttackPlan, cfg: ServeConfig) -> Result<MatchServer> {
        cfg.validate()?;
        install_worker_panic_hook();
        if plan.config().match_rule != MatchRule::Argmax {
            return Err(CoreError::InvalidParameter {
                name: "match_rule",
                reason: "serve answers per-query; only the argmax rule applies to a stream",
            });
        }
        // Warm the selection (and surface mask-degraded plans as a typed
        // error now rather than per query).
        let probe = vec![0.0; plan.known().n_features()];
        plan.correlate_batch(&[probe.as_slice()])?;
        let n_features = plan.known().n_features();
        let queue: Arc<BoundedQueue<Job>> = Arc::new(BoundedQueue::new(cfg.queue_capacity));
        let stats = Arc::new(ServeStats::default());
        let live = Arc::new(AtomicUsize::new(cfg.workers));
        let pristine = Arc::new(plan);
        let mut workers = Vec::with_capacity(cfg.workers);
        for i in 0..cfg.workers {
            let worker = Worker {
                plan: (*pristine).clone(),
                pristine: Arc::clone(&pristine),
                queue: Arc::clone(&queue),
                cfg: cfg.clone(),
                stats: Arc::clone(&stats),
                live: Arc::clone(&live),
                respawns: 0,
                penalty: 0,
            };
            let handle = std::thread::Builder::new()
                .name(format!("{WORKER_THREAD_PREFIX}{i}"))
                .spawn(move || worker.run())
                .map_err(|_| CoreError::InvalidParameter {
                    name: "workers",
                    reason: "failed to spawn a worker thread",
                });
            match handle {
                Ok(h) => workers.push(h),
                Err(e) => {
                    queue.close();
                    for h in workers {
                        let _ = h.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(MatchServer {
            queue,
            workers,
            stats,
            cfg,
            n_features,
        })
    }

    /// Feature length queries must carry.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Queries currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Snapshot of the server's lifetime counters.
    pub fn stats(&self) -> ServeReport {
        self.stats.report()
    }

    /// Blocking submit with backpressure: waits up to the configured
    /// `submit_timeout` for queue space. Returns the reply channel —
    /// exactly one [`QueryResult`] will arrive on it.
    pub fn submit(
        &self,
        query: Query,
    ) -> std::result::Result<mpsc::Receiver<QueryResult>, (Query, SubmitError)> {
        let deadline = Instant::now() + self.cfg.submit_timeout;
        let (tx, rx) = mpsc::channel();
        let job = Job { query, reply: tx };
        match self.queue.push_deadline(job, deadline) {
            Ok(()) => {
                self.after_accept();
                Ok(rx)
            }
            Err((job, e)) => Err((job.query, submit_error(e, self.cfg.submit_timeout))),
        }
    }

    /// Non-blocking submit: fails fast with [`SubmitError::QueueFull`]
    /// instead of waiting.
    pub fn try_submit(
        &self,
        query: Query,
    ) -> std::result::Result<mpsc::Receiver<QueryResult>, (Query, SubmitError)> {
        let (tx, rx) = mpsc::channel();
        let job = Job { query, reply: tx };
        match self.queue.try_push(job) {
            Ok(()) => {
                self.after_accept();
                Ok(rx)
            }
            Err((job, e)) => Err((job.query, submit_error(e, self.cfg.submit_timeout))),
        }
    }

    fn after_accept(&self) {
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        metrics::queue_depth().set(self.queue.len() as f64);
    }

    /// Shuts down: closes the queue, lets workers drain every accepted
    /// query, joins them, and answers any leftovers (possible only when
    /// every worker died) with [`QueryError::Closed`]. Returns the final
    /// counter snapshot — `report.clean_drain()` holds on return.
    pub fn shutdown(self) -> ServeReport {
        self.queue.close();
        for h in self.workers {
            let _ = h.join();
        }
        while let Some(job) = self.queue.try_pop() {
            self.stats.drained.fetch_add(1, Ordering::Relaxed);
            send_reply(job, Err(QueryError::Closed), &self.stats);
        }
        self.stats.report()
    }
}

fn submit_error(e: QueueError, submit_timeout: Duration) -> SubmitError {
    match e {
        QueueError::Full { capacity } => SubmitError::QueueFull { capacity },
        QueueError::Timeout => SubmitError::Timeout {
            waited: submit_timeout,
        },
        QueueError::Closed => SubmitError::Closed,
    }
}

/// Sends one reply, bookkeeping the server counters and the process-global
/// `serve.*` metrics. Receivers may already be dropped; that is the
/// caller's prerogative, not an error.
fn send_reply(job: Job, result: QueryResult, stats: &ServeStats) {
    match &result {
        Ok(_) => {
            stats.answered.fetch_add(1, Ordering::Relaxed);
        }
        Err(e) => {
            stats.failed.fetch_add(1, Ordering::Relaxed);
            match e {
                QueryError::DeadlineExceeded => {
                    stats.shed.fetch_add(1, Ordering::Relaxed);
                    metrics::sheds().add(1);
                }
                QueryError::WorkerPanicked => {
                    stats.quarantined.fetch_add(1, Ordering::Relaxed);
                    metrics::quarantined().add(1);
                }
                _ => {}
            }
        }
    }
    let _ = job.reply.send(result);
}

/// One worker thread: pops batches, processes them, contains panics.
struct Worker {
    plan: AttackPlan,
    pristine: Arc<AttackPlan>,
    queue: Arc<BoundedQueue<Job>>,
    cfg: ServeConfig,
    stats: Arc<ServeStats>,
    live: Arc<AtomicUsize>,
    /// Contained panics so far (caps at `cfg.max_respawns`).
    respawns: u32,
    /// Remaining batches forced to size 1 by the respawn backoff.
    penalty: u32,
}

impl Worker {
    fn run(mut self) {
        self.run_loop();
        // Last worker out (clean drain or death) closes the queue so
        // producers fail typed instead of queueing into the void.
        if self.live.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.queue.close();
        }
    }

    fn run_loop(&mut self) {
        loop {
            let Some(batch) = self.collect_batch() else {
                return; // closed and drained
            };
            metrics::queue_depth().set(self.queue.len() as f64);
            let outcome = catch_unwind(AssertUnwindSafe(|| process_batch(&mut self.plan, &batch)));
            self.stats.batches.fetch_add(1, Ordering::Relaxed);
            metrics::batches().add(1);
            match outcome {
                Ok(results) => {
                    for (job, result) in batch.into_iter().zip(results) {
                        send_reply(job, result, &self.stats);
                    }
                }
                Err(_) => {
                    // The batch hit a poison query: rebuild the plan (its
                    // scratch state is suspect mid-unwind), then isolate by
                    // re-running the batch one query at a time. Clean
                    // batchmates produce bit-identical results to the
                    // batched path, so isolation never changes an answer.
                    if !self.respawn() {
                        self.park(batch);
                        return;
                    }
                    let mut it = batch.into_iter();
                    for job in it.by_ref() {
                        let solo = catch_unwind(AssertUnwindSafe(|| {
                            process_one(&mut self.plan, &job.query)
                        }));
                        match solo {
                            Ok(result) => send_reply(job, result, &self.stats),
                            Err(_) => {
                                send_reply(job, Err(QueryError::WorkerPanicked), &self.stats);
                                if !self.respawn() {
                                    self.park(it.collect());
                                    return;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Blocks for the next query, then folds in up to `effective_batch - 1`
    /// more without waiting. `None` once the queue is closed and drained.
    fn collect_batch(&mut self) -> Option<Vec<Job>> {
        let first = loop {
            match self.queue.pop_timeout(IDLE_POP_TIMEOUT) {
                Ok(job) => break job,
                Err(QueueError::Timeout) => continue,
                Err(QueueError::Closed) => return None,
                Err(QueueError::Full { .. }) => unreachable!("pop never reports Full"),
            }
        };
        let cap = self.effective_batch();
        if self.penalty > 0 {
            self.penalty -= 1;
        }
        let mut batch = vec![first];
        while batch.len() < cap {
            match self.queue.try_pop() {
                Some(job) => batch.push(job),
                None => break,
            }
        }
        Some(batch)
    }

    /// The overload-aware batch cap: backoff penalty forces size 1; a queue
    /// past the shed watermark halves the batch so deadline checks run more
    /// often (degrade before dropping).
    fn effective_batch(&self) -> usize {
        if self.penalty > 0 {
            return 1;
        }
        let depth = self.queue.len();
        if depth * SHED_WATERMARK_DEN >= self.queue.capacity() * SHED_WATERMARK_NUM {
            (self.cfg.batch_max / 2).max(1)
        } else {
            self.cfg.batch_max
        }
    }

    /// Deterministic supervisor respawn: replace the (suspect) plan with a
    /// fresh clone of the pristine one and arm the work-unit backoff.
    /// Returns `false` when the respawn budget is exhausted.
    fn respawn(&mut self) -> bool {
        self.respawns += 1;
        self.stats.respawns.fetch_add(1, Ordering::Relaxed);
        if self.respawns > self.cfg.max_respawns {
            return false;
        }
        self.plan = (*self.pristine).clone();
        self.penalty = 1u32 << self.respawns.min(BACKOFF_EXP_CAP);
        true
    }

    /// Worker death: hand unprocessed queries back to surviving workers
    /// (or fail them typed when the queue won't take them).
    fn park(&self, jobs: Vec<Job>) {
        for job in jobs {
            if let Err((job, _)) = self.queue.try_push(job) {
                send_reply(job, Err(QueryError::Closed), &self.stats);
            }
        }
    }
}

/// Validation shared by the batch and solo paths: the typed failure for a
/// query that must not reach the GEMM, or `None` for a processable one.
/// Degraded-but-tolerated queries (non-finite under `Mask`/`Impute`) pass
/// as `None` and are routed to the solo policy path by the caller.
fn prevalidate(
    query: &Query,
    want: usize,
    policy: DegradedInput,
    now: Instant,
) -> Option<QueryError> {
    if query.injected == Some(ServiceFaultKind::WorkerPanic) {
        // The chaos hook: a poison query takes down its worker mid-batch.
        panic!("chaos: injected worker panic (query {})", query.id);
    }
    if query.deadline.is_some_and(|d| d < now) {
        return Some(QueryError::DeadlineExceeded);
    }
    if query.values.len() != want {
        return Some(QueryError::WrongDimension {
            got: query.values.len(),
            want,
        });
    }
    let n_non_finite = query.values.iter().filter(|x| !x.is_finite()).count();
    if n_non_finite > 0 && policy == DegradedInput::Reject {
        return Some(QueryError::NonFinite { n_non_finite });
    }
    None
}

fn is_clean(query: &Query) -> bool {
    query.values.iter().all(|x| x.is_finite())
}

/// Answers a whole batch: validation and policy per query, then one fused
/// GEMM over the clean majority. Returns one result per job, in order.
/// Panics only via a poison query (contained by the caller).
fn process_batch(plan: &mut AttackPlan, batch: &[Job]) -> Vec<QueryResult> {
    let now = Instant::now();
    let want = plan.known().n_features();
    let policy = plan.config().degraded;
    let mut results: Vec<Option<QueryResult>> = (0..batch.len()).map(|_| None).collect();
    let mut clean: Vec<usize> = Vec::with_capacity(batch.len());
    for (i, job) in batch.iter().enumerate() {
        let q = &job.query;
        if let Some(err) = prevalidate(q, want, policy, now) {
            results[i] = Some(Err(err));
        } else if is_clean(q) {
            clean.push(i);
        } else {
            // Non-finite under Mask/Impute: the policy path is per-query by
            // construction (masked support depends on the query's own
            // missingness), identical to the one-shot degraded pipeline.
            results[i] = Some(solo_degraded(plan, q));
        }
    }
    if !clean.is_empty() {
        let refs: Vec<&[f64]> = clean
            .iter()
            .map(|&i| batch[i].query.values.as_slice())
            .collect();
        match plan
            .correlate_batch(&refs)
            .and_then(|sim| match_scores(&sim))
        {
            Ok(scores) => {
                for (k, &i) in clean.iter().enumerate() {
                    results[i] = Some(Ok(response_from_score(plan, &batch[i].query, scores[k])));
                }
            }
            Err(e) => {
                let message = e.to_string();
                for &i in &clean {
                    results[i] = Some(Err(QueryError::Attack {
                        message: message.clone(),
                    }));
                }
            }
        }
    }
    results
        .into_iter()
        .map(|r| r.unwrap_or(Err(QueryError::Closed)))
        .collect()
}

/// Answers one query alone — the quarantine path after a contained panic,
/// bit-identical to the batched path for clean queries (a singleton batch
/// is a one-column GEMM through the same kernels).
fn process_one(plan: &mut AttackPlan, query: &Query) -> QueryResult {
    let now = Instant::now();
    let want = plan.known().n_features();
    let policy = plan.config().degraded;
    if let Some(err) = prevalidate(query, want, policy, now) {
        return Err(err);
    }
    if !is_clean(query) {
        return solo_degraded(plan, query);
    }
    match plan
        .correlate_batch(&[query.values.as_slice()])
        .and_then(|sim| match_scores(&sim))
    {
        Ok(scores) => Ok(response_from_score(plan, query, scores[0])),
        Err(e) => Err(QueryError::Attack {
            message: e.to_string(),
        }),
    }
}

/// Builds the response for a clean query from its similarity column's
/// [`MatchScore`], applying the plan's `reject_margin` with exactly the
/// decision semantics of the one-shot pipeline's `decisions_from`.
fn response_from_score(
    plan: &AttackPlan,
    query: &Query,
    score: Option<MatchScore>,
) -> MatchResponse {
    match score {
        None => MatchResponse {
            query_id: query.id,
            subject_id: query.subject_id.clone(),
            best: None,
            best_id: None,
            score: f64::NAN,
            margin: f64::NAN,
            decision: Decision::Reject,
        },
        Some(ms) => {
            // NaN margins never reject (`NaN < t` is false): with no
            // runner-up there is no ambiguity evidence to threshold on.
            let decision = match plan.config().reject_margin {
                Some(threshold) if ms.margin < threshold => Decision::Reject,
                _ => Decision::Match(ms.best),
            };
            MatchResponse {
                query_id: query.id,
                subject_id: query.subject_id.clone(),
                best: Some(ms.best),
                best_id: Some(plan.known().subject_ids()[ms.best].clone()),
                score: ms.score,
                margin: ms.margin,
                decision,
            }
        }
    }
}

/// The degraded-policy path: wrap the query as a one-subject group and run
/// it through [`AttackPlan::run_with`], so serve's `Mask`/`Impute` handling
/// is the one-shot pipeline's, response included.
fn solo_degraded(plan: &mut AttackPlan, query: &Query) -> QueryResult {
    let data = Matrix::from_fn(query.values.len(), 1, |r, _| query.values[r]);
    let group = GroupMatrix::from_matrix(
        data,
        vec![query.subject_id.clone()],
        plan.known().n_regions(),
    )
    .map_err(|e| QueryError::Attack {
        message: e.to_string(),
    })?;
    let n_features = plan.config().n_features;
    let outcome = plan
        .run_with(&group, n_features, MatchRule::Argmax)
        .map_err(|e| match e {
            CoreError::NonFiniteInput { n_non_finite, .. } => {
                QueryError::NonFinite { n_non_finite }
            }
            other => QueryError::Attack {
                message: other.to_string(),
            },
        })?;
    let p = outcome.predicted[0];
    let decision = outcome.decisions[0];
    if p == usize::MAX {
        Ok(MatchResponse {
            query_id: query.id,
            subject_id: query.subject_id.clone(),
            best: None,
            best_id: None,
            score: f64::NAN,
            margin: f64::NAN,
            decision,
        })
    } else {
        Ok(MatchResponse {
            query_id: query.id,
            subject_id: query.subject_id.clone(),
            best: Some(p),
            best_id: Some(plan.known().subject_ids()[p].clone()),
            score: outcome.similarity[(p, 0)],
            margin: outcome.match_margins()[0],
            decision,
        })
    }
}
