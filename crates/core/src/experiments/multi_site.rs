//! E8 — Table 2: effect of multi-site acquisition on identification.
//!
//! The paper simulates a second site by adding Gaussian noise (mean = the
//! signal mean, variance = a fraction of the signal variance) to every
//! session-2 time series, then running the standard attack. Table 2 sweeps
//! the fraction over 10/20/30% for both HCP and ADHD-200.

use crate::attack::{AttackConfig, AttackPlan};
use crate::Result;
use neurodeanon_connectome::{Connectome, GroupMatrix};
use neurodeanon_datasets::{AdhdCohort, HcpCohort, Session, Task};
use neurodeanon_fmri::noise::multi_site_noise;
use neurodeanon_linalg::{Matrix, Rng64};
use neurodeanon_ml::metrics::mean_std;

/// Table 2: identification accuracy per noise level.
#[derive(Debug, Clone)]
pub struct MultiSiteResult {
    /// Noise variance fractions swept (e.g. `[0.10, 0.20, 0.30]`).
    pub noise_fractions: Vec<f64>,
    /// HCP accuracy `(mean, std)` in percent per noise level.
    pub hcp: Vec<(f64, f64)>,
    /// ADHD accuracy `(mean, std)` in percent per noise level.
    pub adhd: Vec<(f64, f64)>,
}

/// Builds a session-2 group matrix for the HCP cohort with multi-site noise
/// injected into each subject's region time series.
fn hcp_noised_group(
    cohort: &HcpCohort,
    task: Task,
    fraction: f64,
    rng: &mut Rng64,
) -> Result<GroupMatrix> {
    let n = cohort.n_subjects();
    let n_regions = cohort.config().n_regions;
    let n_features = n_regions * (n_regions - 1) / 2;
    let mut data = Matrix::zeros(n_features, n);
    let mut ids = Vec::with_capacity(n);
    for s in 0..n {
        let mut ts = cohort.region_ts(s, task, Session::Two)?;
        multi_site_noise(&mut ts, fraction, rng)?;
        let c = Connectome::from_region_ts(&ts)?;
        data.set_col(s, &c.vectorize())?;
        ids.push(format!("{}/{}/RL-site2", cohort.subject_id(s), task.name()));
    }
    GroupMatrix::from_matrix(data, ids, n_regions).map_err(Into::into)
}

/// Same for the ADHD cohort (resting state only).
fn adhd_noised_group(cohort: &AdhdCohort, fraction: f64, rng: &mut Rng64) -> Result<GroupMatrix> {
    let n = cohort.n_subjects();
    let n_regions = cohort.config().n_regions;
    let n_features = n_regions * (n_regions - 1) / 2;
    let mut data = Matrix::zeros(n_features, n);
    let mut ids = Vec::with_capacity(n);
    for s in 0..n {
        let mut ts = cohort.region_ts(s, Session::Two)?;
        multi_site_noise(&mut ts, fraction, rng)?;
        let c = Connectome::from_region_ts(&ts)?;
        data.set_col(s, &c.vectorize())?;
        ids.push(format!("sub{s:04}/{}/RL-site2", cohort.groups()[s].label()));
    }
    GroupMatrix::from_matrix(data, ids, n_regions).map_err(Into::into)
}

/// Runs the Table 2 sweep. `n_repeats` controls how many independent noise
/// draws average into each cell.
pub fn multi_site_sweep(
    hcp: &HcpCohort,
    adhd: &AdhdCohort,
    noise_fractions: &[f64],
    n_repeats: usize,
    attack_config: AttackConfig,
    seed: u64,
) -> Result<MultiSiteResult> {
    let hcp_known = hcp.group_matrix(Task::Rest, Session::One)?;
    let adhd_all: Vec<usize> = (0..adhd.n_subjects()).collect();
    let adhd_known = adhd.group_matrix_for(&adhd_all, Session::One)?;
    // The known side is fixed across all noise fractions and repeats: one
    // prepared plan per cohort covers the whole Table 2 sweep.
    let mut hcp_plan = AttackPlan::prepare(hcp_known, attack_config.clone())?;
    let mut adhd_plan = AttackPlan::prepare(adhd_known, attack_config)?;
    let mut rng = Rng64::new(seed);

    let mut hcp_rows = Vec::new();
    let mut adhd_rows = Vec::new();
    for &fraction in noise_fractions {
        let mut hcp_accs = Vec::new();
        let mut adhd_accs = Vec::new();
        for _ in 0..n_repeats.max(1) {
            let hcp_anon = hcp_noised_group(hcp, Task::Rest, fraction, &mut rng)?;
            hcp_accs.push(hcp_plan.run_against(&hcp_anon)?.accuracy * 100.0);
            let adhd_anon = adhd_noised_group(adhd, fraction, &mut rng)?;
            adhd_accs.push(adhd_plan.run_against(&adhd_anon)?.accuracy * 100.0);
        }
        hcp_rows.push(mean_std(&hcp_accs)?);
        adhd_rows.push(mean_std(&adhd_accs)?);
    }
    Ok(MultiSiteResult {
        noise_fractions: noise_fractions.to_vec(),
        hcp: hcp_rows,
        adhd: adhd_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurodeanon_datasets::{AdhdCohortConfig, HcpCohortConfig};

    #[test]
    fn accuracy_decays_with_noise_but_stays_high_at_low_noise() {
        let hcp = HcpCohort::generate(HcpCohortConfig::small(10, 61)).unwrap();
        let adhd = AdhdCohort::generate(AdhdCohortConfig::small(6, 2, 62)).unwrap();
        let res = multi_site_sweep(
            &hcp,
            &adhd,
            &[0.1, 1.5],
            2,
            AttackConfig {
                n_features: 80,
                ..Default::default()
            },
            7,
        )
        .unwrap();
        // Low noise keeps identification strong (paper: > 90% at 10%).
        assert!(res.hcp[0].0 >= 80.0, "hcp @10%: {:?}", res.hcp[0]);
        assert!(res.adhd[0].0 >= 80.0, "adhd @10%: {:?}", res.adhd[0]);
        // Heavy noise degrades both.
        assert!(res.hcp[1].0 < res.hcp[0].0 + 1e-9, "{:?}", res.hcp);
        assert!(res.adhd[1].0 < res.adhd[0].0 + 1e-9, "{:?}", res.adhd);
    }
}
