//! E10 — Figure 4 ablation: what each preprocessing stage buys the attack.
//!
//! This is the only experiment that exercises the full voxel-level path:
//! latent region signals → synthetic scanner (artifacts injected) →
//! preprocessing pipeline → region averaging → connectomes → attack.
//!
//! The design is *targeted*: each row injects exactly one artifact class
//! and compares identification accuracy with the matching pipeline stage
//! off vs on (all other artifacts absent, all other stages off). This
//! isolates every stage's contribution; a monolithic full-vs-none
//! comparison confounds stage interactions (e.g. band-pass trades effective
//! sample count against artifact removal). A final `combined` row reports
//! the all-artifacts / full-pipeline numbers for reference.

use crate::attack::{AttackConfig, DeanonAttack};
use crate::Result;
use neurodeanon_atlas::{grown_atlas, Parcellation, VoxelGrid};
use neurodeanon_connectome::{Connectome, GroupMatrix};
use neurodeanon_datasets::{HcpCohort, HcpCohortConfig, Session, Task};
use neurodeanon_fmri::scanner::{Scanner, ScannerConfig};
use neurodeanon_linalg::{Matrix, Rng64};
use neurodeanon_preprocess::{Pipeline, PipelineConfig};

/// One ablation row: an artifact class with accuracy before/after the
/// matching cleaning stage.
#[derive(Debug, Clone)]
pub struct PreprocessAblationRow {
    /// Artifact / stage pair label (e.g. `"drift<->detrend"`).
    pub variant: String,
    /// Accuracy with the cleaning stage disabled.
    pub accuracy_raw: f64,
    /// Accuracy with the cleaning stage enabled.
    pub accuracy_cleaned: f64,
}

/// Scale knobs for the ablation.
#[derive(Debug, Clone)]
pub struct PreprocessAblationConfig {
    /// Subjects in the mini-cohort.
    pub n_subjects: usize,
    /// Voxel grid edge (cube).
    pub grid_edge: usize,
    /// Atlas regions grown on the grid.
    pub n_regions: usize,
    /// Time points per scan.
    pub n_timepoints: usize,
    /// Leverage features for the attack.
    pub n_features: usize,
    /// Scanner-noise repetitions averaged into each accuracy (the cohorts
    /// are small, so single-draw accuracies are quantized to 1/n).
    pub n_repeats: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for PreprocessAblationConfig {
    fn default() -> Self {
        PreprocessAblationConfig {
            n_subjects: 10,
            grid_edge: 12,
            n_regions: 16,
            n_timepoints: 600,
            n_features: 60,
            n_repeats: 3,
            seed: 0xf164,
        }
    }
}

/// A minimal pipeline with only z-scoring (the connectome construction
/// baseline every variant shares).
fn base_pipeline() -> PipelineConfig {
    PipelineConfig {
        zscore: true,
        ..PipelineConfig::none()
    }
}

/// The targeted artifact ↔ stage pairs.
///
/// Each entry: `(label, scanner with only that artifact, pipeline with the
/// matching stage enabled for the "cleaned" arm)`.
pub fn ablation_pairs() -> Vec<(String, ScannerConfig, PipelineConfig)> {
    let quiet = ScannerConfig {
        voxel_noise: 0.25,
        anatomy_contrast: 4.0,
        ..ScannerConfig::clean()
    };
    let mut pairs = Vec::new();

    let mut drift_scan = quiet.clone();
    drift_scan.drift_amplitude = 3.0;
    let mut detrend = base_pipeline();
    detrend.detrend_degree = Some(2);
    pairs.push(("drift<->detrend".to_string(), drift_scan, detrend));

    let mut global_scan = quiet.clone();
    global_scan.global_signal = 2.0;
    let mut gsr = base_pipeline();
    gsr.gsr = true;
    pairs.push(("global-signal<->gsr".to_string(), global_scan, gsr));

    let mut resp_scan = quiet.clone();
    resp_scan.respiration = 3.0;
    let mut bandpass = base_pipeline();
    bandpass.bandpass = Some(neurodeanon_preprocess::filter::Band::hcp_resting());
    pairs.push(("respiration<->bandpass".to_string(), resp_scan, bandpass));

    let mut spike_scan = quiet.clone();
    spike_scan.n_spikes = 14;
    spike_scan.spike_magnitude = 8.0;
    let mut scrub = base_pipeline();
    scrub.scrub_threshold = Some(4.0);
    pairs.push(("spikes<->scrub".to_string(), spike_scan, scrub));

    let mut motion_scan = quiet.clone();
    motion_scan.n_motion_events = 2;
    // Near-full-voxel displacement: boundary voxels pick up wrong-region
    // signal, which region averaging does NOT wash out.
    motion_scan.motion_blend = 0.9;
    let mut realign = base_pipeline();
    realign.motion_correct = true;
    pairs.push(("motion<->realign".to_string(), motion_scan, realign));

    pairs
}

/// Builds the voxel-level group matrix for one session through a pipeline.
fn group_through_pipeline(
    cohort: &HcpCohort,
    parcellation: &Parcellation,
    scanner: &Scanner,
    pipeline: &Pipeline,
    session: Session,
    seed: u64,
) -> Result<GroupMatrix> {
    let n = cohort.n_subjects();
    let n_regions = parcellation.n_regions();
    let n_features = n_regions * (n_regions - 1) / 2;
    let mut data = Matrix::zeros(n_features, n);
    let mut ids = Vec::with_capacity(n);
    for s in 0..n {
        let latent = cohort.region_ts(s, Task::Rest, session)?;
        // Scanner noise must be identical across pipeline arms so the
        // comparison isolates the stage: seed by (subject, session).
        let mut rng = Rng64::new(seed ^ ((s as u64) << 8 | session.index()));
        let vol = scanner.acquire(&latent, parcellation, &mut rng)?;
        let (clean, _report) = pipeline.run(vol, parcellation)?;
        let c = Connectome::from_region_ts(&clean)?;
        data.set_col(s, &c.vectorize())?;
        ids.push(format!(
            "{}/REST/{}",
            cohort.subject_id(s),
            session.encoding()
        ));
    }
    GroupMatrix::from_matrix(data, ids, n_regions).map_err(Into::into)
}

fn accuracy_through(
    cohort: &HcpCohort,
    parcellation: &Parcellation,
    scanner: &Scanner,
    pipeline_cfg: PipelineConfig,
    attack: &DeanonAttack,
    seed: u64,
    n_repeats: usize,
) -> Result<f64> {
    let pipeline = Pipeline::new(pipeline_cfg);
    let mut acc = 0.0;
    for rep in 0..n_repeats.max(1) {
        // Vary the scanner-noise stream per repetition; the latent cohort
        // stays fixed so repetitions measure acquisition noise only.
        let rep_seed = seed ^ (0x5151 * (rep as u64 + 1));
        let known = group_through_pipeline(
            cohort,
            parcellation,
            scanner,
            &pipeline,
            Session::One,
            rep_seed,
        )?;
        let anon = group_through_pipeline(
            cohort,
            parcellation,
            scanner,
            &pipeline,
            Session::Two,
            rep_seed,
        )?;
        acc += attack.run(&known, &anon)?.accuracy;
    }
    Ok(acc / n_repeats.max(1) as f64)
}

/// Runs the full ablation: one row per artifact ↔ stage pair, plus a
/// `combined` row (all artifacts, full pipeline vs bare z-scoring).
pub fn preprocess_ablation(
    config: &PreprocessAblationConfig,
) -> Result<Vec<PreprocessAblationRow>> {
    let grid = VoxelGrid::new(config.grid_edge, config.grid_edge, config.grid_edge)?;
    let parcellation = grown_atlas("ablation", grid, config.n_regions, config.seed)?;
    let cohort = HcpCohort::generate(HcpCohortConfig {
        n_subjects: config.n_subjects,
        n_regions: config.n_regions,
        n_timepoints: config.n_timepoints,
        n_pop_factors: 10,
        n_task_factors: 5,
        n_sig_factors: 3,
        n_sig_regions: (config.n_regions / 3).max(2),
        noise_std: 0.6,
        session_strength: 0.1,
        signature_gain: 1.6,
        signature_instability: 0.4,
        seed: config.seed,
        scrub_fd_threshold: None,
    })?;
    let attack = DeanonAttack::new(AttackConfig {
        n_features: config.n_features,
        ..Default::default()
    })?;

    let mut rows = Vec::new();
    for (label, scan_cfg, stage_cfg) in ablation_pairs() {
        let scanner = Scanner::new(scan_cfg)?;
        let raw = accuracy_through(
            &cohort,
            &parcellation,
            &scanner,
            base_pipeline(),
            &attack,
            config.seed,
            config.n_repeats,
        )?;
        let cleaned = accuracy_through(
            &cohort,
            &parcellation,
            &scanner,
            stage_cfg,
            &attack,
            config.seed,
            config.n_repeats,
        )?;
        rows.push(PreprocessAblationRow {
            variant: label,
            accuracy_raw: raw,
            accuracy_cleaned: cleaned,
        });
    }

    // Combined row: every artifact on, full pipeline vs bare z-score.
    let scanner = Scanner::new(ScannerConfig {
        drift_amplitude: 3.0,
        global_signal: 2.0,
        respiration: 2.0,
        n_spikes: 8,
        spike_magnitude: 6.0,
        n_motion_events: 2,
        motion_blend: 0.9,
        ..ScannerConfig::default()
    })?;
    let raw = accuracy_through(
        &cohort,
        &parcellation,
        &scanner,
        base_pipeline(),
        &attack,
        config.seed,
        config.n_repeats,
    )?;
    let cleaned = accuracy_through(
        &cohort,
        &parcellation,
        &scanner,
        PipelineConfig::default(),
        &attack,
        config.seed,
        config.n_repeats,
    )?;
    rows.push(PreprocessAblationRow {
        variant: "combined".to_string(),
        accuracy_raw: raw,
        accuracy_cleaned: cleaned,
    });
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_stage_recovers_its_artifact() {
        let cfg = PreprocessAblationConfig {
            n_subjects: 8,
            grid_edge: 12,
            n_regions: 16,
            n_timepoints: 600,
            n_features: 60,
            ..Default::default()
        };
        let rows = preprocess_ablation(&cfg).unwrap();
        assert_eq!(rows.len(), 6);
        for row in &rows {
            // Cleaning must never hurt much, and for the potent artifact
            // classes it must strictly help.
            assert!(
                row.accuracy_cleaned + 0.15 >= row.accuracy_raw,
                "{}: cleaned {} < raw {}",
                row.variant,
                row.accuracy_cleaned,
                row.accuracy_raw
            );
        }
        let gain = |label: &str| {
            let r = rows.iter().find(|r| r.variant.starts_with(label)).unwrap();
            r.accuracy_cleaned - r.accuracy_raw
        };
        assert!(gain("drift") > 0.15, "drift gain {}", gain("drift"));
        assert!(gain("global") > 0.15, "gsr gain {}", gain("global"));
        assert!(
            gain("respiration") > 0.05,
            "respiration gain {}",
            gain("respiration")
        );
        assert!(gain("spikes") >= 0.0, "spikes gain {}", gain("spikes"));
        assert!(gain("motion") >= 0.0, "motion gain {}", gain("motion"));
        assert!(
            gain("combined") >= 0.0,
            "combined gain {}",
            gain("combined")
        );
        // Seven rows now: five targeted pairs + combined.
    }
}
