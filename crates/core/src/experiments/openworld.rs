//! Open-world evaluation: enrollment-rate sweep with impostor queries,
//! CMC curves, rank-k accuracy, and ROC/DET operating points over a
//! rejection-threshold sweep.
//!
//! The paper's protocol (and every other experiment in this crate) is
//! closed-world — the query subject is always enrolled in the gallery.
//! This sweep measures the attack as an *open-set* recognizer: for each
//! enrollment rate, only that fraction of the cohort is enrolled
//! ([`crate::splits::enrollment_split`]), every subject queries anyway, and
//! the margin-thresholded decision layer ([`crate::matching::decide`]) must
//! identify the genuine queries while rejecting the impostors. Standard
//! open-set identification metrics apply:
//!
//! * **CMC** (cumulative match characteristic): `cmc[k]` = fraction of
//!   genuine queries whose true gallery subject ranks within the top
//!   `k + 1` similarity scores. `cmc[0]` is rank-1 accuracy and equals the
//!   closed-world [`matching_accuracy`](crate::matching::matching_accuracy)
//!   of the argmax predictions exactly.
//! * **TPIR / FPIR** (true/false positive identification rate): at a given
//!   threshold, the fraction of genuine queries accepted *and* correctly
//!   identified, and the fraction of impostor queries wrongly accepted.
//!   `(FPIR, FNIR = 1 − TPIR)` pairs are the DET operating points.

use crate::attack::{AttackConfig, AttackPlan};
use crate::matching::{decide, match_scores, Decision};
use crate::splits::enrollment_split;
use crate::Result;
use neurodeanon_datasets::{HcpCohort, Session, Task};
use neurodeanon_linalg::Matrix;

/// Rank of the true gallery subject in column `j` of the similarity
/// matrix, 1-based, with the same first-max-wins tie convention as
/// [`crate::matching::argmax_matching`]: ties ahead of the truth (lower
/// row index, equal score) outrank it. `None` when the true score is not
/// finite (the subject can never be retrieved at any rank).
fn rank_of_truth(similarity: &Matrix, j: usize, truth_row: usize) -> Option<usize> {
    let s_true = similarity[(truth_row, j)];
    if s_true.is_nan() {
        return None;
    }
    let mut rank = 1usize;
    for i in 0..similarity.rows() {
        if i == truth_row {
            continue;
        }
        let v = similarity[(i, j)];
        if v.is_nan() {
            continue;
        }
        if v > s_true || (v == s_true && i < truth_row) {
            rank += 1;
        }
    }
    Some(rank)
}

/// The cumulative match characteristic over the genuine (enrolled) queries
/// of a similarity matrix: `cmc[k]` = fraction of genuine queries whose
/// truth ranks ≤ `k + 1`. The curve has one entry per gallery subject, is
/// monotone non-decreasing, and its last entry is the closed-set hit rate
/// (1.0 whenever every genuine query's true score is finite).
pub fn cmc_curve(similarity: &Matrix, truth: &[usize]) -> Result<Vec<f64>> {
    if truth.len() != similarity.cols() {
        return Err(crate::CoreError::InvalidParameter {
            name: "truth",
            reason: "truth length must equal the similarity column count",
        });
    }
    let genuine: Vec<usize> = (0..truth.len())
        .filter(|&j| truth[j] != usize::MAX)
        .collect();
    if genuine.is_empty() {
        return Err(crate::CoreError::InvalidParameter {
            name: "truth",
            reason: "CMC needs at least one genuine (enrolled) query",
        });
    }
    let n_ranks = similarity.rows();
    let mut hits_at = vec![0usize; n_ranks];
    for &j in &genuine {
        if let Some(rank) = rank_of_truth(similarity, j, truth[j]) {
            // rank is within 1..=n_ranks by construction.
            hits_at[rank - 1] += 1;
        }
    }
    let mut cum = 0usize;
    Ok(hits_at
        .iter()
        .map(|&h| {
            cum += h;
            cum as f64 / genuine.len() as f64
        })
        .collect())
}

/// One ROC/DET operating point of the open-world decision layer.
#[derive(Debug, Clone, Copy)]
pub struct RocPoint {
    /// The margin threshold this point was measured at.
    pub threshold: f64,
    /// True positive identification rate: genuine queries accepted *and*
    /// correctly identified, over all genuine queries.
    pub tpir: f64,
    /// False positive identification rate: impostor queries wrongly
    /// accepted, over all impostor queries (`NaN` when the split has no
    /// impostors — the closed-world corner).
    pub fpir: f64,
    /// False negative identification rate, `1 − tpir` (the DET y-axis).
    pub fnir: f64,
}

/// Sweeps the rejection threshold over a similarity matrix, producing one
/// ROC/DET point per threshold. Both TPIR and FPIR are weakly decreasing
/// in the threshold: raising the bar only ever converts acceptances into
/// rejections.
pub fn roc_curve(
    similarity: &Matrix,
    truth: &[usize],
    thresholds: &[f64],
) -> Result<Vec<RocPoint>> {
    if truth.len() != similarity.cols() {
        return Err(crate::CoreError::InvalidParameter {
            name: "truth",
            reason: "truth length must equal the similarity column count",
        });
    }
    let scores = match_scores(similarity)?;
    let n_genuine = truth.iter().filter(|&&t| t != usize::MAX).count();
    let n_impostor = truth.len() - n_genuine;
    if n_genuine == 0 {
        return Err(crate::CoreError::InvalidParameter {
            name: "truth",
            reason: "ROC needs at least one genuine (enrolled) query",
        });
    }
    Ok(thresholds
        .iter()
        .map(|&threshold| {
            let decisions = decide(&scores, threshold);
            let mut true_accepts = 0usize;
            let mut false_accepts = 0usize;
            for (j, d) in decisions.iter().enumerate() {
                match (*d, truth[j]) {
                    (Decision::Match(p), t) if t != usize::MAX && p == t => true_accepts += 1,
                    (Decision::Match(_), t) if t == usize::MAX => false_accepts += 1,
                    _ => {}
                }
            }
            let tpir = true_accepts as f64 / n_genuine as f64;
            let fpir = if n_impostor == 0 {
                f64::NAN
            } else {
                false_accepts as f64 / n_impostor as f64
            };
            RocPoint {
                threshold,
                tpir,
                fpir,
                fnir: 1.0 - tpir,
            }
        })
        .collect())
}

/// Open-world measurements at one enrollment rate.
#[derive(Debug, Clone)]
pub struct OpenWorldResult {
    /// Fraction of query subjects enrolled in the gallery.
    pub enroll_rate: f64,
    /// Gallery size after the split.
    pub n_enrolled: usize,
    /// Impostor query count.
    pub n_impostors: usize,
    /// CMC curve over the genuine queries (one entry per gallery subject).
    pub cmc: Vec<f64>,
    /// Rank-1 identification accuracy (`cmc[0]`); bit-identical to the
    /// attack's closed-world accuracy over the enrolled queries.
    pub rank1_accuracy: f64,
    /// ROC/DET operating points, one per swept threshold.
    pub roc: Vec<RocPoint>,
}

/// The full sweep: per-rate open-world results plus the historical
/// closed-world baseline the rate-1.0 row must collapse onto.
#[derive(Debug, Clone)]
pub struct OpenWorldSweep {
    /// Closed-world accuracy of the full-gallery attack (the pre-existing
    /// protocol, no split, no rejection).
    pub baseline_accuracy: f64,
    /// One result per requested enrollment rate, in input order.
    pub results: Vec<OpenWorldResult>,
}

/// Runs the open-world sweep on the cohort's rest/rest release pair: for
/// each enrollment rate, a seeded split enrolls that fraction of subjects
/// into the gallery (`REST1` side), **every** subject queries with their
/// `REST2` connectome, and CMC plus a threshold-swept ROC are measured.
///
/// The split (and therefore every downstream number) is a pure function of
/// `(n_subjects, rate, seed)` — bit-identical at any thread count — and at
/// `enroll_rate = 1.0` the gallery is the identity selection, so the
/// rank-1 accuracy reproduces `baseline_accuracy` bit-for-bit.
pub fn openworld_sweep(
    cohort: &HcpCohort,
    enroll_rates: &[f64],
    thresholds: &[f64],
    seed: u64,
) -> Result<OpenWorldSweep> {
    let known = cohort.group_matrix(Task::Rest, Session::One)?;
    let anon = cohort.group_matrix(Task::Rest, Session::Two)?;
    let baseline_accuracy = AttackPlan::prepare(known.clone(), AttackConfig::default())?
        .run_against(&anon)?
        .accuracy;

    let mut results = Vec::with_capacity(enroll_rates.len());
    for &rate in enroll_rates {
        let split = enrollment_split(known.n_subjects(), rate, seed)?;
        let gallery = split.gallery(&known)?;
        // One factorization per gallery; the threshold sweep reuses the
        // similarity matrix, not the plan, so this is the only SVD.
        let mut plan = AttackPlan::prepare(gallery, AttackConfig::default())?;
        let out = plan.run_against(&anon)?;
        let cmc = cmc_curve(&out.similarity, &out.truth)?;
        let roc = roc_curve(&out.similarity, &out.truth, thresholds)?;
        results.push(OpenWorldResult {
            enroll_rate: rate,
            n_enrolled: split.enrolled().len(),
            n_impostors: split.impostors().len(),
            rank1_accuracy: cmc[0],
            cmc,
            roc,
        });
    }
    Ok(OpenWorldSweep {
        baseline_accuracy,
        results,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::{argmax_matching, matching_accuracy};
    use neurodeanon_datasets::HcpCohortConfig;

    fn cohort() -> HcpCohort {
        HcpCohort::generate(HcpCohortConfig::small(10, 31)).unwrap()
    }

    #[test]
    fn cmc_is_monotone_and_ends_at_one_on_finite_scores() {
        let s = Matrix::from_fn(6, 9, |i, j| (((i * 11 + j * 7) % 13) as f64) / 13.0);
        let truth: Vec<usize> = (0..9).map(|j| j % 6).collect();
        let cmc = cmc_curve(&s, &truth).unwrap();
        assert_eq!(cmc.len(), 6);
        for w in cmc.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(cmc[5], 1.0);
    }

    #[test]
    fn rank1_equals_argmax_accuracy() {
        let s = Matrix::from_fn(7, 7, |i, j| (((i * 5 + j * 9) % 17) as f64) / 17.0);
        let truth: Vec<usize> = (0..7).collect();
        let cmc = cmc_curve(&s, &truth).unwrap();
        let acc = matching_accuracy(&argmax_matching(&s).unwrap(), &truth).unwrap();
        assert_eq!(cmc[0].to_bits(), acc.to_bits());
    }

    #[test]
    fn rank_handles_ties_first_max_wins() {
        // Column 0: rows 0 and 1 tie at the top; truth row 1 is outranked
        // by the earlier row, so its rank is 2 (argmax would miss it too).
        let s = Matrix::from_rows(&[&[0.9, 0.1], &[0.9, 0.8], &[0.2, 0.3]]).unwrap();
        assert_eq!(rank_of_truth(&s, 0, 1), Some(2));
        assert_eq!(rank_of_truth(&s, 0, 0), Some(1));
        assert_eq!(rank_of_truth(&s, 1, 1), Some(1));
    }

    #[test]
    fn cmc_counts_unretrievable_truth_as_never_hit() {
        let mut s = Matrix::from_fn(3, 3, |i, j| ((i + 2 * j) % 4) as f64 * 0.2);
        // Query 1's true score is NaN: retrievable at no rank.
        s[(1, 1)] = f64::NAN;
        let truth = vec![0, 1, 2];
        let cmc = cmc_curve(&s, &truth).unwrap();
        assert!(cmc[2] < 1.0);
        assert!((cmc[2] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cmc_validations() {
        let s = Matrix::from_fn(2, 2, |_, _| 0.5);
        assert!(cmc_curve(&s, &[0]).is_err());
        assert!(cmc_curve(&s, &[usize::MAX, usize::MAX]).is_err());
    }

    #[test]
    fn roc_is_monotone_in_threshold() {
        let s = Matrix::from_fn(5, 8, |i, j| (((i * 3 + j * 11) % 19) as f64) / 19.0);
        // Half the queries are impostors.
        let truth: Vec<usize> = (0..8)
            .map(|j| if j % 2 == 0 { j % 5 } else { usize::MAX })
            .collect();
        let roc = roc_curve(&s, &truth, &[0.0, 0.02, 0.05, 0.1, 0.5, 2.0]).unwrap();
        for w in roc.windows(2) {
            assert!(w[1].tpir <= w[0].tpir);
            assert!(w[1].fpir <= w[0].fpir);
            assert!((w[0].fnir - (1.0 - w[0].tpir)).abs() < 1e-15);
        }
        // An impossible threshold rejects everything.
        assert_eq!(roc.last().unwrap().tpir, 0.0);
        assert_eq!(roc.last().unwrap().fpir, 0.0);
    }

    #[test]
    fn roc_fpir_is_nan_without_impostors() {
        let s = Matrix::from_fn(3, 3, |i, j| ((i * 2 + j) % 5) as f64 * 0.1);
        let truth = vec![0, 1, 2];
        let roc = roc_curve(&s, &truth, &[0.0]).unwrap();
        assert!(roc[0].fpir.is_nan());
        assert!(roc[0].tpir.is_finite());
    }

    #[test]
    fn sweep_covers_rates_and_collapses_at_full_enrollment() {
        let c = cohort();
        let sweep = openworld_sweep(&c, &[0.5, 1.0], &[0.0, 0.05, 0.2], 77).unwrap();
        assert_eq!(sweep.results.len(), 2);
        let half = &sweep.results[0];
        assert_eq!(half.n_enrolled, 5);
        assert_eq!(half.n_impostors, 5);
        assert_eq!(half.cmc.len(), 5);
        assert_eq!(half.roc.len(), 3);
        let full = &sweep.results[1];
        assert_eq!(full.n_impostors, 0);
        // The acceptance criterion: full enrollment reproduces the
        // closed-world accuracy bit-for-bit.
        assert_eq!(
            full.rank1_accuracy.to_bits(),
            sweep.baseline_accuracy.to_bits()
        );
    }

    #[test]
    fn impostors_score_lower_than_genuine_queries() {
        // The identification signal must actually separate the two
        // populations: at a moderate threshold, TPIR should exceed FPIR.
        let c = cohort();
        let sweep = openworld_sweep(&c, &[0.5], &[0.1], 77).unwrap();
        let p = sweep.results[0].roc[0];
        assert!(
            p.tpir > p.fpir,
            "no genuine/impostor separation: tpir {} fpir {}",
            p.tpir,
            p.fpir
        );
    }
}
