//! E1 / E2 — Figures 1 and 2: pairwise similarity matrices of resting-state
//! and task connectomes across the two sessions, with diagonal-dominance
//! statistics and identification accuracy.

use crate::attack::{AttackConfig, DeanonAttack};
use crate::Result;
use neurodeanon_datasets::{HcpCohort, Session, Task};
use neurodeanon_linalg::Matrix;

/// Result of a similarity-matrix experiment.
#[derive(Debug, Clone)]
pub struct SimilarityResult {
    /// The condition examined.
    pub task: Task,
    /// Known × anonymous similarity matrix (the figure's heat map).
    pub similarity: Matrix,
    /// Mean same-subject (diagonal) similarity.
    pub mean_diagonal: f64,
    /// Mean different-subject (off-diagonal) similarity.
    pub mean_offdiagonal: f64,
    /// Identification accuracy.
    pub accuracy: f64,
}

impl SimilarityResult {
    /// Diagonal-to-off-diagonal contrast (the visual strength of the
    /// figure's diagonal; Figure 2's contrast is weaker than Figure 1's).
    pub fn contrast(&self) -> f64 {
        self.mean_diagonal - self.mean_offdiagonal
    }
}

/// Runs the session-1 → session-2 similarity experiment for one condition.
///
/// Figure 1 is `task = Task::Rest`; Figure 2 is `task = Task::Language`.
pub fn similarity_experiment(
    cohort: &HcpCohort,
    task: Task,
    attack_config: AttackConfig,
) -> Result<SimilarityResult> {
    let known = cohort.group_matrix(task, Session::One)?;
    let anon = cohort.group_matrix(task, Session::Two)?;
    let attack = DeanonAttack::new(attack_config)?;
    let out = attack.run(&known, &anon)?;
    Ok(SimilarityResult {
        task,
        mean_diagonal: out.mean_diagonal_similarity(),
        mean_offdiagonal: out.mean_offdiagonal_similarity(),
        accuracy: out.accuracy,
        similarity: out.similarity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurodeanon_datasets::HcpCohortConfig;

    #[test]
    fn rest_diagonal_dominates_and_beats_task_contrast() {
        let cohort = HcpCohort::generate(HcpCohortConfig::small(10, 21)).unwrap();
        let rest = similarity_experiment(&cohort, Task::Rest, AttackConfig::default()).unwrap();
        let lang = similarity_experiment(&cohort, Task::Language, AttackConfig::default()).unwrap();
        // Figure 1: strong diagonal at rest.
        assert!(rest.mean_diagonal > rest.mean_offdiagonal, "rest contrast");
        assert!(rest.contrast() > 0.15, "rest contrast {}", rest.contrast());
        // Figure 2 vs 1: the task contrast is weaker than at rest.
        assert!(
            lang.contrast() < rest.contrast(),
            "lang {} vs rest {}",
            lang.contrast(),
            rest.contrast()
        );
        // Both conditions still identify most subjects on a small cohort.
        assert!(rest.accuracy >= 0.8, "rest accuracy {}", rest.accuracy);
        assert_eq!(rest.similarity.shape(), (10, 10));
    }
}
