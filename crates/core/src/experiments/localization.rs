//! Signature localization: the spatial-restriction phenomenon the paper
//! inherits from Finn et al. ("when restricting the analysis to the
//! parieto-frontal region, the accuracy of identification is close to
//! 100%", §2) and relies on for its defense argument (§4).
//!
//! In the synthetic cohorts the signature support is known ground truth, so
//! the experiment can measure identification with the feature space
//! restricted to (a) edges inside the signature support, (b) edges entirely
//! outside it, and (c) the unrestricted attack — showing that identity
//! lives in a small, localizable set of edges.

use crate::attack::match_with_features;
use crate::Result;
use neurodeanon_connectome::EdgeIndex;
use neurodeanon_datasets::{HcpCohort, Session, Task};
use neurodeanon_sampling::principal_features;

/// Identification accuracy under each feature-space restriction.
#[derive(Debug, Clone)]
pub struct LocalizationResult {
    /// Accuracy with features restricted to signature-region pairs.
    pub signature_only: f64,
    /// Accuracy with features restricted to pairs fully outside the
    /// signature support.
    pub outside_only: f64,
    /// Accuracy of the unrestricted (standard) attack.
    pub unrestricted: f64,
    /// Number of signature-pair features available.
    pub n_signature_features: usize,
}

/// Runs the localization experiment on a cohort's resting sessions.
///
/// Within each restriction, the usual top-`t` leverage selection runs on
/// the restricted feature set, so all three conditions use the attack's
/// real machinery — only the candidate pool differs.
pub fn signature_localization(cohort: &HcpCohort, t: usize) -> Result<LocalizationResult> {
    let known = cohort.group_matrix(Task::Rest, Session::One)?;
    let anon = cohort.group_matrix(Task::Rest, Session::Two)?;
    let edges = EdgeIndex::new(cohort.config().n_regions)?;
    let sig: std::collections::HashSet<usize> =
        cohort.signature_regions().iter().copied().collect();

    let mut sig_features = Vec::new();
    let mut outside_features = Vec::new();
    for (f, (i, j)) in edges.iter().enumerate() {
        if sig.contains(&i) && sig.contains(&j) {
            sig_features.push(f);
        } else if !sig.contains(&i) && !sig.contains(&j) {
            outside_features.push(f);
        }
    }

    let accuracy_within = |pool: &[usize]| -> Result<f64> {
        let known_pool = known.select_features(pool)?;
        let anon_pool = anon.select_features(pool)?;
        let keep = t.min(known_pool.n_features());
        let pf = principal_features(known_pool.as_matrix(), keep.max(1), None)?;
        match_with_features(&known_pool, &anon_pool, &pf.indices)
    };

    let all: Vec<usize> = (0..known.n_features()).collect();
    Ok(LocalizationResult {
        signature_only: accuracy_within(&sig_features)?,
        outside_only: accuracy_within(&outside_features)?,
        unrestricted: accuracy_within(&all)?,
        n_signature_features: sig_features.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurodeanon_datasets::HcpCohortConfig;

    #[test]
    fn identity_lives_in_the_signature_edges() {
        let cohort = HcpCohort::generate(HcpCohortConfig::small(14, 91)).unwrap();
        let res = signature_localization(&cohort, 100).unwrap();
        // The restricted-to-signature attack matches the unrestricted one
        // (the paper's near-100% parieto-frontal result)…
        assert!(
            res.signature_only + 0.1 >= res.unrestricted,
            "signature-only {} vs unrestricted {}",
            res.signature_only,
            res.unrestricted
        );
        assert!(res.signature_only >= 0.8);
        // …while edges outside the signature carry much less identity.
        assert!(
            res.outside_only < res.signature_only,
            "outside {} vs signature {}",
            res.outside_only,
            res.signature_only
        );
        assert!(res.n_signature_features > 0);
    }
}
