//! E5 — Table 1: task-wise prediction error (nRMSE %) of task performance,
//! train and test, over repeated random splits.

use crate::performance::{predict_performance, PerfConfig};
use crate::Result;
use neurodeanon_datasets::{HcpCohort, Session, Task};

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct PerformanceTableRow {
    /// The task (Language, Emotion, Relational, Working Memory).
    pub task: Task,
    /// Train nRMSE `(mean, std)` in percent.
    pub train: (f64, f64),
    /// Test nRMSE `(mean, std)` in percent.
    pub test: (f64, f64),
}

/// Regenerates Table 1: one row per task with a performance metric.
pub fn performance_table(
    cohort: &HcpCohort,
    config: &PerfConfig,
) -> Result<Vec<PerformanceTableRow>> {
    let mut rows = Vec::new();
    for task in Task::ALL {
        if !task.has_performance_metric() {
            continue;
        }
        let group = cohort.group_matrix(task, Session::One)?;
        let targets = cohort.performance_vector(task)?;
        let out = predict_performance(&group, &targets, config)?;
        rows.push(PerformanceTableRow {
            task,
            train: out.train_summary(),
            test: out.test_summary(),
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurodeanon_datasets::HcpCohortConfig;

    #[test]
    fn table1_rows_within_paper_band() {
        let cohort = HcpCohort::generate(HcpCohortConfig::small(30, 99)).unwrap();
        let rows = performance_table(
            &cohort,
            &PerfConfig {
                n_repeats: 6,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(rows.len(), 4);
        let names: Vec<&str> = rows.iter().map(|r| r.task.name()).collect();
        assert_eq!(names, ["WM", "LANGUAGE", "RELATIONAL", "EMOTION"]);
        for row in &rows {
            // The paper's shape: train errors well under test errors, test
            // errors bounded. Absolute values are looser than the paper's
            // (synthetic feature-estimation noise is larger than real HCP
            // scans'); the paper-scale run in EXPERIMENTS.md records actuals.
            assert!(row.train.0 < 10.0, "{}: train {}", row.task, row.train.0);
            assert!(row.test.0 < 45.0, "{}: test {}", row.task, row.test.0);
            assert!(row.train.0 <= row.test.0 + 0.5, "{}: train>test", row.task);
        }
    }
}
