//! Experiment drivers: one module per table/figure of the paper's
//! evaluation (§3.3), as indexed in DESIGN.md §3.
//!
//! Every driver takes a scale configuration (cohort size, repetition count)
//! so the same code runs at paper scale from the `repro` binary and at
//! reduced scale from tests and Criterion benches.

pub mod ablations;
pub mod adhd;
pub mod block_perf;
pub mod cross_task;
pub mod defense_sweep;
pub mod localization;
pub mod multi_site;
pub mod openworld;
pub mod perf_table;
pub mod preprocess_ablation;
pub mod robustness;
pub mod similarity;
pub mod task_prediction;

pub use ablations::{
    ablation_atlas_granularity, ablation_feature_count, ablation_matching_rule,
    ablation_sampling_strategy,
};
pub use adhd::{adhd_experiment, AdhdExperimentResult};
pub use block_perf::{block_performance_experiment, BlockPerfResult};
pub use cross_task::{cross_task_matrix, CrossTaskResult};
pub use defense_sweep::{defense_sweep, DefenseSweepResult};
pub use localization::{signature_localization, LocalizationResult};
pub use multi_site::{multi_site_sweep, MultiSiteResult};
pub use openworld::{
    cmc_curve, openworld_sweep, roc_curve, OpenWorldResult, OpenWorldSweep, RocPoint,
};
pub use perf_table::{performance_table, PerformanceTableRow};
pub use preprocess_ablation::{preprocess_ablation, PreprocessAblationRow};
pub use robustness::{robustness_sweep, RobustnessPoint, RobustnessResult};
pub use similarity::{similarity_experiment, SimilarityResult};
pub use task_prediction::{task_prediction_experiment, TaskPredictionResult};
