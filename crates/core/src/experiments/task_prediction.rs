//! E4 — Figure 6 / §3.3.2: t-SNE task clustering and task prediction.
//!
//! Repeats the label-transfer protocol with fresh labeled-subject draws and
//! reports per-condition accuracy mean ± std (the paper: 100% on the seven
//! tasks, 99.01 ± 0.52% on rest, rest confused with gambling).

use crate::task_id::{identify_tasks_from_cloud, TaskIdConfig, TaskIdOutcome, TaskPointCloud};
use crate::Result;
use neurodeanon_connectome::GroupMatrix;
use neurodeanon_datasets::{HcpCohort, Session, Task};
use neurodeanon_ml::metrics::mean_std;

/// Aggregated task-prediction result.
#[derive(Debug, Clone)]
pub struct TaskPredictionResult {
    /// Conditions in index order.
    pub tasks: Vec<Task>,
    /// Per-condition accuracy `(mean, std)` over repetitions, percent.
    pub per_task_accuracy: Vec<(f64, f64)>,
    /// Overall accuracy `(mean, std)`, percent.
    pub overall_accuracy: (f64, f64),
    /// Count of rest points misclassified as each condition (summed over
    /// repetitions) — the paper's "rest is confused with gambling" check.
    pub rest_confusions: Vec<usize>,
    /// The final repetition's full outcome (for plotting the embedding).
    pub last_outcome: TaskIdOutcome,
}

/// Runs the Figure 6 experiment: embed all conditions × subjects, transfer
/// labels from `labeled_fraction` of subjects, repeat `n_repeats` times
/// with different labeled draws (t-SNE recomputed per repetition with a
/// fresh seed, as in the paper's 100 iterations).
pub fn task_prediction_experiment(
    cohort: &HcpCohort,
    config: &TaskIdConfig,
    n_repeats: usize,
) -> Result<TaskPredictionResult> {
    let tasks: Vec<Task> = Task::ALL.to_vec();
    let groups: Vec<GroupMatrix> = tasks
        .iter()
        .map(|&t| {
            cohort
                .group_matrix(t, Session::One)
                .map_err(crate::CoreError::from)
        })
        .collect::<Result<_>>()?;

    // The pairwise-distance computation dominates at paper scale (800
    // points × 64,620 features); build it once and reuse per repetition.
    let cloud = TaskPointCloud::build(&groups)?;
    let mut per_task: Vec<Vec<f64>> = vec![Vec::new(); tasks.len()];
    let mut overall: Vec<f64> = Vec::new();
    let mut rest_confusions = vec![0usize; tasks.len()];
    let mut last = None;
    for rep in 0..n_repeats.max(1) {
        let mut cfg = config.clone();
        cfg.seed = config.seed.wrapping_add(rep as u64);
        cfg.tsne.seed = config.tsne.seed.wrapping_add(rep as u64);
        let out = identify_tasks_from_cloud(&cloud, &cfg)?;
        overall.push(out.overall_accuracy * 100.0);
        for (t, &acc) in out.per_condition_accuracy.iter().enumerate() {
            if acc.is_finite() {
                per_task[t].push(acc * 100.0);
            }
        }
        // Count rest misclassifications by predicted condition.
        let rest_idx = Task::Rest.index();
        for (k, &point) in out.unlabeled_points.iter().enumerate() {
            if out.labels[point] == rest_idx && out.predicted[k] != rest_idx {
                rest_confusions[out.predicted[k]] += 1;
            }
        }
        last = Some(out);
    }
    Ok(TaskPredictionResult {
        tasks,
        per_task_accuracy: per_task
            .iter()
            .map(|v| mean_std(v).unwrap_or((f64::NAN, f64::NAN)))
            .collect(),
        overall_accuracy: mean_std(&overall).unwrap_or((f64::NAN, f64::NAN)),
        rest_confusions,
        last_outcome: last.expect("at least one repetition"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurodeanon_datasets::HcpCohortConfig;
    use neurodeanon_embedding::tsne::TsneConfig;

    #[test]
    fn tasks_cluster_and_predict_on_small_cohort() {
        let cohort = HcpCohort::generate(HcpCohortConfig::small(8, 55)).unwrap();
        let cfg = TaskIdConfig {
            tsne: TsneConfig {
                perplexity: 12.0,
                n_iter: 350,
                exaggeration_iters: 60,
                momentum_switch: 120,
                ..TsneConfig::default()
            },
            ..Default::default()
        };
        let res = task_prediction_experiment(&cohort, &cfg, 2).unwrap();
        let (overall, _) = res.overall_accuracy;
        assert!(overall > 70.0, "overall accuracy {overall}%");
        assert_eq!(res.per_task_accuracy.len(), 8);
        // The compact task conditions (strong task drive) should be
        // near-perfect; check the best few.
        let mut accs: Vec<f64> = res.per_task_accuracy.iter().map(|a| a.0).collect();
        accs.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert!(accs[0] > 90.0 && accs[2] > 80.0, "{accs:?}");
    }
}
