//! E3 — Figure 5: the 8 × 8 cross-task identification matrix.
//!
//! Rows are the de-anonymized conditions (session 1), columns the anonymous
//! conditions (session 2). Entry `(r, c)` is the accuracy of
//! de-anonymizing condition `c` given labels for condition `r`, with the
//! feature space selected from the row dataset (the paper's protocol, and
//! the source of the matrix's asymmetry).

use crate::attack::{AttackConfig, AttackPlan};
use crate::Result;
use neurodeanon_connectome::GroupMatrix;
use neurodeanon_datasets::{HcpCohort, Session, Task};

/// The Figure 5 accuracy matrix.
#[derive(Debug, Clone)]
pub struct CrossTaskResult {
    /// Conditions, in row/column order.
    pub tasks: Vec<Task>,
    /// `accuracy[r][c]` for de-anonymized row condition `r`, anonymous
    /// column condition `c`.
    pub accuracy: Vec<Vec<f64>>,
}

impl CrossTaskResult {
    /// Accuracy for a (row, column) condition pair.
    pub fn get(&self, row: Task, col: Task) -> f64 {
        self.accuracy[row.index()][col.index()]
    }

    /// Mean accuracy of one row (how much de-anonymizing this condition
    /// compromises all others — the paper's headline reading of Figure 5).
    pub fn row_mean(&self, row: Task) -> f64 {
        let r = &self.accuracy[row.index()];
        r.iter().sum::<f64>() / r.len() as f64
    }
}

/// Runs the full 8 × 8 sweep.
pub fn cross_task_matrix(
    cohort: &HcpCohort,
    attack_config: AttackConfig,
) -> Result<CrossTaskResult> {
    let tasks: Vec<Task> = Task::ALL.to_vec();
    // Materialize all 16 group matrices once.
    let known: Vec<GroupMatrix> = tasks
        .iter()
        .map(|&t| {
            cohort
                .group_matrix(t, Session::One)
                .map_err(crate::CoreError::from)
        })
        .collect::<Result<_>>()?;
    let anon: Vec<GroupMatrix> = tasks
        .iter()
        .map(|&t| {
            cohort
                .group_matrix(t, Session::Two)
                .map_err(crate::CoreError::from)
        })
        .collect::<Result<_>>()?;
    // Features come from the row (known) dataset, so each row shares one
    // prepared plan: 8 factorizations serve all 64 grid cells.
    let mut accuracy = vec![vec![0.0; tasks.len()]; tasks.len()];
    for (r, kg) in known.into_iter().enumerate() {
        let mut plan = AttackPlan::prepare(kg, attack_config.clone())?;
        for (c, ag) in anon.iter().enumerate() {
            accuracy[r][c] = plan.run_against(ag)?.accuracy;
        }
    }
    Ok(CrossTaskResult { tasks, accuracy })
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurodeanon_datasets::HcpCohortConfig;

    #[test]
    fn figure5_shape_holds_on_small_cohort() {
        let cohort = HcpCohort::generate(HcpCohortConfig::small(10, 33)).unwrap();
        let res = cross_task_matrix(&cohort, AttackConfig::default()).unwrap();
        assert_eq!(res.accuracy.len(), 8);

        // Diagonal dominance: same-condition matching is easiest on average.
        let diag_mean: f64 = (0..8).map(|i| res.accuracy[i][i]).sum::<f64>() / 8.0;
        let off_mean: f64 = (0..8)
            .flat_map(|i| (0..8).filter(move |&j| j != i).map(move |j| (i, j)))
            .map(|(i, j)| res.accuracy[i][j])
            .sum::<f64>()
            / 56.0;
        assert!(diag_mean > off_mean, "diag {diag_mean} off {off_mean}");

        // REST row is the strongest row; MOTOR and WM rows the weakest —
        // the paper's central Figure 5 finding.
        let rest_mean = res.row_mean(Task::Rest);
        let motor_mean = res.row_mean(Task::Motor);
        let wm_mean = res.row_mean(Task::WorkingMemory);
        for t in Task::ALL {
            assert!(
                res.row_mean(t) <= rest_mean + 1e-9,
                "{t} row mean exceeds REST"
            );
        }
        assert!(
            motor_mean < rest_mean,
            "motor {motor_mean} rest {rest_mean}"
        );
        assert!(wm_mean < rest_mean, "wm {wm_mean} rest {rest_mean}");

        // REST-REST is the single best cell (≥ 90% on a 10-subject cohort).
        assert!(res.get(Task::Rest, Task::Rest) >= 0.9);
    }
}
