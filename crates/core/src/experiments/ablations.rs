//! Ablation studies for the design choices DESIGN.md §4 calls out:
//! sampling strategy, retained-feature count, matching rule, and atlas
//! granularity.

use crate::attack::{match_with_features, AttackConfig, AttackPlan, MatchRule};
use crate::Result;
use neurodeanon_connectome::GroupMatrix;
use neurodeanon_datasets::{HcpCohort, HcpCohortConfig, Session, Task};
use neurodeanon_linalg::Rng64;
use neurodeanon_sampling::{principal_features, row_sample, SamplingDistribution};

/// Accuracy of the attack when features are chosen by the given strategy.
#[derive(Debug, Clone)]
pub struct SamplingAblationRow {
    /// Strategy label.
    pub strategy: String,
    /// Rest-rest identification accuracy.
    pub accuracy: f64,
}

/// Compares deterministic top-t leverage (the paper's method) against
/// randomized leverage / ℓ₂ / uniform sampling of the same feature budget.
pub fn ablation_sampling_strategy(
    cohort: &HcpCohort,
    n_features: usize,
    seed: u64,
) -> Result<Vec<SamplingAblationRow>> {
    let known = cohort.group_matrix(Task::Rest, Session::One)?;
    let anon = cohort.group_matrix(Task::Rest, Session::Two)?;
    let mut rng = Rng64::new(seed);
    let mut rows = Vec::new();

    // Deterministic top-t leverage (the paper's principal features).
    let pf = principal_features(known.as_matrix(), n_features, None)?;
    rows.push(SamplingAblationRow {
        strategy: "deterministic-leverage".to_string(),
        accuracy: match_with_features(&known, &anon, &pf.indices)?,
    });
    // Randomized strategies: sample with replacement, dedup, keep order.
    for (label, dist) in [
        ("randomized-leverage", SamplingDistribution::Leverage),
        ("l2-norm", SamplingDistribution::L2Norm),
        ("uniform", SamplingDistribution::Uniform),
    ] {
        let sample = row_sample(known.as_matrix(), n_features, dist, &mut rng)?;
        let mut idx = sample.indices.clone();
        idx.sort_unstable();
        idx.dedup();
        rows.push(SamplingAblationRow {
            strategy: label.to_string(),
            accuracy: match_with_features(&known, &anon, &idx)?,
        });
    }
    Ok(rows)
}

/// Accuracy as a function of the retained-feature count `t` (the paper's
/// claim: < 100 of 64,620 rows suffice).
pub fn ablation_feature_count(
    cohort: &HcpCohort,
    feature_counts: &[usize],
) -> Result<Vec<(usize, f64)>> {
    let known = cohort.group_matrix(Task::Rest, Session::One)?;
    let anon = cohort.group_matrix(Task::Rest, Session::Two)?;
    // One plan serves every `t`: the whole sweep costs a single thin SVD.
    let mut plan = AttackPlan::prepare(known, AttackConfig::default())?;
    let mut out = Vec::with_capacity(feature_counts.len());
    for &t in feature_counts {
        out.push((t, plan.run_with(&anon, t, MatchRule::Argmax)?.accuracy));
    }
    Ok(out)
}

/// Argmax vs Hungarian matching accuracy on the same similarity structure.
pub fn ablation_matching_rule(cohort: &HcpCohort) -> Result<Vec<(String, f64)>> {
    let known = cohort.group_matrix(Task::Rest, Session::One)?;
    let anon = cohort.group_matrix(Task::Rest, Session::Two)?;
    // Both rules read the same similarity structure: one plan, one SVD.
    let mut plan = AttackPlan::prepare(known, AttackConfig::default())?;
    let n_features = plan.config().n_features;
    let mut out = Vec::new();
    for (label, rule) in [
        ("argmax", MatchRule::Argmax),
        ("hungarian", MatchRule::Hungarian),
    ] {
        out.push((
            label.to_string(),
            plan.run_with(&anon, n_features, rule)?.accuracy,
        ));
    }
    Ok(out)
}

/// Rest-rest accuracy across atlas granularities (region counts). Each
/// granularity gets its own cohort with proportionally scaled signature
/// support, mirroring how a coarser atlas dilutes signature edges.
pub fn ablation_atlas_granularity(
    region_counts: &[usize],
    n_subjects: usize,
    seed: u64,
) -> Result<Vec<(usize, f64)>> {
    let mut out = Vec::with_capacity(region_counts.len());
    for &n_regions in region_counts {
        let cohort = HcpCohort::generate(HcpCohortConfig {
            n_subjects,
            n_regions,
            n_timepoints: 420,
            n_pop_factors: (n_regions / 4).max(4),
            n_task_factors: 6,
            n_sig_factors: 4,
            n_sig_regions: (n_regions / 4).max(2),
            noise_std: 0.35,
            session_strength: 0.12,
            signature_gain: 1.6,
            signature_instability: 0.58,
            seed,
            scrub_fd_threshold: None,
        })?;
        let known = cohort.group_matrix(Task::Rest, Session::One)?;
        let anon = cohort.group_matrix(Task::Rest, Session::Two)?;
        let mut plan = AttackPlan::prepare(known, AttackConfig::default())?;
        out.push((n_regions, plan.run_against(&anon)?.accuracy));
    }
    Ok(out)
}

/// GroupMatrix accessor reused by the embedding ablation in the bench
/// crate: rest + a compact task set as labeled point clouds.
pub fn embedding_ablation_groups(cohort: &HcpCohort) -> Result<Vec<GroupMatrix>> {
    [Task::Rest, Task::Motor, Task::Language, Task::Emotion]
        .iter()
        .map(|&t| {
            cohort
                .group_matrix(t, Session::One)
                .map_err(crate::CoreError::from)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cohort() -> HcpCohort {
        HcpCohort::generate(HcpCohortConfig::small(10, 71)).unwrap()
    }

    #[test]
    fn leverage_beats_uniform() {
        let rows = ablation_sampling_strategy(&cohort(), 60, 3).unwrap();
        let get = |s: &str| rows.iter().find(|r| r.strategy == s).unwrap().accuracy;
        let det = get("deterministic-leverage");
        let uni = get("uniform");
        assert!(det >= uni, "deterministic {det} vs uniform {uni}");
        assert!(det >= 0.8, "deterministic accuracy {det}");
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn accuracy_saturates_with_features() {
        let sweep = ablation_feature_count(&cohort(), &[5, 50, 400]).unwrap();
        // More features should not make things dramatically worse, and a
        // tiny budget is the weakest.
        assert!(sweep[0].1 <= sweep[1].1 + 0.2, "{sweep:?}");
        assert!(sweep[1].1 >= 0.7, "{sweep:?}");
    }

    #[test]
    fn hungarian_at_least_matches_argmax() {
        let rows = ablation_matching_rule(&cohort()).unwrap();
        let argmax = rows[0].1;
        let hungarian = rows[1].1;
        assert!(hungarian + 1e-9 >= argmax * 0.9, "{rows:?}");
    }

    #[test]
    fn granularity_sweep_runs() {
        let sweep = ablation_atlas_granularity(&[20, 40], 8, 5).unwrap();
        assert_eq!(sweep.len(), 2);
        for (n, acc) in sweep {
            assert!(acc >= 0.5, "{n} regions: accuracy {acc}");
        }
    }
}
