//! E6 / E7 — Figures 7, 8, 9 and §3.3.4: de-anonymization of subjects with
//! ADHD, per subtype and on the full mixed cases + controls cohort, with
//! the train/test leverage-transfer protocol.

use crate::attack::{match_with_features, AttackConfig, AttackPlan};
use crate::Result;
use neurodeanon_datasets::{AdhdCohort, AdhdGroup, Session};
use neurodeanon_linalg::{Matrix, Rng64};
use neurodeanon_ml::metrics::mean_std;
use neurodeanon_ml::train_test_split;
use neurodeanon_sampling::principal_features;

/// Result of one ADHD experiment variant.
#[derive(Debug, Clone)]
pub struct AdhdExperimentResult {
    /// Which subject set was attacked (label for reports).
    pub population: String,
    /// Session-1 × session-2 similarity matrix (Figures 7/8/9 heat maps).
    pub similarity: Matrix,
    /// Mean same-subject similarity.
    pub mean_diagonal: f64,
    /// Mean different-subject similarity.
    pub mean_offdiagonal: f64,
    /// Direct (full-population feature selection) identification accuracy.
    pub accuracy: f64,
}

/// Runs the Figure 7/8/9 similarity + identification experiment on the
/// given subject subset (e.g. one subtype, or the full cohort).
pub fn adhd_experiment(
    cohort: &AdhdCohort,
    subjects: &[usize],
    label: &str,
    attack_config: AttackConfig,
) -> Result<AdhdExperimentResult> {
    let known = cohort.group_matrix_for(subjects, Session::One)?;
    let anon = cohort.group_matrix_for(subjects, Session::Two)?;
    let mut plan = AttackPlan::prepare(known, attack_config)?;
    let out = plan.run_against(&anon)?;
    Ok(AdhdExperimentResult {
        population: label.to_string(),
        mean_diagonal: out.mean_diagonal_similarity(),
        mean_offdiagonal: out.mean_offdiagonal_similarity(),
        accuracy: out.accuracy,
        similarity: out.similarity,
    })
}

/// §3.3.4's train/test protocol: leverage features are selected on a random
/// train subset's session-1 matrix, then *test* subjects are matched across
/// sessions in that fixed feature space. Returns accuracy `(mean, std)` in
/// percent over `n_repeats` splits — the paper reports 97.2 ± 0.9%.
pub fn adhd_train_test_transfer(
    cohort: &AdhdCohort,
    n_features: usize,
    test_fraction: f64,
    n_repeats: usize,
    seed: u64,
) -> Result<(f64, f64)> {
    let all: Vec<usize> = (0..cohort.n_subjects()).collect();
    let known = cohort.group_matrix_for(&all, Session::One)?;
    let anon = cohort.group_matrix_for(&all, Session::Two)?;
    let mut rng = Rng64::new(seed);
    let mut accs = Vec::with_capacity(n_repeats);
    for _ in 0..n_repeats.max(1) {
        let split = train_test_split(cohort.n_subjects(), test_fraction, &mut rng)?;
        // Features from the train subjects' session-1 matrix only.
        let train_group = known.select_subjects(&split.train)?;
        let t = n_features.min(train_group.n_features());
        let pf = principal_features(train_group.as_matrix(), t, None)?;
        // Match *test* subjects across sessions in that feature space.
        let known_test = known.select_subjects(&split.test)?;
        let anon_test = anon.select_subjects(&split.test)?;
        let acc = match_with_features(&known_test, &anon_test, &pf.indices)?;
        accs.push(acc * 100.0);
    }
    mean_std(&accs).map_err(Into::into)
}

/// Convenience: the subject sets for the three figure panels.
pub fn figure_populations(cohort: &AdhdCohort) -> Vec<(String, Vec<usize>)> {
    vec![
        (
            "adhd subtype 1 (fig 7)".to_string(),
            cohort.subjects_in(AdhdGroup::Subtype(1)),
        ),
        (
            "adhd subtype 3 (fig 8)".to_string(),
            cohort.subjects_in(AdhdGroup::Subtype(3)),
        ),
        (
            "cases + controls (fig 9)".to_string(),
            (0..cohort.n_subjects()).collect(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurodeanon_datasets::AdhdCohortConfig;

    #[test]
    fn subtype_and_mixed_identification() {
        let cohort = AdhdCohort::generate(AdhdCohortConfig::small(8, 5, 13)).unwrap();
        for (label, subjects) in figure_populations(&cohort) {
            let res = adhd_experiment(
                &cohort,
                &subjects,
                &label,
                AttackConfig {
                    n_features: 60,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(
                res.mean_diagonal > res.mean_offdiagonal,
                "{label}: no diagonal dominance"
            );
            assert!(res.accuracy >= 0.6, "{label}: accuracy {}", res.accuracy);
        }
    }

    #[test]
    fn train_test_transfer_generalizes() {
        // The §3.3.4 protocol: features chosen on train subjects identify
        // held-out subjects — the signature edges are population-robust.
        let cohort = AdhdCohort::generate(AdhdCohortConfig::small(10, 6, 17)).unwrap();
        let (mean, std) = adhd_train_test_transfer(&cohort, 60, 0.3, 4, 5).unwrap();
        assert!(mean > 60.0, "transfer accuracy {mean} ± {std}");
    }
}
