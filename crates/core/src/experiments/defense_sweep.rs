//! The §4 defense, swept: privacy–utility trade-off curves.
//!
//! The paper's defense proposal is targeted noise on the localized
//! signature edges, judged by (a) how far identification drops and (b) how
//! much of the image stays intact for downstream analyses. This experiment
//! sweeps the noise level for both the targeted plan and an equal-budget
//! untargeted plan, producing the curve a data publisher would consult.

use crate::attack::{AttackConfig, AttackPlan};
use crate::defense::{evaluate_defense_with, signature_edges, DefensePlan};
use crate::Result;
use neurodeanon_datasets::{HcpCohort, Session, Task};
use neurodeanon_linalg::Rng64;

/// One point on the defense trade-off curve.
#[derive(Debug, Clone)]
pub struct DefenseSweepPoint {
    /// Noise standard deviation applied to the perturbed edges.
    pub sigma: f64,
    /// Residual identification accuracy with *targeted* (signature-edge)
    /// noise.
    pub targeted_accuracy: f64,
    /// Residual accuracy with the same number of *randomly chosen* edges
    /// perturbed at the same sigma.
    pub untargeted_accuracy: f64,
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct DefenseSweepResult {
    /// Baseline (undefended) identification accuracy.
    pub baseline_accuracy: f64,
    /// Fraction of connectome features left untouched by the plans.
    pub untouched_fraction: f64,
    /// One point per sigma, ascending.
    pub points: Vec<DefenseSweepPoint>,
}

/// Sweeps defense noise levels on a cohort's resting release.
pub fn defense_sweep(
    cohort: &HcpCohort,
    n_edges: usize,
    sigmas: &[f64],
    seed: u64,
) -> Result<DefenseSweepResult> {
    let known = cohort.group_matrix(Task::Rest, Session::One)?;
    let release = cohort.group_matrix(Task::Rest, Session::Two)?;
    let targeted_edges = signature_edges(&release, n_edges)?;
    let mut rng = Rng64::new(seed);
    let untargeted_edges = rng.sample_indices(release.n_features(), targeted_edges.len());
    // One prepared plan serves every (sigma, plan-kind) evaluation: the
    // known matrix is factored once for the whole trade-off curve.
    let mut attack = AttackPlan::prepare(known, AttackConfig::default())?;

    let mut points = Vec::with_capacity(sigmas.len());
    let mut baseline = f64::NAN;
    for &sigma in sigmas {
        let t = evaluate_defense_with(
            &mut attack,
            &release,
            &DefensePlan {
                edges: targeted_edges.clone(),
                sigma,
            },
            &mut rng,
        )?;
        let u = evaluate_defense_with(
            &mut attack,
            &release,
            &DefensePlan {
                edges: untargeted_edges.clone(),
                sigma,
            },
            &mut rng,
        )?;
        baseline = t.accuracy_before;
        points.push(DefenseSweepPoint {
            sigma,
            targeted_accuracy: t.accuracy_after,
            untargeted_accuracy: u.accuracy_after,
        });
    }
    Ok(DefenseSweepResult {
        baseline_accuracy: baseline,
        untouched_fraction: 1.0 - targeted_edges.len() as f64 / release.n_features() as f64,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurodeanon_datasets::HcpCohortConfig;

    #[test]
    fn targeted_curve_dominates_untargeted() {
        let cohort = HcpCohort::generate(HcpCohortConfig::small(14, 301)).unwrap();
        let res = defense_sweep(&cohort, 100, &[0.2, 0.6, 1.0], 9).unwrap();
        assert!(res.baseline_accuracy >= 0.8);
        assert!(res.untouched_fraction > 0.9);
        assert_eq!(res.points.len(), 3);
        // At every noise level, targeting the signature hurts the attack at
        // least as much as random placement; at the top level it must hurt
        // strictly more.
        for p in &res.points {
            assert!(
                p.targeted_accuracy <= p.untargeted_accuracy + 0.08,
                "sigma {}: targeted {} vs untargeted {}",
                p.sigma,
                p.targeted_accuracy,
                p.untargeted_accuracy
            );
        }
        let last = res.points.last().unwrap();
        assert!(
            last.targeted_accuracy < res.baseline_accuracy,
            "strong targeted noise failed to reduce accuracy"
        );
        // Monotone-ish decay of the targeted curve.
        assert!(
            res.points[2].targeted_accuracy <= res.points[0].targeted_accuracy + 0.08,
            "targeted curve not decaying: {:?}",
            res.points
        );
    }
}
