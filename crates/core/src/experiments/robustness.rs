//! Degraded-data robustness sweep: identification accuracy vs corruption
//! severity, one curve per fault kind.
//!
//! The paper's evaluation assumes pristine releases; real neuroimaging
//! shares arrive with dropped regions, censored frames, truncated sessions,
//! spike artifacts, and whole-missing subjects. This sweep injects each
//! fault kind from [`neurodeanon_datasets::corruption`] at a severity grid
//! into the anonymous release and measures how the attack degrades under a
//! chosen [`DegradedInput`] policy — the robustness counterpart to the
//! defense trade-off curve. For spike artifacts the sweep additionally
//! replays the corrupted scans through motion scrubbing
//! ([`HcpCohort::with_scrub_threshold`]) to measure *recovered* accuracy.

use crate::attack::{AttackConfig, AttackPlan, DegradedInput};
use crate::Result;
use neurodeanon_datasets::{
    corrupted_hcp_group, CorruptionKind, CorruptionSpec, HcpCohort, Session, Task,
};

/// Framewise-displacement threshold used for the spike-recovery replay.
pub const RECOVERY_FD_THRESHOLD: f64 = 3.0;

/// One (kind, severity) cell of the robustness surface.
#[derive(Debug, Clone)]
pub struct RobustnessPoint {
    /// Fault kind injected into the anonymous release.
    pub kind: CorruptionKind,
    /// Severity in `[0, 1]` (0 = identity).
    pub severity: f64,
    /// Identification accuracy, when the attack completed. `None` when the
    /// policy rejected the degraded input (see `error`).
    pub accuracy: Option<f64>,
    /// Mean finite match margin (best minus second-best similarity).
    /// `None` when the attack errored or no margin was finite.
    pub mean_margin: Option<f64>,
    /// Accuracy after replaying the corrupted scans through spike
    /// scrubbing. Only populated for [`CorruptionKind::Spikes`].
    pub recovered_accuracy: Option<f64>,
    /// Display form of the typed error, when the attack refused to run.
    pub error: Option<String>,
}

/// The full sweep: a clean baseline plus one point per (kind, severity).
#[derive(Debug, Clone)]
pub struct RobustnessResult {
    /// Degradation policy the attack ran under.
    pub policy: DegradedInput,
    /// Accuracy on the uncorrupted release (severity-0 reference).
    pub baseline_accuracy: f64,
    /// Points in `CorruptionKind::ALL` × severity order.
    pub points: Vec<RobustnessPoint>,
}

/// Mean of the finite margins, `None` when none is finite.
fn mean_finite_margin(margins: &[f64]) -> Option<f64> {
    let finite: Vec<f64> = margins.iter().copied().filter(|m| m.is_finite()).collect();
    if finite.is_empty() {
        None
    } else {
        Some(finite.iter().sum::<f64>() / finite.len() as f64)
    }
}

/// Sweeps every corruption kind over `severities` on the cohort's
/// rest/rest release pair. The known matrix stays clean (the adversary's
/// reference data is curated); only the anonymous release is corrupted.
pub fn robustness_sweep(
    cohort: &HcpCohort,
    severities: &[f64],
    policy: DegradedInput,
    seed: u64,
) -> Result<RobustnessResult> {
    let known = cohort.group_matrix(Task::Rest, Session::One)?;
    let clean_anon = cohort.group_matrix(Task::Rest, Session::Two)?;
    let config = AttackConfig {
        degraded: policy,
        ..Default::default()
    };
    // One factorization serves the clean baseline and the whole surface.
    let mut plan = AttackPlan::prepare(known, config)?;
    let baseline_accuracy = plan.run_against(&clean_anon)?.accuracy;
    // Scrub-enabled twin of the cohort for the spike-recovery replay.
    let scrubbed = cohort.with_scrub_threshold(Some(RECOVERY_FD_THRESHOLD))?;

    let mut points = Vec::with_capacity(CorruptionKind::ALL.len() * severities.len());
    for &kind in CorruptionKind::ALL.iter() {
        for &severity in severities {
            let spec = CorruptionSpec {
                kind,
                severity,
                seed,
            };
            let anon = corrupted_hcp_group(cohort, Task::Rest, Session::Two, &spec)?;
            let (accuracy, mean_margin, error) = match plan.run_against(&anon) {
                Ok(out) => (
                    Some(out.accuracy),
                    mean_finite_margin(&out.match_margins()),
                    None,
                ),
                Err(e) => (None, None, Some(e.to_string())),
            };
            let recovered_accuracy = if kind == CorruptionKind::Spikes {
                let recovered = corrupted_hcp_group(&scrubbed, Task::Rest, Session::Two, &spec)?;
                plan.run_against(&recovered).ok().map(|o| o.accuracy)
            } else {
                None
            };
            points.push(RobustnessPoint {
                kind,
                severity,
                accuracy,
                mean_margin,
                recovered_accuracy,
                error,
            });
        }
    }
    Ok(RobustnessResult {
        policy,
        baseline_accuracy,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurodeanon_datasets::HcpCohortConfig;

    fn sweep(policy: DegradedInput) -> RobustnessResult {
        let cohort = HcpCohort::generate(HcpCohortConfig::small(8, 55)).unwrap();
        robustness_sweep(&cohort, &[0.0, 0.5], policy, 11).unwrap()
    }

    #[test]
    fn severity_zero_matches_clean_baseline() {
        let res = sweep(DegradedInput::Mask);
        assert!(res.baseline_accuracy >= 0.7, "{}", res.baseline_accuracy);
        for p in res.points.iter().filter(|p| p.severity == 0.0) {
            // Identity corruption must reproduce the clean result exactly.
            assert_eq!(
                p.accuracy.unwrap().to_bits(),
                res.baseline_accuracy.to_bits(),
                "{}: severity-0 diverged",
                p.kind
            );
            assert!(p.error.is_none());
        }
    }

    #[test]
    fn mask_policy_reports_no_nan_and_covers_grid() {
        let res = sweep(DegradedInput::Mask);
        assert_eq!(res.points.len(), CorruptionKind::ALL.len() * 2);
        for p in &res.points {
            if let Some(a) = p.accuracy {
                assert!(a.is_finite(), "{}@{}: NaN accuracy", p.kind, p.severity);
                assert!((0.0..=1.0).contains(&a));
            }
            if let Some(m) = p.mean_margin {
                assert!(m.is_finite());
            }
        }
        // Spikes rows carry the recovery column; others do not.
        for p in &res.points {
            assert_eq!(
                p.recovered_accuracy.is_some(),
                p.kind == CorruptionKind::Spikes && p.accuracy.is_some(),
                "{}@{}",
                p.kind,
                p.severity
            );
        }
    }

    #[test]
    fn reject_policy_errors_on_nan_kinds_only() {
        let res = sweep(DegradedInput::Reject);
        for p in &res.points {
            if p.severity == 0.0 {
                assert!(p.error.is_none(), "{}: clean input rejected", p.kind);
                continue;
            }
            match p.kind {
                // These kinds introduce NaN cells ⇒ typed rejection.
                CorruptionKind::NanRegions
                | CorruptionKind::NanCells
                | CorruptionKind::DropSubjects => {
                    assert!(p.error.is_some(), "{}: expected rejection", p.kind);
                    assert!(p.accuracy.is_none());
                }
                // Frame-level faults keep the matrix finite ⇒ attack runs.
                CorruptionKind::CensorFrames
                | CorruptionKind::TruncateSession
                | CorruptionKind::Spikes => {
                    assert!(p.error.is_none(), "{}: {:?}", p.kind, p.error);
                }
            }
        }
    }

    #[test]
    fn scrubbing_recovers_spike_damage() {
        let cohort = HcpCohort::generate(HcpCohortConfig::small(8, 55)).unwrap();
        let res = robustness_sweep(&cohort, &[1.0], DegradedInput::Mask, 11).unwrap();
        let spike = res
            .points
            .iter()
            .find(|p| p.kind == CorruptionKind::Spikes)
            .unwrap();
        let (acc, rec) = (spike.accuracy.unwrap(), spike.recovered_accuracy.unwrap());
        assert!(
            rec + 1e-12 >= acc,
            "scrubbing made things worse: {rec} < {acc}"
        );
    }
}
