//! The paper's §3.3.3 extension, evaluated: block-timing-aware performance
//! prediction.
//!
//! The paper predicts that using block timing ("performance metrics within
//! each time-block") *further improves* prediction and resolves responses
//! to stimulus subtypes. This experiment quantifies that: per-subtype
//! performance is predicted from (a) connectomes computed on that subtype's
//! frames only (timing-aware) and (b) the whole-scan connectome
//! (timing-blind), under the standard leverage + SVR protocol.

use crate::performance::{predict_performance, PerfConfig};
use crate::Result;
use neurodeanon_connectome::{Connectome, GroupMatrix};
use neurodeanon_datasets::{HcpCohort, Session, Task};
use neurodeanon_linalg::Matrix;

/// Result of the timing-aware vs timing-blind comparison for one task.
#[derive(Debug, Clone)]
pub struct BlockPerfResult {
    /// The task examined.
    pub task: Task,
    /// Per-subtype test nRMSE `(mean, std)` using subtype-restricted
    /// connectomes.
    pub timing_aware: [(f64, f64); 2],
    /// Per-subtype test nRMSE `(mean, std)` using whole-scan connectomes.
    pub timing_blind: [(f64, f64); 2],
}

/// Builds a group matrix from per-subject region×time matrices.
fn group_from_ts(
    cohort: &HcpCohort,
    ts_of: impl Fn(usize) -> Result<Matrix>,
    tag: &str,
) -> Result<GroupMatrix> {
    let n = cohort.n_subjects();
    let n_regions = cohort.config().n_regions;
    let n_features = n_regions * (n_regions - 1) / 2;
    let mut data = Matrix::zeros(n_features, n);
    let mut ids = Vec::with_capacity(n);
    for s in 0..n {
        let ts = ts_of(s)?;
        let c = Connectome::from_region_ts(&ts)?;
        data.set_col(s, &c.vectorize())?;
        ids.push(format!("{}/{tag}", cohort.subject_id(s)));
    }
    GroupMatrix::from_matrix(data, ids, n_regions).map_err(Into::into)
}

/// Runs the comparison for one task.
pub fn block_performance_experiment(
    cohort: &HcpCohort,
    task: Task,
    config: &PerfConfig,
) -> Result<BlockPerfResult> {
    // Materialize every subject's blocked scan once.
    let scans: Vec<_> = (0..cohort.n_subjects())
        .map(|s| {
            cohort
                .blocked_scan(s, task, Session::One)
                .map_err(crate::CoreError::from)
        })
        .collect::<Result<_>>()?;

    let whole = group_from_ts(cohort, |s| Ok(scans[s].region_ts.clone()), "whole")?;

    let mut timing_aware = [(f64::NAN, f64::NAN); 2];
    let mut timing_blind = [(f64::NAN, f64::NAN); 2];
    for subtype in 0..2u8 {
        let targets = cohort.block_performance_vector(task, subtype)?;
        let restricted = group_from_ts(
            cohort,
            |s| scans[s].subtype_ts(subtype).map_err(Into::into),
            &format!("subtype{subtype}"),
        )?;
        let aware = predict_performance(&restricted, &targets, config)?;
        let blind = predict_performance(&whole, &targets, config)?;
        timing_aware[subtype as usize] = aware.test_summary();
        timing_blind[subtype as usize] = blind.test_summary();
    }
    Ok(BlockPerfResult {
        task,
        timing_aware,
        timing_blind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurodeanon_datasets::HcpCohortConfig;

    #[test]
    fn timing_aware_prediction_beats_timing_blind() {
        let cohort = HcpCohort::generate(HcpCohortConfig::small(40, 123)).unwrap();
        let res = block_performance_experiment(
            &cohort,
            Task::Language,
            &PerfConfig {
                n_repeats: 6,
                ..Default::default()
            },
        )
        .unwrap();
        // The paper's claim: block timing improves prediction. Averaged
        // over the two subtypes, timing-aware must not lose, and should win
        // outright for at least one subtype.
        let aware_mean = (res.timing_aware[0].0 + res.timing_aware[1].0) / 2.0;
        let blind_mean = (res.timing_blind[0].0 + res.timing_blind[1].0) / 2.0;
        assert!(
            aware_mean <= blind_mean + 0.5,
            "timing-aware {aware_mean:.2}% vs blind {blind_mean:.2}%"
        );
        assert!(
            res.timing_aware[0].0 < res.timing_blind[0].0
                || res.timing_aware[1].0 < res.timing_blind[1].0,
            "no subtype improved: aware {:?} blind {:?}",
            res.timing_aware,
            res.timing_blind
        );
        // And the predictions are genuinely informative.
        assert!(aware_mean < 25.0, "timing-aware nRMSE {aware_mean}%");
    }
}
