//! The leverage-score de-anonymization attack (Figure 3 of the paper).
//!
//! Given a *de-anonymized* group matrix (subject identities known) and an
//! *anonymous* one:
//!
//! 1. compute leverage scores of the de-anonymized matrix and keep the top
//!    `t` features (the principal features subspace, §3.1.2);
//! 2. restrict **both** matrices to those features;
//! 3. Pearson-correlate every known subject column against every anonymous
//!    subject column;
//! 4. predict matches (argmax per anonymous subject, or the optimal
//!    Hungarian assignment).
//!
//! Ground truth for accuracy scoring comes from the subject-id prefix
//! (`"sub0042/REST/LR"` → `"sub0042"`), so group matrices from different
//! tasks/sessions of the same cohort score correctly.

use crate::error::CoreError;
use crate::matching::{
    argmax_matching, argmax_matching_lenient, hungarian_matching, matching_accuracy, Decision,
};
use crate::Result;
use neurodeanon_connectome::GroupMatrix;
use neurodeanon_linalg::rsvd::RsvdConfig;
use neurodeanon_linalg::stats::{
    cross_correlation, cross_correlation_batched_f32_into, cross_correlation_batched_into,
    cross_correlation_fused_f32_into, cross_correlation_fused_into, cross_correlation_masked,
    impute_row_means, zscored_cols_into,
};
use neurodeanon_linalg::Matrix;
use neurodeanon_sampling::{
    finite_rows, intersect_sorted, principal_features, principal_features_approx,
    rows_with_any_finite, LeverageBank,
};

/// Minimum pairwise-complete observations the masked correlation requires
/// before reporting a similarity; pairs below this yield NaN entries (see
/// [`cross_correlation_masked`]), and a masked attack whose *entire* shared
/// support is below this errors with [`CoreError::InsufficientSupport`].
pub const MASKED_MIN_OVERLAP: usize = 4;

/// What to do when an input group matrix contains NaN/inf cells (censored
/// frames, dropped regions, missing subjects — the fault model of
/// DESIGN.md §1.3).
///
/// On fully finite inputs every policy takes the identical clean code path,
/// so enabling `Mask` or `Impute` costs nothing (and changes no bit) until
/// degradation actually appears.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradedInput {
    /// Refuse degraded inputs with [`CoreError::NonFiniteInput`] — the
    /// strict default: silent NaN propagation was this system's worst
    /// failure mode, so rejection is opt-out, not opt-in.
    #[default]
    Reject,
    /// Attack on the valid intersection: leverage features are selected from
    /// the fully finite known rows that the anonymous side also (at least
    /// partially) observed, similarities are pairwise-complete Pearson, and
    /// unmatchable subjects score as misses instead of aborting the run.
    Mask,
    /// Replace every non-finite cell with its feature row's finite mean
    /// (cohort average), then run the clean attack unchanged.
    Impute,
}

impl DegradedInput {
    /// Parses a CLI flag value (`reject` | `mask` | `impute`).
    pub fn parse(s: &str) -> Result<Self> {
        match s.to_ascii_lowercase().as_str() {
            "reject" => Ok(DegradedInput::Reject),
            "mask" => Ok(DegradedInput::Mask),
            "impute" => Ok(DegradedInput::Impute),
            _ => Err(CoreError::InvalidParameter {
                name: "degraded-policy",
                reason: "expected one of: reject, mask, impute",
            }),
        }
    }

    /// Stable lowercase name (CLI/JSONL).
    pub fn name(self) -> &'static str {
        match self {
            DegradedInput::Reject => "reject",
            DegradedInput::Mask => "mask",
            DegradedInput::Impute => "impute",
        }
    }
}

impl std::fmt::Display for DegradedInput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Storage precision for a plan's prepared (serve-side) gallery.
///
/// The default `F64` path is the historical one: every artifact stays in
/// double precision and outcomes are bit-identical to [`DeanonAttack::run`].
/// `F32` stores the z-scored reduced known matrix as `f32` — half the
/// steady-state memory traffic on the query hot loop — converted **once** at
/// selection-refresh time; queries and all accumulation stay `f64`, so the
/// only precision loss is the one-time rounding of the stored gallery
/// (relative similarity perturbation on the order of `t · 2⁻²⁴`).
///
/// Determinism contract (DESIGN.md §1.5): results are bit-identical at any
/// thread count *per dtype*; `F32`-vs-`F64` argmax agreement is bounded by
/// the property suite, not exact. Only [`AttackPlan`] honors the dtype —
/// the one-shot [`DeanonAttack::run`] always computes in f64.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Dtype {
    /// Double-precision gallery (the historical bit-exact path).
    #[default]
    F64,
    /// Single-precision gallery storage with f64 accumulation.
    F32,
}

impl Dtype {
    /// Parses a CLI flag value (`f64` | `f32`).
    pub fn parse(s: &str) -> Result<Self> {
        match s.to_ascii_lowercase().as_str() {
            "f64" => Ok(Dtype::F64),
            "f32" => Ok(Dtype::F32),
            _ => Err(CoreError::InvalidParameter {
                name: "dtype",
                reason: "expected one of: f64, f32",
            }),
        }
    }

    /// Stable lowercase name (CLI/JSONL).
    pub fn name(self) -> &'static str {
        match self {
            Dtype::F64 => "f64",
            Dtype::F32 => "f32",
        }
    }
}

impl std::fmt::Display for Dtype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How predicted matches are derived from the similarity matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchRule {
    /// Per-anonymous-subject argmax (the paper's rule).
    Argmax,
    /// Globally optimal one-to-one assignment (requires equal group sizes).
    Hungarian,
}

/// Attack configuration.
#[derive(Debug, Clone)]
pub struct AttackConfig {
    /// Number of leverage features to retain (paper: < 100 out of 64,620
    /// suffices for resting state).
    pub n_features: usize,
    /// Restrict leverage scores to the top-`k` singular directions
    /// (`None` = full column space, the paper's default).
    pub rank_k: Option<usize>,
    /// Use the randomized-SVD fast path for feature selection instead of
    /// the exact thin SVD (`None` = exact, the paper's method). Useful when
    /// the feature space is voxel-scale rather than region-pair-scale.
    pub randomized: Option<RsvdConfig>,
    /// Matching rule.
    pub match_rule: MatchRule,
    /// Policy for NaN/inf cells in either input ([`DegradedInput::Reject`]
    /// by default).
    pub degraded: DegradedInput,
    /// Open-world rejection threshold on the match margin (best minus
    /// runner-up similarity): a predicted match whose margin falls below
    /// this value is demoted to [`Decision::Reject`] instead of naming a
    /// gallery subject. `None` (the default) disables rejection entirely —
    /// the historical closed-world behavior, bit-for-bit. See DESIGN.md
    /// §1.4 for the decision contract.
    pub reject_margin: Option<f64>,
    /// Storage precision for the plan's prepared gallery ([`Dtype::F64`] by
    /// default — the historical bit-exact path).
    pub dtype: Dtype,
}

impl AttackConfig {
    /// Checks the configuration's parameter domains (shared by
    /// [`DeanonAttack::new`] and [`AttackPlan::prepare`]).
    pub fn validate(&self) -> Result<()> {
        if self.n_features == 0 {
            return Err(CoreError::InvalidParameter {
                name: "n_features",
                reason: "must retain at least one feature",
            });
        }
        if let Some(k) = self.rank_k {
            if k == 0 {
                return Err(CoreError::InvalidParameter {
                    name: "rank_k",
                    reason: "rank restriction must be at least 1",
                });
            }
        }
        if let Some(m) = self.reject_margin {
            if !m.is_finite() {
                return Err(CoreError::InvalidParameter {
                    name: "reject_margin",
                    reason: "rejection threshold must be finite",
                });
            }
        }
        Ok(())
    }
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig {
            n_features: 100,
            rank_k: None,
            randomized: None,
            match_rule: MatchRule::Argmax,
            degraded: DegradedInput::default(),
            reject_margin: None,
            dtype: Dtype::default(),
        }
    }
}

/// Outcome of one attack run.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// Similarity matrix: known subjects (rows) × anonymous subjects
    /// (columns), Pearson correlation in the reduced feature space. This is
    /// the matrix visualized in Figures 1/2/7/8/9.
    pub similarity: Matrix,
    /// Predicted known-subject index for each anonymous subject.
    pub predicted: Vec<usize>,
    /// Thresholded open-world decision per anonymous subject. With
    /// [`AttackConfig::reject_margin`] unset, this mirrors `predicted`
    /// (`Match(p)` everywhere, `Reject` only for the `usize::MAX`
    /// no-prediction sentinel of the mask policy); with a threshold set,
    /// low-margin predictions are demoted to [`Decision::Reject`].
    pub decisions: Vec<Decision>,
    /// Ground-truth known index for each anonymous subject (`usize::MAX`
    /// when the anonymous subject has no counterpart in the known group).
    pub truth: Vec<usize>,
    /// Fraction of anonymous subjects correctly identified (among those
    /// with a counterpart).
    pub accuracy: f64,
    /// The selected feature indices (into the full vectorized connectome).
    pub selected_features: Vec<usize>,
}

impl AttackOutcome {
    /// Mean of the diagonal (same-subject) similarities — the bright
    /// diagonal of Figure 1.
    pub fn mean_diagonal_similarity(&self) -> f64 {
        let vals: Vec<f64> = self
            .truth
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t != usize::MAX)
            .map(|(j, &t)| self.similarity[(t, j)])
            .collect();
        if vals.is_empty() {
            return f64::NAN;
        }
        vals.iter().sum::<f64>() / vals.len() as f64
    }

    /// Per-anonymous-subject match margin: `best - second`, the gap between
    /// the best and second-best similarity in that subject's column. Small
    /// margins mean low-confidence matches — the quantity a cautious
    /// attacker thresholds on and a defender tries to shrink.
    ///
    /// When a column has no finite second-best candidate the margin is
    /// `NaN`, not `+inf`: with a single known subject (or a column whose
    /// remaining entries are all `-inf`) there is no runner-up to measure a
    /// gap against, so "margin" is undefined rather than infinitely
    /// confident. Callers aggregating margins should filter with
    /// [`f64::is_finite`].
    pub fn match_margins(&self) -> Vec<f64> {
        let rows = self.similarity.rows();
        (0..self.similarity.cols())
            .map(|j| {
                let mut best = f64::NEG_INFINITY;
                let mut second = f64::NEG_INFINITY;
                for i in 0..rows {
                    let v = self.similarity[(i, j)];
                    if v > best {
                        second = best;
                        best = v;
                    } else if v > second {
                        second = v;
                    }
                }
                if second.is_finite() {
                    best - second
                } else {
                    f64::NAN
                }
            })
            .collect()
    }

    /// Number of queries the decision layer rejected as unidentifiable.
    pub fn n_rejected(&self) -> usize {
        self.decisions.iter().filter(|d| d.is_reject()).count()
    }

    /// Mean of the off-diagonal (different-subject) similarities.
    pub fn mean_offdiagonal_similarity(&self) -> f64 {
        let mut acc = 0.0;
        let mut n = 0.0;
        for j in 0..self.similarity.cols() {
            let t = self.truth[j];
            for i in 0..self.similarity.rows() {
                if i != t {
                    acc += self.similarity[(i, j)];
                    n += 1.0;
                }
            }
        }
        if n == 0.0 {
            f64::NAN
        } else {
            acc / n
        }
    }
}

/// The de-anonymization attack.
#[derive(Debug, Clone)]
pub struct DeanonAttack {
    config: AttackConfig,
}

impl DeanonAttack {
    /// Creates an attack with the given configuration.
    pub fn new(config: AttackConfig) -> Result<Self> {
        config.validate()?;
        Ok(DeanonAttack { config })
    }

    /// Active configuration.
    pub fn config(&self) -> &AttackConfig {
        &self.config
    }

    /// Runs the attack: `known` is the de-anonymized group, `anon` the
    /// target. Both must share the feature space (same atlas).
    ///
    /// Non-finite cells in either operand are handled per the configured
    /// [`DegradedInput`] policy; on fully finite inputs every policy is
    /// bit-identical to the historical clean path.
    pub fn run(&self, known: &GroupMatrix, anon: &GroupMatrix) -> Result<AttackOutcome> {
        let _span = neurodeanon_obs::span("attack.run");
        if known.n_features() != anon.n_features() {
            return Err(CoreError::IncompatibleGroups {
                known: known.n_features(),
                anon: anon.n_features(),
            });
        }
        let known_clean = known.as_matrix().is_finite();
        let anon_clean = anon.as_matrix().is_finite();
        if known_clean && anon_clean {
            return clean_attack(known, anon, &self.config);
        }
        match self.config.degraded {
            DegradedInput::Reject => Err(non_finite_error(known, anon)),
            DegradedInput::Mask => masked_attack(known, anon, &self.config),
            DegradedInput::Impute => {
                let (k, a) = impute_pair(known, anon, known_clean, anon_clean);
                clean_attack(
                    k.as_ref().unwrap_or(known),
                    a.as_ref().unwrap_or(anon),
                    &self.config,
                )
            }
        }
    }
}

/// The historical clean attack pipeline (select → reduce → correlate →
/// match); both operands must be fully finite.
fn clean_attack(
    known: &GroupMatrix,
    anon: &GroupMatrix,
    config: &AttackConfig,
) -> Result<AttackOutcome> {
    let t = config.n_features.min(known.n_features());
    // Step 1-2: principal features from the *known* group only.
    let select_span = neurodeanon_obs::span("attack.select");
    let pf = match &config.randomized {
        None => principal_features(known.as_matrix(), t, config.rank_k)?,
        Some(cfg) => principal_features_approx(known.as_matrix(), t, cfg)?,
    };
    let known_red = known.select_features(&pf.indices)?;
    let anon_red = anon.select_features(&pf.indices)?;
    drop(select_span);
    // Step 3: subject-by-subject Pearson in the reduced space.
    let similarity = {
        let _corr = neurodeanon_obs::span("attack.correlate");
        cross_correlation(known_red.as_matrix(), anon_red.as_matrix())?
    };
    // Step 4: matching + scoring.
    let _match_span = neurodeanon_obs::span("attack.match");
    outcome_from_similarity(
        similarity,
        pf.indices,
        known.subject_ids(),
        anon.subject_ids(),
        config.match_rule,
        config.reject_margin,
    )
}

/// The graceful-degradation path of the `Mask` policy: restrict feature
/// selection to the shared valid support (fully finite known rows ∩
/// anonymous rows with any finite entry), correlate pairwise-complete, and
/// score unmatchable subjects as misses. Indices in the outcome are global
/// feature indices, so selections stay comparable with the clean path.
fn masked_attack(
    known: &GroupMatrix,
    anon: &GroupMatrix,
    config: &AttackConfig,
) -> Result<AttackOutcome> {
    let known_valid = finite_rows(known.as_matrix());
    let anon_valid = rows_with_any_finite(anon.as_matrix());
    let shared = intersect_sorted(&known_valid, &anon_valid);
    if shared.len() < MASKED_MIN_OVERLAP {
        return Err(CoreError::InsufficientSupport {
            known_valid: known_valid.len(),
            anon_valid: anon_valid.len(),
            shared: shared.len(),
        });
    }
    // Leverage selection on the known matrix restricted to the support; the
    // selected local indices map back through `shared` to global features.
    let known_sub = known.as_matrix().select_rows(&shared)?;
    let t = config.n_features.min(shared.len());
    let pf = match &config.randomized {
        None => principal_features(&known_sub, t, config.rank_k)?,
        Some(cfg) => principal_features_approx(&known_sub, t, cfg)?,
    };
    let indices: Vec<usize> = pf.indices.iter().map(|&i| shared[i]).collect();
    let known_red = known.as_matrix().select_rows(&indices)?;
    let anon_red = anon.as_matrix().select_rows(&indices)?;
    let similarity = cross_correlation_masked(&known_red, &anon_red, MASKED_MIN_OVERLAP)?;
    let predicted = match config.match_rule {
        MatchRule::Argmax => argmax_matching_lenient(&similarity)?,
        MatchRule::Hungarian => {
            // The assignment needs finite costs; an unmeasurable similarity
            // is worse than any real correlation, so pin it below −1.
            let floored = Matrix::from_fn(similarity.rows(), similarity.cols(), |i, j| {
                let v = similarity[(i, j)];
                if v.is_nan() {
                    -2.0
                } else {
                    v
                }
            });
            hungarian_matching(&floored)?
        }
    };
    score_predictions(
        similarity,
        indices,
        predicted,
        known.subject_ids(),
        anon.subject_ids(),
        config.reject_margin,
    )
}

/// Which side to blame in a [`CoreError::NonFiniteInput`]: the known matrix
/// if it is degraded, else the anonymous one.
fn non_finite_error(known: &GroupMatrix, anon: &GroupMatrix) -> CoreError {
    let count = |m: &Matrix| m.as_slice().iter().filter(|x| !x.is_finite()).count();
    let k = count(known.as_matrix());
    if k > 0 {
        CoreError::NonFiniteInput {
            side: "known",
            n_non_finite: k,
        }
    } else {
        CoreError::NonFiniteInput {
            side: "anon",
            n_non_finite: count(anon.as_matrix()),
        }
    }
}

/// Mean-imputed copies of whichever operands need one (`None` = that side
/// was already clean, use the original).
fn impute_pair(
    known: &GroupMatrix,
    anon: &GroupMatrix,
    known_clean: bool,
    anon_clean: bool,
) -> (Option<GroupMatrix>, Option<GroupMatrix>) {
    let fix = |g: &GroupMatrix| {
        let mut out = g.clone();
        impute_row_means(out.as_matrix_mut());
        out
    };
    (
        (!known_clean).then(|| fix(known)),
        (!anon_clean).then(|| fix(anon)),
    )
}

/// Matching + ground-truth scoring shared by [`DeanonAttack::run`] and
/// [`AttackPlan`]: derives predictions from the similarity matrix under the
/// given rule and scores them against the id-prefix ground truth.
fn outcome_from_similarity(
    similarity: Matrix,
    selected_features: Vec<usize>,
    known_ids: &[String],
    anon_ids: &[String],
    match_rule: MatchRule,
    reject_margin: Option<f64>,
) -> Result<AttackOutcome> {
    let predicted = match match_rule {
        MatchRule::Argmax => argmax_matching(&similarity)?,
        MatchRule::Hungarian => hungarian_matching(&similarity)?,
    };
    score_predictions(
        similarity,
        selected_features,
        predicted,
        known_ids,
        anon_ids,
        reject_margin,
    )
}

/// Ground-truth scoring shared by the clean and masked paths. A prediction
/// of `usize::MAX` ("unmatchable", from the lenient matcher) scores as a
/// miss for subjects that do have a counterpart, so degraded runs report a
/// real accuracy instead of NaN or an abort.
///
/// `accuracy` is always the *closed-world* score of the raw predictions —
/// the decision layer never changes it, so enabling `reject_margin` leaves
/// every historical accuracy number bit-identical. Open-world rates
/// (TPIR/FPIR) are derived from `decisions` by the callers that need them
/// (`experiments::openworld`).
fn score_predictions(
    similarity: Matrix,
    selected_features: Vec<usize>,
    predicted: Vec<usize>,
    known_ids: &[String],
    anon_ids: &[String],
    reject_margin: Option<f64>,
) -> Result<AttackOutcome> {
    let truth = ground_truth(known_ids, anon_ids);
    let scored: Vec<(usize, usize)> = predicted
        .iter()
        .zip(&truth)
        .filter(|&(_, &t)| t != usize::MAX)
        .map(|(&p, &t)| (p, t))
        .collect();
    let accuracy = if scored.is_empty() {
        f64::NAN
    } else {
        scored.iter().filter(|(p, t)| p == t).count() as f64 / scored.len() as f64
    };
    let decisions = decisions_from(&similarity, &predicted, reject_margin);
    Ok(AttackOutcome {
        similarity,
        predicted,
        decisions,
        truth,
        accuracy,
        selected_features,
    })
}

/// The decision layer over a prediction vector: each predicted index is
/// accepted unless its margin over the best *other* gallery candidate falls
/// below the threshold. For the argmax rule this is exactly
/// [`crate::matching::decide_matching`] (best minus second-best); for the
/// Hungarian rule the margin is measured around the *assigned* subject, so
/// an assignment that is not even its column's argmax carries a negative
/// margin and rejects first.
fn decisions_from(
    similarity: &Matrix,
    predicted: &[usize],
    reject_margin: Option<f64>,
) -> Vec<Decision> {
    let Some(threshold) = reject_margin else {
        // Rejection disabled: only the no-prediction sentinel rejects.
        return predicted
            .iter()
            .map(|&p| {
                if p == usize::MAX {
                    Decision::Reject
                } else {
                    Decision::Match(p)
                }
            })
            .collect();
    };
    let rows = similarity.rows();
    predicted
        .iter()
        .enumerate()
        .map(|(j, &p)| {
            if p == usize::MAX {
                return Decision::Reject;
            }
            let score = similarity[(p, j)];
            if score.is_nan() {
                return Decision::Reject;
            }
            let mut runner_up = f64::NEG_INFINITY;
            for i in 0..rows {
                if i == p {
                    continue;
                }
                let v = similarity[(i, j)];
                if v > runner_up {
                    runner_up = v;
                }
            }
            // No finite runner-up ⇒ undefined margin ⇒ accept (NaN < t is
            // false), mirroring `matching::decide`.
            let margin = if runner_up.is_finite() {
                score - runner_up
            } else {
                f64::NAN
            };
            if margin < threshold {
                Decision::Reject
            } else {
                Decision::Match(p)
            }
        })
        .collect()
}

/// The feature selector a plan memoizes: either the exact thin-SVD leverage
/// bank (the paper's deterministic selection) or a subspace-iteration bank
/// ([`LeverageBank::new_subspace`], reusable because [`RsvdConfig`] carries
/// a fixed seed). The subspace bank's full descending ordering is
/// bit-identical to the direct [`principal_features_approx`] selection —
/// both score the rows of the same seeded `randomized_svd` factor.
#[derive(Debug, Clone)]
enum Selector {
    Exact(LeverageBank),
    /// `rank_k` is deliberately ignored on this variant so the plan keeps
    /// matching the direct randomized path, which also ignores it.
    Subspace(LeverageBank),
}

/// A prepared, memoized attack: the expensive artifacts of the *known*
/// (de-anonymized) side are computed once and reused across every anonymous
/// matrix and every retained-feature count of an experiment sweep.
///
/// [`DeanonAttack::run`] pays one thin SVD plus one known-side reduction and
/// z-scoring *per call*. But the paper's evaluation is sweep-shaped — the
/// Figure 4 ablation varies `t` against one known matrix, Figure 5 runs an
/// 8 × 8 task grid where each row shares its known matrix, Table 2 re-attacks
/// one known matrix under many noise draws — so the known-side work is
/// identical across calls. A plan caches:
///
/// * the [`LeverageBank`] (exact, or the seeded subspace-iteration bank), so a
///   whole sweep performs exactly **one** factorization of the known matrix;
/// * per `(t, rank_k)`: the selected indices and the z-scored reduced known
///   columns, so repeated attacks at the same feature count skip straight to
///   the anonymous side.
///
/// Scratch matrices for the anonymous side are reused across calls, so a
/// steady-state sweep performs no large allocations — only the returned
/// similarity matrix (subjects × subjects, small) is freshly allocated.
///
/// Every outcome is **bit-for-bit identical** to
/// [`DeanonAttack::run`] with the same configuration: the bank's selections
/// match [`principal_features`] exactly, and [`cross_correlation`] is the
/// composition of the same `zscored_cols_into` / `cross_correlation_zscored_into`
/// kernels the plan calls (see `tests/properties.rs`).
#[derive(Debug, Clone)]
pub struct AttackPlan {
    known: GroupMatrix,
    config: AttackConfig,
    /// `None` when the known matrix itself is degraded under the `Mask`
    /// policy: no factorization is possible, so every run takes the masked
    /// path (support + selection recomputed per call — the support depends
    /// on each query's own missingness).
    selector: Option<Selector>,
    /// `(t, rank_k)` of the artifacts currently in the known-side buffers.
    selection: Option<(usize, Option<usize>)>,
    indices: Vec<usize>,
    known_red: Matrix,
    known_z: Matrix,
    /// The f32 gallery: `known_z` rounded to single precision, refreshed
    /// whenever the selection changes. Empty under [`Dtype::F64`].
    known_z32: Vec<f32>,
    anon_red: Matrix,
    anon_z: Matrix,
    /// Serve-path scratch: the batch's reduced query rows (`Q × t`),
    /// reused across [`AttackPlan::correlate_batch`] calls.
    batch_red: Matrix,
}

impl AttackPlan {
    /// Factors the known matrix (the plan's only factorization) and stores
    /// the reusable artifacts. `known` is taken by value: the plan outlives
    /// individual attacks and needs the subject ids for scoring.
    ///
    /// A degraded (non-finite) known matrix is handled at preparation per
    /// the configured policy: `Reject` errors here, `Impute` stores the
    /// mean-imputed matrix (one imputation serves every query), and `Mask`
    /// stores the matrix as-is and runs every query on the masked path.
    pub fn prepare(known: GroupMatrix, config: AttackConfig) -> Result<Self> {
        let _span = neurodeanon_obs::span("plan.prepare");
        config.validate()?;
        let known = if known.as_matrix().is_finite() {
            known
        } else {
            match config.degraded {
                DegradedInput::Reject => {
                    return Err(non_finite_error(&known, &known));
                }
                DegradedInput::Mask => known,
                DegradedInput::Impute => {
                    let mut k = known;
                    impute_row_means(k.as_matrix_mut());
                    k
                }
            }
        };
        let selector = if known.as_matrix().is_finite() {
            Some(match &config.randomized {
                None => Selector::Exact(LeverageBank::new(known.as_matrix())?),
                // The subspace bank's full descending ordering serves any
                // `t`, bit-identical to `principal_features_approx`.
                Some(cfg) => {
                    Selector::Subspace(LeverageBank::new_subspace(known.as_matrix(), cfg)?)
                }
            })
        } else {
            None
        };
        Ok(AttackPlan {
            known,
            config,
            selector,
            selection: None,
            indices: Vec::new(),
            known_red: Matrix::zeros(0, 0),
            known_z: Matrix::zeros(0, 0),
            known_z32: Vec::new(),
            anon_red: Matrix::zeros(0, 0),
            anon_z: Matrix::zeros(0, 0),
            batch_red: Matrix::zeros(0, 0),
        })
    }

    /// The de-anonymized group this plan attacks from.
    pub fn known(&self) -> &GroupMatrix {
        &self.known
    }

    /// Active configuration.
    pub fn config(&self) -> &AttackConfig {
        &self.config
    }

    /// Runs the attack against one anonymous group with the plan's
    /// configured feature count and matching rule. Equivalent to
    /// [`DeanonAttack::run`] with the same configuration, minus the
    /// per-call factorization.
    pub fn run_against(&mut self, anon: &GroupMatrix) -> Result<AttackOutcome> {
        self.run_with(anon, self.config.n_features, self.config.match_rule)
    }

    /// Runs the attack with an overridden feature count and matching rule —
    /// the sweep entry point (vary `t` or the rule without refactorizing).
    ///
    /// Degraded operands follow [`AttackConfig::degraded`]: `Reject` errors,
    /// `Impute` imputes a clone of the anonymous matrix and reuses the
    /// memoized known-side artifacts, and `Mask` falls back to the
    /// unmemoized [`masked_attack`] path (the usable support depends on each
    /// query's own missingness, so nothing can be cached across calls).
    pub fn run_with(
        &mut self,
        anon: &GroupMatrix,
        n_features: usize,
        match_rule: MatchRule,
    ) -> Result<AttackOutcome> {
        let _span = neurodeanon_obs::span("plan.run");
        if n_features == 0 {
            return Err(CoreError::InvalidParameter {
                name: "n_features",
                reason: "must retain at least one feature",
            });
        }
        if self.known.n_features() != anon.n_features() {
            return Err(CoreError::IncompatibleGroups {
                known: self.known.n_features(),
                anon: anon.n_features(),
            });
        }
        let t = n_features.min(self.known.n_features());
        if self.selector.is_none() || !anon.as_matrix().is_finite() {
            match self.config.degraded {
                DegradedInput::Reject => {
                    return Err(non_finite_error(&self.known, anon));
                }
                DegradedInput::Mask => {
                    let cfg = AttackConfig {
                        n_features: t,
                        match_rule,
                        ..self.config.clone()
                    };
                    return masked_attack(&self.known, anon, &cfg);
                }
                DegradedInput::Impute => {
                    // The known side was imputed at `prepare`; only the
                    // anonymous operand needs filling before the memoized
                    // path applies.
                    let mut filled = anon.clone();
                    impute_row_means(filled.as_matrix_mut());
                    return self.run_memoized(&filled, t, match_rule);
                }
            }
        }
        self.run_memoized(anon, t, match_rule)
    }

    /// The historical memoized path: selection cache + known-side buffers +
    /// dense correlation kernels. Requires `self.selector` to be `Some` and
    /// `anon` to be fully finite.
    fn run_memoized(
        &mut self,
        anon: &GroupMatrix,
        t: usize,
        match_rule: MatchRule,
    ) -> Result<AttackOutcome> {
        self.ensure_selection(t)?;
        // Anonymous side: reduce into the reusable scratch, then one fused
        // z-score + correlate pass (bit-identical to the split kernels, see
        // `cross_correlation_fused_into`); `anon_z` keeps receiving the
        // z-scored queries so the scratch-reuse shape is unchanged.
        let corr_span = neurodeanon_obs::span("plan.correlate");
        anon.as_matrix()
            .select_rows_into(&self.indices, &mut self.anon_red)?;
        let mut similarity = Matrix::zeros(0, 0);
        match self.config.dtype {
            Dtype::F64 => cross_correlation_fused_into(
                &self.known_z,
                &self.anon_red,
                &mut self.anon_z,
                &mut similarity,
            )?,
            Dtype::F32 => cross_correlation_fused_f32_into(
                &self.known_z32,
                self.known_z.rows(),
                &self.anon_red,
                &mut self.anon_z,
                &mut similarity,
            )?,
        }
        drop(corr_span);
        let _match_span = neurodeanon_obs::span("plan.match");
        outcome_from_similarity(
            similarity,
            self.indices.clone(),
            self.known.subject_ids(),
            anon.subject_ids(),
            match_rule,
            self.config.reject_margin,
        )
    }

    /// The serve layer's steady-state batch path: correlates `Q` full-length
    /// query feature vectors against the memoized gallery in **one** fused
    /// z-score + cross-correlation GEMM, returning the `n_known × Q`
    /// similarity matrix (column `j` scores query `j`).
    ///
    /// Bitwise contract (DESIGN.md §1.7): column `j` of the result is
    /// bit-identical to the similarity column produced by running query `j`
    /// alone through [`AttackPlan::run_with`] on the clean memoized path —
    /// the gather below reproduces `select_rows_into` element-for-element
    /// and [`cross_correlation_batched_into`] reproduces the fused kernel's
    /// per-column expressions exactly. Batch packing and batch order can
    /// therefore never change a response.
    ///
    /// The batched path is clean-only: queries must be fully finite and of
    /// the gallery's full feature length (typed errors otherwise — degraded
    /// queries go through the per-query policy paths instead), and the plan
    /// must have a factorization (a mask-degraded known matrix has none).
    pub fn correlate_batch(&mut self, queries: &[&[f64]]) -> Result<Matrix> {
        let _span = neurodeanon_obs::span("plan.batch");
        if queries.is_empty() {
            return Err(CoreError::InvalidParameter {
                name: "queries",
                reason: "batch must contain at least one query",
            });
        }
        let want = self.known.n_features();
        for q in queries.iter() {
            if q.len() != want {
                return Err(CoreError::IncompatibleGroups {
                    known: want,
                    anon: q.len(),
                });
            }
            let n_non_finite = q.iter().filter(|x| !x.is_finite()).count();
            if n_non_finite > 0 {
                return Err(CoreError::NonFiniteInput {
                    side: "anon",
                    n_non_finite,
                });
            }
        }
        let t = self.config.n_features.min(want);
        self.ensure_selection(t)?;
        // Gather the selected features of every query into reduced rows —
        // the same elements, in the same order, that `select_rows_into`
        // lays out as columns on the per-query path.
        if self.batch_red.shape() != (queries.len(), self.indices.len()) {
            self.batch_red = Matrix::zeros(queries.len(), self.indices.len());
        }
        for (row, q) in queries.iter().enumerate() {
            let dst = self.batch_red.row_mut(row);
            for (k, &idx) in self.indices.iter().enumerate() {
                dst[k] = q[idx];
            }
        }
        let rows: Vec<&[f64]> = (0..self.batch_red.rows())
            .map(|r| self.batch_red.row(r))
            .collect();
        let mut similarity = Matrix::zeros(0, 0);
        match self.config.dtype {
            Dtype::F64 => cross_correlation_batched_into(
                &self.known_z,
                &rows,
                &mut self.anon_z,
                &mut similarity,
            )?,
            Dtype::F32 => cross_correlation_batched_f32_into(
                &self.known_z32,
                self.known_z.rows(),
                &rows,
                &mut self.anon_z,
                &mut similarity,
            )?,
        }
        Ok(similarity)
    }

    /// Refreshes the cached selection + known-side buffers when the
    /// `(t, rank_k)` key changes; a no-op (zero allocations) otherwise.
    fn ensure_selection(&mut self, t: usize) -> Result<()> {
        let key = (t, self.config.rank_k);
        if self.selection == Some(key) {
            return Ok(());
        }
        let _span = neurodeanon_obs::span("plan.select");
        // Invalidate first so a failed refresh can't leave a stale key.
        self.selection = None;
        let selector = self.selector.as_ref().ok_or(CoreError::InvalidParameter {
            name: "selector",
            reason: "no factorization available for a mask-degraded known matrix",
        })?;
        self.indices = match selector {
            Selector::Exact(bank) => bank.select_indices(t, self.config.rank_k)?,
            Selector::Subspace(bank) => bank.select_indices(t, None)?,
        };
        self.known
            .as_matrix()
            .select_rows_into(&self.indices, &mut self.known_red)?;
        zscored_cols_into(&self.known_red, &mut self.known_z);
        if self.config.dtype == Dtype::F32 {
            // Convert once per selection refresh; steady-state queries then
            // stream half the gallery bytes.
            self.known_z32.clear();
            self.known_z32
                .extend(self.known_z.as_slice().iter().map(|&v| v as f32));
        }
        self.selection = Some(key);
        gallery_bytes_gauge().set(
            (std::mem::size_of_val(self.known_z.as_slice())
                + std::mem::size_of_val(self.known_z32.as_slice())) as f64,
        );
        Ok(())
    }
}

/// Cached handle of the `plan.gallery_bytes` gauge: resident bytes of the
/// prepared gallery (f64 z-scored buffer plus the optional f32 copy) as of
/// the latest selection refresh. Deterministic — a pure function of the
/// plan shape — so it participates in the observability fingerprint.
fn gallery_bytes_gauge() -> &'static neurodeanon_obs::Gauge {
    static HANDLE: std::sync::OnceLock<&'static neurodeanon_obs::Gauge> =
        std::sync::OnceLock::new();
    HANDLE.get_or_init(|| neurodeanon_obs::gauge("plan.gallery_bytes"))
}

/// Shared tail of the per-experiment "restrict both groups to a feature
/// list, correlate, argmax-match" protocol: reduces both groups to
/// `features`, cross-correlates, and scores argmax predictions against the
/// **identity** truth — both groups must therefore list the same subjects
/// in the same column order. Used by the sampling ablation, the ADHD
/// train/test transfer, and the localization experiment, which probe
/// externally chosen feature sets rather than the plan's own selection.
pub fn match_with_features(
    known: &GroupMatrix,
    anon: &GroupMatrix,
    features: &[usize],
) -> Result<f64> {
    let k = known.select_features(features)?;
    let a = anon.select_features(features)?;
    let sim = cross_correlation(k.as_matrix(), a.as_matrix())?;
    let predicted = argmax_matching(&sim)?;
    let truth: Vec<usize> = (0..known.n_subjects()).collect();
    matching_accuracy(&predicted, &truth)
}

/// Subject key: the id prefix before the first `/`.
pub fn subject_key(id: &str) -> &str {
    id.split('/').next().unwrap_or(id)
}

/// For each anonymous subject, the index of the known subject with the same
/// key (or `usize::MAX` when absent).
fn ground_truth(known_ids: &[String], anon_ids: &[String]) -> Vec<usize> {
    use std::collections::HashMap;
    let index: HashMap<&str, usize> = known_ids
        .iter()
        .enumerate()
        .map(|(i, id)| (subject_key(id), i))
        .collect();
    anon_ids
        .iter()
        .map(|id| index.get(subject_key(id)).copied().unwrap_or(usize::MAX))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurodeanon_datasets::{HcpCohort, HcpCohortConfig, Session, Task};

    fn cohort() -> HcpCohort {
        HcpCohort::generate(HcpCohortConfig::small(10, 77)).unwrap()
    }

    #[test]
    fn rest_to_rest_identification_succeeds() {
        let c = cohort();
        let known = c.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = c.group_matrix(Task::Rest, Session::Two).unwrap();
        let attack = DeanonAttack::new(AttackConfig::default()).unwrap();
        let out = attack.run(&known, &anon).unwrap();
        assert!(out.accuracy >= 0.8, "accuracy {}", out.accuracy);
        assert_eq!(out.similarity.shape(), (10, 10));
        assert_eq!(out.selected_features.len(), 100);
        // Diagonal dominance, the Figure 1 phenomenon.
        assert!(out.mean_diagonal_similarity() > out.mean_offdiagonal_similarity() + 0.1);
    }

    #[test]
    fn truth_resolves_by_prefix_across_tasks() {
        let c = cohort();
        let known = c.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = c.group_matrix(Task::Language, Session::Two).unwrap();
        let attack = DeanonAttack::new(AttackConfig::default()).unwrap();
        let out = attack.run(&known, &anon).unwrap();
        // Ids differ in task/session but share subject prefixes.
        assert_eq!(out.truth, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn hungarian_rule_yields_permutation() {
        let c = cohort();
        let known = c.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = c.group_matrix(Task::Rest, Session::Two).unwrap();
        let attack = DeanonAttack::new(AttackConfig {
            match_rule: MatchRule::Hungarian,
            ..Default::default()
        })
        .unwrap();
        let out = attack.run(&known, &anon).unwrap();
        let mut p = out.predicted.clone();
        p.sort_unstable();
        assert_eq!(p, (0..10).collect::<Vec<_>>());
        assert!(out.accuracy >= 0.8);
    }

    #[test]
    fn feature_count_is_capped_at_available() {
        let c = cohort();
        let known = c.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = c.group_matrix(Task::Rest, Session::Two).unwrap();
        let attack = DeanonAttack::new(AttackConfig {
            n_features: usize::MAX,
            ..Default::default()
        })
        .unwrap();
        let out = attack.run(&known, &anon).unwrap();
        assert_eq!(out.selected_features.len(), known.n_features());
    }

    #[test]
    fn selected_features_hit_signature_regions() {
        // The attack must rediscover the planted signature support.
        let c = cohort();
        let known = c.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = c.group_matrix(Task::Rest, Session::Two).unwrap();
        let attack = DeanonAttack::new(AttackConfig::default()).unwrap();
        let out = attack.run(&known, &anon).unwrap();
        let sig: std::collections::HashSet<usize> = c.signature_regions().iter().copied().collect();
        let idx = neurodeanon_connectome::EdgeIndex::new(60).unwrap();
        let sig_hits = out
            .selected_features
            .iter()
            .filter(|&&f| {
                let (i, j) = idx.edge_of(f).unwrap();
                sig.contains(&i) && sig.contains(&j)
            })
            .count();
        // Signature-pair edges are ~5% of all edges; the selection should be
        // massively enriched.
        let frac = sig_hits as f64 / out.selected_features.len() as f64;
        assert!(frac > 0.5, "signature enrichment only {frac}");
    }

    #[test]
    fn rejects_incompatible_groups() {
        let c = cohort();
        let small = HcpCohort::generate(HcpCohortConfig {
            n_regions: 30,
            ..HcpCohortConfig::small(10, 5)
        })
        .unwrap();
        let known = c.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = small.group_matrix(Task::Rest, Session::Two).unwrap();
        let attack = DeanonAttack::new(AttackConfig::default()).unwrap();
        assert!(matches!(
            attack.run(&known, &anon),
            Err(CoreError::IncompatibleGroups { .. })
        ));
    }

    #[test]
    fn randomized_leverage_path_matches_exact_accuracy() {
        let c = cohort();
        let known = c.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = c.group_matrix(Task::Rest, Session::Two).unwrap();
        let exact = DeanonAttack::new(AttackConfig::default())
            .unwrap()
            .run(&known, &anon)
            .unwrap();
        let approx = DeanonAttack::new(AttackConfig {
            randomized: Some(neurodeanon_linalg::rsvd::RsvdConfig {
                rank: 9, // one less than the subject count
                power_iters: 2,
                ..Default::default()
            }),
            ..Default::default()
        })
        .unwrap()
        .run(&known, &anon)
        .unwrap();
        assert!(
            approx.accuracy + 0.11 >= exact.accuracy,
            "randomized {} vs exact {}",
            approx.accuracy,
            exact.accuracy
        );
    }

    #[test]
    fn config_validation() {
        assert!(DeanonAttack::new(AttackConfig {
            n_features: 0,
            ..Default::default()
        })
        .is_err());
        assert!(DeanonAttack::new(AttackConfig {
            rank_k: Some(0),
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn match_margins_positive_for_correct_matches() {
        let c = cohort();
        let known = c.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = c.group_matrix(Task::Rest, Session::Two).unwrap();
        let attack = DeanonAttack::new(AttackConfig::default()).unwrap();
        let out = attack.run(&known, &anon).unwrap();
        let margins = out.match_margins();
        assert_eq!(margins.len(), 10);
        assert!(margins.iter().all(|m| m.is_finite()));
        // Correctly matched subjects should mostly have positive margins.
        let mean: f64 = margins.iter().sum::<f64>() / margins.len() as f64;
        assert!(mean > 0.0, "mean margin {mean}");
    }

    #[test]
    fn rejection_disabled_mirrors_predictions() {
        let c = cohort();
        let known = c.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = c.group_matrix(Task::Rest, Session::Two).unwrap();
        let out = DeanonAttack::new(AttackConfig::default())
            .unwrap()
            .run(&known, &anon)
            .unwrap();
        assert_eq!(out.decisions.len(), out.predicted.len());
        for (d, &p) in out.decisions.iter().zip(&out.predicted) {
            assert_eq!(*d, Decision::Match(p));
        }
        assert_eq!(out.n_rejected(), 0);
    }

    #[test]
    fn zero_margin_threshold_rejects_nothing_and_changes_no_bits() {
        let c = cohort();
        let known = c.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = c.group_matrix(Task::Rest, Session::Two).unwrap();
        let baseline = DeanonAttack::new(AttackConfig::default())
            .unwrap()
            .run(&known, &anon)
            .unwrap();
        let thresholded = DeanonAttack::new(AttackConfig {
            reject_margin: Some(0.0),
            ..Default::default()
        })
        .unwrap()
        .run(&known, &anon)
        .unwrap();
        outcomes_bit_identical(&baseline, &thresholded);
    }

    #[test]
    fn absurd_margin_threshold_rejects_everyone_but_keeps_accuracy() {
        let c = cohort();
        let known = c.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = c.group_matrix(Task::Rest, Session::Two).unwrap();
        let baseline = DeanonAttack::new(AttackConfig::default())
            .unwrap()
            .run(&known, &anon)
            .unwrap();
        let out = DeanonAttack::new(AttackConfig {
            reject_margin: Some(10.0),
            ..Default::default()
        })
        .unwrap()
        .run(&known, &anon)
        .unwrap();
        assert_eq!(out.n_rejected(), 10);
        assert!(out.decisions.iter().all(|d| d.is_reject()));
        // The closed-world accuracy is a property of the raw predictions
        // and must not move when the decision layer rejects.
        assert_eq!(out.accuracy.to_bits(), baseline.accuracy.to_bits());
        assert_eq!(out.predicted, baseline.predicted);
    }

    #[test]
    fn plan_and_direct_agree_under_rejection() {
        let c = cohort();
        let known = c.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = c.group_matrix(Task::Language, Session::Two).unwrap();
        let config = AttackConfig {
            reject_margin: Some(0.05),
            ..Default::default()
        };
        let direct = DeanonAttack::new(config.clone())
            .unwrap()
            .run(&known, &anon)
            .unwrap();
        let mut plan = AttackPlan::prepare(known, config).unwrap();
        outcomes_bit_identical(&direct, &plan.run_against(&anon).unwrap());
    }

    #[test]
    fn argmax_decisions_match_the_matching_layer() {
        let c = cohort();
        let known = c.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = c.group_matrix(Task::Rest, Session::Two).unwrap();
        let threshold = 0.08;
        let out = DeanonAttack::new(AttackConfig {
            reject_margin: Some(threshold),
            ..Default::default()
        })
        .unwrap()
        .run(&known, &anon)
        .unwrap();
        let reference = crate::matching::decide_matching(&out.similarity, threshold).unwrap();
        assert_eq!(out.decisions, reference);
    }

    #[test]
    fn non_finite_reject_margin_is_invalid() {
        assert!(DeanonAttack::new(AttackConfig {
            reject_margin: Some(f64::NAN),
            ..Default::default()
        })
        .is_err());
        assert!(DeanonAttack::new(AttackConfig {
            reject_margin: Some(f64::INFINITY),
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn mask_sentinel_becomes_a_first_class_rejection() {
        // The robustness PR printed `unidentifiable` off the usize::MAX
        // sentinel; the decision layer now carries that as Decision::Reject
        // even with no threshold configured.
        let c = cohort();
        let known = c.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = c.group_matrix(Task::Rest, Session::Two).unwrap();
        let spec = CorruptionSpec {
            kind: CorruptionKind::DropSubjects,
            severity: 0.6,
            seed: 3,
        };
        let (bad_anon, report) = corrupt_group(&anon, &spec).unwrap();
        assert!(report.affected > 0);
        let out = DeanonAttack::new(AttackConfig {
            degraded: DegradedInput::Mask,
            ..Default::default()
        })
        .unwrap()
        .run(&known, &bad_anon)
        .unwrap();
        assert_eq!(out.n_rejected(), report.affected);
        for (d, &p) in out.decisions.iter().zip(&out.predicted) {
            assert_eq!(d.is_reject(), p == usize::MAX);
        }
    }

    #[test]
    fn dtype_parsing() {
        assert_eq!(Dtype::parse("f32").unwrap(), Dtype::F32);
        assert_eq!(Dtype::parse("F64").unwrap(), Dtype::F64);
        assert!(Dtype::parse("f16").is_err());
        assert_eq!(Dtype::default(), Dtype::F64);
        assert_eq!(Dtype::F32.name(), "f32");
    }

    #[test]
    fn f32_gallery_matches_f64_predictions_on_cohort() {
        // The f32 gallery perturbs similarities by ~t·2⁻²⁴ — orders of
        // magnitude below the same-subject margins — so predictions,
        // accuracy, and selected features must agree with the f64 plan.
        let c = cohort();
        let known = c.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = c.group_matrix(Task::Language, Session::Two).unwrap();
        let mut plan64 = AttackPlan::prepare(known.clone(), AttackConfig::default()).unwrap();
        let mut plan32 = AttackPlan::prepare(
            known,
            AttackConfig {
                dtype: Dtype::F32,
                ..Default::default()
            },
        )
        .unwrap();
        for t in [30usize, 100] {
            let o64 = plan64.run_with(&anon, t, MatchRule::Argmax).unwrap();
            let o32 = plan32.run_with(&anon, t, MatchRule::Argmax).unwrap();
            assert_eq!(o64.predicted, o32.predicted);
            assert_eq!(o64.selected_features, o32.selected_features);
            assert_eq!(o64.accuracy.to_bits(), o32.accuracy.to_bits());
            for (x, y) in o64
                .similarity
                .as_slice()
                .iter()
                .zip(o32.similarity.as_slice())
            {
                assert!((x - y).abs() < 1e-5, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn subject_key_parsing() {
        assert_eq!(subject_key("sub0042/REST/LR"), "sub0042");
        assert_eq!(subject_key("plain"), "plain");
    }

    /// With a single known subject there is no second-best candidate, so
    /// every margin is NaN (documented contract of `match_margins`).
    #[test]
    fn match_margins_nan_with_one_known_subject() {
        let c = cohort();
        let known = c
            .group_matrix(Task::Rest, Session::One)
            .unwrap()
            .select_subjects(&[0])
            .unwrap();
        let anon = c.group_matrix(Task::Rest, Session::Two).unwrap();
        let attack = DeanonAttack::new(AttackConfig {
            n_features: 50,
            ..Default::default()
        })
        .unwrap();
        let out = attack.run(&known, &anon).unwrap();
        let margins = out.match_margins();
        assert_eq!(margins.len(), 10);
        assert!(margins.iter().all(|m| m.is_nan()), "{margins:?}");
    }

    fn outcomes_bit_identical(a: &AttackOutcome, b: &AttackOutcome) {
        assert_eq!(a.predicted, b.predicted);
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.selected_features, b.selected_features);
        assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
        assert_eq!(a.similarity.shape(), b.similarity.shape());
        for (x, y) in a.similarity.as_slice().iter().zip(b.similarity.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn plan_matches_direct_attack_bitwise() {
        let c = cohort();
        let known = c.group_matrix(Task::Rest, Session::One).unwrap();
        let anon1 = c.group_matrix(Task::Rest, Session::Two).unwrap();
        let anon2 = c.group_matrix(Task::Language, Session::Two).unwrap();
        for rank_k in [None, Some(4)] {
            let config = AttackConfig {
                rank_k,
                ..Default::default()
            };
            let mut plan = AttackPlan::prepare(known.clone(), config.clone()).unwrap();
            // Many anon matrices and t values against one plan, out of order
            // so the cache is exercised in both hit and refresh directions.
            for t in [30usize, 100, 30, 5] {
                let attack = DeanonAttack::new(AttackConfig {
                    n_features: t,
                    ..config.clone()
                })
                .unwrap();
                for anon in [&anon1, &anon2] {
                    let direct = attack.run(&known, anon).unwrap();
                    let planned = plan.run_with(anon, t, MatchRule::Argmax).unwrap();
                    outcomes_bit_identical(&direct, &planned);
                }
            }
        }
    }

    #[test]
    fn plan_matches_direct_attack_on_approx_path() {
        let c = cohort();
        let known = c.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = c.group_matrix(Task::Rest, Session::Two).unwrap();
        let config = AttackConfig {
            randomized: Some(neurodeanon_linalg::rsvd::RsvdConfig {
                rank: 8,
                power_iters: 2,
                ..Default::default()
            }),
            ..Default::default()
        };
        let mut plan = AttackPlan::prepare(known.clone(), config.clone()).unwrap();
        for t in [20usize, 100] {
            let attack = DeanonAttack::new(AttackConfig {
                n_features: t,
                ..config.clone()
            })
            .unwrap();
            let direct = attack.run(&known, &anon).unwrap();
            let planned = plan.run_with(&anon, t, MatchRule::Argmax).unwrap();
            outcomes_bit_identical(&direct, &planned);
        }
    }

    #[test]
    fn plan_validates_like_direct_attack() {
        let c = cohort();
        let known = c.group_matrix(Task::Rest, Session::One).unwrap();
        assert!(AttackPlan::prepare(
            known.clone(),
            AttackConfig {
                n_features: 0,
                ..Default::default()
            }
        )
        .is_err());
        let small = HcpCohort::generate(HcpCohortConfig {
            n_regions: 30,
            ..HcpCohortConfig::small(10, 5)
        })
        .unwrap();
        let anon = small.group_matrix(Task::Rest, Session::Two).unwrap();
        let mut plan = AttackPlan::prepare(known, AttackConfig::default()).unwrap();
        assert!(matches!(
            plan.run_against(&anon),
            Err(CoreError::IncompatibleGroups { .. })
        ));
        assert!(plan
            .run_with(
                &small.group_matrix(Task::Rest, Session::One).unwrap(),
                0,
                MatchRule::Argmax
            )
            .is_err());
    }

    #[test]
    fn match_with_features_agrees_with_direct_pipeline() {
        let c = cohort();
        let known = c.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = c.group_matrix(Task::Rest, Session::Two).unwrap();
        let pf = neurodeanon_sampling::principal_features(known.as_matrix(), 60, None).unwrap();
        let acc = match_with_features(&known, &anon, &pf.indices).unwrap();
        let direct = DeanonAttack::new(AttackConfig {
            n_features: 60,
            ..Default::default()
        })
        .unwrap()
        .run(&known, &anon)
        .unwrap();
        assert_eq!(acc.to_bits(), direct.accuracy.to_bits());
    }

    use neurodeanon_datasets::{corrupt_group, CorruptionKind, CorruptionSpec};

    fn corrupted(g: &GroupMatrix, kind: CorruptionKind, severity: f64) -> GroupMatrix {
        corrupt_group(
            g,
            &CorruptionSpec {
                kind,
                severity,
                seed: 0xFA017,
            },
        )
        .unwrap()
        .0
    }

    #[test]
    fn degraded_policy_parsing() {
        assert_eq!(DegradedInput::parse("mask").unwrap(), DegradedInput::Mask);
        assert_eq!(
            DegradedInput::parse("impute").unwrap(),
            DegradedInput::Impute
        );
        assert_eq!(
            DegradedInput::parse("reject").unwrap(),
            DegradedInput::Reject
        );
        assert!(DegradedInput::parse("yolo").is_err());
        assert_eq!(DegradedInput::default(), DegradedInput::Reject);
    }

    /// The acceptance criterion of the degradation layer: on fully finite
    /// inputs, every policy takes the exact historical code path.
    #[test]
    fn policies_bit_identical_on_clean_inputs() {
        let c = cohort();
        let known = c.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = c.group_matrix(Task::Rest, Session::Two).unwrap();
        let baseline = DeanonAttack::new(AttackConfig::default())
            .unwrap()
            .run(&known, &anon)
            .unwrap();
        for degraded in [DegradedInput::Mask, DegradedInput::Impute] {
            let out = DeanonAttack::new(AttackConfig {
                degraded,
                ..Default::default()
            })
            .unwrap()
            .run(&known, &anon)
            .unwrap();
            outcomes_bit_identical(&baseline, &out);
            let mut plan = AttackPlan::prepare(
                known.clone(),
                AttackConfig {
                    degraded,
                    ..Default::default()
                },
            )
            .unwrap();
            outcomes_bit_identical(&baseline, &plan.run_against(&anon).unwrap());
        }
    }

    #[test]
    fn reject_policy_errors_identify_the_degraded_side() {
        let c = cohort();
        let known = c.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = c.group_matrix(Task::Rest, Session::Two).unwrap();
        let bad_anon = corrupted(&anon, CorruptionKind::NanCells, 0.5);
        let attack = DeanonAttack::new(AttackConfig::default()).unwrap();
        assert!(matches!(
            attack.run(&known, &bad_anon),
            Err(CoreError::NonFiniteInput { side: "anon", .. })
        ));
        let bad_known = corrupted(&known, CorruptionKind::NanRegions, 0.5);
        assert!(matches!(
            attack.run(&bad_known, &anon),
            Err(CoreError::NonFiniteInput { side: "known", .. })
        ));
        // The plan refuses a degraded known matrix at preparation time.
        assert!(matches!(
            AttackPlan::prepare(bad_known, AttackConfig::default()),
            Err(CoreError::NonFiniteInput { side: "known", .. })
        ));
    }

    #[test]
    fn mask_and_impute_survive_degraded_inputs() {
        let c = cohort();
        let known = c.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = c.group_matrix(Task::Rest, Session::Two).unwrap();
        let bad_anon = corrupted(&anon, CorruptionKind::NanCells, 0.3);
        for degraded in [DegradedInput::Mask, DegradedInput::Impute] {
            let out = DeanonAttack::new(AttackConfig {
                degraded,
                ..Default::default()
            })
            .unwrap()
            .run(&known, &bad_anon)
            .unwrap();
            assert!(out.accuracy.is_finite(), "{degraded}: {}", out.accuracy);
            // Mild cell dropout must not destroy identification.
            assert!(out.accuracy >= 0.5, "{degraded}: accuracy {}", out.accuracy);
        }
    }

    #[test]
    fn mask_handles_degraded_known_side_too() {
        let c = cohort();
        let known = c.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = c.group_matrix(Task::Rest, Session::Two).unwrap();
        let bad_known = corrupted(&known, CorruptionKind::NanRegions, 0.4);
        let config = AttackConfig {
            degraded: DegradedInput::Mask,
            ..Default::default()
        };
        let direct = DeanonAttack::new(config.clone())
            .unwrap()
            .run(&bad_known, &anon)
            .unwrap();
        assert!(direct.accuracy.is_finite());
        // A plan over a mask-degraded known has no factorization to memoize
        // but must produce the identical outcome through the masked path.
        let mut plan = AttackPlan::prepare(bad_known, config).unwrap();
        outcomes_bit_identical(&direct, &plan.run_against(&anon).unwrap());
    }

    #[test]
    fn plan_parity_with_direct_attack_under_policies() {
        let c = cohort();
        let known = c.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = c.group_matrix(Task::Rest, Session::Two).unwrap();
        let bad_anon = corrupted(&anon, CorruptionKind::NanCells, 0.6);
        for degraded in [DegradedInput::Mask, DegradedInput::Impute] {
            let config = AttackConfig {
                degraded,
                ..Default::default()
            };
            let direct = DeanonAttack::new(config.clone())
                .unwrap()
                .run(&known, &bad_anon)
                .unwrap();
            let mut plan = AttackPlan::prepare(known.clone(), config).unwrap();
            outcomes_bit_identical(&direct, &plan.run_against(&bad_anon).unwrap());
        }
    }

    /// A whole-missing anonymous subject is scored as a miss under `Mask`
    /// (argmax) rather than aborting the attack on everyone else.
    #[test]
    fn dropped_subjects_count_as_misses_under_mask() {
        let c = cohort();
        let known = c.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = c.group_matrix(Task::Rest, Session::Two).unwrap();
        let spec = CorruptionSpec {
            kind: CorruptionKind::DropSubjects,
            severity: 0.6,
            seed: 3,
        };
        let (bad_anon, report) = corrupt_group(&anon, &spec).unwrap();
        assert!(report.affected > 0);
        let out = DeanonAttack::new(AttackConfig {
            degraded: DegradedInput::Mask,
            ..Default::default()
        })
        .unwrap()
        .run(&known, &bad_anon)
        .unwrap();
        let unmatched = out.predicted.iter().filter(|&&p| p == usize::MAX).count();
        assert_eq!(unmatched, report.affected);
        assert!(out.accuracy.is_finite());
        assert!(out.accuracy <= 1.0 - report.affected as f64 / 10.0 + 1e-12);
    }

    #[test]
    fn insufficient_support_is_typed() {
        let c = cohort();
        let known = c.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = c.group_matrix(Task::Rest, Session::Two).unwrap();
        // Leave fewer than MASKED_MIN_OVERLAP fully finite feature rows.
        let n = known.n_features();
        let mut data = known.as_matrix().clone();
        for r in 0..n.saturating_sub(MASKED_MIN_OVERLAP - 1) {
            for s in 0..known.n_subjects() {
                data[(r, s)] = f64::NAN;
            }
        }
        let starved =
            GroupMatrix::from_matrix(data, known.subject_ids().to_vec(), c.config().n_regions)
                .unwrap();
        let attack = DeanonAttack::new(AttackConfig {
            degraded: DegradedInput::Mask,
            ..Default::default()
        })
        .unwrap();
        assert!(matches!(
            attack.run(&starved, &anon),
            Err(CoreError::InsufficientSupport { .. })
        ));
    }
}
