//! Task identification via t-SNE (§3.3.2 of the paper).
//!
//! All conditions of all subjects are stacked into one point cloud (one
//! point per scan, `n_subjects × n_conditions` points in connectome feature
//! space), embedded to 2-D with t-SNE, and task labels are transferred from
//! the scans of subjects whose labels are known to the rest by nearest
//! neighbour in the embedding. The paper uses 100 subjects × 8 conditions
//! = 800 points with 50 labeled subjects.

use crate::error::CoreError;
use crate::Result;
use neurodeanon_connectome::GroupMatrix;
use neurodeanon_embedding::tsne::TsneConfig;
use neurodeanon_linalg::{Matrix, Rng64};
use neurodeanon_ml::metrics::accuracy;
use neurodeanon_ml::KnnClassifier;

/// Configuration for the task-identification attack.
#[derive(Debug, Clone)]
pub struct TaskIdConfig {
    /// Fraction of subjects whose task labels are known (paper: 50 of 100).
    pub labeled_fraction: f64,
    /// t-SNE hyper-parameters.
    pub tsne: TsneConfig,
    /// Neighbourhood size for label transfer (paper: nearest neighbour).
    pub knn_k: usize,
    /// Seed for the labeled-subject draw.
    pub seed: u64,
}

impl Default for TaskIdConfig {
    fn default() -> Self {
        TaskIdConfig {
            labeled_fraction: 0.5,
            tsne: TsneConfig::default(),
            knn_k: 1,
            seed: 0x7a5c,
        }
    }
}

/// Outcome of the task-identification attack.
#[derive(Debug, Clone)]
pub struct TaskIdOutcome {
    /// 2-D embedding, one row per scan (point order: condition-major, i.e.
    /// all subjects of condition 0, then condition 1, …).
    pub embedding: Matrix,
    /// True condition index of every point.
    pub labels: Vec<usize>,
    /// Subject index of every point.
    pub subjects: Vec<usize>,
    /// Predicted condition index of every *unlabeled* point, aligned with
    /// `unlabeled_points`.
    pub predicted: Vec<usize>,
    /// Indices (into the point cloud) of the unlabeled points.
    pub unlabeled_points: Vec<usize>,
    /// Overall prediction accuracy on unlabeled points.
    pub overall_accuracy: f64,
    /// Per-condition accuracy on unlabeled points (condition index order).
    pub per_condition_accuracy: Vec<f64>,
}

/// The stacked scan point cloud with precomputed pairwise distances — the
/// expensive part of the task-identification attack (800 points × 64,620
/// features at paper scale). Build once, embed many times.
#[derive(Debug, Clone)]
pub struct TaskPointCloud {
    /// Condensed pairwise squared distances (strict upper triangle).
    d2: Vec<f64>,
    n_points: usize,
    n_subjects: usize,
    labels: Vec<usize>,
    subjects: Vec<usize>,
}

impl TaskPointCloud {
    /// Stacks per-condition group matrices (condition-major point order)
    /// and computes the condensed pairwise distances.
    pub fn build(groups: &[GroupMatrix]) -> Result<Self> {
        if groups.len() < 2 {
            return Err(CoreError::InvalidParameter {
                name: "groups",
                reason: "need at least two conditions to identify tasks",
            });
        }
        let n_subjects = groups[0].n_subjects();
        let n_features = groups[0].n_features();
        for g in groups {
            if g.n_subjects() != n_subjects || g.n_features() != n_features {
                return Err(CoreError::IncompatibleGroups {
                    known: n_features,
                    anon: g.n_features(),
                });
            }
        }
        let n_points = groups.len() * n_subjects;
        let mut points = Matrix::zeros(n_points, n_features);
        let mut labels = Vec::with_capacity(n_points);
        let mut subjects = Vec::with_capacity(n_points);
        for (cond, g) in groups.iter().enumerate() {
            let p = g.to_points();
            for s in 0..n_subjects {
                let row_idx = cond * n_subjects + s;
                points.set_row(row_idx, p.row(s))?;
                labels.push(cond);
                subjects.push(s);
            }
        }
        let d2 = neurodeanon_embedding::tsne::pairwise_squared_distances(&points);
        Ok(TaskPointCloud {
            d2,
            n_points,
            n_subjects,
            labels,
            subjects,
        })
    }

    /// Number of points (subjects × conditions).
    pub fn n_points(&self) -> usize {
        self.n_points
    }
}

/// Runs the task-identification attack on per-condition group matrices
/// (all must share subject count and feature count; subjects aligned).
pub fn identify_tasks(groups: &[GroupMatrix], config: &TaskIdConfig) -> Result<TaskIdOutcome> {
    let cloud = TaskPointCloud::build(groups)?;
    identify_tasks_from_cloud(&cloud, config)
}

/// Runs the attack from a prebuilt point cloud (reusing the pairwise
/// distances across repetitions).
pub fn identify_tasks_from_cloud(
    cloud: &TaskPointCloud,
    config: &TaskIdConfig,
) -> Result<TaskIdOutcome> {
    if !(0.0 < config.labeled_fraction && config.labeled_fraction < 1.0) {
        return Err(CoreError::InvalidParameter {
            name: "labeled_fraction",
            reason: "must lie strictly between 0 and 1",
        });
    }
    let n_subjects = cloud.n_subjects;
    let n_points = cloud.n_points;
    let labels = &cloud.labels;
    let subjects = &cloud.subjects;

    let embedded =
        neurodeanon_embedding::tsne::tsne_from_distances(&cloud.d2, n_points, &config.tsne)?;

    // Labeled subjects drawn once; all their scans serve as references.
    let mut rng = Rng64::new(config.seed);
    let n_labeled =
        ((n_subjects as f64 * config.labeled_fraction).round() as usize).clamp(1, n_subjects - 1);
    let labeled_subjects: std::collections::HashSet<usize> = rng
        .sample_indices(n_subjects, n_labeled)
        .into_iter()
        .collect();

    let mut train_rows = Vec::new();
    let mut train_labels = Vec::new();
    let mut test_rows = Vec::new();
    for p in 0..n_points {
        if labeled_subjects.contains(&subjects[p]) {
            train_rows.push(p);
            train_labels.push(labels[p]);
        } else {
            test_rows.push(p);
        }
    }
    let train_x = embedded.embedding.select_rows(&train_rows)?;
    let test_x = embedded.embedding.select_rows(&test_rows)?;
    let mut knn = KnnClassifier::new(config.knn_k)?;
    knn.fit(&train_x, &train_labels)?;
    let predicted = knn.predict(&test_x)?;

    let truth: Vec<usize> = test_rows.iter().map(|&p| labels[p]).collect();
    let overall_accuracy = accuracy(&predicted, &truth)?;
    let n_conditions = n_points / n_subjects;
    let mut per_condition_accuracy = Vec::with_capacity(n_conditions);
    for cond in 0..n_conditions {
        let pairs: Vec<(usize, usize)> = predicted
            .iter()
            .zip(&truth)
            .filter(|&(_, &t)| t == cond)
            .map(|(&p, &t)| (p, t))
            .collect();
        let acc = if pairs.is_empty() {
            f64::NAN
        } else {
            pairs.iter().filter(|(p, t)| p == t).count() as f64 / pairs.len() as f64
        };
        per_condition_accuracy.push(acc);
    }

    Ok(TaskIdOutcome {
        embedding: embedded.embedding,
        labels: labels.clone(),
        subjects: subjects.clone(),
        predicted,
        unlabeled_points: test_rows,
        overall_accuracy,
        per_condition_accuracy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurodeanon_datasets::{HcpCohort, HcpCohortConfig, Session, Task};

    fn quick_tsne() -> TsneConfig {
        TsneConfig {
            perplexity: 10.0,
            n_iter: 300,
            exaggeration_iters: 60,
            momentum_switch: 120,
            ..TsneConfig::default()
        }
    }

    #[test]
    fn identifies_tasks_on_small_cohort() {
        let cohort = HcpCohort::generate(HcpCohortConfig::small(8, 3)).unwrap();
        let conditions = [Task::Rest, Task::Motor, Task::Language, Task::Emotion];
        let groups: Vec<_> = conditions
            .iter()
            .map(|&t| cohort.group_matrix(t, Session::One).unwrap())
            .collect();
        let out = identify_tasks(
            &groups,
            &TaskIdConfig {
                tsne: quick_tsne(),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.embedding.shape(), (32, 2));
        assert_eq!(out.labels.len(), 32);
        assert!(
            out.overall_accuracy > 0.7,
            "accuracy {}",
            out.overall_accuracy
        );
        assert_eq!(out.per_condition_accuracy.len(), 4);
    }

    #[test]
    fn point_bookkeeping_is_condition_major() {
        let cohort = HcpCohort::generate(HcpCohortConfig::small(5, 4)).unwrap();
        let groups: Vec<_> = [Task::Rest, Task::Motor]
            .iter()
            .map(|&t| cohort.group_matrix(t, Session::One).unwrap())
            .collect();
        let out = identify_tasks(
            &groups,
            &TaskIdConfig {
                tsne: TsneConfig {
                    perplexity: 3.0,
                    n_iter: 50,
                    ..quick_tsne()
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.labels[..5], [0, 0, 0, 0, 0]);
        assert_eq!(out.labels[5..], [1, 1, 1, 1, 1]);
        assert_eq!(out.subjects[..5], [0, 1, 2, 3, 4]);
    }

    #[test]
    fn validations() {
        let cohort = HcpCohort::generate(HcpCohortConfig::small(5, 4)).unwrap();
        let g = cohort.group_matrix(Task::Rest, Session::One).unwrap();
        assert!(identify_tasks(std::slice::from_ref(&g), &TaskIdConfig::default()).is_err());
        let cfg = TaskIdConfig {
            labeled_fraction: 1.0,
            ..Default::default()
        };
        assert!(identify_tasks(&[g.clone(), g], &cfg).is_err());
    }
}
