//! Subject matching from a similarity matrix.
//!
//! The paper's rule: "Pairs of subjects with high correlation correspond to
//! predicted matches" — per anonymous subject, take the known subject with
//! the highest correlation ([`argmax_matching`]). The ablation additionally
//! evaluates the globally optimal one-to-one assignment
//! ([`hungarian_matching`], Kuhn–Munkres on the negated similarity).
//!
//! The closed-world rules above always name *some* gallery subject. The
//! open-world layer (DESIGN.md §1.4) is built from two additions:
//! [`match_scores`], the score-returning variant exposing each column's
//! best candidate plus its margin over the runner-up, and [`decide`] /
//! [`decide_matching`], the margin-thresholded decision rule mapping every
//! query to [`Decision::Match`] or [`Decision::Reject`].

use crate::error::CoreError;
use crate::Result;
use neurodeanon_linalg::{par, Matrix};

/// Minimum similarity-matrix element count before `argmax_matching` spreads
/// columns over threads; each element costs one strided load + compare.
const MATCH_PAR_THRESHOLD: usize = 1 << 16;

/// Per-column argmax: `result[j]` = row index of the best-matching known
/// subject for anonymous subject `j`.
///
/// Columns are scanned independently (one per chunk), each with the same
/// sequential first-max-wins rule as [`neurodeanon_linalg::vector::argmax`]
/// (NaN entries skipped), so the prediction vector is identical at any
/// thread count.
pub fn argmax_matching(similarity: &Matrix) -> Result<Vec<usize>> {
    let out = argmax_matching_lenient(similarity)?;
    if let Some(column) = out.iter().position(|&p| p == usize::MAX) {
        // An all-NaN column would previously fall through Vector::argmax
        // and silently corrupt downstream accuracy; it is a typed error.
        return Err(CoreError::UnmatchableColumn { column });
    }
    Ok(out)
}

/// [`argmax_matching`] that tolerates unmatchable columns: a column with no
/// finite entry yields the sentinel `usize::MAX` ("no prediction") instead
/// of an error. This is the matching rule of the `Mask` degradation policy,
/// where a whole-missing anonymous subject must count as a miss rather than
/// abort the attack on every other subject.
pub fn argmax_matching_lenient(similarity: &Matrix) -> Result<Vec<usize>> {
    let _span = neurodeanon_obs::span("match.argmax");
    if similarity.is_empty() {
        return Err(CoreError::InvalidParameter {
            name: "similarity",
            reason: "empty similarity matrix",
        });
    }
    let rows = similarity.rows();
    let mut out = vec![usize::MAX; similarity.cols()];
    par::par_chunks_mut(&mut out, 1, rows, MATCH_PAR_THRESHOLD, |j, slot| {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..rows {
            let v = similarity[(i, j)];
            if v.is_nan() {
                continue;
            }
            match best {
                Some((_, bv)) if bv >= v => {}
                _ => best = Some((i, v)),
            }
        }
        if let Some((bi, _)) = best {
            slot[0] = bi;
        }
    });
    Ok(out)
}

/// Verdict of the open-world decision layer for one anonymous query.
///
/// `Reject` is the first-class form of the CLI's historical
/// `unidentifiable` sentinel: a cautious attacker (or an honest evaluator
/// facing impostor queries) declines to name anyone rather than fabricate
/// a low-confidence identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Accepted: the predicted known-subject (gallery) index.
    Match(usize),
    /// Rejected as unidentifiable — the margin fell below the threshold or
    /// the query had no usable candidate at all.
    Reject,
}

impl Decision {
    /// The accepted gallery index, `None` on rejection.
    pub fn matched(self) -> Option<usize> {
        match self {
            Decision::Match(i) => Some(i),
            Decision::Reject => None,
        }
    }

    /// Whether this query was rejected.
    pub fn is_reject(self) -> bool {
        self == Decision::Reject
    }
}

/// Best candidate of one similarity column, with the evidence the decision
/// layer thresholds on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchScore {
    /// Row index of the best finite entry (first-max-wins, bit-identical
    /// to [`argmax_matching_lenient`]).
    pub best: usize,
    /// The best similarity itself.
    pub score: f64,
    /// Gap to the runner-up (`best − second`). `NaN` when no finite
    /// runner-up exists (single-row gallery): the margin is *undefined*,
    /// not infinitely confident — mirroring
    /// [`AttackOutcome::match_margins`](crate::AttackOutcome::match_margins).
    pub margin: f64,
}

/// Per-column best scores: `result[j]` describes the strongest known-subject
/// candidate for anonymous subject `j`, or `None` when the column has no
/// finite entry. The `best` indices are exactly
/// [`argmax_matching_lenient`]'s predictions (same first-max-wins scan,
/// same NaN skipping), so score-based and index-based call sites agree
/// bit-for-bit at any thread count.
pub fn match_scores(similarity: &Matrix) -> Result<Vec<Option<MatchScore>>> {
    if similarity.is_empty() {
        return Err(CoreError::InvalidParameter {
            name: "similarity",
            reason: "empty similarity matrix",
        });
    }
    let rows = similarity.rows();
    let mut out: Vec<Option<MatchScore>> = vec![None; similarity.cols()];
    par::par_chunks_mut(&mut out, 1, rows, MATCH_PAR_THRESHOLD, |j, slot| {
        let mut best: Option<(usize, f64)> = None;
        let mut second = f64::NEG_INFINITY;
        for i in 0..rows {
            let v = similarity[(i, j)];
            if v.is_nan() {
                continue;
            }
            match best {
                Some((_, bv)) if bv >= v => {
                    if v > second {
                        second = v;
                    }
                }
                Some((_, bv)) => {
                    second = second.max(bv);
                    best = Some((i, v));
                }
                None => best = Some((i, v)),
            }
        }
        slot[0] = best.map(|(bi, bv)| MatchScore {
            best: bi,
            score: bv,
            margin: if second.is_finite() {
                bv - second
            } else {
                f64::NAN
            },
        });
    });
    Ok(out)
}

/// The margin-thresholded decision rule: a query matches its best candidate
/// when its margin is at least `margin_threshold`, and is rejected
/// otherwise (or when it has no candidate at all).
///
/// Contract details:
/// * A threshold of `0.0` (or anything non-positive) never rejects a
///   query with a genuine argmax — margins are non-negative by
///   construction, so thresholding only begins to bite above zero.
/// * An *undefined* margin (`NaN`, single-row gallery) never rejects: with
///   no runner-up there is no evidence of ambiguity to threshold on.
pub fn decide(scores: &[Option<MatchScore>], margin_threshold: f64) -> Vec<Decision> {
    scores
        .iter()
        .map(|s| match s {
            None => Decision::Reject,
            // NaN < t is false, so undefined margins always accept.
            Some(ms) if ms.margin < margin_threshold => Decision::Reject,
            Some(ms) => Decision::Match(ms.best),
        })
        .collect()
}

/// [`match_scores`] composed with [`decide`]: one call from a similarity
/// matrix to open-world decisions.
pub fn decide_matching(similarity: &Matrix, margin_threshold: f64) -> Result<Vec<Decision>> {
    Ok(decide(&match_scores(similarity)?, margin_threshold))
}

/// Optimal one-to-one assignment maximizing total similarity (Kuhn–Munkres,
/// a.k.a. Hungarian algorithm, O(n³)). Requires a square matrix; `result[j]`
/// = the known subject assigned to anonymous subject `j`.
pub fn hungarian_matching(similarity: &Matrix) -> Result<Vec<usize>> {
    let _span = neurodeanon_obs::span("match.hungarian");
    let n = similarity.rows();
    if n == 0 || similarity.cols() != n {
        return Err(CoreError::InvalidParameter {
            name: "similarity",
            reason: "hungarian matching needs a non-empty square matrix",
        });
    }
    if !similarity.is_finite() {
        // Same typed-error contract as `argmax_matching`: a whole-missing
        // column names the unmatchable subject; any other non-finite cell
        // is a degraded similarity the assignment cannot rank (previously a
        // generic invalid-parameter error).
        for j in 0..n {
            if (0..n).all(|i| !similarity[(i, j)].is_finite()) {
                return Err(CoreError::UnmatchableColumn { column: j });
            }
        }
        let n_non_finite = similarity
            .as_slice()
            .iter()
            .filter(|v| !v.is_finite())
            .count();
        return Err(CoreError::NonFiniteInput {
            side: "similarity",
            n_non_finite,
        });
    }
    // Minimize cost = -similarity. Classic O(n³) potentials formulation
    // (1-indexed arrays with a virtual 0 row/column).
    let inf = f64::INFINITY;
    let cost = |i: usize, j: usize| -similarity[(i, j)];
    let mut u = vec![0.0_f64; n + 1];
    let mut v = vec![0.0_f64; n + 1];
    // way[j] = previous column in the augmenting path; p[j] = row matched
    // to column j (0 = unmatched virtual row).
    let mut p = vec![0usize; n + 1];
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    // p[j] = row assigned to column j (1-indexed).
    let mut out = vec![0usize; n];
    for j in 1..=n {
        out[j - 1] = p[j] - 1;
    }
    Ok(out)
}

/// Fraction of columns whose predicted row equals the ground-truth row
/// (`truth[j]` = correct known index for anonymous subject `j`).
pub fn matching_accuracy(predicted: &[usize], truth: &[usize]) -> Result<f64> {
    if predicted.len() != truth.len() || predicted.is_empty() {
        return Err(CoreError::InvalidParameter {
            name: "predicted",
            reason: "prediction/truth length mismatch or empty",
        });
    }
    let hits = predicted.iter().zip(truth).filter(|(a, b)| a == b).count();
    Ok(hits as f64 / predicted.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_picks_column_maxima() {
        let s = Matrix::from_rows(&[&[0.9, 0.1, 0.2], &[0.3, 0.8, 0.1], &[0.2, 0.4, 0.7]]).unwrap();
        assert_eq!(argmax_matching(&s).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn argmax_allows_double_assignment() {
        // Greedy rule can map two anon columns to the same known row.
        let s = Matrix::from_rows(&[&[0.9, 0.8], &[0.1, 0.2]]).unwrap();
        assert_eq!(argmax_matching(&s).unwrap(), vec![0, 0]);
    }

    #[test]
    fn hungarian_resolves_conflicts_optimally() {
        // Same matrix: optimal assignment must be a permutation with total
        // 0.9 + 0.2 = 1.1 (vs 0.8 + 0.1 = 0.9 for the swap).
        let s = Matrix::from_rows(&[&[0.9, 0.8], &[0.1, 0.2]]).unwrap();
        assert_eq!(hungarian_matching(&s).unwrap(), vec![0, 1]);
    }

    #[test]
    fn hungarian_on_identity_like() {
        let n = 6;
        let s = Matrix::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 });
        let m = hungarian_matching(&s).unwrap();
        assert_eq!(m, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn hungarian_is_a_permutation() {
        let s = Matrix::from_fn(8, 8, |i, j| (((i * 7 + j * 13) % 11) as f64) / 11.0);
        let m = hungarian_matching(&s).unwrap();
        let mut sorted = m.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn hungarian_maximizes_total() {
        // Brute-force check on a 4×4.
        let s = Matrix::from_fn(4, 4, |i, j| (((i * 5 + j * 3) % 7) as f64) * 0.1);
        let m = hungarian_matching(&s).unwrap();
        let total: f64 = m.iter().enumerate().map(|(j, &i)| s[(i, j)]).sum();
        // Enumerate all 24 permutations.
        let mut best = f64::NEG_INFINITY;
        let perm = [0usize, 1, 2, 3];
        let mut idx = perm;
        // Heap's algorithm (fixed size 4).
        fn heap(k: usize, arr: &mut [usize; 4], s: &Matrix, best: &mut f64) {
            if k == 1 {
                let total: f64 = arr.iter().enumerate().map(|(j, &i)| s[(i, j)]).sum();
                if total > *best {
                    *best = total;
                }
                return;
            }
            for i in 0..k {
                heap(k - 1, arr, s, best);
                if k % 2 == 0 {
                    arr.swap(i, k - 1);
                } else {
                    arr.swap(0, k - 1);
                }
            }
        }
        heap(4, &mut idx, &s, &mut best);
        assert!(
            (total - best).abs() < 1e-9,
            "hungarian {total} vs best {best}"
        );
    }

    #[test]
    fn all_nan_column_is_typed_error() {
        // Regression: this used to surface as a generic invalid-parameter
        // error (and before that, silently as whatever Vector::argmax did).
        let mut s = Matrix::from_fn(3, 3, |i, j| ((i + j) % 3) as f64 * 0.1);
        for i in 0..3 {
            s[(i, 1)] = f64::NAN;
        }
        assert!(matches!(
            argmax_matching(&s),
            Err(CoreError::UnmatchableColumn { column: 1 })
        ));
        // The lenient variant reports the sentinel instead.
        let lenient = argmax_matching_lenient(&s).unwrap();
        assert_eq!(lenient[1], usize::MAX);
        assert_ne!(lenient[0], usize::MAX);
        assert_ne!(lenient[2], usize::MAX);
    }

    #[test]
    fn hungarian_one_by_one_assigns_the_only_pair() {
        let s = Matrix::from_rows(&[&[0.3]]).unwrap();
        assert_eq!(hungarian_matching(&s).unwrap(), vec![0]);
    }

    #[test]
    fn hungarian_non_square_is_rejected() {
        assert!(matches!(
            hungarian_matching(&Matrix::zeros(2, 3)),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(matches!(
            hungarian_matching(&Matrix::zeros(3, 2)),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn hungarian_all_nan_column_is_typed_error() {
        // Parity with `argmax_matching`'s all_nan_column_is_typed_error:
        // the unmatchable subject is named, not folded into a generic
        // parameter error.
        let mut s = Matrix::from_fn(3, 3, |i, j| ((i + j) % 3) as f64 * 0.1);
        for i in 0..3 {
            s[(i, 2)] = f64::NAN;
        }
        assert!(matches!(
            hungarian_matching(&s),
            Err(CoreError::UnmatchableColumn { column: 2 })
        ));
    }

    #[test]
    fn hungarian_partially_degraded_similarity_is_typed_error() {
        let mut s = Matrix::from_fn(3, 3, |i, j| ((i * 3 + j) % 5) as f64 * 0.1);
        s[(0, 1)] = f64::NAN;
        s[(2, 0)] = f64::INFINITY;
        match hungarian_matching(&s) {
            Err(CoreError::NonFiniteInput {
                side: "similarity",
                n_non_finite,
            }) => assert_eq!(n_non_finite, 2),
            other => panic!("expected NonFiniteInput, got {other:?}"),
        }
    }

    #[test]
    fn match_scores_agree_with_lenient_argmax() {
        let mut s =
            Matrix::from_rows(&[&[0.9, 0.1, 0.2], &[0.3, 0.8, 0.1], &[0.2, 0.4, 0.7]]).unwrap();
        s[(0, 1)] = f64::NAN;
        let scores = match_scores(&s).unwrap();
        let lenient = argmax_matching_lenient(&s).unwrap();
        for (j, sc) in scores.iter().enumerate() {
            assert_eq!(sc.unwrap().best, lenient[j]);
        }
        // Column 0: best 0.9 over runner-up 0.3.
        let ms = scores[0].unwrap();
        assert_eq!(ms.best, 0);
        assert_eq!(ms.score, 0.9);
        assert!((ms.margin - 0.6).abs() < 1e-12);
    }

    #[test]
    fn match_scores_margin_undefined_with_single_row() {
        let s = Matrix::from_rows(&[&[0.5, -0.2]]).unwrap();
        let scores = match_scores(&s).unwrap();
        for sc in &scores {
            let ms = sc.unwrap();
            assert_eq!(ms.best, 0);
            assert!(ms.margin.is_nan());
        }
        // Undefined margins never reject, at any threshold.
        let d = decide(&scores, 10.0);
        assert_eq!(d, vec![Decision::Match(0), Decision::Match(0)]);
    }

    #[test]
    fn match_scores_none_for_all_nan_column() {
        let mut s = Matrix::from_fn(2, 2, |_, _| 0.1);
        s[(0, 1)] = f64::NAN;
        s[(1, 1)] = f64::NAN;
        let scores = match_scores(&s).unwrap();
        assert!(scores[0].is_some());
        assert!(scores[1].is_none());
        assert_eq!(
            decide(&scores, f64::NEG_INFINITY),
            vec![Decision::Match(0), Decision::Reject]
        );
    }

    #[test]
    fn zero_threshold_never_rejects_a_genuine_argmax() {
        let s = Matrix::from_fn(4, 5, |i, j| (((i * 7 + j * 3) % 11) as f64) / 11.0);
        let decisions = decide_matching(&s, 0.0).unwrap();
        let argmax = argmax_matching(&s).unwrap();
        for (d, &p) in decisions.iter().zip(&argmax) {
            assert_eq!(*d, Decision::Match(p));
        }
        // Ties produce margin 0, which a zero threshold still accepts.
        let tied = Matrix::from_rows(&[&[0.5, 0.5], &[0.5, 0.1]]).unwrap();
        let d = decide_matching(&tied, 0.0).unwrap();
        assert_eq!(d, vec![Decision::Match(0), Decision::Match(0)]);
    }

    #[test]
    fn rejections_grow_monotonically_with_the_threshold() {
        let s = Matrix::from_fn(6, 8, |i, j| (((i * 13 + j * 5) % 17) as f64) / 17.0);
        let scores = match_scores(&s).unwrap();
        let mut last = 0usize;
        for t in [0.0, 0.05, 0.1, 0.3, 0.8, 2.0] {
            let n_rej = decide(&scores, t).iter().filter(|d| d.is_reject()).count();
            assert!(n_rej >= last, "rejections shrank at threshold {t}");
            last = n_rej;
        }
        assert_eq!(last, 8, "a threshold above any margin rejects everyone");
    }

    #[test]
    fn decision_accessors() {
        assert_eq!(Decision::Match(3).matched(), Some(3));
        assert_eq!(Decision::Reject.matched(), None);
        assert!(Decision::Reject.is_reject());
        assert!(!Decision::Match(0).is_reject());
    }

    #[test]
    fn argmax_skips_nan_entries() {
        let mut s = Matrix::from_rows(&[&[0.9, 0.1], &[0.3, 0.8]]).unwrap();
        s[(0, 0)] = f64::NAN;
        assert_eq!(argmax_matching(&s).unwrap(), vec![1, 1]);
    }

    #[test]
    fn validations() {
        assert!(argmax_matching(&Matrix::zeros(0, 0)).is_err());
        assert!(argmax_matching_lenient(&Matrix::zeros(0, 0)).is_err());
        assert!(hungarian_matching(&Matrix::zeros(2, 3)).is_err());
        let mut s = Matrix::zeros(2, 2);
        s[(0, 0)] = f64::NAN;
        assert!(hungarian_matching(&s).is_err());
        assert!(matching_accuracy(&[0], &[0, 1]).is_err());
        assert_eq!(
            matching_accuracy(&[0, 1, 1], &[0, 1, 2]).unwrap(),
            2.0 / 3.0
        );
    }
}
