//! Deterministic open-world enrollment splits.
//!
//! The paper's protocol is closed-world: every anonymous query subject is
//! guaranteed to be enrolled in the de-anonymized gallery. Real linkage
//! (e.g. cross-dataset ADNI-style attacks) is open-world — most queries
//! have no gallery counterpart and a credible attack must *reject* them.
//! This module produces the split an open-world evaluation needs: a seeded
//! partition of a cohort's subjects into **enrolled** (present in the
//! gallery) and **impostors** (queried but never enrolled), modeled on the
//! `enroll` / `anon_test` split scheme of the seba evaluation pipeline
//! (SNIPPETS.md §3).
//!
//! Determinism contract (DESIGN.md §1.4): a split is a pure function of
//! `(n_subjects, enroll_rate, seed)` — no thread count, no global state —
//! and both index lists are returned **sorted ascending**, so an enrollment
//! rate of `1.0` yields the identity subject selection and the downstream
//! attack collapses bit-for-bit onto the historical closed-world path.

use crate::error::CoreError;
use crate::Result;
use neurodeanon_connectome::GroupMatrix;
use neurodeanon_linalg::Rng64;

/// A seeded open-world partition of `n_subjects` query subjects.
#[derive(Debug, Clone, PartialEq)]
pub struct EnrollmentSplit {
    /// Subject indices enrolled in the gallery, sorted ascending.
    enrolled: Vec<usize>,
    /// Subject indices absent from the gallery (impostor queries), sorted
    /// ascending. Disjoint from `enrolled`; the union is `0..n_subjects`.
    impostors: Vec<usize>,
    /// The requested enrollment rate.
    pub enroll_rate: f64,
    /// The seed the partition was drawn from.
    pub seed: u64,
}

impl EnrollmentSplit {
    /// Gallery-side subject indices (sorted ascending).
    pub fn enrolled(&self) -> &[usize] {
        &self.enrolled
    }

    /// Impostor subject indices (sorted ascending).
    pub fn impostors(&self) -> &[usize] {
        &self.impostors
    }

    /// Total subjects the split partitions.
    pub fn n_subjects(&self) -> usize {
        self.enrolled.len() + self.impostors.len()
    }

    /// Whether the given subject index is enrolled.
    pub fn is_enrolled(&self, subject: usize) -> bool {
        self.enrolled.binary_search(&subject).is_ok()
    }

    /// The gallery: the known-side group restricted to the enrolled
    /// subjects. Because the enrolled list is sorted, a rate-1.0 split
    /// returns a column-order-preserving copy — bit-identical input to the
    /// closed-world attack.
    pub fn gallery(&self, known: &GroupMatrix) -> Result<GroupMatrix> {
        if known.n_subjects() != self.n_subjects() {
            return Err(CoreError::InvalidParameter {
                name: "known",
                reason: "group subject count differs from the split's",
            });
        }
        Ok(known.select_subjects(&self.enrolled)?)
    }
}

/// Draws the enrollment split: `round(enroll_rate · n_subjects)` subjects
/// (clamped to at least one — an empty gallery cannot be attacked) are
/// enrolled uniformly at random from a seeded shuffle; the rest become
/// impostor queries.
///
/// Deterministic and thread-count-independent: the only randomness is the
/// sequential [`Rng64`] stream of `seed`, so the same arguments reproduce
/// the same split bit-for-bit anywhere.
pub fn enrollment_split(n_subjects: usize, enroll_rate: f64, seed: u64) -> Result<EnrollmentSplit> {
    if n_subjects == 0 {
        return Err(CoreError::InvalidParameter {
            name: "n_subjects",
            reason: "cannot split an empty cohort",
        });
    }
    if !enroll_rate.is_finite() || !(0.0..=1.0).contains(&enroll_rate) {
        return Err(CoreError::InvalidParameter {
            name: "enroll_rate",
            reason: "must be a finite fraction in [0, 1]",
        });
    }
    let n_enrolled = ((enroll_rate * n_subjects as f64).round() as usize).clamp(1, n_subjects);
    let mut order: Vec<usize> = (0..n_subjects).collect();
    Rng64::new(seed).shuffle(&mut order);
    let mut enrolled = order[..n_enrolled].to_vec();
    let mut impostors = order[n_enrolled..].to_vec();
    enrolled.sort_unstable();
    impostors.sort_unstable();
    Ok(EnrollmentSplit {
        enrolled,
        impostors,
        enroll_rate,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_partitions_the_cohort() {
        let s = enrollment_split(20, 0.4, 7).unwrap();
        assert_eq!(s.enrolled().len(), 8);
        assert_eq!(s.impostors().len(), 12);
        let mut all: Vec<usize> = s.enrolled().iter().chain(s.impostors()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
        // Sorted and disjoint by construction.
        assert!(s.enrolled().windows(2).all(|w| w[0] < w[1]));
        assert!(s.impostors().windows(2).all(|w| w[0] < w[1]));
        assert!(s.impostors().iter().all(|&i| !s.is_enrolled(i)));
        assert!(s.enrolled().iter().all(|&i| s.is_enrolled(i)));
    }

    #[test]
    fn full_enrollment_is_the_identity_selection() {
        let s = enrollment_split(9, 1.0, 123).unwrap();
        assert_eq!(s.enrolled(), (0..9).collect::<Vec<_>>());
        assert!(s.impostors().is_empty());
    }

    #[test]
    fn rate_zero_still_enrolls_one_subject() {
        let s = enrollment_split(5, 0.0, 3).unwrap();
        assert_eq!(s.enrolled().len(), 1);
        assert_eq!(s.impostors().len(), 4);
    }

    #[test]
    fn split_is_seed_replayable_and_seed_sensitive() {
        let a = enrollment_split(30, 0.5, 42).unwrap();
        let b = enrollment_split(30, 0.5, 42).unwrap();
        assert_eq!(a, b);
        // Different seeds must (at this size) disagree on membership.
        let c = enrollment_split(30, 0.5, 43).unwrap();
        assert_ne!(a.enrolled(), c.enrolled());
    }

    #[test]
    fn validations() {
        assert!(enrollment_split(0, 0.5, 1).is_err());
        assert!(enrollment_split(10, -0.1, 1).is_err());
        assert!(enrollment_split(10, 1.5, 1).is_err());
        assert!(enrollment_split(10, f64::NAN, 1).is_err());
    }

    #[test]
    fn gallery_selects_enrolled_columns() {
        use neurodeanon_datasets::{HcpCohort, HcpCohortConfig, Session, Task};
        let c = HcpCohort::generate(HcpCohortConfig::small(6, 5)).unwrap();
        let known = c.group_matrix(Task::Rest, Session::One).unwrap();
        let s = enrollment_split(6, 0.5, 9).unwrap();
        let gallery = s.gallery(&known).unwrap();
        assert_eq!(gallery.n_subjects(), 3);
        for (col, &subj) in s.enrolled().iter().enumerate() {
            assert_eq!(gallery.subject_ids()[col], known.subject_ids()[subj]);
        }
        // Subject-count mismatch is a typed error.
        let other = enrollment_split(7, 0.5, 9).unwrap();
        assert!(other.gallery(&known).is_err());
    }
}
