//! Defenses against the de-anonymization attack (paper §4).
//!
//! The paper's closing contribution is that the attack *localizes* the
//! identity-bearing signature to a small set of connectome edges, which
//! tells a data publisher exactly where to intervene: "it provides a
//! localized region where noise can be added to most effectively defend
//! against such attacks." This module implements that defense and the
//! utility accounting the paper says any defense must be judged by.
//!
//! * [`signature_edges`] — the defender runs the attacker's own feature
//!   selection on the data it is about to release.
//! * [`perturb_edges`] — adds calibrated Gaussian noise to chosen edges of
//!   every subject's vectorized connectome (clamped to the valid
//!   correlation range).
//! * [`evaluate_defense`] — re-runs the attack against the defended release
//!   and reports residual identification accuracy plus the fraction of the
//!   connectome left untouched (a proxy for downstream-analysis utility).

use crate::attack::{AttackConfig, AttackPlan};
use crate::Result;
use neurodeanon_connectome::GroupMatrix;
use neurodeanon_linalg::{Matrix, Rng64};
use neurodeanon_sampling::principal_features;

/// A defense specification: which edges to perturb and how strongly.
#[derive(Debug, Clone)]
pub struct DefensePlan {
    /// Feature indices (into the vectorized connectome) to perturb.
    pub edges: Vec<usize>,
    /// Standard deviation of the added Gaussian noise.
    pub sigma: f64,
}

/// Outcome of a defense evaluation.
#[derive(Debug, Clone)]
pub struct DefenseOutcome {
    /// Identification accuracy before the defense.
    pub accuracy_before: f64,
    /// Identification accuracy against the defended release.
    pub accuracy_after: f64,
    /// Fraction of connectome features left untouched.
    pub untouched_fraction: f64,
}

/// Computes the signature edges of a release the way the attacker would:
/// the top-`t` leverage-score features of its group matrix.
pub fn signature_edges(release: &GroupMatrix, t: usize) -> Result<Vec<usize>> {
    let t = t.min(release.n_features());
    let pf = principal_features(release.as_matrix(), t.max(1), None)?;
    Ok(pf.indices)
}

/// Returns a copy of `release` with `N(0, sigma²)` noise added to the
/// listed edges of every subject, clamped to `[-1, 1]` (the valid range of
/// correlation features).
pub fn perturb_edges(
    release: &GroupMatrix,
    plan: &DefensePlan,
    rng: &mut Rng64,
) -> Result<GroupMatrix> {
    if !(plan.sigma >= 0.0 && plan.sigma.is_finite()) {
        return Err(crate::CoreError::InvalidParameter {
            name: "sigma",
            reason: "defense noise must be non-negative and finite",
        });
    }
    let mut data: Matrix = release.as_matrix().clone();
    for &f in &plan.edges {
        if f >= data.rows() {
            return Err(crate::CoreError::InvalidParameter {
                name: "edges",
                reason: "edge index beyond the connectome feature count",
            });
        }
        for s in 0..data.cols() {
            data[(f, s)] = (data[(f, s)] + plan.sigma * rng.gaussian()).clamp(-1.0, 1.0);
        }
    }
    GroupMatrix::from_matrix(data, release.subject_ids().to_vec(), release.n_regions())
        .map_err(Into::into)
}

/// Evaluates a defense: runs the attack on the original and the defended
/// release and reports residual accuracy plus untouched-feature fraction.
///
/// Prepares a fresh [`AttackPlan`] for the known group. Sweeps that
/// evaluate many defenses against the *same* known group should prepare
/// one plan and call [`evaluate_defense_with`] instead, paying for a
/// single factorization across the whole sweep.
pub fn evaluate_defense(
    known: &GroupMatrix,
    release: &GroupMatrix,
    plan: &DefensePlan,
    attack_config: AttackConfig,
    rng: &mut Rng64,
) -> Result<DefenseOutcome> {
    let mut attack = AttackPlan::prepare(known.clone(), attack_config)?;
    evaluate_defense_with(&mut attack, release, plan, rng)
}

/// [`evaluate_defense`] against a prepared attack plan: both the baseline
/// and the defended run reuse the plan's memoized known-side artifacts, so
/// the marginal cost per evaluation is two anonymous-side correlations.
pub fn evaluate_defense_with(
    attack: &mut AttackPlan,
    release: &GroupMatrix,
    plan: &DefensePlan,
    rng: &mut Rng64,
) -> Result<DefenseOutcome> {
    let before = attack.run_against(release)?;
    let defended = perturb_edges(release, plan, rng)?;
    let after = attack.run_against(&defended)?;
    Ok(DefenseOutcome {
        accuracy_before: before.accuracy,
        accuracy_after: after.accuracy,
        untouched_fraction: 1.0 - plan.edges.len() as f64 / release.n_features() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurodeanon_datasets::{HcpCohort, HcpCohortConfig, Session, Task};

    fn groups() -> (GroupMatrix, GroupMatrix) {
        let cohort = HcpCohort::generate(HcpCohortConfig::small(14, 33)).unwrap();
        (
            cohort.group_matrix(Task::Rest, Session::One).unwrap(),
            cohort.group_matrix(Task::Rest, Session::Two).unwrap(),
        )
    }

    #[test]
    fn targeted_noise_reduces_identification() {
        let (known, release) = groups();
        let edges = signature_edges(&release, 100).unwrap();
        let plan = DefensePlan { edges, sigma: 0.6 };
        let mut rng = Rng64::new(1);
        let out =
            evaluate_defense(&known, &release, &plan, AttackConfig::default(), &mut rng).unwrap();
        assert!(out.accuracy_before >= 0.8);
        assert!(
            out.accuracy_after < out.accuracy_before,
            "defense had no effect: {} -> {}",
            out.accuracy_before,
            out.accuracy_after
        );
        assert!(out.untouched_fraction > 0.9);
    }

    #[test]
    fn targeted_beats_untargeted_at_equal_budget() {
        let (known, release) = groups();
        let n_edges = 100;
        let sigma = 0.6;
        let targeted = DefensePlan {
            edges: signature_edges(&release, n_edges).unwrap(),
            sigma,
        };
        let mut rng = Rng64::new(2);
        let random_edges = rng.sample_indices(release.n_features(), n_edges);
        let untargeted = DefensePlan {
            edges: random_edges,
            sigma,
        };
        let t = evaluate_defense(
            &known,
            &release,
            &targeted,
            AttackConfig::default(),
            &mut rng,
        )
        .unwrap();
        let u = evaluate_defense(
            &known,
            &release,
            &untargeted,
            AttackConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(
            t.accuracy_after <= u.accuracy_after,
            "targeted {} vs untargeted {}",
            t.accuracy_after,
            u.accuracy_after
        );
    }

    #[test]
    fn zero_sigma_is_a_noop() {
        let (known, release) = groups();
        let plan = DefensePlan {
            edges: signature_edges(&release, 50).unwrap(),
            sigma: 0.0,
        };
        let mut rng = Rng64::new(3);
        let out =
            evaluate_defense(&known, &release, &plan, AttackConfig::default(), &mut rng).unwrap();
        assert_eq!(out.accuracy_before, out.accuracy_after);
    }

    #[test]
    fn validations() {
        let (_, release) = groups();
        let mut rng = Rng64::new(4);
        let bad_sigma = DefensePlan {
            edges: vec![0],
            sigma: f64::NAN,
        };
        assert!(perturb_edges(&release, &bad_sigma, &mut rng).is_err());
        let bad_edge = DefensePlan {
            edges: vec![release.n_features()],
            sigma: 0.1,
        };
        assert!(perturb_edges(&release, &bad_edge, &mut rng).is_err());
    }

    #[test]
    fn perturbed_features_stay_in_correlation_range() {
        let (_, release) = groups();
        let plan = DefensePlan {
            edges: (0..release.n_features()).collect(),
            sigma: 2.0, // extreme noise to force clamping
        };
        let mut rng = Rng64::new(5);
        let defended = perturb_edges(&release, &plan, &mut rng).unwrap();
        assert!(defended
            .as_matrix()
            .as_slice()
            .iter()
            .all(|v| (-1.0..=1.0).contains(v)));
    }
}
