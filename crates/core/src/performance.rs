//! Task-performance prediction (§3.3.3 / Table 1 of the paper).
//!
//! Protocol per repetition: random train/test subject split (80/20 by
//! default), leverage features computed from the *train* group matrix only,
//! both sides restricted to those features, linear ε-SVR fitted on train,
//! normalized RMSE reported on both sides. The paper repeats 1000 times and
//! reports mean ± std.

use crate::error::CoreError;
use crate::Result;
use neurodeanon_connectome::GroupMatrix;
use neurodeanon_linalg::stats::nrmse_percent;
use neurodeanon_linalg::Rng64;
use neurodeanon_ml::metrics::mean_std;
use neurodeanon_ml::{train_test_split, Svr, SvrConfig};
use neurodeanon_sampling::principal_features;

/// Configuration for the performance-prediction experiment.
#[derive(Debug, Clone)]
pub struct PerfConfig {
    /// Leverage features retained from the train group matrix.
    pub n_features: usize,
    /// Fraction of subjects held out for testing (paper: 20/100).
    pub test_fraction: f64,
    /// SVR hyper-parameters.
    pub svr: SvrConfig,
    /// Number of random-split repetitions (paper: 1000).
    pub n_repeats: usize,
    /// Seed for the split stream.
    pub seed: u64,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            n_features: 250,
            test_fraction: 0.2,
            svr: SvrConfig::default(),
            n_repeats: 50,
            seed: 0x1ab1e,
        }
    }
}

/// Outcome over all repetitions.
#[derive(Debug, Clone)]
pub struct PerfOutcome {
    /// Train nRMSE (%) per repetition.
    pub train_nrmse: Vec<f64>,
    /// Test nRMSE (%) per repetition.
    pub test_nrmse: Vec<f64>,
}

impl PerfOutcome {
    /// Train nRMSE mean ± std, the left column of Table 1.
    pub fn train_summary(&self) -> (f64, f64) {
        mean_std(&self.train_nrmse).unwrap_or((f64::NAN, f64::NAN))
    }

    /// Test nRMSE mean ± std, the right column of Table 1.
    pub fn test_summary(&self) -> (f64, f64) {
        mean_std(&self.test_nrmse).unwrap_or((f64::NAN, f64::NAN))
    }
}

/// Runs the repeated-split performance prediction for one task's group
/// matrix and per-subject performance targets.
pub fn predict_performance(
    group: &GroupMatrix,
    targets: &[f64],
    config: &PerfConfig,
) -> Result<PerfOutcome> {
    let n = group.n_subjects();
    if targets.len() != n {
        return Err(CoreError::InvalidParameter {
            name: "targets",
            reason: "one target per subject required",
        });
    }
    if n < 5 {
        return Err(CoreError::InvalidParameter {
            name: "group",
            reason: "need at least 5 subjects for a meaningful split",
        });
    }
    if config.n_repeats == 0 || config.n_features == 0 {
        return Err(CoreError::InvalidParameter {
            name: "config",
            reason: "n_repeats and n_features must be positive",
        });
    }
    let mut rng = Rng64::new(config.seed);
    let mut train_nrmse = Vec::with_capacity(config.n_repeats);
    let mut test_nrmse = Vec::with_capacity(config.n_repeats);
    for _rep in 0..config.n_repeats {
        let split = train_test_split(n, config.test_fraction, &mut rng)?;
        let train_group = group.select_subjects(&split.train)?;
        let t = config.n_features.min(train_group.n_features());
        let pf = principal_features(train_group.as_matrix(), t, None)?;
        let train_x = train_group.select_features(&pf.indices)?.to_points();
        let test_x = group
            .select_subjects(&split.test)?
            .select_features(&pf.indices)?
            .to_points();
        let train_y: Vec<f64> = split.train.iter().map(|&s| targets[s]).collect();
        let test_y: Vec<f64> = split.test.iter().map(|&s| targets[s]).collect();

        let mut svr = Svr::new(config.svr.clone())?;
        svr.fit(&train_x, &train_y)?;
        let train_pred = svr.predict(&train_x)?;
        let test_pred = svr.predict(&test_x)?;
        train_nrmse.push(nrmse_percent(&train_pred, &train_y)?);
        test_nrmse.push(nrmse_percent(&test_pred, &test_y)?);
    }
    Ok(PerfOutcome {
        train_nrmse,
        test_nrmse,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurodeanon_datasets::{HcpCohort, HcpCohortConfig, Session, Task};

    #[test]
    fn predicts_language_performance_with_low_error() {
        let cohort = HcpCohort::generate(HcpCohortConfig::small(50, 5)).unwrap();
        let group = cohort.group_matrix(Task::Language, Session::One).unwrap();
        let targets = cohort.performance_vector(Task::Language).unwrap();
        let out = predict_performance(
            &group,
            &targets,
            &PerfConfig {
                n_repeats: 5,
                ..Default::default()
            },
        )
        .unwrap();
        let (train_mean, _) = out.train_summary();
        let (test_mean, _) = out.test_summary();
        assert!(train_mean < 15.0, "train nRMSE {train_mean}%");
        assert!(test_mean < 30.0, "test nRMSE {test_mean}%");
        // Train error must not exceed test error on average.
        assert!(train_mean <= test_mean + 1.0);
        assert_eq!(out.train_nrmse.len(), 5);
    }

    #[test]
    fn beats_mean_predictor() {
        // The SVR on leverage features must do better than predicting the
        // train mean everywhere.
        let cohort = HcpCohort::generate(HcpCohortConfig::small(60, 8)).unwrap();
        let group = cohort.group_matrix(Task::Emotion, Session::One).unwrap();
        let targets = cohort.performance_vector(Task::Emotion).unwrap();
        let out = predict_performance(
            &group,
            &targets,
            &PerfConfig {
                n_repeats: 8,
                ..Default::default()
            },
        )
        .unwrap();
        // Mean-predictor nRMSE: std/range × 100 ≈ baseline.
        let mean = targets.iter().sum::<f64>() / targets.len() as f64;
        let baseline: Vec<f64> = vec![mean; targets.len()];
        let base_err = nrmse_percent(&baseline, &targets).unwrap();
        let (test_mean, _) = out.test_summary();
        assert!(
            test_mean < base_err,
            "SVR {test_mean}% vs mean-predictor {base_err}%"
        );
    }

    #[test]
    fn validations() {
        let cohort = HcpCohort::generate(HcpCohortConfig::small(6, 5)).unwrap();
        let group = cohort.group_matrix(Task::Language, Session::One).unwrap();
        let targets = cohort.performance_vector(Task::Language).unwrap();
        assert!(predict_performance(&group, &targets[..3], &PerfConfig::default()).is_err());
        let bad = PerfConfig {
            n_repeats: 0,
            ..Default::default()
        };
        assert!(predict_performance(&group, &targets, &bad).is_err());
    }
}
