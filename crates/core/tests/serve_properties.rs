//! Property suite for the attack-as-a-service layer (DESIGN.md §1.7).
//!
//! The serve contract under test:
//!
//! 1. **Batched GEMM ≡ one-shot pipeline, bitwise.** The similarity matrix
//!    of [`AttackPlan::correlate_batch`] matches the one-shot
//!    [`AttackPlan::run_with`] similarity column-for-column at the bit
//!    level, for every dtype, thread count, and batch size — including
//!    ragged packings (a batch split into uneven sub-batches concatenates
//!    to the same bits).
//! 2. **Responses are packing- and parallelism-invariant.** A
//!    [`MatchServer`] answers every query identically no matter how many
//!    workers run, how queries fold into batches, or in what order they
//!    arrive.
//! 3. **Faults isolate.** Under injected chaos (malformed payloads, NaN
//!    payloads, worker panics), exactly the faulted queries receive typed
//!    errors; every other query's response is bit-identical to the
//!    fault-free run.
//! 4. **Degraded queries follow the policy paths.** Non-finite queries
//!    under `Mask`/`Impute` answer exactly like the one-shot degraded
//!    pipeline on a one-subject group.
//! 5. **Nothing is lost.** Backpressure, worker death, and shutdown all
//!    preserve the accepted-implies-answered invariant
//!    (`ServeReport::clean_drain`).

use neurodeanon_connectome::GroupMatrix;
use neurodeanon_core::attack::{AttackConfig, AttackPlan, MatchRule};
use neurodeanon_core::serve::{
    MatchServer, Query, QueryError, QueryResult, ServeConfig, ServeReport, SubmitError,
};
use neurodeanon_core::{DegradedInput, Dtype};
use neurodeanon_datasets::{
    ChaosSpec, HcpCohort, HcpCohortConfig, ServiceFaultKind, Session, Task,
};
use neurodeanon_linalg::par::with_thread_count;
use neurodeanon_linalg::Matrix;
use std::time::Duration;

fn cohort(n: usize, seed: u64) -> HcpCohort {
    HcpCohort::generate(HcpCohortConfig::small(n, seed)).unwrap()
}

fn config(dtype: Dtype, degraded: DegradedInput, reject_margin: Option<f64>) -> AttackConfig {
    AttackConfig {
        n_features: 48,
        dtype,
        degraded,
        reject_margin,
        ..Default::default()
    }
}

/// The columns of a group matrix as owned full-length query payloads.
fn payloads(group: &GroupMatrix) -> Vec<Vec<f64>> {
    let m = group.as_matrix();
    (0..m.cols())
        .map(|j| (0..m.rows()).map(|r| m[(r, j)]).collect())
        .collect()
}

/// A one-subject group wrapping one payload (the solo reference shape).
fn singleton_group(values: &[f64], id: &str, n_regions: usize) -> GroupMatrix {
    let data = Matrix::from_fn(values.len(), 1, |r, _| values[r]);
    GroupMatrix::from_matrix(data, vec![id.to_string()], n_regions).unwrap()
}

/// Starts a server, submits every query, waits for all replies, shuts down.
fn run_server(
    plan: AttackPlan,
    cfg: ServeConfig,
    queries: &[Query],
) -> (Vec<QueryResult>, ServeReport) {
    let server = MatchServer::start(plan, cfg).unwrap();
    let receivers: Vec<_> = queries
        .iter()
        .map(|q| {
            server
                .submit(q.clone())
                .map_err(|(q, e)| format!("submit {} failed: {e}", q.id))
                .unwrap()
        })
        .collect();
    let results = receivers
        .into_iter()
        .map(|rx| rx.recv().expect("every accepted query must be answered"))
        .collect();
    (results, server.shutdown())
}

/// Bitwise response equality: scores and margins compared as bits so NaN
/// margins (no runner-up) compare equal too.
fn assert_same_result(a: &QueryResult, b: &QueryResult, what: &str) {
    match (a, b) {
        (Ok(x), Ok(y)) => {
            assert_eq!(x.query_id, y.query_id, "{what}: query id");
            assert_eq!(x.subject_id, y.subject_id, "{what}: subject id");
            assert_eq!(x.best, y.best, "{what}: best index");
            assert_eq!(x.best_id, y.best_id, "{what}: best id");
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "{what}: score bits");
            assert_eq!(
                x.margin.to_bits(),
                y.margin.to_bits(),
                "{what}: margin bits"
            );
            assert_eq!(x.decision, y.decision, "{what}: decision");
        }
        (Err(x), Err(y)) => assert_eq!(x, y, "{what}: error"),
        _ => panic!("{what}: Ok/Err mismatch:\n  {a:?}\nvs\n  {b:?}"),
    }
}

/// Property 1: the batched similarity GEMM is bit-identical to the one-shot
/// pipeline for every dtype × thread count × batch size, and concatenating
/// ragged sub-batches reproduces the full batch exactly.
#[test]
fn batched_similarity_matches_one_shot_pipeline_bitwise() {
    let cohort = cohort(16, 0x5e41);
    let known = cohort.group_matrix(Task::Rest, Session::One).unwrap();
    let anon = cohort.group_matrix(Task::Rest, Session::Two).unwrap();
    let queries = payloads(&anon);
    for dtype in [Dtype::F64, Dtype::F32] {
        for threads in [1usize, 8] {
            with_thread_count(threads, || {
                let cfg = config(dtype, DegradedInput::Reject, None);
                for q_count in [1usize, 3, 16] {
                    // One-shot pipeline on the first q_count anon subjects.
                    let sub = GroupMatrix::from_matrix(
                        Matrix::from_fn(known.n_features(), q_count, |r, c| queries[c][r]),
                        (0..q_count).map(|i| format!("q{i}")).collect(),
                        known.n_regions(),
                    )
                    .unwrap();
                    let mut one_shot = AttackPlan::prepare(known.clone(), cfg.clone()).unwrap();
                    let outcome = one_shot
                        .run_with(&sub, cfg.n_features, MatchRule::Argmax)
                        .unwrap();
                    // Batched path over the same payloads.
                    let mut plan = AttackPlan::prepare(known.clone(), cfg.clone()).unwrap();
                    let refs: Vec<&[f64]> =
                        queries[..q_count].iter().map(|q| q.as_slice()).collect();
                    let sim = plan.correlate_batch(&refs).unwrap();
                    assert_eq!(sim.shape(), outcome.similarity.shape());
                    for i in 0..sim.rows() {
                        for j in 0..sim.cols() {
                            assert_eq!(
                                sim[(i, j)].to_bits(),
                                outcome.similarity[(i, j)].to_bits(),
                                "{dtype:?} threads={threads} Q={q_count} at ({i},{j})"
                            );
                        }
                    }
                }
                // Ragged packing: 7 queries split 3+3+1 concatenate to the
                // same bits as one batch of 7.
                let refs: Vec<&[f64]> = queries[..7].iter().map(|q| q.as_slice()).collect();
                let mut plan = AttackPlan::prepare(known.clone(), cfg.clone()).unwrap();
                let full = plan.correlate_batch(&refs).unwrap();
                let mut col = 0usize;
                for chunk in refs.chunks(3) {
                    let part = plan.correlate_batch(chunk).unwrap();
                    for j in 0..part.cols() {
                        for i in 0..part.rows() {
                            assert_eq!(
                                part[(i, j)].to_bits(),
                                full[(i, col + j)].to_bits(),
                                "{dtype:?} threads={threads} ragged col {}",
                                col + j
                            );
                        }
                    }
                    col += part.cols();
                }
            });
        }
    }
}

/// Property 2: server responses depend only on the query and the plan —
/// never on worker count or batch packing. The (1 worker, batch 1) serial
/// server is the reference; wider configurations must reproduce it bitwise.
#[test]
fn server_responses_are_packing_and_parallelism_invariant() {
    let cohort = cohort(12, 0x5e42);
    let known = cohort.group_matrix(Task::Rest, Session::One).unwrap();
    let anon = cohort.group_matrix(Task::Rest, Session::Two).unwrap();
    let cfg = config(Dtype::F64, DegradedInput::Reject, Some(0.02));
    let queries: Vec<Query> = payloads(&anon)
        .into_iter()
        .cycle()
        .take(40)
        .enumerate()
        .map(|(i, values)| Query::new(i as u64, format!("anon-{i}"), values))
        .collect();
    let serial = ServeConfig {
        workers: 1,
        batch_max: 1,
        ..ServeConfig::default()
    };
    let plan = AttackPlan::prepare(known.clone(), cfg.clone()).unwrap();
    let (reference, ref_report) = run_server(plan, serial, &queries);
    assert!(ref_report.clean_drain(), "reference drain: {ref_report:?}");
    assert_eq!(ref_report.answered, queries.len() as u64);
    for (workers, batch_max) in [(3usize, 4usize), (2, 16)] {
        let plan = AttackPlan::prepare(known.clone(), cfg.clone()).unwrap();
        let serve_cfg = ServeConfig {
            workers,
            batch_max,
            ..ServeConfig::default()
        };
        let (results, report) = run_server(plan, serve_cfg, &queries);
        assert!(
            report.clean_drain(),
            "drain {workers}w/{batch_max}b: {report:?}"
        );
        for (i, (got, want)) in results.iter().zip(&reference).enumerate() {
            assert_same_result(got, want, &format!("query {i} at {workers}w/{batch_max}b"));
        }
    }
}

/// Property 3: chaos faults isolate. Exactly the faulted queries get the
/// typed error of their fault class; every clean query answers bit-identical
/// to the fault-free reference even when a poison batchmate panicked the
/// worker mid-batch.
#[test]
fn chaos_faults_hit_exactly_their_queries() {
    let cohort = cohort(10, 0x5e43);
    let known = cohort.group_matrix(Task::Rest, Session::One).unwrap();
    let anon = cohort.group_matrix(Task::Rest, Session::Two).unwrap();
    let cfg = config(Dtype::F64, DegradedInput::Reject, Some(0.02));
    let base: Vec<Query> = payloads(&anon)
        .into_iter()
        .cycle()
        .take(48)
        .enumerate()
        .map(|(i, values)| Query::new(i as u64, format!("anon-{i}"), values))
        .collect();
    let plan = AttackPlan::prepare(known.clone(), cfg.clone()).unwrap();
    let (reference, _) = run_server(
        plan,
        ServeConfig {
            workers: 1,
            batch_max: 4,
            ..ServeConfig::default()
        },
        &base,
    );
    for chaos_seed in [7u64, 99] {
        let spec = ChaosSpec {
            seed: chaos_seed,
            rate: 0.4,
        };
        spec.validate().unwrap();
        let mut faults = Vec::with_capacity(base.len());
        let chaotic: Vec<Query> = base
            .iter()
            .map(|q| {
                let mut q = q.clone();
                let fault = spec.apply(q.id, &mut q.values);
                if fault == Some(ServiceFaultKind::WorkerPanic) {
                    q.injected = fault;
                }
                faults.push(fault);
                q
            })
            .collect();
        assert!(
            faults.iter().any(|f| f.is_some()),
            "seed {chaos_seed}: chaos spec injected nothing at rate 0.4"
        );
        let plan = AttackPlan::prepare(known.clone(), cfg.clone()).unwrap();
        let (results, report) = run_server(
            plan,
            ServeConfig {
                workers: 2,
                batch_max: 8,
                max_respawns: 64,
                ..ServeConfig::default()
            },
            &chaotic,
        );
        assert!(report.clean_drain(), "chaos drain: {report:?}");
        for (i, (result, fault)) in results.iter().zip(&faults).enumerate() {
            let what = format!("seed {chaos_seed} query {i} fault {fault:?}");
            match fault {
                Some(ServiceFaultKind::TruncatePayload) => assert!(
                    matches!(result, Err(QueryError::WrongDimension { .. })),
                    "{what}: {result:?}"
                ),
                Some(ServiceFaultKind::NanPayload) => assert!(
                    matches!(result, Err(QueryError::NonFinite { .. })),
                    "{what}: {result:?}"
                ),
                Some(ServiceFaultKind::WorkerPanic) => assert!(
                    matches!(result, Err(QueryError::WorkerPanicked)),
                    "{what}: {result:?}"
                ),
                // A stalled producer delays a query, never changes it.
                Some(ServiceFaultKind::StallProducer) | None => {
                    assert_same_result(result, &reference[i], &what)
                }
            }
        }
        let n_panics = faults
            .iter()
            .filter(|f| **f == Some(ServiceFaultKind::WorkerPanic))
            .count() as u64;
        assert_eq!(report.quarantined, n_panics, "quarantine count");
        assert!(report.respawns >= n_panics, "respawns: {report:?}");
    }
}

/// Property 4: non-finite queries under `Mask`/`Impute` answer exactly like
/// the one-shot degraded pipeline run on a one-subject group.
#[test]
fn degraded_queries_follow_the_policy_paths() {
    let cohort = cohort(10, 0x5e44);
    let known = cohort.group_matrix(Task::Rest, Session::One).unwrap();
    let anon = cohort.group_matrix(Task::Rest, Session::Two).unwrap();
    for policy in [DegradedInput::Mask, DegradedInput::Impute] {
        let cfg = config(Dtype::F64, policy, Some(0.02));
        let mut values = payloads(&anon).swap_remove(3);
        for v in values.iter_mut().step_by(13) {
            *v = f64::NAN;
        }
        // Solo reference through the public one-shot pipeline.
        let group = singleton_group(&values, "poisoned", known.n_regions());
        let mut solo = AttackPlan::prepare(known.clone(), cfg.clone()).unwrap();
        let outcome = solo
            .run_with(&group, cfg.n_features, MatchRule::Argmax)
            .unwrap();
        let plan = AttackPlan::prepare(known.clone(), cfg.clone()).unwrap();
        let (results, report) = run_server(
            plan,
            ServeConfig {
                workers: 1,
                batch_max: 4,
                ..ServeConfig::default()
            },
            &[Query::new(0, "poisoned", values)],
        );
        assert!(report.clean_drain(), "{policy}: {report:?}");
        let response = results[0].as_ref().unwrap_or_else(|e| {
            panic!("{policy}: degraded query must answer via the policy path, got {e}")
        });
        let p = outcome.predicted[0];
        assert_eq!(response.best, Some(p), "{policy}: best");
        assert_eq!(
            response.score.to_bits(),
            outcome.similarity[(p, 0)].to_bits(),
            "{policy}: score bits"
        );
        assert_eq!(
            response.margin.to_bits(),
            outcome.match_margins()[0].to_bits(),
            "{policy}: margin bits"
        );
        assert_eq!(
            response.decision, outcome.decisions[0],
            "{policy}: decision"
        );
    }
}

/// Property 5a: tiny queue + blocking submits = backpressure without loss.
#[test]
fn backpressure_accepts_everything_within_deadline() {
    let cohort = cohort(8, 0x5e45);
    let known = cohort.group_matrix(Task::Rest, Session::One).unwrap();
    let anon = cohort.group_matrix(Task::Rest, Session::Two).unwrap();
    let cfg = config(Dtype::F64, DegradedInput::Reject, None);
    let queries: Vec<Query> = payloads(&anon)
        .into_iter()
        .cycle()
        .take(200)
        .enumerate()
        .map(|(i, values)| Query::new(i as u64, format!("anon-{i}"), values))
        .collect();
    let plan = AttackPlan::prepare(known, cfg).unwrap();
    let serve_cfg = ServeConfig {
        workers: 2,
        queue_capacity: 4,
        batch_max: 4,
        submit_timeout: Duration::from_secs(30),
        ..ServeConfig::default()
    };
    let (results, report) = run_server(plan, serve_cfg, &queries);
    assert!(
        results.iter().all(|r| r.is_ok()),
        "all clean queries answer Ok"
    );
    assert!(report.clean_drain(), "{report:?}");
    assert_eq!(report.submitted, 200);
    assert_eq!(report.answered, 200);
    assert_eq!(report.shed, 0);
}

/// Property 5b: a worker that exhausts its respawn budget parks without
/// losing queries — everything accepted is still answered (typed `Closed`
/// at worst), and later submits fail typed instead of hanging.
#[test]
fn worker_death_parks_without_losing_queries() {
    let cohort = cohort(8, 0x5e46);
    let known = cohort.group_matrix(Task::Rest, Session::One).unwrap();
    let anon = cohort.group_matrix(Task::Rest, Session::Two).unwrap();
    let cfg = config(Dtype::F64, DegradedInput::Reject, None);
    let payload_set = payloads(&anon);
    let server = MatchServer::start(
        AttackPlan::prepare(known, cfg).unwrap(),
        ServeConfig {
            workers: 1,
            batch_max: 8,
            max_respawns: 0,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut poison = Query::new(0, "poison", payload_set[0].clone());
    poison.injected = Some(ServiceFaultKind::WorkerPanic);
    let mut accepted = Vec::new();
    let mut rejected = 0usize;
    match server.submit(poison) {
        Ok(rx) => accepted.push(rx),
        Err(_) => rejected += 1,
    }
    for i in 1..7u64 {
        let q = Query::new(i, format!("anon-{i}"), payload_set[i as usize % 8].clone());
        // Once the lone worker dies the queue closes; submissions then fail
        // typed rather than queueing into the void.
        match server.submit(q) {
            Ok(rx) => accepted.push(rx),
            Err((_, e)) => {
                assert!(
                    matches!(e, SubmitError::Closed),
                    "late submit must fail Closed, got {e:?}"
                );
                rejected += 1;
            }
        }
    }
    // Shut down first: with the lone worker dead, the queued remainder is
    // only answered (typed `Closed`) by the shutdown drain.
    let report = server.shutdown();
    for rx in &accepted {
        let result: QueryResult = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("accepted query must be answered even across worker death");
        drop(result);
    }
    assert!(report.clean_drain(), "{report:?}");
    assert_eq!(report.submitted as usize + rejected, 7);
    assert!(report.respawns >= 1, "{report:?}");
}
