//! Property tests for the attack-pipeline core: matching invariants and
//! defense monotonicity, on the testkit harness.

use neurodeanon_core::attack::{AttackConfig, AttackPlan, DeanonAttack, MatchRule};
use neurodeanon_core::defense::{evaluate_defense, signature_edges, DefensePlan};
use neurodeanon_core::matching::{argmax_matching, hungarian_matching, matching_accuracy};
use neurodeanon_datasets::{HcpCohort, HcpCohortConfig, Session, Task};
use neurodeanon_linalg::par::with_thread_count;
use neurodeanon_linalg::{Matrix, Rng64};
use neurodeanon_testkit::gen::{from_fn, u64_in, usize_in};
use neurodeanon_testkit::{forall, tk_assert, tk_assert_eq, Config};

/// Accuracy is a fraction of matched columns, so it must stay in [0, 1]
/// for any prediction/truth pair of equal length.
#[test]
fn matching_accuracy_bounded() {
    forall!(Config::cases(64), (pt in from_fn(|rng| {
        let n = 1 + rng.below(40);
        let pred: Vec<usize> = (0..n).map(|_| rng.below(n)).collect();
        let truth: Vec<usize> = (0..n).map(|_| rng.below(n)).collect();
        (pred, truth)
    })) => {
        let (pred, truth) = pt;
        let acc = matching_accuracy(&pred, &truth).unwrap();
        tk_assert!((0.0..=1.0).contains(&acc), "accuracy {acc}");
        // Perfect agreement with itself is exactly 1.
        tk_assert_eq!(matching_accuracy(&truth, &truth).unwrap(), 1.0);
    });
}

/// Hungarian assignment must be a permutation of the known subjects —
/// unlike greedy argmax it can never assign one row twice.
#[test]
fn hungarian_assignment_is_a_permutation() {
    forall!(Config::cases(48), (s in from_fn(|rng| {
        let n = 2 + rng.below(12);
        Matrix::from_fn(n, n, |_, _| rng.uniform_range(-1.0, 1.0))
    })) => {
        let n = s.rows();
        let assignment = hungarian_matching(&s).unwrap();
        tk_assert_eq!(assignment.len(), n);
        let mut seen = assignment.clone();
        seen.sort_unstable();
        tk_assert_eq!(seen, (0..n).collect::<Vec<_>>());
        // Argmax predictions are at least valid row indices.
        let greedy = argmax_matching(&s).unwrap();
        tk_assert!(greedy.iter().all(|&r| r < n));
    });
}

/// Running the attack with the release equal to the known group is the
/// degenerate self-match: every subject is its own best match.
#[test]
fn self_match_on_identical_groups_is_perfect() {
    forall!(Config::cases(8), (seed in u64_in(0..1000), n in usize_in(5..9)) => {
        let cohort = HcpCohort::generate(HcpCohortConfig::small(n, seed)).unwrap();
        let g = cohort.group_matrix(Task::Rest, Session::One).unwrap();
        let attack = DeanonAttack::new(AttackConfig::default()).unwrap();
        let out = attack.run(&g, &g).unwrap();
        tk_assert_eq!(out.accuracy, 1.0, "self-match must identify everyone");
        // The diagonal is exact self-correlation.
        tk_assert!(out.mean_diagonal_similarity() > 0.999);
    });
}

/// Attack accuracy is always a valid fraction, whatever the cohort.
#[test]
fn attack_accuracy_bounded() {
    forall!(Config::cases(8), (seed in u64_in(0..1000)) => {
        let cohort = HcpCohort::generate(HcpCohortConfig::small(6, seed)).unwrap();
        let known = cohort.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = cohort.group_matrix(Task::Rest, Session::Two).unwrap();
        let attack = DeanonAttack::new(AttackConfig::default()).unwrap();
        let out = attack.run(&known, &anon).unwrap();
        tk_assert!((0.0..=1.0).contains(&out.accuracy));
        tk_assert!(out.predicted.iter().all(|&p| p < known.n_subjects()));
    });
}

/// Defense monotonicity: strengthening the targeted noise never helps the
/// attacker. Zero noise leaves accuracy at the baseline exactly; a heavy
/// perturbation of the signature edges must not *increase* accuracy (a
/// small tolerance absorbs the randomness of individual noise draws).
#[test]
fn more_targeted_noise_never_helps_the_attacker() {
    forall!(Config::cases(6), (seed in u64_in(0..500)) => {
        let cohort = HcpCohort::generate(HcpCohortConfig::small(8, seed)).unwrap();
        let known = cohort.group_matrix(Task::Rest, Session::One).unwrap();
        let release = cohort.group_matrix(Task::Rest, Session::Two).unwrap();
        let edges = signature_edges(&release, 60).unwrap();
        let mut accs = Vec::new();
        for sigma in [0.0, 0.5, 2.0] {
            // Deterministic noise per case so the run is replayable.
            let mut rng = Rng64::new(seed.wrapping_add(7));
            let plan = DefensePlan { edges: edges.clone(), sigma };
            let out = evaluate_defense(
                &known,
                &release,
                &plan,
                AttackConfig::default(),
                &mut rng,
            )
            .unwrap();
            if sigma == 0.0 {
                tk_assert_eq!(out.accuracy_after, out.accuracy_before);
            }
            tk_assert!((0.0..=1.0).contains(&out.accuracy_after));
            accs.push(out.accuracy_after);
        }
        for w in accs.windows(2) {
            tk_assert!(
                w[1] <= w[0] + 0.13,
                "accuracy rose under stronger defense: {:?}",
                accs
            );
        }
    });
}

/// The memoized plan is indistinguishable from the direct attack: for any
/// cohort, feature budget, and rank restriction, `AttackPlan::run_with`
/// returns bit-identical similarities, predictions, and selections to a
/// fresh `DeanonAttack::run` — at 1 and 8 threads. This is the contract
/// that lets every experiment sweep reuse one factorization.
#[test]
fn attack_plan_is_bitwise_equal_to_direct_attack() {
    forall!(Config::cases(6), (seed in u64_in(0..1000), t in usize_in(5..120), k in usize_in(1..6)) => {
        let cohort = HcpCohort::generate(HcpCohortConfig::small(7, seed)).unwrap();
        let known = cohort.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = cohort.group_matrix(Task::Motor, Session::Two).unwrap();
        for rank_k in [None, Some(k)] {
            let config = AttackConfig { n_features: t, rank_k, ..Default::default() };
            for threads in [1usize, 8] {
                let (direct, planned) = with_thread_count(threads, || {
                    let direct = DeanonAttack::new(config.clone())
                        .unwrap()
                        .run(&known, &anon)
                        .unwrap();
                    let mut plan = AttackPlan::prepare(known.clone(), config.clone()).unwrap();
                    // Second call hits the warm cache; both must agree.
                    plan.run_with(&anon, t, MatchRule::Argmax).unwrap();
                    (direct, plan.run_against(&anon).unwrap())
                });
                tk_assert_eq!(direct.predicted, planned.predicted, "threads={threads} rank_k={rank_k:?}");
                tk_assert_eq!(direct.truth, planned.truth);
                tk_assert_eq!(direct.selected_features, planned.selected_features);
                tk_assert_eq!(direct.accuracy.to_bits(), planned.accuracy.to_bits());
                for (x, y) in direct.similarity.as_slice().iter().zip(planned.similarity.as_slice()) {
                    tk_assert_eq!(x.to_bits(), y.to_bits(), "threads={threads} rank_k={rank_k:?}");
                }
            }
        }
    });
}

/// The f32-gallery determinism contract (DESIGN.md §1.5): per dtype, the
/// plan is bit-identical at any thread count; across dtypes, the f32 storage
/// rounding perturbs similarities by ~t·2⁻²⁴ — far below the same-subject
/// margins — so argmax predictions may disagree on at most a small fraction
/// of subjects and accuracy moves by well under the 0.5pp ablation budget.
#[test]
fn f32_gallery_thread_deterministic_and_close_to_f64() {
    use neurodeanon_core::attack::Dtype;
    forall!(Config::cases(6), (seed in u64_in(0..1000), t in usize_in(20..120)) => {
        let cohort = HcpCohort::generate(HcpCohortConfig::small(8, seed)).unwrap();
        let known = cohort.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = cohort.group_matrix(Task::Motor, Session::Two).unwrap();
        let run = |dtype: Dtype, threads: usize| {
            with_thread_count(threads, || {
                let config = AttackConfig { n_features: t, dtype, ..Default::default() };
                let mut plan = AttackPlan::prepare(known.clone(), config).unwrap();
                plan.run_with(&anon, t, MatchRule::Argmax).unwrap()
            })
        };
        let f32_1 = run(Dtype::F32, 1);
        let f32_8 = run(Dtype::F32, 8);
        // Per-dtype bit-identity at any thread count.
        tk_assert_eq!(f32_1.predicted, f32_8.predicted);
        for (x, y) in f32_1.similarity.as_slice().iter().zip(f32_8.similarity.as_slice()) {
            tk_assert_eq!(x.to_bits(), y.to_bits());
        }
        // Cross-dtype agreement: bounded, not exact.
        let f64_out = run(Dtype::F64, 1);
        let n = f64_out.predicted.len();
        let disagreements = f64_out
            .predicted
            .iter()
            .zip(&f32_1.predicted)
            .filter(|(a, b)| a != b)
            .count();
        tk_assert!(
            disagreements * 8 <= n,
            "f32 gallery flipped {disagreements}/{n} argmax predictions"
        );
        tk_assert!(
            (f64_out.accuracy - f32_1.accuracy).abs() < 0.005 + disagreements as f64 / n as f64,
            "accuracy drifted: f64 {} vs f32 {}",
            f64_out.accuracy,
            f32_1.accuracy
        );
        for (x, y) in f64_out.similarity.as_slice().iter().zip(f32_1.similarity.as_slice()) {
            tk_assert!((x - y).abs() < 1e-5, "similarity drifted: {x} vs {y}");
        }
    });
}

/// The subspace-iteration bank (`LeverageBank::new_subspace`, reached via
/// `AttackConfig::randomized`) must track the exact thin-SVD path through
/// the feature-count ablation. On a small cohort accuracy is quantized in
/// units of one matched subject, so the ISSUE's 0.5pp budget is asserted
/// at paper scale in the `kernels` bench; here the bound is the quantized
/// analogue — the subspace path may *degrade* the exact accuracy by at
/// most one flipped match per `t`, at most one net flip across the whole
/// sweep — and selections must overlap the exact top-`t` substantially.
#[test]
fn subspace_bank_ablation_tracks_exact_accuracy() {
    use neurodeanon_linalg::rsvd::RsvdConfig;
    forall!(Config::cases(4), (seed in u64_in(0..500)) => {
        let cohort = HcpCohort::generate(HcpCohortConfig::small(10, seed)).unwrap();
        let known = cohort.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = cohort.group_matrix(Task::Rest, Session::Two).unwrap();
        let n = known.n_subjects() as f64;
        let exact_cfg = AttackConfig::default();
        let sub_cfg = AttackConfig {
            randomized: Some(RsvdConfig { rank: 8, power_iters: 2, ..Default::default() }),
            ..Default::default()
        };
        let mut exact = AttackPlan::prepare(known.clone(), exact_cfg).unwrap();
        let mut subspace = AttackPlan::prepare(known.clone(), sub_cfg).unwrap();
        let mut degradation = 0.0f64;
        for t in [20usize, 60, 120, 240] {
            let e = exact.run_with(&anon, t, MatchRule::Argmax).unwrap();
            let s = subspace.run_with(&anon, t, MatchRule::Argmax).unwrap();
            tk_assert!(
                e.accuracy - s.accuracy < 1.0 / n + 1e-9,
                "t={t}: subspace lost more than one match: exact {} vs {}",
                e.accuracy,
                s.accuracy
            );
            degradation += (e.accuracy - s.accuracy).max(0.0);
            let es: std::collections::HashSet<usize> =
                e.selected_features.iter().copied().collect();
            let overlap = s.selected_features.iter().filter(|i| es.contains(i)).count();
            tk_assert!(
                overlap * 2 >= t,
                "t={t}: only {overlap}/{t} selected features overlap exact"
            );
        }
        tk_assert!(
            degradation < 1.0 / n + 1e-9,
            "subspace lost {degradation} accuracy across the sweep"
        );
    });
}

/// `linalg::par` determinism contract at the matching layer: the per-column
/// argmax scan must return the identical prediction vector at any thread
/// count, and must agree with the scalar per-column reference.
#[test]
fn argmax_matching_identical_across_thread_counts() {
    forall!(Config::cases(8), (s in from_fn(|rng| {
        Matrix::from_fn(300, 300, |_, _| rng.uniform_range(-1.0, 1.0))
    })) => {
        let reference = with_thread_count(1, || argmax_matching(&s).unwrap());
        for t in [2usize, 8] {
            let par = with_thread_count(t, || argmax_matching(&s).unwrap());
            tk_assert_eq!(reference, par);
        }
        // Scalar reference: vector::argmax on each copied column.
        for (j, &pred) in reference.iter().enumerate() {
            let col = s.col(j);
            tk_assert_eq!(pred, neurodeanon_linalg::vector::argmax(&col).unwrap());
        }
    });
}
