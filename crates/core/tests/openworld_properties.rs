//! Property suite for the open-world evaluation layer (DESIGN.md §1.4):
//! enrollment splits, the margin-thresholded decision layer, and the
//! CMC/ROC metrics. Run directly by `scripts/ci.sh` at both
//! `NEURODEANON_THREADS=1` and `=8` — every number here must be
//! bit-identical across thread counts.
//!
//! The suites draw their parameters through the testkit's `weighted` /
//! `one_of_enum` generators and replay a small regression corpus of seeds
//! before the random cases, so past failures stay pinned.

use neurodeanon_core::attack::{AttackConfig, AttackPlan};
use neurodeanon_core::experiments::{cmc_curve, roc_curve};
use neurodeanon_core::matching::{
    argmax_matching, decide, match_scores, matching_accuracy, Decision,
};
use neurodeanon_core::{enrollment_split, CoreError};
use neurodeanon_datasets::{HcpCohort, HcpCohortConfig, Session, Task};
use neurodeanon_linalg::par::with_thread_count;
use neurodeanon_linalg::Matrix;
use neurodeanon_testkit::gen::{f64_in, matrix_in, one_of_enum, u64_in, weighted};
use neurodeanon_testkit::{forall, tk_assert, tk_assert_eq, Config};

/// Seeds that once exposed (or nearly exposed) boundary behavior —
/// replayed verbatim before the random cases of every suite below.
const CORPUS: &[u64] = &[0, 1, 41, 97, 1337];

fn cohort(seed: u64) -> HcpCohort {
    HcpCohort::generate(HcpCohortConfig::small(8, seed)).unwrap()
}

/// An enrollment split is a valid partition: enrolled ∪ impostors is a
/// permutation of `0..n`, both halves sorted, disjoint, and the enrolled
/// count follows the documented round-then-clamp rule.
#[test]
fn split_is_a_sorted_partition() {
    // Weighted toward boundary rates: the interesting arithmetic lives at
    // the clamp edges, not mid-range.
    let rate_gen = weighted(vec![
        (1.0, f64_in(0.0..0.011)),
        (2.0, f64_in(0.05..0.95)),
        (1.0, f64_in(0.99..1.0)),
    ]);
    forall!(Config::cases(30).with_corpus(CORPUS),
            (n in one_of_enum(&[1usize, 2, 3, 7, 20, 64]), rate in rate_gen, seed in u64_in(..)) => {
        let s = enrollment_split(n, rate, seed).unwrap();
        let expected = ((rate * n as f64).round() as usize).clamp(1, n);
        tk_assert_eq!(s.enrolled().len(), expected, "n={n} rate={rate}");
        tk_assert_eq!(s.n_subjects(), n);
        let mut all: Vec<usize> = s.enrolled().iter().chain(s.impostors()).copied().collect();
        all.sort_unstable();
        tk_assert_eq!(all, (0..n).collect::<Vec<_>>(), "not a partition");
        tk_assert!(s.enrolled().windows(2).all(|w| w[0] < w[1]), "enrolled unsorted/dup");
        tk_assert!(s.impostors().windows(2).all(|w| w[0] < w[1]), "impostors unsorted/dup");
        tk_assert!(s.impostors().iter().all(|&i| !s.is_enrolled(i)), "overlap");
    });
}

/// Splits are a pure function of `(n, rate, seed)`: replayable, and
/// indifferent to the thread count (they never touch `linalg::par`, and
/// this pins that).
#[test]
fn split_is_seed_replayable_and_thread_count_free() {
    forall!(Config::cases(20).with_corpus(CORPUS),
            (n in one_of_enum(&[3usize, 9, 33]), rate in f64_in(0.1..0.9), seed in u64_in(..)) => {
        let a = enrollment_split(n, rate, seed).unwrap();
        let b = enrollment_split(n, rate, seed).unwrap();
        tk_assert_eq!(a, b, "replay");
        let t1 = with_thread_count(1, || enrollment_split(n, rate, seed).unwrap());
        let t8 = with_thread_count(8, || enrollment_split(n, rate, seed).unwrap());
        tk_assert_eq!(t1, t8, "thread count leaked into the split");
    });
}

/// A rate-1.0 split's gallery is the identity selection, and the attack
/// over it reproduces the closed-world outcome bit-for-bit — similarity,
/// predictions, accuracy, everything.
#[test]
fn full_enrollment_collapses_to_closed_world_bitwise() {
    forall!(Config::cases(4).with_corpus(&[41]), (seed in u64_in(0..1000)) => {
        let c = cohort(seed);
        let known = c.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = c.group_matrix(Task::Rest, Session::Two).unwrap();
        let baseline = AttackPlan::prepare(known.clone(), AttackConfig::default())
            .unwrap()
            .run_against(&anon)
            .unwrap();
        let split = enrollment_split(known.n_subjects(), 1.0, seed).unwrap();
        tk_assert!(split.impostors().is_empty());
        let gallery = split.gallery(&known).unwrap();
        let open = AttackPlan::prepare(gallery, AttackConfig::default())
            .unwrap()
            .run_against(&anon)
            .unwrap();
        tk_assert_eq!(baseline.predicted, open.predicted);
        tk_assert_eq!(baseline.truth, open.truth);
        tk_assert_eq!(baseline.decisions, open.decisions);
        tk_assert_eq!(baseline.accuracy.to_bits(), open.accuracy.to_bits());
        for (x, y) in baseline.similarity.as_slice().iter().zip(open.similarity.as_slice()) {
            tk_assert_eq!(x.to_bits(), y.to_bits(), "similarity diverged");
        }
    });
}

/// The open-world attack path (split gallery + impostor queries + margin
/// rejection + metrics) is bit-identical at 1 and 8 threads.
#[test]
fn openworld_attack_bit_identical_across_thread_counts() {
    forall!(Config::cases(4).with_corpus(&[97]),
            (seed in u64_in(0..1000), rate in one_of_enum(&[0.25f64, 0.5, 0.75])) => {
        let run = || {
            let c = cohort(seed);
            let known = c.group_matrix(Task::Rest, Session::One).unwrap();
            let anon = c.group_matrix(Task::Rest, Session::Two).unwrap();
            let split = enrollment_split(known.n_subjects(), rate, seed).unwrap();
            let gallery = split.gallery(&known).unwrap();
            let config = AttackConfig { reject_margin: Some(0.05), ..Default::default() };
            let out = AttackPlan::prepare(gallery, config)
                .unwrap()
                .run_against(&anon)
                .unwrap();
            let cmc = cmc_curve(&out.similarity, &out.truth).unwrap();
            let roc = roc_curve(&out.similarity, &out.truth, &[0.0, 0.05, 0.2]).unwrap();
            (out, cmc, roc)
        };
        let (out1, cmc1, roc1) = with_thread_count(1, run);
        let (out8, cmc8, roc8) = with_thread_count(8, run);
        tk_assert_eq!(out1.predicted, out8.predicted, "rate={rate}");
        tk_assert_eq!(out1.decisions, out8.decisions, "rate={rate}");
        for (x, y) in out1.similarity.as_slice().iter().zip(out8.similarity.as_slice()) {
            tk_assert_eq!(x.to_bits(), y.to_bits(), "similarity diverged");
        }
        for (x, y) in cmc1.iter().zip(&cmc8) {
            tk_assert_eq!(x.to_bits(), y.to_bits(), "CMC diverged");
        }
        for (a, b) in roc1.iter().zip(&roc8) {
            tk_assert_eq!(a.tpir.to_bits(), b.tpir.to_bits(), "TPIR diverged");
            tk_assert_eq!(a.fpir.to_bits(), b.fpir.to_bits(), "FPIR diverged");
        }
    });
}

/// CMC is monotone non-decreasing, bounded in [0, 1], its rank-1 entry
/// equals the closed-world argmax accuracy bit-for-bit, and on all-finite
/// scores the curve ends at 1 (the closed-set hit rate).
#[test]
fn cmc_is_monotone_and_anchored_to_argmax_accuracy() {
    forall!(Config::cases(25).with_corpus(CORPUS), (s in matrix_in(6, 10, -1.0, 1.0)) => {
        let truth: Vec<usize> = (0..10).map(|j| j % 6).collect();
        let cmc = cmc_curve(&s, &truth).unwrap();
        tk_assert_eq!(cmc.len(), 6);
        tk_assert!(cmc.iter().all(|&v| (0.0..=1.0).contains(&v)), "out of [0,1]");
        for w in cmc.windows(2) {
            tk_assert!(w[1] >= w[0], "CMC not monotone: {} then {}", w[0], w[1]);
        }
        tk_assert_eq!(cmc[5], 1.0, "finite scores must end at hit rate 1");
        let acc = matching_accuracy(&argmax_matching(&s).unwrap(), &truth).unwrap();
        tk_assert_eq!(cmc[0].to_bits(), acc.to_bits(), "rank-1 != argmax accuracy");
    });
}

/// ROC sanity over random similarity: TPIR/FPIR weakly decreasing in the
/// threshold, FNIR complements TPIR, all rates in [0, 1].
#[test]
fn roc_is_monotone_in_threshold() {
    forall!(Config::cases(25).with_corpus(CORPUS),
            (s in matrix_in(5, 12, -1.0, 1.0), imp_stride in one_of_enum(&[2usize, 3, 4])) => {
        let truth: Vec<usize> = (0..12)
            .map(|j| if j % imp_stride == 0 { usize::MAX } else { j % 5 })
            .collect();
        let thresholds = [0.0, 0.01, 0.05, 0.1, 0.3, 1.0, 3.0];
        let roc = roc_curve(&s, &truth, &thresholds).unwrap();
        tk_assert_eq!(roc.len(), thresholds.len());
        for p in &roc {
            tk_assert!((0.0..=1.0).contains(&p.tpir), "tpir {}", p.tpir);
            tk_assert!((0.0..=1.0).contains(&p.fpir), "fpir {}", p.fpir);
            tk_assert!((p.fnir - (1.0 - p.tpir)).abs() < 1e-15, "fnir mismatch");
        }
        for w in roc.windows(2) {
            tk_assert!(w[1].tpir <= w[0].tpir, "TPIR increased with threshold");
            tk_assert!(w[1].fpir <= w[0].fpir, "FPIR increased with threshold");
        }
        // A 2-row-gap threshold on scores bounded by [-1, 1] rejects all.
        tk_assert_eq!(roc.last().unwrap().tpir, 0.0);
    });
}

/// A zero margin threshold never rejects a genuine argmax prediction:
/// margins are non-negative by construction, so `decide(scores, 0.0)`
/// matches the raw argmax wherever a score exists.
#[test]
fn zero_threshold_never_rejects_a_genuine_argmax() {
    forall!(Config::cases(25).with_corpus(CORPUS), (s in matrix_in(7, 9, -1.0, 1.0)) => {
        let scores = match_scores(&s).unwrap();
        let decisions = decide(&scores, 0.0);
        let predicted = argmax_matching(&s).unwrap();
        for (j, d) in decisions.iter().enumerate() {
            tk_assert_eq!(*d, Decision::Match(predicted[j]), "column {j} rejected at zero threshold");
        }
        // And rejections are monotone: each raised threshold only ever
        // converts matches to rejects, never the reverse.
        let mut prev_rejects = 0usize;
        for t in [0.0, 0.02, 0.1, 0.5, 2.5] {
            let n_rejects = decide(&scores, t).iter().filter(|d| d.is_reject()).count();
            tk_assert!(n_rejects >= prev_rejects, "rejections not monotone at t={t}");
            prev_rejects = n_rejects;
        }
    });
}

/// Degenerate similarity inputs surface as typed errors from the decision
/// layer, never panics: an all-NaN column is unmatchable.
#[test]
fn all_nan_column_is_a_typed_error_path() {
    forall!(Config::cases(10).with_corpus(&[0, 1]),
            (s in matrix_in(4, 4, -1.0, 1.0), col in one_of_enum(&[0usize, 1, 2, 3])) => {
        let mut s = s;
        for i in 0..4 {
            s[(i, col)] = f64::NAN;
        }
        let scores = match_scores(&s).unwrap();
        tk_assert!(scores[col].is_none(), "all-NaN column produced a score");
        tk_assert_eq!(decide(&scores, 0.0)[col], Decision::Reject);
        // The Hungarian path refuses the same matrix with a typed error.
        match neurodeanon_core::matching::hungarian_matching(&s) {
            Err(CoreError::UnmatchableColumn { column }) => tk_assert_eq!(column, col),
            other => tk_assert!(false, "expected UnmatchableColumn, got {other:?}"),
        }
    });
}

/// Smoke-level shape check that `Matrix`-generator suites shrink toward
/// reportable cases: an intentionally trivial truth-length mismatch is a
/// typed error, not a panic.
#[test]
fn metric_validations_are_typed_errors() {
    let s = Matrix::from_fn(3, 3, |i, j| (i + j) as f64 * 0.1);
    assert!(matches!(
        cmc_curve(&s, &[0, 1]),
        Err(CoreError::InvalidParameter { .. })
    ));
    assert!(matches!(
        roc_curve(&s, &[0, 1], &[0.0]),
        Err(CoreError::InvalidParameter { .. })
    ));
    assert!(matches!(
        cmc_curve(&s, &[usize::MAX; 3]),
        Err(CoreError::InvalidParameter { .. })
    ));
}
