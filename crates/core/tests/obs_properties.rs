//! Observability contract tests (DESIGN.md §1.6) at the attack level:
//! tracing never changes a single output bit, and the recorded span-tree
//! shape plus deterministic counters are identical at any thread count.
//!
//! The obs registries are process-global, so every test here serializes on
//! one mutex and resets the state around its body.

use neurodeanon_core::attack::{AttackConfig, AttackOutcome, AttackPlan, MatchRule};
use neurodeanon_datasets::{HcpCohort, HcpCohortConfig, Session, Task};
use neurodeanon_linalg::par::with_thread_count;
use neurodeanon_obs as obs;
use neurodeanon_testkit::gen::u64_in;
use neurodeanon_testkit::{forall, tk_assert, tk_assert_eq, Config};
use std::sync::Mutex;

static GLOBAL: Mutex<()> = Mutex::new(());

/// Runs one small attack (prepare + two queries, so both the cold and the
/// memoized plan paths execute) and returns the outcomes.
fn attack_pair(seed: u64) -> (AttackOutcome, AttackOutcome) {
    let cohort = HcpCohort::generate(HcpCohortConfig::small(8, seed)).unwrap();
    let known = cohort.group_matrix(Task::Rest, Session::One).unwrap();
    let anon = cohort.group_matrix(Task::Rest, Session::Two).unwrap();
    let mut plan = AttackPlan::prepare(known, AttackConfig::default()).unwrap();
    let first = plan.run_against(&anon).unwrap();
    let second = plan.run_with(&anon, 50, MatchRule::Hungarian).unwrap();
    (first, second)
}

/// Bitwise outcome equality: similarity bits, predictions, decisions,
/// truth, selection, and the accuracy bits.
fn assert_outcomes_identical(
    a: &AttackOutcome,
    b: &AttackOutcome,
    what: &str,
) -> Result<(), String> {
    tk_assert_eq!(a.predicted, b.predicted, "{what}: predictions");
    tk_assert_eq!(a.decisions, b.decisions, "{what}: decisions");
    tk_assert_eq!(a.truth, b.truth, "{what}: truth");
    tk_assert_eq!(
        a.selected_features,
        b.selected_features,
        "{what}: selected features"
    );
    tk_assert_eq!(
        a.accuracy.to_bits(),
        b.accuracy.to_bits(),
        "{what}: accuracy"
    );
    tk_assert_eq!(a.similarity.shape(), b.similarity.shape(), "{what}: shape");
    for (x, y) in a.similarity.as_slice().iter().zip(b.similarity.as_slice()) {
        tk_assert_eq!(x.to_bits(), y.to_bits(), "{what}: similarity bits");
    }
    Ok(())
}

/// §1.6 hard contract: a traced run's `AttackOutcome` is bitwise identical
/// to an untraced run of the same workload.
#[test]
fn traced_attack_is_bitwise_identical_to_untraced() {
    let _lock = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    forall!(Config::cases(6), (seed in u64_in(0..1000)) => {
        obs::reset();
        obs::disable();
        let untraced = attack_pair(seed);
        obs::enable();
        let traced = attack_pair(seed);
        obs::disable();
        obs::reset();
        assert_outcomes_identical(&untraced.0, &traced.0, "first query")?;
        assert_outcomes_identical(&untraced.1, &traced.1, "second query")?;
    });
}

/// §1.6 determinism: the span-tree shape (paths + hit counts) and every
/// non-`rt.` counter/gauge agree between a 1-thread and an 8-thread traced
/// run — timings and `rt.*` runtime telemetry are excluded by the
/// fingerprint itself.
#[test]
fn span_fingerprint_is_thread_count_invariant() {
    let _lock = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let fingerprint_at = |threads: usize| {
        obs::reset();
        obs::enable();
        let outcome = with_thread_count(threads, || attack_pair(0xf19));
        let fp = obs::snapshot().fingerprint();
        obs::disable();
        obs::reset();
        (outcome, fp)
    };
    let (seq, fp1) = fingerprint_at(1);
    let (par, fp8) = fingerprint_at(8);
    let check = || -> Result<(), String> {
        assert_outcomes_identical(&seq.0, &par.0, "1 vs 8 threads, first query")?;
        assert_outcomes_identical(&seq.1, &par.1, "1 vs 8 threads, second query")?;
        tk_assert_eq!(
            fp1,
            fp8,
            "span/counter fingerprint diverged across thread counts"
        );
        // Sanity: the fingerprint actually covers the pipeline stages.
        for needle in [
            "span plan.prepare",
            "span plan.run/plan.select",
            "span plan.run/plan.correlate",
            "span plan.run/plan.match",
            "counter svd.thin_calls",
            "gauge plan.gallery_bytes",
        ] {
            tk_assert!(fp1.contains(needle), "fingerprint missing {needle}:\n{fp1}");
        }
        Ok(())
    };
    check().unwrap();
}
