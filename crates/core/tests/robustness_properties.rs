//! Property suite for the degraded-data robustness layer (the fault model
//! of DESIGN.md §1.3): under arbitrary corruption of the anonymous release,
//! the attack must never panic — it returns `Ok` with finite, bounded
//! scores or a typed `CoreError` — and the `Mask`/`Impute` paths must be
//! bit-identical at any thread count, like every other kernel in the
//! workspace.

use neurodeanon_core::attack::{AttackConfig, AttackOutcome, AttackPlan, DeanonAttack};
use neurodeanon_core::{CoreError, DegradedInput};
use neurodeanon_datasets::{
    corrupt_group, corrupted_hcp_group, CorruptionKind, CorruptionSpec, HcpCohort, HcpCohortConfig,
    Session, Task,
};
use neurodeanon_linalg::par::with_thread_count;
use neurodeanon_testkit::gen::{u64_in, usize_in};
use neurodeanon_testkit::{forall, tk_assert, tk_assert_eq, Config};

const POLICIES: [DegradedInput; 3] = [
    DegradedInput::Reject,
    DegradedInput::Mask,
    DegradedInput::Impute,
];

fn tiny(seed: u64) -> HcpCohort {
    HcpCohort::generate(HcpCohortConfig::small(6, seed)).unwrap()
}

fn check_outcome(out: &AttackOutcome, what: &str) -> Result<(), String> {
    tk_assert!(
        out.accuracy.is_finite() && (0.0..=1.0).contains(&out.accuracy),
        "{what}: accuracy {}",
        out.accuracy
    );
    for m in out.match_margins() {
        // Margins may be NaN (undefined), but never infinite.
        tk_assert!(!m.is_infinite(), "{what}: infinite margin");
    }
    Ok(())
}

/// Ok-or-typed-error, never a panic, for every fault kind × severity ×
/// policy — the headline contract of the degradation layer.
#[test]
fn attack_never_panics_under_arbitrary_corruption() {
    forall!(Config::cases(10), (seed in u64_in(0..1000), kind_idx in usize_in(0..6),
                                sev_step in usize_in(0..5)) => {
        let kind = CorruptionKind::ALL[kind_idx];
        let severity = sev_step as f64 * 0.25;
        let cohort = tiny(seed);
        let known = cohort.group_matrix(Task::Rest, Session::One).unwrap();
        let spec = CorruptionSpec { kind, severity, seed };
        let anon = corrupted_hcp_group(&cohort, Task::Rest, Session::Two, &spec).unwrap();
        for policy in POLICIES {
            let attack = DeanonAttack::new(AttackConfig {
                degraded: policy,
                ..Default::default()
            })
            .unwrap();
            match attack.run(&known, &anon) {
                Ok(out) => check_outcome(&out, &format!("{policy}/{kind}@{severity}"))?,
                Err(e) => {
                    // Only the documented degradation errors may surface.
                    tk_assert!(
                        matches!(
                            e,
                            CoreError::NonFiniteInput { .. }
                                | CoreError::InsufficientSupport { .. }
                                | CoreError::UnmatchableColumn { .. }
                        ),
                        "{policy}/{kind}@{severity}: unexpected error {e}"
                    );
                    // Finite inputs are never rejected.
                    tk_assert!(
                        !anon.as_matrix().is_finite(),
                        "{policy}/{kind}@{severity}: finite input errored: {e}"
                    );
                }
            }
        }
    });
}

/// On an uncorrupted cohort, the Mask and Impute policies take the exact
/// clean code path: bit-identical outcomes, including through a plan.
#[test]
fn policies_collapse_to_clean_path_on_clean_cohort() {
    forall!(Config::cases(6), (seed in u64_in(0..1000)) => {
        let cohort = tiny(seed);
        let known = cohort.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = cohort.group_matrix(Task::Rest, Session::Two).unwrap();
        let baseline = DeanonAttack::new(AttackConfig::default())
            .unwrap()
            .run(&known, &anon)
            .unwrap();
        for policy in POLICIES {
            let config = AttackConfig { degraded: policy, ..Default::default() };
            let direct = DeanonAttack::new(config.clone()).unwrap().run(&known, &anon).unwrap();
            let mut plan = AttackPlan::prepare(known.clone(), config).unwrap();
            let planned = plan.run_against(&anon).unwrap();
            for out in [&direct, &planned] {
                tk_assert_eq!(baseline.predicted, out.predicted, "{policy}");
                tk_assert_eq!(baseline.selected_features, out.selected_features);
                tk_assert_eq!(baseline.accuracy.to_bits(), out.accuracy.to_bits());
                for (x, y) in baseline.similarity.as_slice().iter().zip(out.similarity.as_slice()) {
                    tk_assert_eq!(x.to_bits(), y.to_bits(), "{policy}");
                }
            }
        }
    });
}

/// The degraded paths inherit the `linalg::par` determinism contract:
/// bit-identical outcomes at 1 and 8 threads, for both recovery policies,
/// on both time-series-level and group-level corruption.
#[test]
fn degraded_paths_bit_identical_across_thread_counts() {
    forall!(Config::cases(6), (seed in u64_in(0..1000), kind_idx in usize_in(0..6)) => {
        let kind = CorruptionKind::ALL[kind_idx];
        let cohort = tiny(seed);
        let known = cohort.group_matrix(Task::Rest, Session::One).unwrap();
        let spec = CorruptionSpec { kind, severity: 0.5, seed };
        let anon = corrupted_hcp_group(&cohort, Task::Rest, Session::Two, &spec).unwrap();
        for policy in [DegradedInput::Mask, DegradedInput::Impute] {
            let attack = DeanonAttack::new(AttackConfig {
                degraded: policy,
                ..Default::default()
            })
            .unwrap();
            let reference = with_thread_count(1, || attack.run(&known, &anon));
            let par = with_thread_count(8, || attack.run(&known, &anon));
            match (reference, par) {
                (Ok(reference), Ok(par)) => {
                    tk_assert_eq!(reference.predicted, par.predicted, "{policy}/{kind}");
                    tk_assert_eq!(reference.selected_features, par.selected_features);
                    tk_assert_eq!(reference.accuracy.to_bits(), par.accuracy.to_bits());
                    for (x, y) in reference
                        .similarity
                        .as_slice()
                        .iter()
                        .zip(par.similarity.as_slice())
                    {
                        tk_assert_eq!(x.to_bits(), y.to_bits(), "{policy}/{kind}");
                    }
                }
                // A typed refusal (e.g. insufficient masked support) is
                // fine, but it too must be thread-count independent.
                (Err(a), Err(b)) => tk_assert_eq!(a, b, "{policy}/{kind}"),
                (a, b) => tk_assert!(
                    false,
                    "{policy}/{kind}: thread counts disagree: {a:?} vs {b:?}"
                ),
            }
        }
    });
}

/// Group-level corruption of the *known* side: the Mask policy still runs
/// (or reports insufficient support, for extreme dropout), and a plan over
/// the degraded known agrees with the direct attack.
#[test]
fn degraded_known_side_is_survivable_under_mask() {
    forall!(Config::cases(6), (seed in u64_in(0..1000), sev_step in usize_in(1..5)) => {
        let severity = sev_step as f64 * 0.25;
        let cohort = tiny(seed);
        let known = cohort.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = cohort.group_matrix(Task::Rest, Session::Two).unwrap();
        let spec = CorruptionSpec { kind: CorruptionKind::NanRegions, severity, seed };
        let (bad_known, _) = corrupt_group(&known, &spec).unwrap();
        let config = AttackConfig { degraded: DegradedInput::Mask, ..Default::default() };
        let direct = DeanonAttack::new(config.clone()).unwrap().run(&bad_known, &anon);
        let planned = AttackPlan::prepare(bad_known, config)
            .and_then(|mut p| p.run_against(&anon));
        match (direct, planned) {
            (Ok(d), Ok(p)) => {
                check_outcome(&d, "mask/known")?;
                tk_assert_eq!(d.predicted, p.predicted);
                tk_assert_eq!(d.accuracy.to_bits(), p.accuracy.to_bits());
            }
            (Err(CoreError::InsufficientSupport { .. }),
             Err(CoreError::InsufficientSupport { .. })) => {}
            (d, p) => tk_assert!(false, "plan/direct disagree: {d:?} vs {p:?}"),
        }
    });
}
