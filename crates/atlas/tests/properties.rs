//! Property tests for the atlas layer.

use neurodeanon_atlas::{adjusted_rand_index, grown_atlas, region_average, VoxelGrid};
use neurodeanon_linalg::Matrix;
use neurodeanon_testkit::gen::{u64_in, usize_in};
use neurodeanon_testkit::{forall, tk_assert, tk_assert_eq, Config};

fn cfg() -> Config {
    Config::cases(24)
}

#[test]
fn grown_atlas_invariants() {
    forall!(cfg(), (n_regions in usize_in(2..40), seed in u64_in(0..500)) => {
        let grid = VoxelGrid::new(12, 12, 12).unwrap();
        let p = grown_atlas("prop", grid, n_regions, seed).unwrap();
        tk_assert_eq!(p.n_regions(), n_regions);
        // Region sizes sum to the brain voxel count; every region non-empty.
        let total: usize = p.regions().iter().map(|r| r.size).sum();
        tk_assert_eq!(total, p.brain_voxel_count());
        tk_assert!(p.regions().iter().all(|r| r.size > 0));
        // Membership is confined to brain voxels.
        let brain: std::collections::HashSet<usize> =
            p.grid().brain_voxels().into_iter().collect();
        for v in 0..p.grid().len() {
            tk_assert_eq!(p.region_of(v).is_some(), brain.contains(&v));
        }
    });
}

#[test]
fn region_average_is_linear() {
    forall!(cfg(), (seed in u64_in(0..200)) => {
        let grid = VoxelGrid::new(10, 10, 10).unwrap();
        let p = grown_atlas("lin", grid, 6, seed).unwrap();
        let n = p.grid().len();
        let a = Matrix::from_fn(n, 4, |v, t| ((seed + 1) as f64 * (v + t) as f64 * 0.01).sin());
        let b = Matrix::from_fn(n, 4, |v, t| ((v * 3 + t * 7) % 11) as f64 - 5.0);
        let sum = a.add(&b).unwrap();
        let ra = region_average(&p, &a).unwrap();
        let rb = region_average(&p, &b).unwrap();
        let rsum = region_average(&p, &sum).unwrap();
        let expect = ra.add(&rb).unwrap();
        tk_assert!(rsum.sub(&expect).unwrap().max_abs() < 1e-9);
    });
}

#[test]
fn ari_self_is_one_and_symmetric() {
    forall!(cfg(), (a_regions in usize_in(2..20), b_regions in usize_in(2..20),
                    seed in u64_in(0..200)) => {
        let grid = VoxelGrid::new(10, 10, 10).unwrap();
        let a = grown_atlas("a", grid.clone(), a_regions, seed).unwrap();
        let b = grown_atlas("b", grid, b_regions, seed + 1).unwrap();
        tk_assert!((adjusted_rand_index(&a, &a).unwrap() - 1.0).abs() < 1e-9);
        let ab = adjusted_rand_index(&a, &b).unwrap();
        let ba = adjusted_rand_index(&b, &a).unwrap();
        tk_assert!((ab - ba).abs() < 1e-12);
        tk_assert!(ab <= 1.0 + 1e-12);
    });
}
