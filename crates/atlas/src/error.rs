//! Atlas error type.

use std::fmt;

/// Errors from atlas construction and region reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtlasError {
    /// The requested region count cannot fit in the brain mask (fewer brain
    /// voxels than regions, or zero regions).
    InvalidRegionCount {
        /// Requested number of regions.
        requested: usize,
        /// Number of voxels available in the brain mask.
        brain_voxels: usize,
    },
    /// The voxel grid is degenerate (a zero dimension).
    EmptyGrid,
    /// A time-series matrix did not match the atlas voxel count.
    VoxelCountMismatch {
        /// Voxels in the atlas grid.
        atlas: usize,
        /// Rows in the provided voxel×time matrix.
        data: usize,
    },
    /// A region ended up with no member voxels (internal invariant breach —
    /// constructors must never return such an atlas).
    EmptyRegion {
        /// Region index with no voxels.
        region: usize,
    },
}

impl fmt::Display for AtlasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtlasError::InvalidRegionCount {
                requested,
                brain_voxels,
            } => write!(
                f,
                "cannot build {requested} regions from {brain_voxels} brain voxels"
            ),
            AtlasError::EmptyGrid => write!(f, "voxel grid has a zero dimension"),
            AtlasError::VoxelCountMismatch { atlas, data } => write!(
                f,
                "voxel count mismatch: atlas has {atlas} voxels, data has {data} rows"
            ),
            AtlasError::EmptyRegion { region } => {
                write!(f, "region {region} has no member voxels")
            }
        }
    }
}

impl std::error::Error for AtlasError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = AtlasError::InvalidRegionCount {
            requested: 360,
            brain_voxels: 10,
        };
        assert!(e.to_string().contains("360"));
        assert!(AtlasError::EmptyGrid.to_string().contains("zero"));
        let m = AtlasError::VoxelCountMismatch { atlas: 5, data: 6 };
        assert!(m.to_string().contains('5') && m.to_string().contains('6'));
    }
}
