#![warn(missing_docs)]

//! # neurodeanon-atlas
//!
//! Brain atlases (parcellations) for the reproduction, per §3.2.2 of the
//! paper. An atlas assigns every brain voxel a region label; the attack
//! pipeline collapses `voxel × time` data into `region × time` matrices by
//! averaging within regions, and the region count fixes the connectome
//! feature count: 360 regions (Glasser-like) ⇒ 64,620 region-pair features,
//! 116 regions (AAL2-like) ⇒ 6,670.
//!
//! Three parcellation families are provided:
//!
//! * [`glasser_like`] — 360 regions, hemispherically symmetric, lobed, the
//!   stand-in for the Glasser et al. (2016) multi-modal atlas used on the
//!   HCP data.
//! * [`aal2_like`] — 116 regions, the stand-in for AAL2 used on ADHD-200.
//! * [`grown_atlas`] — the paper's "sample k seed voxels, grow regions by
//!   proximity" automated scheme, with a seedable RNG.

pub mod compare;
pub mod error;
pub mod grid;
pub mod parcellation;
pub mod reduce;

pub use compare::adjusted_rand_index;
pub use error::AtlasError;
pub use grid::VoxelGrid;
pub use parcellation::{
    aal2_like, glasser_like, grown_atlas, Hemisphere, Lobe, Parcellation, Region,
};
pub use reduce::region_average;

/// Result alias for atlas operations.
pub type Result<T> = std::result::Result<T, AtlasError>;
