//! Parcellations: voxel → region membership functions.
//!
//! §3.2.2 of the paper: an atlas labels every brain voxel with exactly one
//! region (non-overlapping), regions are localized, and the label set is
//! fixed per atlas. The constructors here produce deterministic synthetic
//! atlases with the paper's two region counts (360 and 116) plus the
//! generic "grow regions from sampled seeds" scheme the paper sketches.

use crate::error::AtlasError;
use crate::grid::VoxelGrid;
use crate::Result;
use neurodeanon_linalg::Rng64;

/// Brain hemisphere of a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hemisphere {
    /// Left hemisphere (x below the midline).
    Left,
    /// Right hemisphere (x at or above the midline).
    Right,
}

/// Coarse anatomical lobe, assigned from the region centroid's position.
/// Used by experiments that restrict features to lobes (the paper cites the
/// parieto-frontal restriction of Finn et al.).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lobe {
    /// Anterior third of the brain.
    Frontal,
    /// Superior-posterior region.
    Parietal,
    /// Inferior-middle region.
    Temporal,
    /// Posterior region.
    Occipital,
}

/// Metadata for one parcel.
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    /// Region id, `0..n_regions`.
    pub id: usize,
    /// Display label, e.g. `"L_042"`.
    pub label: String,
    /// Hemisphere containing the region centroid.
    pub hemisphere: Hemisphere,
    /// Coarse lobe of the region centroid.
    pub lobe: Lobe,
    /// Centroid in voxel coordinates.
    pub centroid: (f64, f64, f64),
    /// Number of member voxels.
    pub size: usize,
}

/// A non-overlapping parcellation of the brain voxels of a grid.
#[derive(Debug, Clone)]
pub struct Parcellation {
    name: String,
    grid: VoxelGrid,
    /// Per-voxel membership: `Some(region)` for brain voxels, `None` outside.
    membership: Vec<Option<u32>>,
    regions: Vec<Region>,
}

impl Parcellation {
    /// Atlas name (e.g. `"glasser-like-360"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying voxel grid.
    pub fn grid(&self) -> &VoxelGrid {
        &self.grid
    }

    /// Number of regions.
    pub fn n_regions(&self) -> usize {
        self.regions.len()
    }

    /// Region metadata, indexed by region id.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Membership of a flat voxel index (`None` = non-brain).
    pub fn region_of(&self, voxel: usize) -> Option<usize> {
        self.membership
            .get(voxel)
            .copied()
            .flatten()
            .map(|r| r as usize)
    }

    /// Per-voxel membership slice, flat voxel order.
    pub fn membership(&self) -> &[Option<u32>] {
        &self.membership
    }

    /// Flat voxel indices belonging to `region`.
    pub fn voxels_of(&self, region: usize) -> Vec<usize> {
        self.membership
            .iter()
            .enumerate()
            .filter_map(|(v, m)| (m.map(|r| r as usize) == Some(region)).then_some(v))
            .collect()
    }

    /// Number of brain voxels (those with a region label).
    pub fn brain_voxel_count(&self) -> usize {
        self.membership.iter().filter(|m| m.is_some()).count()
    }

    /// Number of region-pair features `n(n−1)/2` this atlas induces on
    /// vectorized connectomes — 64,620 for 360 regions, 6,670 for 116.
    pub fn n_pair_features(&self) -> usize {
        let n = self.n_regions();
        n * (n - 1) / 2
    }
}

/// Builds a parcellation by growing regions outward from `n_regions` seed
/// voxels (nearest-seed / Voronoi assignment), the automated scheme of
/// §3.2.2. Deterministic given the seed.
pub fn grown_atlas(
    name: &str,
    grid: VoxelGrid,
    n_regions: usize,
    rng_seed: u64,
) -> Result<Parcellation> {
    let brain = grid.brain_voxels();
    if n_regions == 0 || n_regions > brain.len() {
        return Err(AtlasError::InvalidRegionCount {
            requested: n_regions,
            brain_voxels: brain.len(),
        });
    }
    let mut rng = Rng64::new(rng_seed);
    let seed_positions = rng.sample_indices(brain.len(), n_regions);
    let seeds: Vec<usize> = seed_positions.iter().map(|&i| brain[i]).collect();
    build_voronoi(name, grid, &brain, &seeds)
}

/// Glasser-like atlas: 360 regions, 180 per hemisphere, hemispherically
/// symmetric seed placement. Deterministic (no RNG): seeds are laid out on a
/// low-discrepancy lattice inside each hemisphere so parcels are compact and
/// mirror-symmetric, like the real multi-modal parcellation.
pub fn glasser_like(grid: VoxelGrid) -> Result<Parcellation> {
    symmetric_atlas("glasser-like-360", grid, 360)
}

/// AAL2-like atlas: 116 regions (58 per hemisphere), giving the 6,670
/// pair features the paper reports for ADHD-200.
pub fn aal2_like(grid: VoxelGrid) -> Result<Parcellation> {
    symmetric_atlas("aal2-like-116", grid, 116)
}

/// Shared construction for hemispherically symmetric atlases.
fn symmetric_atlas(name: &str, grid: VoxelGrid, n_regions: usize) -> Result<Parcellation> {
    if n_regions % 2 != 0 {
        return Err(AtlasError::InvalidRegionCount {
            requested: n_regions,
            brain_voxels: grid.brain_voxels().len(),
        });
    }
    let brain = grid.brain_voxels();
    if n_regions > brain.len() {
        return Err(AtlasError::InvalidRegionCount {
            requested: n_regions,
            brain_voxels: brain.len(),
        });
    }
    let (nx, _, _) = grid.dims();
    let half = n_regions / 2;
    // Left-hemisphere brain voxels in flat order.
    let left: Vec<usize> = brain
        .iter()
        .copied()
        .filter(|&v| grid.coords(v).0 < nx / 2)
        .collect();
    if left.len() < half || brain.len() - left.len() < half {
        return Err(AtlasError::InvalidRegionCount {
            requested: n_regions,
            brain_voxels: brain.len(),
        });
    }
    // Low-discrepancy seed placement: take every k-th left-hemisphere brain
    // voxel with a golden-ratio stride so seeds spread through the volume.
    let mut seeds = Vec::with_capacity(n_regions);
    let phi = 0.618_033_988_749_894_9_f64;
    let mut pos = 0.0_f64;
    let mut taken = std::collections::HashSet::new();
    while seeds.len() < half {
        pos = (pos + phi) % 1.0;
        let idx = ((pos * left.len() as f64) as usize).min(left.len() - 1);
        // Linear-probe to the next untaken voxel for degenerate small grids.
        let mut j = idx;
        while taken.contains(&j) {
            j = (j + 1) % left.len();
        }
        taken.insert(j);
        seeds.push(left[j]);
    }
    // Mirror each left seed across the midline for the right hemisphere.
    for k in 0..half {
        let (x, y, z) = grid.coords(seeds[k]);
        let mx = nx - 1 - x;
        seeds.push(grid.index(mx, y, z));
    }
    build_voronoi(name, grid, &brain, &seeds)
}

/// Assigns every brain voxel to the nearest seed, producing regions with
/// metadata; errors if any region ends up empty.
fn build_voronoi(
    name: &str,
    grid: VoxelGrid,
    brain: &[usize],
    seeds: &[usize],
) -> Result<Parcellation> {
    let n_regions = seeds.len();
    let mut membership = vec![None; grid.len()];
    let seed_coords: Vec<(f64, f64, f64)> = seeds
        .iter()
        .map(|&s| {
            let (x, y, z) = grid.coords(s);
            (x as f64, y as f64, z as f64)
        })
        .collect();
    for &v in brain {
        let (x, y, z) = grid.coords(v);
        let (xf, yf, zf) = (x as f64, y as f64, z as f64);
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (r, &(sx, sy, sz)) in seed_coords.iter().enumerate() {
            let d = (xf - sx).powi(2) + (yf - sy).powi(2) + (zf - sz).powi(2);
            if d < best_d {
                best_d = d;
                best = r;
            }
        }
        membership[v] = Some(best as u32);
    }

    // Region metadata: centroid, size, hemisphere, lobe.
    let mut sums = vec![(0.0_f64, 0.0_f64, 0.0_f64, 0usize); n_regions];
    for &v in brain {
        if let Some(r) = membership[v] {
            let (x, y, z) = grid.coords(v);
            let s = &mut sums[r as usize];
            s.0 += x as f64;
            s.1 += y as f64;
            s.2 += z as f64;
            s.3 += 1;
        }
    }
    let (nx, ny, nz) = grid.dims();
    let mut regions = Vec::with_capacity(n_regions);
    for (id, &(sx, sy, sz, count)) in sums.iter().enumerate() {
        if count == 0 {
            return Err(AtlasError::EmptyRegion { region: id });
        }
        let cx = sx / count as f64;
        let cy = sy / count as f64;
        let cz = sz / count as f64;
        let hemisphere = if cx < (nx as f64) / 2.0 {
            Hemisphere::Left
        } else {
            Hemisphere::Right
        };
        // Lobe heuristic on normalized coordinates: front third = frontal;
        // back quarter = occipital; low-and-middle = temporal; else parietal.
        let yn = cy / ny as f64;
        let zn = cz / nz as f64;
        let lobe = if yn > 0.66 {
            Lobe::Frontal
        } else if yn < 0.25 {
            Lobe::Occipital
        } else if zn < 0.4 {
            Lobe::Temporal
        } else {
            Lobe::Parietal
        };
        let side = match hemisphere {
            Hemisphere::Left => 'L',
            Hemisphere::Right => 'R',
        };
        regions.push(Region {
            id,
            label: format!("{side}_{id:03}"),
            hemisphere,
            lobe,
            centroid: (cx, cy, cz),
            size: count,
        });
    }
    Ok(Parcellation {
        name: name.to_string(),
        grid,
        membership,
        regions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid24() -> VoxelGrid {
        VoxelGrid::new(24, 24, 24).unwrap()
    }

    #[test]
    fn glasser_like_has_360_nonempty_regions() {
        let p = glasser_like(grid24()).unwrap();
        assert_eq!(p.n_regions(), 360);
        assert!(p.regions().iter().all(|r| r.size > 0));
        assert_eq!(p.n_pair_features(), 64_620);
    }

    #[test]
    fn aal2_like_has_116_regions_and_6670_features() {
        let p = aal2_like(grid24()).unwrap();
        assert_eq!(p.n_regions(), 116);
        assert_eq!(p.n_pair_features(), 6_670);
    }

    #[test]
    fn membership_covers_exactly_brain_voxels() {
        let g = grid24();
        let brain: std::collections::HashSet<usize> = g.brain_voxels().into_iter().collect();
        let p = glasser_like(g).unwrap();
        for v in 0..p.grid().len() {
            assert_eq!(p.region_of(v).is_some(), brain.contains(&v), "voxel {v}");
        }
        assert_eq!(p.brain_voxel_count(), brain.len());
    }

    #[test]
    fn hemispheres_are_balanced() {
        let p = glasser_like(grid24()).unwrap();
        let left = p
            .regions()
            .iter()
            .filter(|r| r.hemisphere == Hemisphere::Left)
            .count();
        assert_eq!(left, 180);
    }

    #[test]
    fn all_lobes_represented() {
        let p = glasser_like(grid24()).unwrap();
        for lobe in [
            Lobe::Frontal,
            Lobe::Parietal,
            Lobe::Temporal,
            Lobe::Occipital,
        ] {
            assert!(
                p.regions().iter().any(|r| r.lobe == lobe),
                "missing {lobe:?}"
            );
        }
    }

    #[test]
    fn voxels_of_matches_membership() {
        let p = aal2_like(grid24()).unwrap();
        let vox = p.voxels_of(0);
        assert!(!vox.is_empty());
        assert!(vox.iter().all(|&v| p.region_of(v) == Some(0)));
        // Region sizes sum to the brain voxel count.
        let total: usize = p.regions().iter().map(|r| r.size).sum();
        assert_eq!(total, p.brain_voxel_count());
    }

    #[test]
    fn grown_atlas_deterministic_per_seed() {
        let a = grown_atlas("g", grid24(), 50, 7).unwrap();
        let b = grown_atlas("g", grid24(), 50, 7).unwrap();
        assert_eq!(a.membership(), b.membership());
        let c = grown_atlas("g", grid24(), 50, 8).unwrap();
        assert_ne!(a.membership(), c.membership());
    }

    #[test]
    fn grown_atlas_rejects_bad_counts() {
        assert!(grown_atlas("g", grid24(), 0, 1).is_err());
        let tiny = VoxelGrid::new(3, 3, 3).unwrap();
        assert!(grown_atlas("g", tiny, 10_000, 1).is_err());
    }

    #[test]
    fn symmetric_atlas_rejects_odd_count() {
        let e = symmetric_atlas("odd", grid24(), 361);
        assert!(e.is_err());
    }

    #[test]
    fn regions_are_spatially_compact() {
        // Every voxel must be closer to its own region centroid than to the
        // centroid of at least 90% of other regions (Voronoi compactness).
        let p = aal2_like(grid24()).unwrap();
        let g = p.grid().clone();
        let mut violations = 0usize;
        let mut checked = 0usize;
        for r in p.regions().iter().take(10) {
            for &v in p.voxels_of(r.id).iter().take(5) {
                let (x, y, z) = g.coords(v);
                let own = dist(&(x, y, z), &r.centroid);
                let closer = p
                    .regions()
                    .iter()
                    .filter(|o| o.id != r.id && dist(&(x, y, z), &o.centroid) < own)
                    .count();
                if closer > p.n_regions() / 10 {
                    violations += 1;
                }
                checked += 1;
            }
        }
        assert!(violations < checked / 5, "{violations}/{checked}");
    }

    fn dist(a: &(usize, usize, usize), c: &(f64, f64, f64)) -> f64 {
        (a.0 as f64 - c.0).powi(2) + (a.1 as f64 - c.1).powi(2) + (a.2 as f64 - c.2).powi(2)
    }

    #[test]
    fn labels_follow_hemisphere() {
        let p = glasser_like(grid24()).unwrap();
        for r in p.regions() {
            let expect = match r.hemisphere {
                Hemisphere::Left => 'L',
                Hemisphere::Right => 'R',
            };
            assert!(r.label.starts_with(expect));
        }
    }
}
