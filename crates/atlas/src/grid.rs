//! 3-D voxel grid geometry.

use crate::error::AtlasError;
use crate::Result;

/// A rectangular 3-D voxel grid with an ellipsoidal "brain" mask.
///
/// Voxels are addressed either by `(x, y, z)` coordinates or by a flat index
/// in x-fastest order; the flat order is the row order of all voxel×time
/// matrices in the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoxelGrid {
    nx: usize,
    ny: usize,
    nz: usize,
}

impl VoxelGrid {
    /// Creates a grid; all dimensions must be non-zero.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Result<Self> {
        if nx == 0 || ny == 0 || nz == 0 {
            return Err(AtlasError::EmptyGrid);
        }
        Ok(VoxelGrid { nx, ny, nz })
    }

    /// Grid dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Total voxel count `nx · ny · nz`.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// `true` if the grid holds no voxels (cannot happen post-construction;
    /// present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat index of voxel `(x, y, z)` (x fastest).
    #[inline]
    pub fn index(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        x + self.nx * (y + self.ny * z)
    }

    /// Inverse of [`VoxelGrid::index`].
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize, usize) {
        let x = idx % self.nx;
        let y = (idx / self.nx) % self.ny;
        let z = idx / (self.nx * self.ny);
        (x, y, z)
    }

    /// `true` if `(x, y, z)` lies inside the ellipsoidal brain mask
    /// inscribed in the grid (semi-axes at 45% of each dimension, leaving a
    /// "skull" shell of non-brain voxels around it — the shell is what the
    /// skull-stripping preprocessing stage removes).
    pub fn in_brain(&self, x: usize, y: usize, z: usize) -> bool {
        let cx = (self.nx as f64 - 1.0) / 2.0;
        let cy = (self.ny as f64 - 1.0) / 2.0;
        let cz = (self.nz as f64 - 1.0) / 2.0;
        let rx = self.nx as f64 * 0.45;
        let ry = self.ny as f64 * 0.45;
        let rz = self.nz as f64 * 0.45;
        let dx = (x as f64 - cx) / rx;
        let dy = (y as f64 - cy) / ry;
        let dz = (z as f64 - cz) / rz;
        dx * dx + dy * dy + dz * dz <= 1.0
    }

    /// Flat indices of all brain voxels, in flat order.
    pub fn brain_voxels(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for z in 0..self.nz {
            for y in 0..self.ny {
                for x in 0..self.nx {
                    if self.in_brain(x, y, z) {
                        out.push(self.index(x, y, z));
                    }
                }
            }
        }
        out
    }

    /// Squared Euclidean distance between two voxels in grid units.
    pub fn dist_sq(&self, a: usize, b: usize) -> f64 {
        let (ax, ay, az) = self.coords(a);
        let (bx, by, bz) = self.coords(b);
        let dx = ax as f64 - bx as f64;
        let dy = ay as f64 - by as f64;
        let dz = az as f64 - bz as f64;
        dx * dx + dy * dy + dz * dz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_dimension() {
        assert!(VoxelGrid::new(0, 5, 5).is_err());
        assert!(VoxelGrid::new(5, 0, 5).is_err());
        assert!(VoxelGrid::new(5, 5, 0).is_err());
    }

    #[test]
    fn index_coords_roundtrip() {
        let g = VoxelGrid::new(7, 5, 3).unwrap();
        for idx in 0..g.len() {
            let (x, y, z) = g.coords(idx);
            assert_eq!(g.index(x, y, z), idx);
        }
    }

    #[test]
    fn center_is_brain_corner_is_not() {
        let g = VoxelGrid::new(20, 20, 20).unwrap();
        assert!(g.in_brain(10, 10, 10));
        assert!(!g.in_brain(0, 0, 0));
        assert!(!g.in_brain(19, 19, 19));
    }

    #[test]
    fn brain_mask_volume_reasonable() {
        let g = VoxelGrid::new(20, 20, 20).unwrap();
        let brain = g.brain_voxels();
        // Ellipsoid with 45% semi-axes: 4/3·π·0.45³ ≈ 38% of the box.
        let frac = brain.len() as f64 / g.len() as f64;
        assert!((0.25..0.5).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn brain_voxels_sorted_flat_order() {
        let g = VoxelGrid::new(10, 10, 10).unwrap();
        let brain = g.brain_voxels();
        assert!(brain.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn dist_sq_symmetric_and_zero_on_self() {
        let g = VoxelGrid::new(6, 6, 6).unwrap();
        let a = g.index(1, 2, 3);
        let b = g.index(4, 0, 5);
        assert_eq!(g.dist_sq(a, b), g.dist_sq(b, a));
        assert_eq!(g.dist_sq(a, a), 0.0);
        // Known distance: (3,2,2) -> 9+4+4=17.
        assert_eq!(g.dist_sq(a, b), 17.0);
    }
}
