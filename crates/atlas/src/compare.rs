//! Parcellation comparison.
//!
//! The paper's robustness argument rests on the attack working across
//! different atlases (§3.2.2: Glasser-like for HCP, AAL2-like for
//! ADHD-200). [`adjusted_rand_index`] quantifies how similar two
//! parcellations of the same grid are — 1 for identical label structure,
//! ≈ 0 for independent ones — which the atlas-granularity ablation uses to
//! report how far apart the compared parcellations actually are.

use crate::error::AtlasError;
use crate::parcellation::Parcellation;
use crate::Result;

/// Adjusted Rand index between two parcellations of the same grid,
/// computed over voxels labelled by *both* (brain-mask intersection).
///
/// Returns ≈ 1 for identical partitions (up to label permutation), ≈ 0 for
/// independent random partitions, and can go slightly negative for
/// partitions that disagree more than chance.
pub fn adjusted_rand_index(a: &Parcellation, b: &Parcellation) -> Result<f64> {
    if a.grid().dims() != b.grid().dims() {
        return Err(AtlasError::VoxelCountMismatch {
            atlas: a.grid().len(),
            data: b.grid().len(),
        });
    }
    let ka = a.n_regions();
    let kb = b.n_regions();
    // Contingency table over jointly labelled voxels.
    let mut table = vec![vec![0u64; kb]; ka];
    let mut n = 0u64;
    for v in 0..a.grid().len() {
        if let (Some(ra), Some(rb)) = (a.region_of(v), b.region_of(v)) {
            table[ra][rb] += 1;
            n += 1;
        }
    }
    if n < 2 {
        return Err(AtlasError::EmptyGrid);
    }
    let choose2 = |x: u64| -> f64 { (x as f64) * (x as f64 - 1.0) / 2.0 };
    let mut sum_ij = 0.0;
    let mut row_sums = vec![0u64; ka];
    let mut col_sums = vec![0u64; kb];
    for (i, row) in table.iter().enumerate() {
        for (j, &c) in row.iter().enumerate() {
            sum_ij += choose2(c);
            row_sums[i] += c;
            col_sums[j] += c;
        }
    }
    let sum_a: f64 = row_sums.iter().map(|&x| choose2(x)).sum();
    let sum_b: f64 = col_sums.iter().map(|&x| choose2(x)).sum();
    let total = choose2(n);
    let expected = sum_a * sum_b / total;
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < 1e-12 {
        return Ok(1.0); // degenerate (e.g. single cluster on both sides)
    }
    Ok((sum_ij - expected) / (max_index - expected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::VoxelGrid;
    use crate::parcellation::{aal2_like, grown_atlas};

    fn grid() -> VoxelGrid {
        VoxelGrid::new(16, 16, 16).unwrap()
    }

    #[test]
    fn identical_parcellations_score_one() {
        let a = grown_atlas("x", grid(), 20, 7).unwrap();
        let b = grown_atlas("y", grid(), 20, 7).unwrap();
        let ari = adjusted_rand_index(&a, &b).unwrap();
        assert!((ari - 1.0).abs() < 1e-9, "ARI {ari}");
    }

    #[test]
    fn independent_parcellations_score_near_zero() {
        let a = grown_atlas("x", grid(), 20, 7).unwrap();
        let b = grown_atlas("y", grid(), 20, 1234).unwrap();
        let ari = adjusted_rand_index(&a, &b).unwrap();
        // Voronoi partitions of the same seeds-count still share spatial
        // structure, so "independent" here means well below identical but
        // with some residual agreement.
        assert!(ari < 0.6, "ARI {ari}");
        assert!(ari > -0.2);
    }

    #[test]
    fn comparison_is_symmetric() {
        let a = grown_atlas("x", grid(), 12, 3).unwrap();
        let b = aal2_like(grid()).unwrap();
        let ab = adjusted_rand_index(&a, &b).unwrap();
        let ba = adjusted_rand_index(&b, &a).unwrap();
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn rejects_mismatched_grids() {
        let a = grown_atlas("x", grid(), 12, 3).unwrap();
        let other = grown_atlas("y", VoxelGrid::new(10, 10, 10).unwrap(), 12, 3).unwrap();
        assert!(adjusted_rand_index(&a, &other).is_err());
    }

    #[test]
    fn refinement_scores_between_zero_and_one() {
        // A 40-region refinement of a 20-region atlas (different seeds but
        // same family) should land strictly between the extremes.
        let coarse = grown_atlas("c", grid(), 10, 5).unwrap();
        let fine = grown_atlas("f", grid(), 40, 5).unwrap();
        let ari = adjusted_rand_index(&coarse, &fine).unwrap();
        assert!(ari > 0.05 && ari < 0.95, "ARI {ari}");
    }
}
