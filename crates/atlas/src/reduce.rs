//! Voxel → region reduction: collapse a `voxel × time` matrix into a
//! `region × time` matrix by averaging member voxels (§3.2.2: "collapse it
//! into a region × time matrix, simply by computing region-wise average of
//! time series data").

use crate::error::AtlasError;
use crate::parcellation::Parcellation;
use crate::Result;
use neurodeanon_linalg::Matrix;

/// Averages voxel time series within each region.
///
/// `voxel_ts` must have one row per grid voxel in flat order (rows for
/// non-brain voxels are ignored). Returns a `n_regions × time` matrix.
pub fn region_average(parcellation: &Parcellation, voxel_ts: &Matrix) -> Result<Matrix> {
    let n_vox = parcellation.grid().len();
    if voxel_ts.rows() != n_vox {
        return Err(AtlasError::VoxelCountMismatch {
            atlas: n_vox,
            data: voxel_ts.rows(),
        });
    }
    let t = voxel_ts.cols();
    let n_regions = parcellation.n_regions();
    let mut sums = Matrix::zeros(n_regions, t);
    let mut counts = vec![0usize; n_regions];
    for (v, m) in parcellation.membership().iter().enumerate() {
        if let Some(r) = m {
            let r = *r as usize;
            counts[r] += 1;
            let src = voxel_ts.row(v);
            let dst = sums.row_mut(r);
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
    }
    for r in 0..n_regions {
        if counts[r] == 0 {
            return Err(AtlasError::EmptyRegion { region: r });
        }
        let inv = 1.0 / counts[r] as f64;
        for v in sums.row_mut(r) {
            *v *= inv;
        }
    }
    Ok(sums)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::VoxelGrid;
    use crate::parcellation::grown_atlas;

    fn small_parc() -> Parcellation {
        grown_atlas("t", VoxelGrid::new(10, 10, 10).unwrap(), 8, 3).unwrap()
    }

    #[test]
    fn output_shape() {
        let p = small_parc();
        let ts = Matrix::zeros(p.grid().len(), 16);
        let r = region_average(&p, &ts).unwrap();
        assert_eq!(r.shape(), (8, 16));
    }

    #[test]
    fn constant_regions_average_to_constant() {
        let p = small_parc();
        // Voxel value = its region id, at every time point.
        let mut ts = Matrix::zeros(p.grid().len(), 4);
        for v in 0..p.grid().len() {
            if let Some(r) = p.region_of(v) {
                for t in 0..4 {
                    ts[(v, t)] = r as f64;
                }
            }
        }
        let out = region_average(&p, &ts).unwrap();
        for r in 0..8 {
            for t in 0..4 {
                assert!((out[(r, t)] - r as f64).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn averaging_matches_manual_mean() {
        let p = small_parc();
        let ts = Matrix::from_fn(p.grid().len(), 3, |v, t| ((v * 7 + t * 3) % 13) as f64);
        let out = region_average(&p, &ts).unwrap();
        let vox = p.voxels_of(2);
        for t in 0..3 {
            let mean: f64 = vox.iter().map(|&v| ts[(v, t)]).sum::<f64>() / vox.len() as f64;
            assert!((out[(2, t)] - mean).abs() < 1e-12);
        }
    }

    #[test]
    fn non_brain_rows_ignored() {
        let p = small_parc();
        let mut ts = Matrix::zeros(p.grid().len(), 2);
        // Poison all non-brain rows; output must stay zero.
        for v in 0..p.grid().len() {
            if p.region_of(v).is_none() {
                ts[(v, 0)] = 1e9;
                ts[(v, 1)] = -1e9;
            }
        }
        let out = region_average(&p, &ts).unwrap();
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rejects_wrong_voxel_count() {
        let p = small_parc();
        let ts = Matrix::zeros(p.grid().len() + 1, 4);
        assert!(matches!(
            region_average(&p, &ts),
            Err(AtlasError::VoxelCountMismatch { .. })
        ));
    }
}
