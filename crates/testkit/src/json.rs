//! Minimal JSON: a [`Value`] tree, a compact writer (`Display`), a strict
//! parser ([`parse`]), and the [`crate::json!`] builder macro.
//!
//! This replaces `serde`/`serde_json` in the reproduction harness: the
//! `repro` binary writes JSONL experiment records through [`Value`]'s
//! `Display`, and `summarize` reads them back through [`parse`]. Object
//! member order is preserved (insertion order), numbers are `f64` (JSON's
//! own number model), and non-finite floats serialize as `null` exactly
//! like `serde_json` did.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; members keep insertion order.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup (first match), `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// `value["key"]` — member access that yields `null` for missing keys or
/// non-objects (mirrors `serde_json`'s indexing used by `summarize`).
impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

/// `value[i]` — element access that yields `null` out of bounds or on
/// non-arrays.
impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Number(v as f64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}

macro_rules! from_int {
    ($($t:ty),+) => {
        $(impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(v as f64)
            }
        })+
    };
}
from_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

/// Pairs map to two-element arrays — the shape the repro harness uses for
/// its `(mean, std)` measurements.
impl<A: Into<Value>, B: Into<Value>> From<(A, B)> for Value {
    fn from((a, b): (A, B)) -> Self {
        Value::Array(vec![a.into(), b.into()])
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0C}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    /// Compact JSON (no whitespace), round-trippable through [`parse`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => {
                if !n.is_finite() {
                    // JSON has no NaN/inf; serde_json also emitted null.
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    // Rust's shortest-roundtrip float formatting.
                    write!(f, "{n}")
                }
            }
            Value::String(s) => write_escaped(f, s),
            Value::Array(a) => {
                f.write_str("[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

const MAX_DEPTH: u32 = 128;

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        let out = match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        };
        self.depth -= 1;
        out
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(hi).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue; // pos already advanced past the hex
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        s.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err(format!("invalid number `{s}`")))
    }
}

/// Builds a [`Value`] with JSON-like syntax:
/// `json!({"accuracy": acc, "points": data})`, `json!([1, 2, 3])`,
/// `json!(null)`, or `json!(expr)` for any `Into<Value>` expression.
///
/// Unlike `serde_json::json!`, nested object/array *literals* must be
/// wrapped in their own `json!` call (`"inner": json!({...})`); expression
/// values of any `Into<Value>` type need no wrapping.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::json::Value::Null
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::json::Value::Object(vec![
            $( ($key.to_string(), $crate::json::Value::from($val)) ),*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::json::Value::Array(vec![
            $( $crate::json::Value::from($val) ),*
        ])
    };
    ($val:expr) => {
        $crate::json::Value::from($val)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_writes_compact_json() {
        let v = json!({
            "id": "fig1",
            "acc": 0.94,
            "n": 50_usize,
            "tags": vec!["a", "b"],
            "pair": (1.5, 0.25),
            "none": json!(null),
        });
        assert_eq!(
            v.to_string(),
            r#"{"id":"fig1","acc":0.94,"n":50,"tags":["a","b"],"pair":[1.5,0.25],"none":null}"#
        );
    }

    #[test]
    fn integral_floats_print_without_decimal_point() {
        assert_eq!(Value::Number(3.0).to_string(), "3");
        assert_eq!(Value::Number(-0.0).to_string(), "0");
        assert_eq!(Value::Number(0.5).to_string(), "0.5");
        assert_eq!(Value::Number(f64::NAN).to_string(), "null");
        assert_eq!(Value::Number(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn string_escaping_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{08}\u{0C}\r\u{1}解";
        let v = Value::String(nasty.to_string());
        let parsed = parse(&v.to_string()).unwrap();
        assert_eq!(parsed.as_str(), Some(nasty));
    }

    #[test]
    fn parser_handles_the_grammar() {
        let v = parse(r#" {"a": [1, -2.5, 1e3, true, false, null], "b": {"c": "d"}} "#).unwrap();
        assert_eq!(v["a"][0].as_f64(), Some(1.0));
        assert_eq!(v["a"][1].as_f64(), Some(-2.5));
        assert_eq!(v["a"][2].as_f64(), Some(1000.0));
        assert_eq!(v["a"][3].as_bool(), Some(true));
        assert_eq!(v["a"][4].as_bool(), Some(false));
        assert!(v["a"][5].is_null());
        assert_eq!(v["b"]["c"].as_str(), Some("d"));
        // Missing keys / out-of-range indices are null, not panics.
        assert!(v["zzz"].is_null());
        assert!(v["a"][99].is_null());
        assert!(v["a"]["not-an-object"].is_null());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(parse(r#""A""#).unwrap().as_str(), Some("A"));
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        // Lone surrogate degrades to the replacement character.
        assert_eq!(parse(r#""\ud800x""#).unwrap().as_str(), Some("\u{FFFD}x"));
    }

    #[test]
    fn member_order_is_preserved() {
        let v = parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn nested_collections_convert() {
        let grid: Vec<Vec<f64>> = vec![vec![1.0, 2.0], vec![3.0]];
        let v = Value::from(grid);
        assert_eq!(v.to_string(), "[[1,2],[3]]");
        let pairs: Vec<(String, f64)> = vec![("x".to_string(), 0.5)];
        assert_eq!(Value::from(pairs).to_string(), r#"[["x",0.5]]"#);
    }
}
