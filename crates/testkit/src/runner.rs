//! The property-test runner: case scheduling, failure shrinking, and
//! seed reporting.
//!
//! Each case derives its own seed from the base seed and the case index,
//! so a failure report names a single `TESTKIT_SEED` value that replays
//! the exact counterexample as case 0 (`TESTKIT_CASES=1`). Failures
//! raised through [`crate::tk_assert!`]-style macros are shrunk with the
//! generator's [`Gen::shrink`] candidates; plain panics inside a property
//! body are reported as-is (still with the replay seed) without a shrink
//! pass, keeping captured test output readable.

use crate::gen::Gen;
use neurodeanon_linalg::Rng64;

/// Default base seed when `TESTKIT_SEED` is not set. Arbitrary but fixed:
/// CI failures replay locally without any environment plumbing.
pub const DEFAULT_SEED: u64 = 0x6e64_7465_7374; // "ndtest"

/// Per-case seed stride (the SplitMix64 golden-gamma constant, coprime to
/// 2⁶⁴, so case seeds never collide).
const CASE_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Runner configuration: case count, base seed, shrink budget, regression
/// corpus.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of randomized cases to run.
    pub cases: u64,
    /// Base seed; case `i` uses `seed + i * CASE_STRIDE` (wrapping).
    pub seed: u64,
    /// Maximum number of candidate evaluations during shrinking.
    pub max_shrink_steps: u32,
    /// Regression corpus: seeds of past counterexamples, replayed verbatim
    /// before (and in addition to) the `cases` randomized cases. When a
    /// failure report names a `TESTKIT_SEED`, appending that seed here pins
    /// the property against regressing — every future run replays it first.
    pub corpus: Vec<u64>,
}

impl Config {
    /// A config running `n` cases with the default seed. The environment
    /// overrides both knobs: `TESTKIT_SEED` (decimal or `0x`-hex) replays
    /// a reported counterexample and `TESTKIT_CASES` adjusts the count.
    pub fn cases(n: u64) -> Self {
        let seed = std::env::var("TESTKIT_SEED")
            .ok()
            .and_then(|s| parse_seed(&s))
            .unwrap_or(DEFAULT_SEED);
        let cases = std::env::var("TESTKIT_CASES")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(n)
            .max(1);
        Config {
            cases,
            seed,
            max_shrink_steps: 256,
            corpus: Vec::new(),
        }
    }

    /// Same config with a different base seed (ignores `TESTKIT_SEED`);
    /// useful for pinning a suite to a known-good stream.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Same config with a regression corpus: each seed is replayed as a
    /// deterministic case before the randomized ones, so once a
    /// counterexample's reported seed is added here the property can never
    /// silently regress on that input.
    pub fn with_corpus(mut self, seeds: &[u64]) -> Self {
        self.corpus = seeds.to_vec();
        self
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// A minimized property failure, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Property name (file:line from [`crate::forall!`]).
    pub name: String,
    /// Zero-based index of the failing case.
    pub case: u64,
    /// The per-case seed; replaying with `TESTKIT_SEED=<this>`
    /// `TESTKIT_CASES=1` regenerates the original input as case 0.
    pub case_seed: u64,
    /// The assertion/panic message.
    pub message: String,
    /// Debug rendering of the originally generated input.
    pub original: String,
    /// Debug rendering of the shrunk input, if shrinking made progress.
    pub shrunk: Option<String>,
    /// Number of shrink candidates evaluated.
    pub shrink_steps: u32,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "property failed: {}", self.name)?;
        writeln!(f, "  case:   {}", self.case)?;
        writeln!(
            f,
            "  seed:   0x{:x}  (replay: TESTKIT_SEED=0x{:x} TESTKIT_CASES=1)",
            self.case_seed, self.case_seed
        )?;
        writeln!(
            f,
            "  error:  {}",
            self.message.replace('\n', "\n          ")
        )?;
        writeln!(f, "  input:  {}", self.original)?;
        if let Some(s) = &self.shrunk {
            writeln!(f, "  shrunk: {s}  ({} steps)", self.shrink_steps)?;
        }
        Ok(())
    }
}

enum CaseOutcome {
    Pass,
    /// (message, failed via panic rather than a returned Err)
    Fail(String, bool),
}

fn run_case<V, F>(prop: &F, value: &V) -> CaseOutcome
where
    F: Fn(&V) -> Result<(), String>,
{
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prop(value))) {
        Ok(Ok(())) => CaseOutcome::Pass,
        Ok(Err(msg)) => CaseOutcome::Fail(msg, false),
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "panic with non-string payload".to_string()
            };
            CaseOutcome::Fail(msg, true)
        }
    }
}

/// Runs the property over the regression corpus (first) and then
/// `cfg.cases` random cases. Returns the first failure (shrunk where
/// possible) or `Ok(())`.
pub fn run<G, F>(name: &str, cfg: &Config, gen: &G, prop: F) -> Result<(), Failure>
where
    G: Gen,
    F: Fn(&G::Value) -> Result<(), String>,
{
    let n_corpus = cfg.corpus.len() as u64;
    for case in 0..n_corpus + cfg.cases {
        // Corpus seeds replay verbatim; randomized case `i` derives its
        // seed as before, so corpus entries never shift the random stream.
        let case_seed = match cfg.corpus.get(case as usize) {
            Some(&seed) => seed,
            None => cfg
                .seed
                .wrapping_add((case - n_corpus).wrapping_mul(CASE_STRIDE)),
        };
        let mut rng = Rng64::new(case_seed);
        let value = gen.generate(&mut rng);
        let (mut message, was_panic) = match run_case(&prop, &value) {
            CaseOutcome::Pass => continue,
            CaseOutcome::Fail(m, p) => (m, p),
        };

        let original = format!("{value:?}");
        let mut current = value;
        let mut steps = 0u32;
        let mut progressed = false;
        // Shrink only assertion-style failures: re-running a panicking body
        // hundreds of times floods the captured output with panic traces.
        if !was_panic {
            'outer: loop {
                if steps >= cfg.max_shrink_steps {
                    break;
                }
                for cand in gen.shrink(&current) {
                    steps += 1;
                    if let CaseOutcome::Fail(m, false) = run_case(&prop, &cand) {
                        current = cand;
                        message = m;
                        progressed = true;
                        continue 'outer;
                    }
                    if steps >= cfg.max_shrink_steps {
                        break 'outer;
                    }
                }
                break;
            }
        }
        return Err(Failure {
            name: name.to_string(),
            case,
            case_seed,
            message,
            shrunk: progressed.then(|| format!("{current:?}")),
            original,
            shrink_steps: steps,
        });
    }
    Ok(())
}

/// [`run`], panicking with the full failure report — the entry point the
/// [`crate::forall!`] macro expands to.
pub fn check<G, F>(name: &str, cfg: &Config, gen: &G, prop: F)
where
    G: Gen,
    F: Fn(&G::Value) -> Result<(), String>,
{
    if let Err(failure) = run(name, cfg, gen, prop) {
        panic!("{failure}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{f64_in, usize_in, vec_of};

    fn cfg(cases: u64) -> Config {
        // Fixed seed: these tests assert on runner mechanics and must not
        // be perturbed by an inherited TESTKIT_SEED.
        Config {
            cases,
            seed: DEFAULT_SEED,
            max_shrink_steps: 256,
            corpus: Vec::new(),
        }
    }

    #[test]
    fn passing_property_passes() {
        run("t", &cfg(200), &usize_in(0..100), |&v| {
            if v < 100 {
                Ok(())
            } else {
                Err("out of range".into())
            }
        })
        .unwrap();
    }

    #[test]
    fn failure_reports_replayable_seed() {
        let failure = run("t", &cfg(100), &usize_in(0..1000), |&v| {
            if v < 500 {
                Ok(())
            } else {
                Err(format!("{v} too big"))
            }
        })
        .unwrap_err();
        // Replay: the reported case seed regenerates the same input as
        // case 0 of a fresh run.
        let replay = Config {
            cases: 1,
            seed: failure.case_seed,
            max_shrink_steps: 256,
            corpus: Vec::new(),
        };
        let again = run("t", &replay, &usize_in(0..1000), |&v| {
            if v < 500 {
                Ok(())
            } else {
                Err(format!("{v} too big"))
            }
        })
        .unwrap_err();
        assert_eq!(again.case, 0);
        assert_eq!(again.original, failure.original);
        // And the rendered report carries the replay instructions.
        let report = failure.to_string();
        assert!(report.contains("TESTKIT_SEED=0x"), "report: {report}");
        assert!(
            report.contains(&format!("0x{:x}", failure.case_seed)),
            "report: {report}"
        );
    }

    #[test]
    fn shrinking_minimizes_the_counterexample() {
        // Fails for any v >= 100; the minimum is reachable by halving.
        let failure = run("t", &cfg(100), &usize_in(0..10_000), |&v| {
            if v < 100 {
                Ok(())
            } else {
                Err("too big".into())
            }
        })
        .unwrap_err();
        let shrunk: usize = failure
            .shrunk
            .as_deref()
            .unwrap_or(&failure.original)
            .parse()
            .unwrap();
        assert!(shrunk >= 100, "shrunk value must still fail");
        assert!(
            shrunk < 2500,
            "shrinking barely progressed: {shrunk} (from {})",
            failure.original
        );
    }

    #[test]
    fn vec_counterexamples_shrink_structurally() {
        let gen = vec_of(f64_in(-10.0..10.0), 1..50);
        let failure = run("t", &cfg(100), &gen, |v: &Vec<f64>| {
            if v.len() < 8 {
                Ok(())
            } else {
                Err("long".into())
            }
        })
        .unwrap_err();
        let shrunk = failure.shrunk.expect("structural shrink available");
        // The minimal failing length is 8; shrinking must get close.
        let commas = shrunk.matches(',').count();
        assert!(commas <= 9, "shrunk vec still long: {shrunk}");
    }

    #[test]
    fn panicking_property_is_reported_with_seed_but_not_shrunk() {
        let failure = run("t", &cfg(10), &usize_in(0..10), |&v| {
            assert!(v > 100, "boom {v}");
            Ok(())
        })
        .unwrap_err();
        assert!(failure.message.contains("boom"));
        assert!(failure.shrunk.is_none());
        assert_eq!(failure.shrink_steps, 0);
    }

    #[test]
    #[should_panic(expected = "TESTKIT_SEED")]
    fn check_panics_with_replay_instructions() {
        check("t", &cfg(10), &usize_in(0..10), |_| Err("always".into()));
    }

    #[test]
    fn corpus_seeds_replay_before_random_cases() {
        // A corpus seed that regenerates a failing input must fail as one
        // of the leading cases, with its own seed in the report — even when
        // every randomized case would pass (cases drawn below 500 here).
        let gen = usize_in(0..1000);
        let failing_seed = (0..)
            .map(|s| (s, gen.generate(&mut Rng64::new(s))))
            .find(|&(_, v)| v >= 500)
            .map(|(s, _)| s)
            .unwrap();
        let cfg = Config {
            cases: 0,
            seed: DEFAULT_SEED,
            max_shrink_steps: 0,
            corpus: vec![failing_seed],
        };
        let failure = run("t", &cfg, &gen, |&v| {
            if v < 500 {
                Ok(())
            } else {
                Err("too big".into())
            }
        })
        .unwrap_err();
        assert_eq!(failure.case, 0);
        assert_eq!(failure.case_seed, failing_seed);
    }

    #[test]
    fn corpus_does_not_perturb_the_random_stream() {
        // Record each case's input with and without a (passing) corpus
        // entry: the randomized sequence must be identical.
        let gen = usize_in(0..1000);
        let collect = |cfg: &Config| {
            let seen = std::cell::RefCell::new(Vec::new());
            run("t", cfg, &gen, |&v| {
                seen.borrow_mut().push(v);
                Ok(())
            })
            .unwrap();
            seen.into_inner()
        };
        let plain = collect(&cfg(20));
        let with_corpus = collect(&cfg(20).with_corpus(&[12345]));
        assert_eq!(with_corpus.len(), plain.len() + 1);
        assert_eq!(&with_corpus[1..], &plain[..]);
    }

    #[test]
    fn seed_parsing_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("0x10"), Some(16));
        assert_eq!(parse_seed("0X10"), Some(16));
        assert_eq!(parse_seed(" 42 "), Some(42));
        assert_eq!(parse_seed("zz"), None);
    }
}
