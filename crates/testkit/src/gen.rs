//! Value generators (strategies) for the property runner.
//!
//! A [`Gen`] produces random values from an [`Rng64`] stream and offers
//! shrink candidates for minimizing counterexamples. The provided
//! generators cover the shapes the workspace's property suites need:
//! ranged integers, finite floats, vectors, matrices, and arbitrary
//! closure-defined values ([`from_fn`]). Tuples of generators are
//! themselves generators, which is what lets [`crate::forall!`] bind
//! several inputs at once.

use neurodeanon_linalg::{Matrix, Rng64};
use std::fmt::Debug;
use std::ops::{Bound, Range, RangeBounds};

/// A generator of random test inputs with optional shrinking.
pub trait Gen {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Draws one value from the generator.
    fn generate(&self, rng: &mut Rng64) -> Self::Value;

    /// Proposes strictly "simpler" variants of a failing value. The runner
    /// keeps any candidate that still fails and iterates; returning an
    /// empty list disables shrinking for this generator.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

fn bounds_to_inclusive(r: &impl RangeBounds<u64>) -> (u64, u64) {
    let lo = match r.start_bound() {
        Bound::Included(&x) => x,
        Bound::Excluded(&x) => x + 1,
        Bound::Unbounded => 0,
    };
    let hi = match r.end_bound() {
        Bound::Included(&x) => x,
        Bound::Excluded(&x) => x.checked_sub(1).expect("empty range"),
        Bound::Unbounded => u64::MAX - 1,
    };
    assert!(lo <= hi, "empty integer range");
    (lo, hi)
}

/// Uniform `usize` in the given range (inclusive or exclusive bounds both
/// work: `usize_in(2..40)`, `usize_in(1..=40)`).
pub fn usize_in(r: impl RangeBounds<usize>) -> UsizeIn {
    let map = |b: Bound<&usize>| match b {
        Bound::Included(&x) => Bound::Included(x as u64),
        Bound::Excluded(&x) => Bound::Excluded(x as u64),
        Bound::Unbounded => Bound::Unbounded,
    };
    let (lo, hi) = bounds_to_inclusive(&(map(r.start_bound()), map(r.end_bound())));
    UsizeIn {
        lo: lo as usize,
        hi: hi as usize,
    }
}

/// Generator for [`usize_in`].
#[derive(Debug, Clone)]
pub struct UsizeIn {
    lo: usize,
    hi: usize,
}

impl Gen for UsizeIn {
    type Value = usize;

    fn generate(&self, rng: &mut Rng64) -> usize {
        self.lo + rng.below(self.hi - self.lo + 1)
    }

    fn shrink(&self, value: &usize) -> Vec<usize> {
        let mut out = Vec::new();
        if *value > self.lo {
            out.push(self.lo);
            let mid = self.lo + (*value - self.lo) / 2;
            if mid != self.lo && mid != *value {
                out.push(mid);
            }
        }
        out
    }
}

/// Uniform `u64` in the given range.
pub fn u64_in(r: impl RangeBounds<u64>) -> U64In {
    let (lo, hi) = bounds_to_inclusive(&r);
    U64In { lo, hi }
}

/// Generator for [`u64_in`].
#[derive(Debug, Clone)]
pub struct U64In {
    lo: u64,
    hi: u64,
}

impl Gen for U64In {
    type Value = u64;

    fn generate(&self, rng: &mut Rng64) -> u64 {
        let span = self.hi - self.lo;
        if span == u64::MAX {
            return rng.next_u64();
        }
        self.lo + rng.below((span + 1) as usize) as u64
    }

    fn shrink(&self, value: &u64) -> Vec<u64> {
        let mut out = Vec::new();
        if *value > self.lo {
            out.push(self.lo);
            let mid = self.lo + (*value - self.lo) / 2;
            if mid != self.lo && mid != *value {
                out.push(mid);
            }
        }
        out
    }
}

/// Uniform finite `f64` in `[lo, hi)` (mirrors `proptest`'s `lo..hi`
/// float strategy).
pub fn f64_in(r: Range<f64>) -> F64In {
    assert!(
        r.start.is_finite() && r.end.is_finite() && r.start < r.end,
        "f64_in needs a finite, non-empty range"
    );
    F64In {
        lo: r.start,
        hi: r.end,
    }
}

/// Generator for [`f64_in`].
#[derive(Debug, Clone)]
pub struct F64In {
    lo: f64,
    hi: f64,
}

impl F64In {
    fn contains(&self, v: f64) -> bool {
        v >= self.lo && v < self.hi
    }
}

impl Gen for F64In {
    type Value = f64;

    fn generate(&self, rng: &mut Rng64) -> f64 {
        rng.uniform_range(self.lo, self.hi)
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let mut out: Vec<f64> = Vec::new();
        let mut push = |c: f64| {
            if self.contains(c) && c != *value && !out.contains(&c) {
                out.push(c);
            }
        };
        push(0.0);
        push(self.lo);
        push(value.trunc());
        push(value / 2.0);
        out
    }
}

/// Vector of generated elements with length drawn uniformly from `len`
/// (half-open, mirroring `proptest::collection::vec(elem, a..b)`).
pub fn vec_of<G: Gen>(elem: G, len: Range<usize>) -> VecOf<G> {
    assert!(len.start < len.end, "empty length range");
    VecOf {
        elem,
        min: len.start,
        max: len.end - 1,
    }
}

/// Vector of exactly `len` generated elements.
pub fn vec_exact<G: Gen>(elem: G, len: usize) -> VecOf<G> {
    VecOf {
        elem,
        min: len,
        max: len,
    }
}

/// Generator for [`vec_of`] / [`vec_exact`].
#[derive(Debug, Clone)]
pub struct VecOf<G> {
    elem: G,
    min: usize,
    max: usize,
}

impl<G: Gen> Gen for VecOf<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut Rng64) -> Vec<G::Value> {
        let len = self.min + rng.below(self.max - self.min + 1);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        let n = value.len();
        // Structural shrinks: cut to the minimum length, then halve.
        if n > self.min {
            out.push(value[..self.min].to_vec());
            let half = self.min + (n - self.min) / 2;
            if half != self.min && half != n {
                out.push(value[..half].to_vec());
            }
            out.push(value[..n - 1].to_vec());
        }
        // Element-wise shrinks on a few leading positions.
        for i in 0..n.min(4) {
            for cand in self.elem.shrink(&value[i]).into_iter().take(2) {
                let mut w = value.clone();
                w[i] = cand;
                out.push(w);
            }
        }
        out
    }
}

/// `rows × cols` matrix with entries uniform in `[lo, hi)`.
pub fn matrix_in(rows: usize, cols: usize, lo: f64, hi: f64) -> MatrixIn {
    assert!(lo < hi && lo.is_finite() && hi.is_finite());
    MatrixIn { rows, cols, lo, hi }
}

/// Generator for [`matrix_in`].
#[derive(Debug, Clone)]
pub struct MatrixIn {
    rows: usize,
    cols: usize,
    lo: f64,
    hi: f64,
}

impl Gen for MatrixIn {
    type Value = Matrix;

    fn generate(&self, rng: &mut Rng64) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |_, _| {
            rng.uniform_range(self.lo, self.hi)
        })
    }

    fn shrink(&self, value: &Matrix) -> Vec<Matrix> {
        let mut out = Vec::new();
        let in_range = |v: f64| v >= self.lo && v < self.hi;
        if value.max_abs() > 0.0 && in_range(0.0) {
            out.push(Matrix::from_fn(self.rows, self.cols, |_, _| 0.0));
        }
        if value.max_abs() > 1e-3 {
            let halved: Vec<f64> = value.as_slice().iter().map(|v| v / 2.0).collect();
            if halved.iter().all(|&v| in_range(v)) {
                out.push(Matrix::from_vec(self.rows, self.cols, halved).expect("same shape"));
            }
        }
        out
    }
}

/// Uniform choice from a fixed list of values — the generator for closed
/// enumerations (`one_of_enum(&[Decision::Reject, …])`, policy/rule
/// variants, severity presets). Shrinks toward earlier entries, so list
/// variants in "simplest first" order.
pub fn one_of_enum<T: Clone + Debug + PartialEq>(items: &[T]) -> OneOfEnum<T> {
    assert!(!items.is_empty(), "one_of_enum needs at least one variant");
    OneOfEnum {
        items: items.to_vec(),
    }
}

/// Generator for [`one_of_enum`].
#[derive(Debug, Clone)]
pub struct OneOfEnum<T> {
    items: Vec<T>,
}

impl<T: Clone + Debug + PartialEq> Gen for OneOfEnum<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng64) -> T {
        self.items[rng.below(self.items.len())].clone()
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        // Everything listed before the value's first occurrence is simpler.
        match self.items.iter().position(|v| v == value) {
            Some(i) => self.items[..i].to_vec(),
            None => Vec::new(),
        }
    }
}

/// Weighted choice over generators of a common value type: branch `i` is
/// drawn with probability `wᵢ / Σw`. This is how a property suite biases
/// sampling toward the interesting corners (e.g. mostly mid-range
/// enrollment rates with occasional exact-0/exact-1 boundary draws)
/// without losing coverage of the rest.
pub fn weighted<G: Gen>(branches: Vec<(f64, G)>) -> Weighted<G> {
    assert!(!branches.is_empty(), "weighted needs at least one branch");
    assert!(
        branches.iter().all(|(w, _)| w.is_finite() && *w >= 0.0)
            && branches.iter().map(|(w, _)| w).sum::<f64>() > 0.0,
        "weights must be finite, non-negative, and not all zero"
    );
    Weighted { branches }
}

/// Generator for [`weighted`].
#[derive(Debug, Clone)]
pub struct Weighted<G> {
    branches: Vec<(f64, G)>,
}

impl<G: Gen> Gen for Weighted<G> {
    type Value = G::Value;

    fn generate(&self, rng: &mut Rng64) -> G::Value {
        let weights: Vec<f64> = self.branches.iter().map(|(w, _)| *w).collect();
        let i = rng
            .weighted_index(&weights)
            .expect("validated at construction");
        self.branches[i].1.generate(rng)
    }

    fn shrink(&self, value: &G::Value) -> Vec<G::Value> {
        // The originating branch is unknown; offer each branch's shrinks of
        // the value and let the runner keep whichever still fails.
        self.branches
            .iter()
            .flat_map(|(_, g)| g.shrink(value).into_iter().take(2))
            .collect()
    }
}

/// Arbitrary generator from a closure over the RNG; no shrinking. This is
/// the escape hatch for dependent shapes (e.g. "a tall matrix whose row
/// count exceeds its sampled column count").
pub fn from_fn<T, F>(f: F) -> FromFn<F>
where
    T: Clone + Debug,
    F: Fn(&mut Rng64) -> T,
{
    FromFn(f)
}

/// Generator for [`from_fn`].
#[derive(Clone)]
pub struct FromFn<F>(F);

impl<F> Debug for FromFn<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FromFn(..)")
    }
}

impl<T, F> Gen for FromFn<F>
where
    T: Clone + Debug,
    F: Fn(&mut Rng64) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut Rng64) -> T {
        (self.0)(rng)
    }
}

macro_rules! tuple_gen {
    ($($g:ident . $idx:tt),+) => {
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, rng: &mut Rng64) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut w = value.clone();
                        w.$idx = cand;
                        out.push(w);
                    }
                )+
                out
            }
        }
    };
}

tuple_gen!(A.0);
tuple_gen!(A.0, B.1);
tuple_gen!(A.0, B.1, C.2);
tuple_gen!(A.0, B.1, C.2, D.3);
tuple_gen!(A.0, B.1, C.2, D.3, E.4);
tuple_gen!(A.0, B.1, C.2, D.3, E.4, F.5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usize_in_respects_bounds_inclusive_and_exclusive() {
        let mut rng = Rng64::new(1);
        let g = usize_in(2..40);
        for _ in 0..500 {
            let v = g.generate(&mut rng);
            assert!((2..40).contains(&v));
        }
        let g = usize_in(1..=4);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[g.generate(&mut rng)] = true;
        }
        assert!(!seen[0] && seen[1] && seen[2] && seen[3] && seen[4]);
    }

    #[test]
    fn f64_in_respects_bounds() {
        let mut rng = Rng64::new(2);
        let g = f64_in(-3.0..3.0);
        for _ in 0..500 {
            let v = g.generate(&mut rng);
            assert!((-3.0..3.0).contains(&v) && v.is_finite());
        }
    }

    #[test]
    fn f64_shrink_moves_toward_zero() {
        let g = f64_in(-10.0..10.0);
        let cands = g.shrink(&7.25);
        assert!(cands.contains(&0.0));
        assert!(cands.iter().all(|&c| c.abs() <= 10.0 && c != 7.25));
    }

    #[test]
    fn vec_of_length_band_and_shrink() {
        let mut rng = Rng64::new(3);
        let g = vec_of(f64_in(0.0..1.0), 5..40);
        for _ in 0..100 {
            let v = g.generate(&mut rng);
            assert!((5..40).contains(&v.len()));
        }
        let v = g.generate(&mut rng);
        for cand in g.shrink(&v) {
            assert!(cand.len() >= 5 && cand.len() <= v.len());
        }
        // Exact-length vectors never shrink structurally.
        let g = vec_exact(f64_in(0.0..1.0), 7);
        let v = g.generate(&mut rng);
        assert_eq!(v.len(), 7);
        assert!(g.shrink(&v).iter().all(|c| c.len() == 7));
    }

    #[test]
    fn matrix_in_shape_and_range() {
        let mut rng = Rng64::new(4);
        let g = matrix_in(4, 3, -10.0, 10.0);
        let m = g.generate(&mut rng);
        assert_eq!((m.rows(), m.cols()), (4, 3));
        assert!(m.as_slice().iter().all(|v| (-10.0..10.0).contains(v)));
        // Shrinks preserve shape.
        for cand in g.shrink(&m) {
            assert_eq!((cand.rows(), cand.cols()), (4, 3));
        }
    }

    #[test]
    fn tuples_generate_componentwise_and_shrink_one_axis_at_a_time() {
        let mut rng = Rng64::new(5);
        let g = (usize_in(0..10), f64_in(0.0..1.0));
        let (a, b) = g.generate(&mut rng);
        assert!(a < 10 && (0.0..1.0).contains(&b));
        for (ca, cb) in g.shrink(&(9, 0.75)) {
            // Exactly one component changed.
            assert!((ca == 9) != (cb == 0.75));
        }
    }

    #[test]
    fn one_of_enum_covers_all_variants_and_shrinks_earlier() {
        #[derive(Debug, Clone, Copy, PartialEq)]
        enum Tri {
            A,
            B,
            C,
        }
        let g = one_of_enum(&[Tri::A, Tri::B, Tri::C]);
        let mut rng = Rng64::new(6);
        let mut seen = [false; 3];
        for _ in 0..200 {
            match g.generate(&mut rng) {
                Tri::A => seen[0] = true,
                Tri::B => seen[1] = true,
                Tri::C => seen[2] = true,
            }
        }
        assert_eq!(seen, [true; 3]);
        assert_eq!(g.shrink(&Tri::C), vec![Tri::A, Tri::B]);
        assert_eq!(g.shrink(&Tri::A), Vec::<Tri>::new());
    }

    #[test]
    fn weighted_respects_weights_and_zero_branches() {
        // A zero-weight branch must never be drawn; the heavy branch should
        // dominate the light one.
        let g = weighted(vec![
            (0.0, usize_in(100..=100)),
            (9.0, usize_in(0..=0)),
            (1.0, usize_in(1..=1)),
        ]);
        let mut rng = Rng64::new(7);
        let mut counts = [0usize; 3];
        for _ in 0..2000 {
            match g.generate(&mut rng) {
                100 => counts[0] += 1,
                0 => counts[1] += 1,
                1 => counts[2] += 1,
                other => panic!("impossible draw {other}"),
            }
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > counts[2] * 4, "{counts:?}");
        assert!(counts[2] > 0, "{counts:?}");
    }

    #[test]
    fn weighted_shrinks_through_branch_generators() {
        let g = weighted(vec![(1.0, usize_in(0..50)), (1.0, usize_in(0..500))]);
        let cands = g.shrink(&400);
        assert!(cands.contains(&0), "{cands:?}");
    }

    #[test]
    #[should_panic(expected = "weights must be finite")]
    fn weighted_rejects_all_zero_weights() {
        let _ = weighted(vec![(0.0, usize_in(0..2))]);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = vec_of(f64_in(-1.0..1.0), 1..20);
        let a = g.generate(&mut Rng64::new(99));
        let b = g.generate(&mut Rng64::new(99));
        assert_eq!(a, b);
    }
}
