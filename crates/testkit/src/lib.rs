#![warn(missing_docs)]

//! # neurodeanon-testkit
//!
//! A from-scratch, dependency-free verification substrate for the
//! workspace: a property-testing harness (the [`forall!`] macro plus the
//! [`gen`] generators and [`runner`]) and a minimal JSON reader/writer
//! ([`json`]) used by the reproduction harness's machine-readable reports.
//!
//! The whole workspace promises **zero external dependencies** so that
//! `cargo build --release --offline && cargo test -q --offline` passes from
//! a clean checkout; this crate is what lets the 500+ tests keep their
//! randomized property coverage (formerly `proptest`) and the `repro`
//! binaries keep their JSONL output (formerly `serde_json`) under that
//! constraint. Randomness comes from the same deterministic xoshiro256++
//! generator ([`neurodeanon_linalg::Rng64`]) that drives the synthetic
//! cohorts, so every counterexample is replayable from a reported seed.
//!
//! ## Writing a property
//!
//! ```
//! use neurodeanon_testkit::{forall, tk_assert, Config};
//! use neurodeanon_testkit::gen::{f64_in, vec_of};
//!
//! forall!(Config::cases(64), (xs in vec_of(f64_in(-10.0..10.0), 1..30)) => {
//!     let sum: f64 = xs.iter().sum();
//!     tk_assert!(sum.abs() <= 10.0 * xs.len() as f64 + 1e-9);
//! });
//! ```
//!
//! On failure the runner shrinks the counterexample and panics with a
//! replayable seed: rerun the test with `TESTKIT_SEED=<seed>
//! TESTKIT_CASES=1` to reproduce the exact failing input.

pub mod gen;
pub mod json;
pub mod runner;

pub use gen::Gen;
pub use json::Value;
pub use runner::{Config, Failure};

/// Runs a property over randomized inputs: `forall!(config, (a in gen_a,
/// b in gen_b) => { body })`.
///
/// Each binding draws from its generator; the body runs once per case and
/// reports failures via [`tk_assert!`]/[`tk_assert_eq!`]/[`tk_assert_ne!`]
/// (which shrink) or ordinary panics (reported without shrinking). The
/// bindings are owned clones of the generated values, so the body can
/// consume them; rebind with `let mut x = x;` where mutation is needed.
#[macro_export]
macro_rules! forall {
    ($cfg:expr, ( $($name:ident in $gen:expr),+ $(,)? ) => $body:block) => {{
        let __cfg = $cfg;
        let __gens = ( $( $gen, )+ );
        $crate::runner::check(
            concat!(file!(), ":", line!()),
            &__cfg,
            &__gens,
            |__value| {
                let ( $( $name, )+ ) = ::std::clone::Clone::clone(__value);
                $body
                Ok(())
            },
        )
    }};
}

/// Property-body assertion: on failure, returns an `Err` describing the
/// condition so the runner can shrink the counterexample.
#[macro_export]
macro_rules! tk_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {} — {}",
                stringify!($cond),
                format!($($arg)+)
            ));
        }
    };
}

/// Property-body equality assertion; see [`tk_assert!`].
#[macro_export]
macro_rules! tk_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return Err(format!(
                "assertion failed: {} == {}\n    left:  {:?}\n    right: {:?}",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            ));
        }
    }};
    ($a:expr, $b:expr, $($arg:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return Err(format!(
                "assertion failed: {} == {} — {}\n    left:  {:?}\n    right: {:?}",
                stringify!($a),
                stringify!($b),
                format!($($arg)+),
                __a,
                __b
            ));
        }
    }};
}

/// Property-body inequality assertion; see [`tk_assert!`].
#[macro_export]
macro_rules! tk_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return Err(format!(
                "assertion failed: {} != {}\n    both:  {:?}",
                stringify!($a),
                stringify!($b),
                __a
            ));
        }
    }};
}
