//! The harness testing itself: `forall!` over its own generators, and a
//! JSON round-trip property — written value parses back identical.

use neurodeanon_testkit::gen::{f64_in, from_fn, matrix_in, u64_in, usize_in, vec_of};
use neurodeanon_testkit::json::{parse, Value};
use neurodeanon_testkit::{forall, runner, tk_assert, tk_assert_eq, Config};

#[test]
fn forall_binds_multiple_generators() {
    forall!(Config::cases(64), (n in usize_in(1..50), x in f64_in(-5.0..5.0), s in u64_in(0..1000)) => {
        tk_assert!((1..50).contains(&n));
        tk_assert!((-5.0..5.0).contains(&x), "x = {x}");
        tk_assert!(s < 1000);
    });
}

#[test]
fn forall_values_are_owned() {
    // The body can consume the generated value (e.g. move it into a
    // constructor), because bindings are clones.
    forall!(Config::cases(16), (v in vec_of(f64_in(0.0..1.0), 1..10)) => {
        let owned: Vec<f64> = v;
        tk_assert!(!owned.is_empty());
    });
}

#[test]
fn matrix_generator_composes_with_linalg() {
    forall!(Config::cases(32), (m in matrix_in(4, 3, -2.0, 2.0)) => {
        let t = m.transpose();
        tk_assert_eq!(t.rows(), 3);
        tk_assert_eq!(t.cols(), 4);
        let back = t.transpose();
        tk_assert!(m.sub(&back).unwrap().max_abs() == 0.0);
    });
}

#[test]
fn from_fn_supports_dependent_shapes() {
    forall!(Config::cases(32), (mn in from_fn(|rng| {
        let n = 2 + rng.below(3);
        let m = n + rng.below(17);
        (m, n)
    })) => {
        let (m, n) = mn;
        tk_assert!(m >= n, "rows {m} < cols {n}");
    });
}

/// Acceptance check: a forced failure reports a seed that replays the
/// exact counterexample (the mechanism `forall!` panics with).
#[test]
fn forced_failure_is_replayable_from_the_reported_seed() {
    let cfg = Config {
        cases: 50,
        seed: runner::DEFAULT_SEED,
        max_shrink_steps: 64,
        corpus: Vec::new(),
    };
    let gen = vec_of(f64_in(-100.0..100.0), 1..30);
    let prop = |v: &Vec<f64>| -> Result<(), String> {
        if v.iter().all(|x| x.abs() < 95.0) {
            Ok(())
        } else {
            Err("outlier".to_string())
        }
    };
    let failure = runner::run("forced", &cfg, &gen, prop).expect_err("must fail");
    let report = failure.to_string();
    assert!(
        report.contains("TESTKIT_SEED=0x"),
        "no replay seed: {report}"
    );
    // Replaying with the reported seed regenerates the same original input.
    let replay = Config {
        cases: 1,
        seed: failure.case_seed,
        max_shrink_steps: 64,
        corpus: Vec::new(),
    };
    let again = runner::run("forced", &replay, &gen, prop).expect_err("must fail again");
    assert_eq!(again.original, failure.original);
}

#[test]
fn json_roundtrip_property() {
    // Any tree built from numbers/strings/arrays/objects survives
    // write → parse exactly (floats via shortest-roundtrip formatting).
    forall!(Config::cases(128), (xs in vec_of(f64_in(-1e6..1e6), 0..12),
                                 n in usize_in(0..1000),
                                 name in u64_in(0..u64::MAX - 1)) => {
        let v = neurodeanon_testkit::json!({
            "name": format!("s{name:x}\n\"quoted\""),
            "n": n,
            "xs": xs.clone(),
            "nested": neurodeanon_testkit::json!({"inner": vec![n, n + 1]}),
        });
        let text = v.to_string();
        let back = parse(&text).map_err(|e| e.to_string())?;
        tk_assert_eq!(back, v);
        // And the parse of a re-serialization is a fixed point.
        tk_assert_eq!(parse(&back.to_string()).map_err(|e| e.to_string())?, back);
    });
}

#[test]
fn json_number_roundtrip_extremes() {
    for x in [
        0.0,
        -0.0,
        1.5,
        -2.25e-8,
        9.007199254740992e15,
        f64::MAX,
        f64::MIN_POSITIVE,
    ] {
        let text = Value::Number(x).to_string();
        let back = parse(&text).unwrap().as_f64().unwrap();
        assert_eq!(back, x, "{x} -> {text} -> {back}");
    }
}
