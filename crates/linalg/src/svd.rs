//! Thin singular value decomposition.
//!
//! Two routes, selected automatically by shape:
//!
//! * **Gram route** (tall matrices, `m ≥ 2n`): eigendecompose the `n × n`
//!   Gram matrix `AᵀA = V Σ² Vᵀ`, then recover `U = A V Σ⁻¹`. This is the
//!   path the paper's group matrices take (64,620 × 100 → a 100 × 100
//!   eigenproblem), costing `O(mn²)` instead of Jacobi's `O(mn²·sweeps)`.
//! * **One-sided Jacobi** (square-ish matrices): orthogonalize column pairs
//!   of a working copy of `A`; singular values emerge as column norms.
//!   Slower but does not square the condition number, so it also serves as
//!   the cross-check oracle in tests.
//!
//! The leverage scores of Equation 3/5 in the paper are row norms of the
//! thin `U` computed here; [`leverage_scores`] exposes them directly.

use crate::eigen::sym_eigen;
use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::par::{self, DisjointMut};
use crate::vector::{dot, norm2_sq};
use crate::Result;

/// Maximum one-sided Jacobi sweeps.
const MAX_SWEEPS: usize = 60;

/// Cached handle of the `svd.thin_calls` observability counter: process-wide
/// count of [`thin_svd`] factorizations, for benches and diagnostics that
/// assert how many SVDs a code path actually performed (e.g. the attack-plan
/// sweep benches, which require a whole feature-count ablation to cost
/// exactly one factorization).
fn thin_calls_counter() -> &'static neurodeanon_obs::Counter {
    static HANDLE: std::sync::OnceLock<&'static neurodeanon_obs::Counter> =
        std::sync::OnceLock::new();
    HANDLE.get_or_init(|| neurodeanon_obs::counter("svd.thin_calls"))
}

/// Number of [`thin_svd`] factorizations performed by this process so far —
/// a thin shim over the `svd.thin_calls` observability counter (kept so the
/// sweep benches' 1-SVD-per-plan invariant reads unchanged).
///
/// Intended for single-threaded benches and binaries; under a parallel test
/// runner concurrent tests share the counter, so only same-thread deltas
/// around a known workload are meaningful. `obs::reset()` zeroes it.
pub fn thin_svd_calls() -> u64 {
    thin_calls_counter().get()
}

/// Minimum per-round work (pairs × 8·column length) before one Jacobi round
/// spawns threads. Rounds run many times per sweep, so the bar is lower than
/// for one-shot kernels but still high enough that small matrices (the common
/// connectome case) stay on the inline path.
const JACOBI_PAR_THRESHOLD: usize = 1 << 16;

/// Relative threshold below which singular values are treated as zero when
/// forming `U` columns (they get a zero column instead of `A v / σ` blowup).
///
/// The Gram route squares the condition number, so noise on a zero singular
/// value is O(sqrt(eps)·σ_max) ≈ 1.5e-8·σ_max; the tolerance sits above that.
/// Shared with `rsvd::subspace_svd`, which recovers `U` the same way.
pub(crate) const RANK_TOL: f64 = 1e-7;

/// Thin SVD `A = U Σ Vᵀ` with `U ∈ R^{m×n}`, `Σ` diagonal (descending),
/// `V ∈ R^{n×n}`, for `m ≥ n`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (columns), `m × n`.
    pub u: Matrix,
    /// Singular values, descending, length `n`.
    pub sigma: Vec<f64>,
    /// Right singular vectors (columns), `n × n`.
    pub v: Matrix,
}

impl Svd {
    /// Numerical rank: number of singular values above
    /// `RANK_TOL · σ_max · max(m, n)`.
    pub fn rank(&self) -> usize {
        let smax = self.sigma.first().copied().unwrap_or(0.0);
        if smax <= 0.0 {
            return 0;
        }
        let tol = RANK_TOL * smax * (self.u.rows().max(self.v.rows()) as f64).sqrt();
        self.sigma.iter().filter(|&&s| s > tol).count()
    }

    /// Reconstructs `A` from the factors (mainly for tests and diagnostics).
    pub fn reconstruct(&self) -> Result<Matrix> {
        let n = self.sigma.len();
        let mut us = self.u.clone();
        for c in 0..n {
            let s = self.sigma[c];
            for r in 0..us.rows() {
                us[(r, c)] *= s;
            }
        }
        us.matmul(&self.v.transpose())
    }

    /// Best rank-`k` approximation `A_k` (Eckart–Young), used by the sketch
    /// error-bound checks for Equation 4.
    pub fn truncated(&self, k: usize) -> Result<Matrix> {
        let k = k.min(self.sigma.len());
        let idx: Vec<usize> = (0..k).collect();
        let uk = self.u.select_cols(&idx)?;
        let vk = self.v.select_cols(&idx)?;
        let mut us = uk;
        for c in 0..k {
            let s = self.sigma[c];
            for r in 0..us.rows() {
                us[(r, c)] *= s;
            }
        }
        us.matmul(&vk.transpose())
    }
}

/// Computes the thin SVD of `a` (`m ≥ n` required; transpose wide inputs at
/// the call site — the group matrices of the attack are always tall).
pub fn thin_svd(a: &Matrix) -> Result<Svd> {
    thin_calls_counter().incr();
    let _span = neurodeanon_obs::span("svd.thin");
    let (m, n) = a.shape();
    if a.is_empty() {
        return Err(LinalgError::EmptyMatrix { op: "thin_svd" });
    }
    if m < n {
        return Err(LinalgError::DimensionMismatch {
            op: "thin_svd (need rows >= cols)",
            lhs: (m, n),
            rhs: (n, n),
        });
    }
    if !a.is_finite() {
        return Err(LinalgError::NonFinite { op: "thin_svd" });
    }
    if m >= 2 * n {
        gram_svd(a)
    } else {
        jacobi_svd(a)
    }
}

/// Gram-matrix SVD for tall inputs.
fn gram_svd(a: &Matrix) -> Result<Svd> {
    let n = a.cols();
    let g = a.gram();
    let eig = sym_eigen(&g)?;
    // Eigenvalues of AᵀA are σ²; clamp tiny negatives from rounding.
    let sigma: Vec<f64> = eig.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
    let v = eig.vectors;
    // U = A V Σ⁻¹ column by column; rank-deficient directions get zeros.
    let av = a.matmul(&v)?;
    let mut u = av;
    let smax = sigma.first().copied().unwrap_or(0.0);
    let tol = RANK_TOL * smax.max(f64::MIN_POSITIVE) * (a.rows() as f64).sqrt();
    for c in 0..n {
        if sigma[c] > tol {
            let inv = 1.0 / sigma[c];
            for r in 0..u.rows() {
                u[(r, c)] *= inv;
            }
        } else {
            for r in 0..u.rows() {
                u[(r, c)] = 0.0;
            }
        }
    }
    Ok(Svd { u, sigma, v })
}

/// Round-robin ("circle method") Jacobi ordering for `n` columns: `n − 1`
/// rounds (`n` for odd `n`, one index sitting out per round) of `⌊n/2⌋`
/// pairs, every unordered pair appearing exactly once across the rounds and
/// the pairs within one round touching pairwise-disjoint columns.
///
/// Disjointness is what makes a round safe to execute in parallel without
/// changing any bit: rotations in the same round read and write different
/// columns, so their order cannot matter.
fn round_robin_rounds(n: usize) -> Vec<Vec<(usize, usize)>> {
    if n < 2 {
        return Vec::new();
    }
    // Pad odd n with a dummy index; pairs touching it are dropped.
    let nn = if n % 2 == 0 { n } else { n + 1 };
    let mut arr: Vec<usize> = (0..nn).collect();
    let mut rounds = Vec::with_capacity(nn - 1);
    for _ in 0..nn - 1 {
        let mut round = Vec::with_capacity(nn / 2);
        for i in 0..nn / 2 {
            let (a, b) = (arr[i], arr[nn - 1 - i]);
            if a < n && b < n {
                round.push((a.min(b), a.max(b)));
            }
        }
        rounds.push(round);
        // Rotate every position except arr[0] one step clockwise.
        arr[1..].rotate_right(1);
    }
    rounds
}

/// One-sided Jacobi SVD: rotate column pairs of `W` (a copy of `A`) until all
/// pairs are orthogonal; then `σ_j = ‖w_j‖`, `u_j = w_j/σ_j`, and `V`
/// accumulates the rotations.
///
/// Works on column-major copies (`wt` holds `Wᵀ`, so column `c` of `W` is the
/// contiguous row `c` of `wt`) and visits pairs in [`round_robin_rounds`]
/// order: each round's pairs touch disjoint columns, so the round runs in
/// parallel with bit-identical results at any thread count.
///
/// Public so benches can time this route directly against [`thin_svd`]'s
/// shape dispatch and the randomized subspace path; library code should call
/// [`thin_svd`], which picks the cheaper Gram route for tall inputs.
pub fn jacobi_svd(a: &Matrix) -> Result<Svd> {
    let _span = neurodeanon_obs::span("svd.jacobi");
    let (m, n) = a.shape();
    let mut wt = a.transpose();
    let mut vt = Matrix::identity(n);
    // Convergence threshold for column-pair orthogonality. Tighter values
    // can cycle forever on degenerate inputs (repeated rows/columns) where
    // rounding keeps |a_pq| hovering a few ulps above machine epsilon.
    let eps = 1e-12;
    // Columns whose squared norm falls below ε²·‖A‖²_F are numerically zero:
    // rotations preserve the Frobenius norm, and near-duplicate columns decay
    // toward denormals while staying ~100% correlated with a live column, so
    // the relative `apq` test alone never fires and the sweep cycles forever.
    // Such columns carry σ ≤ ε·‖A‖_F, far below RANK_TOL, so skipping them
    // cannot change the extracted factors.
    let fro2: f64 = wt.as_slice().iter().map(|x| x * x).sum();
    let col_floor = f64::EPSILON * f64::EPSILON * fro2;
    let rounds = round_robin_rounds(n);

    let mut converged = n < 2;
    for _sweep in 0..MAX_SWEEPS {
        let mut rotated = false;
        for round in &rounds {
            let mut flags = vec![0u8; round.len()];
            {
                let wshare = DisjointMut::new(wt.as_mut_slice());
                let vshare = DisjointMut::new(vt.as_mut_slice());
                let fshare = DisjointMut::new(&mut flags);
                par::par_tiles(round.len(), 1, 8 * m, JACOBI_PAR_THRESHOLD, |tile| {
                    for pi in tile.range() {
                        let (p, q) = round[pi];
                        // SAFETY: pairs within a round touch pairwise-
                        // disjoint columns and each pair index belongs to
                        // exactly one tile, so all these regions are owned
                        // exclusively by this iteration.
                        let wp = unsafe { wshare.slice(p * m, m) };
                        let wq = unsafe { wshare.slice(q * m, m) };
                        // The 2×2 Gram block of columns p, q.
                        let app = norm2_sq(wp);
                        let aqq = norm2_sq(wq);
                        let apq = dot(wp, wq);
                        if apq == 0.0
                            || app <= col_floor
                            || aqq <= col_floor
                            || apq.abs() <= eps * (app * aqq).sqrt()
                        {
                            continue;
                        }
                        unsafe { *fshare.get(pi) = 1 };
                        let theta = (aqq - app) / (2.0 * apq);
                        let t = if theta >= 0.0 {
                            1.0 / (theta + (1.0 + theta * theta).sqrt())
                        } else {
                            -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                        };
                        let c = 1.0 / (1.0 + t * t).sqrt();
                        let s = t * c;
                        for (x, y) in wp.iter_mut().zip(wq.iter_mut()) {
                            let (wpv, wqv) = (*x, *y);
                            *x = c * wpv - s * wqv;
                            *y = s * wpv + c * wqv;
                        }
                        let vp = unsafe { vshare.slice(p * n, n) };
                        let vq = unsafe { vshare.slice(q * n, n) };
                        for (x, y) in vp.iter_mut().zip(vq.iter_mut()) {
                            let (vpv, vqv) = (*x, *y);
                            *x = c * vpv - s * vqv;
                            *y = s * vpv + c * vqv;
                        }
                    }
                });
            }
            rotated |= flags.iter().any(|&f| f != 0);
        }
        if !rotated {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(LinalgError::NoConvergence {
            algo: "one-sided jacobi svd",
            iterations: MAX_SWEEPS,
        });
    }

    // Extract singular values (column norms = row norms of wt) and sort
    // descending, permuting U and V consistently (row selects on the
    // transposed copies).
    let mut sigma: Vec<f64> = (0..n).map(|c| norm2_sq(wt.row(c)).sqrt()).collect();
    let order = crate::vector::argsort_desc(&sigma);
    let mut ut = wt.select_rows(&order)?;
    let vt = vt.select_rows(&order)?;
    sigma = order.iter().map(|&i| sigma[i]).collect();

    let smax = sigma.first().copied().unwrap_or(0.0);
    let tol = RANK_TOL * smax.max(f64::MIN_POSITIVE) * (m as f64).sqrt();
    for c in 0..n {
        let urow = ut.row_mut(c);
        if sigma[c] > tol {
            let inv = 1.0 / sigma[c];
            for x in urow {
                *x *= inv;
            }
        } else {
            for x in urow {
                *x = 0.0;
            }
        }
    }
    Ok(Svd {
        u: ut.transpose(),
        sigma,
        v: vt.transpose(),
    })
}

/// Leverage scores of the rows of `a`: `ℓᵢ = ‖Uᵢ,⋆‖²` where `U` holds the
/// top-`rank` left singular vectors (Equation 5 of the paper).
///
/// When `k = None` all columns of the thin `U` (i.e. the full column space,
/// the paper's default) contribute; `k = Some(r)` restricts to the leading
/// `r` singular directions, the rank-`k` leverage scores used by the
/// relative-error bound of Equation 4.
pub fn leverage_scores(a: &Matrix, k: Option<usize>) -> Result<Vec<f64>> {
    let svd = thin_svd(a)?;
    Ok(leverage_scores_from_svd(&svd, k))
}

/// Leverage scores from a precomputed SVD (avoids refactorizing when both
/// scores and singular values are needed).
pub fn leverage_scores_from_svd(svd: &Svd, k: Option<usize>) -> Vec<f64> {
    let rank = svd.rank();
    let keep = k.map_or(rank, |kk| kk.min(rank));
    let m = svd.u.rows();
    let mut scores = vec![0.0; m];
    for (r, score) in scores.iter_mut().enumerate() {
        let row = svd.u.row(r);
        *score = row[..keep].iter().map(|x| x * x).sum();
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_svd(a: &Matrix, tol: f64) {
        let f = thin_svd(a).unwrap();
        // Reconstruction.
        let rec = f.reconstruct().unwrap();
        assert!(
            a.sub(&rec).unwrap().max_abs() < tol,
            "reconstruction error {} for {:?}",
            a.sub(&rec).unwrap().max_abs(),
            a.shape()
        );
        // Descending sigma, non-negative.
        for w in f.sigma.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(f.sigma.iter().all(|&s| s >= 0.0));
        // V orthonormal.
        let vtv = f.v.transpose().matmul(&f.v).unwrap();
        assert!(vtv.sub(&Matrix::identity(a.cols())).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn round_robin_covers_every_pair_once_disjointly() {
        for n in [2usize, 3, 4, 5, 8, 9] {
            let rounds = round_robin_rounds(n);
            let mut seen = std::collections::HashSet::new();
            for round in &rounds {
                let mut cols = std::collections::HashSet::new();
                for &(p, q) in round {
                    assert!(p < q && q < n);
                    // Disjoint columns within one round.
                    assert!(cols.insert(p) && cols.insert(q), "n={n}");
                    assert!(seen.insert((p, q)), "pair repeated for n={n}");
                }
            }
            assert_eq!(seen.len(), n * (n - 1) / 2, "n={n}");
        }
    }

    #[test]
    fn jacobi_converges_on_duplicate_row_sketch() {
        // Regression: this rank-2 uniform-sampling sketch (three identical
        // rows) sent the round-robin sweep into a rotation cycle — the dying
        // duplicate columns decayed to denormals while staying fully
        // correlated with a live column, so the relative skip test alone
        // never fired. The ε²·‖A‖²_F column floor breaks the cycle.
        let v = 0.2738612787525831;
        let a = Matrix::from_rows(&[
            &[v, v, v, v],
            &[v, v, v, v],
            &[0.0, 0.0, 16.431676725154983, 10.954451150103322],
            &[v, v, v, v],
        ])
        .unwrap();
        let f = jacobi_svd(&a).unwrap();
        assert_eq!(f.rank(), 2);
        assert!(a.sub(&f.reconstruct().unwrap()).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn svd_of_diagonal() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0], &[0.0, 0.0]]).unwrap();
        let f = thin_svd(&a).unwrap();
        assert!((f.sigma[0] - 4.0).abs() < 1e-10);
        assert!((f.sigma[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn jacobi_route_squareish() {
        // m < 2n forces the Jacobi path.
        let a = Matrix::from_fn(6, 5, |r, c| ((r * 7 + c * 3) % 11) as f64 - 5.0);
        check_svd(&a, 1e-9);
    }

    #[test]
    fn gram_route_tall() {
        // m >= 2n forces the Gram path.
        let a = Matrix::from_fn(40, 6, |r, c| ((r * 5 + c * 13) % 17) as f64 * 0.3 - 2.0);
        check_svd(&a, 1e-8);
    }

    #[test]
    fn both_routes_agree_on_singular_values() {
        let a = Matrix::from_fn(12, 5, |r, c| ((r * 3 + c * 7) % 13) as f64 - 6.0);
        let j = jacobi_svd(&a).unwrap();
        let g = gram_svd(&a).unwrap();
        for (sj, sg) in j.sigma.iter().zip(&g.sigma) {
            assert!((sj - sg).abs() < 1e-8, "{sj} vs {sg}");
        }
    }

    #[test]
    fn u_orthonormal_on_full_rank() {
        let a = Matrix::from_fn(30, 4, |r, c| ((r * 11 + c * 5) % 19) as f64 - 9.0);
        let f = thin_svd(&a).unwrap();
        assert_eq!(f.rank(), 4);
        let utu = f.u.transpose().matmul(&f.u).unwrap();
        assert!(utu.sub(&Matrix::identity(4)).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn rank_deficient_detected() {
        // Third column = first + second.
        let base = Matrix::from_fn(20, 2, |r, c| ((r * 7 + c * 5) % 9) as f64 - 4.0);
        let third: Vec<f64> = (0..20).map(|r| base[(r, 0)] + base[(r, 1)]).collect();
        let mut a = Matrix::zeros(20, 3);
        for r in 0..20 {
            a[(r, 0)] = base[(r, 0)];
            a[(r, 1)] = base[(r, 1)];
            a[(r, 2)] = third[r];
        }
        let f = thin_svd(&a).unwrap();
        assert_eq!(f.rank(), 2);
        // Reconstruction still exact (zero sigma direction contributes 0).
        assert!(a.sub(&f.reconstruct().unwrap()).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn zero_matrix_svd() {
        let a = Matrix::zeros(8, 3);
        let f = thin_svd(&a).unwrap();
        assert_eq!(f.rank(), 0);
        assert!(f.sigma.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn truncated_is_best_rank_k() {
        let a = Matrix::from_fn(10, 4, |r, c| ((r * 3 + c) % 7) as f64 + 0.1 * r as f64);
        let f = thin_svd(&a).unwrap();
        let a1 = f.truncated(1).unwrap();
        // Error of rank-1 approx equals sqrt(σ₂²+σ₃²+σ₄²) in Frobenius norm.
        let err = a.sub(&a1).unwrap().frobenius_norm();
        let expect = (f.sigma[1..].iter().map(|s| s * s).sum::<f64>()).sqrt();
        assert!((err - expect).abs() < 1e-8);
    }

    #[test]
    fn rejects_wide_and_nan() {
        assert!(thin_svd(&Matrix::zeros(2, 5)).is_err());
        let mut a = Matrix::zeros(4, 2);
        a[(0, 0)] = f64::NAN;
        assert!(thin_svd(&a).is_err());
    }

    #[test]
    fn leverage_scores_sum_to_rank() {
        let a = Matrix::from_fn(25, 4, |r, c| ((r * 13 + c * 3) % 23) as f64 - 11.0);
        let l = leverage_scores(&a, None).unwrap();
        let sum: f64 = l.iter().sum();
        assert!((sum - 4.0).abs() < 1e-8, "sum {sum}");
        assert!(l.iter().all(|&s| (0.0..=1.0 + 1e-12).contains(&s)));
    }

    #[test]
    fn leverage_scores_highlight_outlier_row() {
        // One row far outside the bulk subspace should have leverage near 1.
        let mut a = Matrix::from_fn(30, 3, |r, c| ((r + c) % 3) as f64 * 0.1);
        a.set_row(7, &[100.0, -50.0, 25.0]).unwrap();
        let l = leverage_scores(&a, None).unwrap();
        let top = crate::vector::argmax(&l).unwrap();
        assert_eq!(top, 7);
        assert!(l[7] > 0.9);
    }

    #[test]
    fn rank_k_leverage_restricts_columns() {
        let a = Matrix::from_fn(20, 4, |r, c| ((r * 7 + c * 5) % 13) as f64 - 6.0);
        let svd = thin_svd(&a).unwrap();
        let l1 = leverage_scores_from_svd(&svd, Some(1));
        let sum: f64 = l1.iter().sum();
        assert!((sum - 1.0).abs() < 1e-8);
    }
}
