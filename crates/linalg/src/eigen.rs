//! Symmetric eigendecomposition by the cyclic Jacobi method.
//!
//! The Gram-matrix SVD route (the fast path for the paper's tall group
//! matrices, 64,620 × 100) needs the full eigendecomposition of the small
//! `AᵀA`. Cyclic Jacobi is simple, unconditionally stable for symmetric
//! input, and converges quadratically once off-diagonals are small.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Maximum number of Jacobi sweeps before declaring non-convergence.
const MAX_SWEEPS: usize = 60;

/// Eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix.
///
/// Eigenvalues are sorted in descending order and `V`'s columns follow the
/// same order.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as columns, same order as `values`.
    pub vectors: Matrix,
}

/// Computes the eigendecomposition of a symmetric matrix.
///
/// The input is validated for shape and finiteness; asymmetry beyond a small
/// tolerance is rejected because silently symmetrizing would hide upstream
/// bugs in connectome construction.
pub fn sym_eigen(a: &Matrix) -> Result<SymEigen> {
    let (m, n) = a.shape();
    if m != n {
        return Err(LinalgError::DimensionMismatch {
            op: "sym_eigen (square required)",
            lhs: (m, n),
            rhs: (n, n),
        });
    }
    if a.is_empty() {
        return Err(LinalgError::EmptyMatrix { op: "sym_eigen" });
    }
    if !a.is_finite() {
        return Err(LinalgError::NonFinite { op: "sym_eigen" });
    }
    let scale = a.max_abs().max(1.0);
    for i in 0..n {
        for j in (i + 1)..n {
            if (a[(i, j)] - a[(j, i)]).abs() > 1e-8 * scale {
                return Err(LinalgError::InvalidParameter {
                    name: "a",
                    reason: "matrix is not symmetric",
                });
            }
        }
    }

    let mut w = a.clone();
    let mut v = Matrix::identity(n);

    for sweep in 0..MAX_SWEEPS {
        // Off-diagonal Frobenius mass decides convergence.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += w[(i, j)] * w[(i, j)];
            }
        }
        if off.sqrt() <= 1e-14 * scale * n as f64 {
            return Ok(finish(w, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = w[(p, q)];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = w[(p, p)];
                let aqq = w[(q, q)];
                // Rotation angle from the standard stable formulas.
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Update W = Jᵀ W J over rows/cols p and q.
                for k in 0..n {
                    let wkp = w[(k, p)];
                    let wkq = w[(k, q)];
                    w[(k, p)] = c * wkp - s * wkq;
                    w[(k, q)] = s * wkp + c * wkq;
                }
                for k in 0..n {
                    let wpk = w[(p, k)];
                    let wqk = w[(q, k)];
                    w[(p, k)] = c * wpk - s * wqk;
                    w[(q, k)] = s * wpk + c * wqk;
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
        let _ = sweep;
    }
    Err(LinalgError::NoConvergence {
        algo: "jacobi eigen",
        iterations: MAX_SWEEPS,
    })
}

/// Extracts eigenvalues from the (now nearly diagonal) working matrix and
/// sorts everything descending.
fn finish(w: Matrix, v: Matrix) -> SymEigen {
    let n = w.rows();
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (w[(i, i)], i)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let values: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let order: Vec<usize> = pairs.iter().map(|p| p.1).collect();
    let vectors = v.select_cols(&order).expect("permutation indices in range");
    SymEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(n: usize, f: impl Fn(usize, usize) -> f64) -> Matrix {
        Matrix::from_fn(n, n, |r, c| if r <= c { f(r, c) } else { f(c, r) })
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = 5.0;
        a[(2, 2)] = 3.0;
        let e = sym_eigen(&a).unwrap();
        assert_eq!(e.values, vec![5.0, 3.0, 1.0]);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let e = sym_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction() {
        let a = sym(7, |r, c| ((r * 3 + c * 5) % 9) as f64 - 4.0);
        let e = sym_eigen(&a).unwrap();
        let d = Matrix::from_fn(7, 7, |r, c| if r == c { e.values[r] } else { 0.0 });
        let rec = e
            .vectors
            .matmul(&d)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap();
        assert!(a.sub(&rec).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn vectors_are_orthonormal() {
        let a = sym(6, |r, c| (r + c) as f64 * 0.5);
        let e = sym_eigen(&a).unwrap();
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        assert!(vtv.sub(&Matrix::identity(6)).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn eigen_pairs_satisfy_av_eq_lv() {
        let a = sym(5, |r, c| ((r * r + c) % 7) as f64);
        let e = sym_eigen(&a).unwrap();
        for k in 0..5 {
            let vk = Matrix::from_vec(5, 1, e.vectors.col(k)).unwrap();
            let av = a.matmul(&vk).unwrap();
            let lv = vk.scaled(e.values[k]);
            assert!(av.sub(&lv).unwrap().max_abs() < 1e-8, "pair {k}");
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = sym(8, |r, c| ((r * 11 + c * 2) % 6) as f64 - 2.0);
        let e = sym_eigen(&a).unwrap();
        let trace: f64 = (0..8).map(|i| a[(i, i)]).sum();
        let esum: f64 = e.values.iter().sum();
        assert!((trace - esum).abs() < 1e-8);
    }

    #[test]
    fn rejects_asymmetric() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 1.0]]).unwrap();
        assert!(sym_eigen(&a).is_err());
    }

    #[test]
    fn rejects_non_square_and_nan() {
        assert!(sym_eigen(&Matrix::zeros(2, 3)).is_err());
        let mut a = Matrix::identity(2);
        a[(0, 0)] = f64::INFINITY;
        assert!(sym_eigen(&a).is_err());
    }

    #[test]
    fn identity_eigen() {
        let e = sym_eigen(&Matrix::identity(4)).unwrap();
        assert!(e.values.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn negative_eigenvalues_supported() {
        let a = Matrix::from_rows(&[&[0.0, 2.0], &[2.0, 0.0]]).unwrap();
        let e = sym_eigen(&a).unwrap();
        assert!((e.values[0] - 2.0).abs() < 1e-10);
        assert!((e.values[1] + 2.0).abs() < 1e-10);
    }
}
