//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! The synthetic scanner draws region time series with a prescribed latent
//! correlation structure `C` by coloring white Gaussian noise: if `C = L Lᵀ`
//! then `x = L z` has covariance `C`. That factorization happens here.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Computes the lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// Returns [`LinalgError::NotPositiveDefinite`] when a pivot drops to or
/// below zero. Use [`cholesky_regularized`] for nearly-PSD inputs such as
/// empirical correlation matrices.
pub fn cholesky(a: &Matrix) -> Result<Matrix> {
    let (m, n) = a.shape();
    if m != n {
        return Err(LinalgError::DimensionMismatch {
            op: "cholesky (square required)",
            lhs: (m, n),
            rhs: (n, n),
        });
    }
    if a.is_empty() {
        return Err(LinalgError::EmptyMatrix { op: "cholesky" });
    }
    if !a.is_finite() {
        return Err(LinalgError::NonFinite { op: "cholesky" });
    }
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        // Diagonal pivot.
        let mut d = a[(j, j)];
        for k in 0..j {
            let v = l[(j, k)];
            d -= v * v;
        }
        if d <= 0.0 {
            return Err(LinalgError::NotPositiveDefinite { pivot: j, value: d });
        }
        let dj = d.sqrt();
        l[(j, j)] = dj;
        let inv = 1.0 / dj;
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s * inv;
        }
    }
    Ok(l)
}

/// Cholesky with automatic diagonal loading.
///
/// Starting from `ridge = initial_ridge`, repeatedly tries
/// `cholesky(A + ridge·I)` with a 10× escalation until it succeeds or the
/// ridge exceeds `max_ridge`. Empirical correlation matrices built from
/// fewer time points than regions are rank deficient, so this is the entry
/// point the dataset generators actually use.
pub fn cholesky_regularized(a: &Matrix, initial_ridge: f64, max_ridge: f64) -> Result<Matrix> {
    if initial_ridge < 0.0 || max_ridge < initial_ridge {
        return Err(LinalgError::InvalidParameter {
            name: "ridge",
            reason: "need 0 <= initial_ridge <= max_ridge",
        });
    }
    match cholesky(a) {
        Ok(l) => return Ok(l),
        Err(LinalgError::NotPositiveDefinite { .. }) => {}
        Err(e) => return Err(e),
    }
    let n = a.rows();
    let mut ridge = if initial_ridge == 0.0 {
        1e-10
    } else {
        initial_ridge
    };
    while ridge <= max_ridge {
        let mut loaded = a.clone();
        for i in 0..n {
            loaded[(i, i)] += ridge;
        }
        match cholesky(&loaded) {
            Ok(l) => return Ok(l),
            Err(LinalgError::NotPositiveDefinite { .. }) => ridge *= 10.0,
            Err(e) => return Err(e),
        }
    }
    Err(LinalgError::NotPositiveDefinite {
        pivot: 0,
        value: ridge,
    })
}

/// Solves `A x = b` given the Cholesky factor `L` of `A` (forward then back
/// substitution). `b` may have multiple right-hand-side columns.
pub fn cholesky_solve(l: &Matrix, b: &Matrix) -> Result<Matrix> {
    let n = l.rows();
    if l.cols() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "cholesky_solve (L must be square)",
            lhs: l.shape(),
            rhs: l.shape(),
        });
    }
    if b.rows() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "cholesky_solve",
            lhs: l.shape(),
            rhs: b.shape(),
        });
    }
    let k = b.cols();
    let mut x = b.clone();
    // Forward: L y = b.
    for j in 0..k {
        for i in 0..n {
            let mut s = x[(i, j)];
            for p in 0..i {
                s -= l[(i, p)] * x[(p, j)];
            }
            let d = l[(i, i)];
            if d == 0.0 {
                return Err(LinalgError::Singular {
                    op: "cholesky_solve",
                });
            }
            x[(i, j)] = s / d;
        }
        // Backward: Lᵀ x = y.
        for i in (0..n).rev() {
            let mut s = x[(i, j)];
            for p in (i + 1)..n {
                s -= l[(p, i)] * x[(p, j)];
            }
            x[(i, j)] = s / l[(i, i)];
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize) -> Matrix {
        // B Bᵀ + n·I is comfortably SPD.
        let b = Matrix::from_fn(n, n, |r, c| ((r * 7 + c * 3) % 5) as f64 - 2.0);
        let mut a = b.matmul(&b.transpose()).unwrap();
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd(8);
        let l = cholesky(&a).unwrap();
        let llt = l.matmul(&l.transpose()).unwrap();
        let diff = a.sub(&llt).unwrap().max_abs();
        assert!(diff < 1e-9, "diff {diff}");
    }

    #[test]
    fn factor_is_lower_triangular() {
        let l = cholesky(&spd(6)).unwrap();
        for i in 0..6 {
            for j in (i + 1)..6 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eig -1, 3
        assert!(matches!(
            cholesky(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        assert!(cholesky(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn regularized_recovers_psd() {
        // Rank-1 PSD matrix (singular) gets loaded until factorable.
        let v = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]).unwrap();
        let a = v.matmul(&v.transpose()).unwrap();
        assert!(cholesky(&a).is_err());
        let l = cholesky_regularized(&a, 1e-8, 1.0).unwrap();
        let llt = l.matmul(&l.transpose()).unwrap();
        // Reconstruction matches up to the added ridge.
        assert!(a.sub(&llt).unwrap().max_abs() < 1e-3);
    }

    #[test]
    fn regularized_validates_params() {
        let a = Matrix::identity(2);
        assert!(cholesky_regularized(&a, -1.0, 1.0).is_err());
        assert!(cholesky_regularized(&a, 1.0, 0.5).is_err());
    }

    #[test]
    fn regularized_gives_up_beyond_max() {
        let a = Matrix::from_rows(&[&[0.0, 5.0], &[5.0, 0.0]]).unwrap(); // eig ±5
        assert!(cholesky_regularized(&a, 1e-10, 1e-9).is_err());
    }

    #[test]
    fn solve_recovers_solution() {
        let a = spd(5);
        let l = cholesky(&a).unwrap();
        let x_true = Matrix::from_fn(5, 2, |r, c| (r + c) as f64 - 1.5);
        let b = a.matmul(&x_true).unwrap();
        let x = cholesky_solve(&l, &b).unwrap();
        assert!(x.sub(&x_true).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn solve_checks_dims() {
        let l = cholesky(&spd(4)).unwrap();
        assert!(cholesky_solve(&l, &Matrix::zeros(5, 1)).is_err());
    }
}
