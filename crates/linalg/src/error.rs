//! Error type shared by all linear-algebra routines.

use std::fmt;

/// Errors produced by the linear-algebra layer.
///
/// Every routine in this crate validates its inputs and reports problems
/// through this type rather than panicking, so callers higher in the attack
/// pipeline can surface clean diagnostics for degenerate connectomes
/// (constant time series, rank-deficient group matrices, …).
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right/second operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A matrix that must be non-empty had zero rows or columns.
    EmptyMatrix {
        /// Operation that required a non-empty input.
        op: &'static str,
    },
    /// Cholesky factorization failed because the matrix is not positive
    /// definite (within the numerical tolerance).
    NotPositiveDefinite {
        /// Index of the pivot where factorization broke down.
        pivot: usize,
        /// Value found at the failing pivot.
        value: f64,
    },
    /// An iterative algorithm (Jacobi SVD/eigen) failed to converge.
    NoConvergence {
        /// Algorithm name.
        algo: &'static str,
        /// Number of sweeps/iterations performed before giving up.
        iterations: usize,
    },
    /// The input contained NaN or infinite entries.
    NonFinite {
        /// Operation that detected the non-finite value.
        op: &'static str,
    },
    /// An index was out of bounds for the matrix shape.
    IndexOutOfBounds {
        /// Offending index `(row, col)`.
        index: (usize, usize),
        /// Matrix shape `(rows, cols)`.
        shape: (usize, usize),
    },
    /// A singular (or numerically singular) matrix was passed to a routine
    /// that requires invertibility.
    Singular {
        /// Operation that required an invertible input.
        op: &'static str,
    },
    /// A scalar parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Description of the constraint that was violated.
        reason: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs {}x{} vs rhs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::EmptyMatrix { op } => write!(f, "empty matrix passed to {op}"),
            LinalgError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix not positive definite: pivot {pivot} has value {value:.6e}"
            ),
            LinalgError::NoConvergence { algo, iterations } => {
                write!(f, "{algo} did not converge after {iterations} iterations")
            }
            LinalgError::NonFinite { op } => write!(f, "non-finite value encountered in {op}"),
            LinalgError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            LinalgError::Singular { op } => write!(f, "singular matrix passed to {op}"),
            LinalgError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch_mentions_shapes() {
        let e = LinalgError::DimensionMismatch {
            op: "matmul",
            lhs: (3, 4),
            rhs: (5, 6),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("3x4"));
        assert!(s.contains("5x6"));
    }

    #[test]
    fn display_not_positive_definite_mentions_pivot() {
        let e = LinalgError::NotPositiveDefinite {
            pivot: 7,
            value: -1.0,
        };
        assert!(e.to_string().contains("pivot 7"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&LinalgError::EmptyMatrix { op: "svd" });
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            LinalgError::Singular { op: "inv" },
            LinalgError::Singular { op: "inv" }
        );
        assert_ne!(
            LinalgError::Singular { op: "inv" },
            LinalgError::Singular { op: "solve" }
        );
    }
}
