//! Deterministic scoped parallel-execution layer shared by every hot kernel.
//!
//! The attack's cost is dominated by a handful of dense kernels — group-matrix
//! Gram products, thin-SVD, correlation connectomes, t-SNE passes, and the
//! cross-dataset similarity matrix. This module gives them one dependency-free
//! way to use multiple cores, built on [`std::thread::scope`], under a hard
//! **determinism contract**:
//!
//! 1. **Fixed tile boundaries.** Work is split into tiles whose boundaries
//!    depend only on the problem shape (and compile-time tile constants),
//!    never on the number of threads. Threads pick up whole tiles round-robin.
//! 2. **Sequential accumulation within a tile.** Every floating-point
//!    accumulation happens inside exactly one tile, in a fixed order.
//! 3. **Fixed merge order across tiles.** When tiles contribute to a shared
//!    reduction ([`par_reduce_tiles`]), per-tile partials are folded in tile
//!    index order regardless of which thread produced them — and the
//!    single-threaded path runs the *same* tile/fold structure.
//!
//! Together these guarantee that every kernel built on this module returns
//! **bit-identical** results at any thread count, which is what lets the
//! property suites assert `parallel ≡ sequential` exactly and lets CI run the
//! whole test suite under `NEURODEANON_THREADS=1` and the default without a
//! golden-file split.
//!
//! Thread count resolution order: [`with_thread_count`] override (used by
//! tests and benches) → the `NEURODEANON_THREADS` environment variable,
//! clamped to `[1, cores]` → `available_parallelism()` capped at
//! [`DEFAULT_THREAD_CAP`].
//!
//! Each kernel keeps its own work threshold (tuned to its arithmetic
//! intensity) below which it runs the tiles inline on the calling thread;
//! [`DEFAULT_PAR_THRESHOLD`] is the starting point used by `matmul`.

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::OnceLock;
use std::time::Instant;

/// Default minimum number of scalar operations before a kernel spawns
/// threads; below this the spawn overhead dominates. Kernels with lower
/// per-element cost (pure streaming) should use larger thresholds, kernels
/// that are called in tight loops (Jacobi rounds) smaller ones.
pub const DEFAULT_PAR_THRESHOLD: usize = 1 << 22;

/// Default cap on worker threads when neither an override nor
/// `NEURODEANON_THREADS` is present: beyond this the streaming kernels are
/// memory-bound and extra threads only add merge traffic.
pub const DEFAULT_THREAD_CAP: usize = 8;

/// Hard ceiling for [`with_thread_count`] overrides. Unlike the environment
/// variable this is *not* clamped to the core count, so determinism tests can
/// oversubscribe a small CI host and still exercise the multi-threaded paths.
const MAX_THREAD_OVERRIDE: usize = 64;

thread_local! {
    /// 0 = no override; otherwise the forced thread count for this thread.
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

// Every dispatched closure — inline, calling-thread, or worker — runs under
// `obs::span::detached`, so spans a kernel opens inside a parallel region
// always root at top level. That keeps the recorded span-tree *shape* a pure
// function of the workload, never of the thread count or of which thread
// happened to execute a tile.

/// Cached handles of the scheduler's observability metrics.
///
/// `par.calls` / `par.tiles` count dispatches and tiles — both are pure
/// functions of the problem shapes, so they are part of the determinism
/// fingerprint and must match at any thread count. `rt.par.busy_ns`
/// (cumulative per-worker busy wall time) and `rt.par.imbalance`
/// (slowest-worker / mean-worker busy ratio of the latest parallel
/// dispatch) are runtime telemetry, only sampled while tracing is enabled.
struct ParMetrics {
    calls: &'static neurodeanon_obs::Counter,
    tiles: &'static neurodeanon_obs::Counter,
    busy_ns: &'static neurodeanon_obs::Counter,
    imbalance: &'static neurodeanon_obs::Gauge,
}

fn metrics() -> &'static ParMetrics {
    static HANDLES: OnceLock<ParMetrics> = OnceLock::new();
    HANDLES.get_or_init(|| ParMetrics {
        calls: neurodeanon_obs::counter("par.calls"),
        tiles: neurodeanon_obs::counter("par.tiles"),
        busy_ns: neurodeanon_obs::counter("rt.par.busy_ns"),
        imbalance: neurodeanon_obs::gauge("rt.par.imbalance"),
    })
}

/// Folds one parallel dispatch's per-worker busy nanoseconds into the
/// runtime telemetry (no-op on an empty sample, i.e. untraced dispatches).
fn record_busy(busy: &[u64]) {
    if busy.is_empty() {
        return;
    }
    let m = metrics();
    let total: u64 = busy.iter().sum();
    m.busy_ns.add(total);
    let max = busy.iter().copied().max().unwrap_or(0);
    let mean = total as f64 / busy.len() as f64;
    if mean > 0.0 {
        m.imbalance.set(max as f64 / mean);
    }
}

/// Number of logical cores reported by the OS (at least 1).
fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parses a `NEURODEANON_THREADS` value, clamping to `[1, cores]`; malformed
/// values fall back to the capped core count.
fn parse_env_threads(raw: &str, cores: usize) -> usize {
    match raw.trim().parse::<usize>() {
        Ok(n) => n.clamp(1, cores),
        Err(_) => cores.min(DEFAULT_THREAD_CAP),
    }
}

/// Number of worker threads parallel kernels will use on this thread.
///
/// Resolution order: a [`with_thread_count`] override on the calling thread,
/// then the `NEURODEANON_THREADS` environment variable clamped to
/// `[1, cores]`, then `available_parallelism()` capped at
/// [`DEFAULT_THREAD_CAP`]. Thanks to the determinism contract the returned
/// value only affects wall-clock time, never results.
pub fn num_threads() -> usize {
    let forced = THREAD_OVERRIDE.with(Cell::get);
    if forced > 0 {
        return forced;
    }
    let cores = available_cores();
    match std::env::var("NEURODEANON_THREADS") {
        Ok(raw) => parse_env_threads(&raw, cores),
        Err(_) => cores.min(DEFAULT_THREAD_CAP),
    }
}

/// Runs `f` with [`num_threads`] forced to `n` on the calling thread.
///
/// This is the structured override used by the determinism property suites
/// and the bench thread sweep: unlike setting `NEURODEANON_THREADS` it is
/// race-free under the multi-threaded test runner, restores the previous
/// value on unwind, and may oversubscribe the machine (clamped to
/// `[1, 64]`) so the parallel code paths are exercised even on single-core
/// CI hosts.
pub fn with_thread_count<T>(n: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = THREAD_OVERRIDE.with(|c| c.replace(n.clamp(1, MAX_THREAD_OVERRIDE)));
    let _restore = Restore(prev);
    f()
}

/// One fixed tile of a partitioned index range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Tile index (0-based, dense).
    pub index: usize,
    /// First item covered by this tile.
    pub start: usize,
    /// One past the last item covered by this tile.
    pub end: usize,
}

impl Tile {
    /// The item range covered by this tile.
    #[inline]
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }

    /// Number of items in the tile.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if the tile covers no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

#[inline]
fn make_tile(index: usize, tile_len: usize, n_items: usize) -> Tile {
    let start = index * tile_len;
    Tile {
        index,
        start,
        end: (start + tile_len).min(n_items),
    }
}

/// Runs `f` once per fixed-size tile of `0..n_items`.
///
/// Tiles are `tile_len` items each (the last may be short); boundaries depend
/// only on `n_items` and `tile_len`. When `n_items * work_per_item` is below
/// `threshold`, or only one thread is available, every tile runs inline on
/// the calling thread in index order; otherwise tiles are distributed
/// round-robin over scoped threads. `f` must confine its effects to data
/// owned by its tile (use [`DisjointMut`] for shared output buffers) so the
/// execution order of distinct tiles cannot influence results.
pub fn par_tiles<F>(n_items: usize, tile_len: usize, work_per_item: usize, threshold: usize, f: F)
where
    F: Fn(Tile) + Sync,
{
    if n_items == 0 {
        return;
    }
    let tile_len = tile_len.max(1);
    let tiles = n_items.div_ceil(tile_len);
    let m = metrics();
    m.calls.incr();
    m.tiles.add(tiles as u64);
    let threads = num_threads().min(tiles);
    if threads <= 1 || n_items.saturating_mul(work_per_item) < threshold {
        neurodeanon_obs::span::detached(|| {
            for t in 0..tiles {
                f(make_tile(t, tile_len, n_items));
            }
        });
        return;
    }
    let traced = neurodeanon_obs::enabled();
    let mut busy = vec![0u64; if traced { threads } else { 0 }];
    {
        let bshare = DisjointMut::new(&mut busy);
        std::thread::scope(|s| {
            let f = &f;
            for w in 1..threads {
                s.spawn(move || {
                    let t0 = traced.then(Instant::now);
                    let mut t = w;
                    while t < tiles {
                        f(make_tile(t, tile_len, n_items));
                        t += threads;
                    }
                    if let Some(t0) = t0 {
                        // SAFETY: worker `w` is the only writer of slot `w`.
                        unsafe { *bshare.get(w) = t0.elapsed().as_nanos() as u64 };
                    }
                });
            }
            let t0 = traced.then(Instant::now);
            neurodeanon_obs::span::detached(|| {
                let mut t = 0;
                while t < tiles {
                    f(make_tile(t, tile_len, n_items));
                    t += threads;
                }
            });
            if let Some(t0) = t0 {
                // SAFETY: slot 0 belongs to the calling thread.
                unsafe { *bshare.get(0) = t0.elapsed().as_nanos() as u64 };
            }
        });
    }
    record_busy(&busy);
}

/// Splits `data` into fixed `chunk_len`-element chunks and runs
/// `f(chunk_index, chunk)` once per chunk, in parallel when
/// `data.len() * work_per_item` reaches `threshold`.
///
/// Chunk boundaries depend only on `data.len()` and `chunk_len`, so a kernel
/// whose chunk result depends only on `(chunk_index, chunk)` is bit-identical
/// at any thread count. This is the safe-Rust workhorse for row-partitioned
/// outputs (matmul row panels, z-scoring, per-point t-SNE gradient rows).
pub fn par_chunks_mut<T, F>(
    data: &mut [T],
    chunk_len: usize,
    work_per_item: usize,
    threshold: usize,
    f: F,
) where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    let chunk_len = chunk_len.max(1);
    let n_chunks = data.len().div_ceil(chunk_len);
    let m = metrics();
    m.calls.incr();
    m.tiles.add(n_chunks as u64);
    let threads = num_threads().min(n_chunks);
    if threads <= 1 || data.len().saturating_mul(work_per_item) < threshold {
        neurodeanon_obs::span::detached(|| {
            for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
                f(i, chunk);
            }
        });
        return;
    }
    // Deal chunks round-robin so long inputs stay balanced without any
    // thread-count-dependent boundary arithmetic.
    let mut batches: Vec<Vec<(usize, &mut [T])>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
        batches[i % threads].push((i, chunk));
    }
    let traced = neurodeanon_obs::enabled();
    let mut busy = vec![0u64; if traced { threads } else { 0 }];
    {
        let bshare = DisjointMut::new(&mut busy);
        std::thread::scope(|s| {
            let f = &f;
            let mut batches = batches.into_iter();
            let own = batches.next().expect("threads >= 1");
            for (w, batch) in batches.enumerate() {
                s.spawn(move || {
                    let t0 = traced.then(Instant::now);
                    for (i, chunk) in batch {
                        f(i, chunk);
                    }
                    if let Some(t0) = t0 {
                        // SAFETY: worker `w + 1` is the only writer of its slot.
                        unsafe { *bshare.get(w + 1) = t0.elapsed().as_nanos() as u64 };
                    }
                });
            }
            let t0 = traced.then(Instant::now);
            neurodeanon_obs::span::detached(|| {
                for (i, chunk) in own {
                    f(i, chunk);
                }
            });
            if let Some(t0) = t0 {
                // SAFETY: slot 0 belongs to the calling thread.
                unsafe { *bshare.get(0) = t0.elapsed().as_nanos() as u64 };
            }
        });
    }
    record_busy(&busy);
}

/// Deterministic tiled reduction.
///
/// Computes one partial per fixed tile of `0..n_items` (in parallel when the
/// work crosses `threshold`), then folds `init` with the partials **in tile
/// index order** on the calling thread. The sequential path materializes the
/// same partials and folds them in the same order, so the result is
/// bit-identical at any thread count — the floating-point merge tree is part
/// of the kernel's definition, not an execution accident.
pub fn par_reduce_tiles<R, F, G>(
    n_items: usize,
    tile_len: usize,
    work_per_item: usize,
    threshold: usize,
    init: R,
    tile_fn: F,
    mut fold: G,
) -> R
where
    R: Send,
    F: Fn(Tile) -> R + Sync,
    G: FnMut(R, R) -> R,
{
    if n_items == 0 {
        return init;
    }
    let tile_len = tile_len.max(1);
    let tiles = n_items.div_ceil(tile_len);
    let m = metrics();
    m.calls.incr();
    m.tiles.add(tiles as u64);
    let threads = num_threads().min(tiles);
    let mut partials: Vec<Option<R>> = (0..tiles).map(|_| None).collect();
    if threads <= 1 || n_items.saturating_mul(work_per_item) < threshold {
        neurodeanon_obs::span::detached(|| {
            for (t, slot) in partials.iter_mut().enumerate() {
                *slot = Some(tile_fn(make_tile(t, tile_len, n_items)));
            }
        });
    } else {
        let traced = neurodeanon_obs::enabled();
        let mut busy = vec![0u64; if traced { threads } else { 0 }];
        let bshare = DisjointMut::new(&mut busy);
        let slots = DisjointMut::new(&mut partials);
        std::thread::scope(|s| {
            let tile_fn = &tile_fn;
            for w in 1..threads {
                s.spawn(move || {
                    let t0 = traced.then(Instant::now);
                    let mut t = w;
                    while t < tiles {
                        // SAFETY: each tile index is visited by exactly one
                        // thread (round-robin by `t % threads`).
                        unsafe { *slots.get(t) = Some(tile_fn(make_tile(t, tile_len, n_items))) };
                        t += threads;
                    }
                    if let Some(t0) = t0 {
                        // SAFETY: worker `w` is the only writer of slot `w`.
                        unsafe { *bshare.get(w) = t0.elapsed().as_nanos() as u64 };
                    }
                });
            }
            let t0 = traced.then(Instant::now);
            neurodeanon_obs::span::detached(|| {
                let mut t = 0;
                while t < tiles {
                    // SAFETY: as above — stride-disjoint tile indices.
                    unsafe { *slots.get(t) = Some(tile_fn(make_tile(t, tile_len, n_items))) };
                    t += threads;
                }
            });
            if let Some(t0) = t0 {
                // SAFETY: slot 0 belongs to the calling thread.
                unsafe { *bshare.get(0) = t0.elapsed().as_nanos() as u64 };
            }
        });
        record_busy(&busy);
    }
    partials
        .into_iter()
        .fold(init, |acc, p| fold(acc, p.expect("every tile ran")))
}

/// Runs two closures, potentially in parallel, returning both results.
///
/// `b` runs on a scoped worker thread while `a` runs on the calling thread
/// (sequentially, `a` then `b`, when only one thread is available). Both
/// closures must be independent; determinism follows from each running
/// sequentially in itself.
pub fn par_join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    metrics().calls.incr();
    if num_threads() <= 1 {
        let ra = neurodeanon_obs::span::detached(a);
        let rb = neurodeanon_obs::span::detached(b);
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = neurodeanon_obs::span::detached(a);
        let rb = hb.join().expect("par_join worker panicked");
        (ra, rb)
    })
}

/// A copyable, `Sync` view of a mutable slice for kernels that hand
/// **disjoint** index sets to different threads (Jacobi column pairs,
/// upper-triangle tile outputs, condensed-distance row segments).
///
/// Safe-Rust chunking ([`par_chunks_mut`]) cannot express "tile `(bi, bj)`
/// owns rows `bi` columns `bj`" or "this pair owns columns `p` and `q`";
/// this wrapper shifts the aliasing proof to the caller. All accessors are
/// `unsafe` and take `self` by value (the struct is `Copy`).
pub struct DisjointMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _borrow: PhantomData<&'a mut [T]>,
}

impl<T> Clone for DisjointMut<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for DisjointMut<'_, T> {}

// SAFETY: the wrapper only hands out mutable access through `unsafe`
// methods whose contract requires disjointness; moving/sharing the handle
// itself is no more capable than sharing `&mut [T]` split into parts.
unsafe impl<T: Send> Send for DisjointMut<'_, T> {}
unsafe impl<T: Send> Sync for DisjointMut<'_, T> {}

impl<'a, T> DisjointMut<'a, T> {
    /// Wraps a mutable slice. The borrow lasts for `'a`, so the compiler
    /// still prevents use of `data` while handles are alive.
    pub fn new(data: &'a mut [T]) -> Self {
        DisjointMut {
            ptr: data.as_mut_ptr(),
            len: data.len(),
            _borrow: PhantomData,
        }
    }

    /// Length of the underlying slice.
    #[inline]
    pub fn len(self) -> usize {
        self.len
    }

    /// `true` if the underlying slice is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// Mutable subslice `[start, start + len)`.
    ///
    /// # Safety
    /// No other thread (or handle copy) may access an overlapping range for
    /// the lifetime of the returned slice, and the range must be in bounds.
    #[inline]
    pub unsafe fn slice(self, start: usize, len: usize) -> &'a mut [T] {
        debug_assert!(start.checked_add(len).is_some_and(|end| end <= self.len));
        std::slice::from_raw_parts_mut(self.ptr.add(start), len)
    }

    /// Mutable reference to element `index`.
    ///
    /// # Safety
    /// No other thread (or handle copy) may access `index` concurrently, and
    /// `index` must be in bounds.
    #[inline]
    pub unsafe fn get(self, index: usize) -> &'a mut T {
        debug_assert!(index < self.len);
        &mut *self.ptr.add(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_threads_is_at_least_one() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn env_parse_clamps_to_cores() {
        assert_eq!(parse_env_threads("1", 4), 1);
        assert_eq!(parse_env_threads("3", 4), 3);
        assert_eq!(parse_env_threads("100", 4), 4);
        assert_eq!(parse_env_threads("0", 4), 1);
        assert_eq!(parse_env_threads(" 2 ", 4), 2);
        // Malformed values fall back to the capped core count.
        assert_eq!(parse_env_threads("many", 4), 4);
        assert_eq!(parse_env_threads("", 32), DEFAULT_THREAD_CAP);
    }

    #[test]
    fn with_thread_count_sets_and_restores() {
        let outer = num_threads();
        let inner = with_thread_count(3, || {
            // Nested overrides shadow and restore.
            let nested = with_thread_count(5, num_threads);
            assert_eq!(nested, 5);
            num_threads()
        });
        assert_eq!(inner, 3);
        assert_eq!(num_threads(), outer);
    }

    #[test]
    fn with_thread_count_clamps() {
        assert_eq!(with_thread_count(0, num_threads), 1);
        assert_eq!(with_thread_count(10_000, num_threads), MAX_THREAD_OVERRIDE);
    }

    #[test]
    fn tile_boundaries_cover_range_exactly_once() {
        for n in [1usize, 5, 16, 17, 100] {
            for tl in [1usize, 4, 7, 100] {
                let tiles = n.div_ceil(tl);
                let mut seen = vec![0usize; n];
                for t in 0..tiles {
                    let tile = make_tile(t, tl, n);
                    assert!(!tile.is_empty());
                    assert!(tile.len() <= tl);
                    for i in tile.range() {
                        seen[i] += 1;
                    }
                }
                assert!(seen.iter().all(|&c| c == 1), "n={n} tl={tl}");
            }
        }
    }

    #[test]
    fn par_chunks_mut_visits_every_chunk_with_its_index() {
        for threads in [1usize, 2, 8] {
            with_thread_count(threads, || {
                let mut data = vec![0usize; 103];
                // Threshold 0 forces the parallel path whenever threads > 1.
                par_chunks_mut(&mut data, 10, 1, 0, |i, chunk| {
                    for v in chunk {
                        *v = i + 1;
                    }
                });
                for (k, &v) in data.iter().enumerate() {
                    assert_eq!(v, k / 10 + 1);
                }
            });
        }
    }

    #[test]
    fn par_tiles_with_disjoint_output_matches_sequential() {
        let expect: Vec<usize> = (0..97).map(|i| i * 3).collect();
        for threads in [1usize, 2, 8] {
            with_thread_count(threads, || {
                let mut out = vec![0usize; 97];
                {
                    let share = DisjointMut::new(&mut out);
                    par_tiles(97, 8, 1, 0, |tile| {
                        for i in tile.range() {
                            // SAFETY: tiles partition 0..97 disjointly.
                            unsafe { *share.get(i) = i * 3 };
                        }
                    });
                }
                assert_eq!(out, expect);
            });
        }
    }

    #[test]
    fn par_reduce_tiles_folds_in_tile_order() {
        // A non-commutative fold (sequence concatenation) exposes any
        // thread-dependent merge order.
        let reduce = || {
            par_reduce_tiles(
                23,
                4,
                1,
                0,
                Vec::new(),
                |tile| tile.range().collect::<Vec<usize>>(),
                |mut acc: Vec<usize>, part| {
                    acc.extend(part);
                    acc
                },
            )
        };
        let seq = with_thread_count(1, reduce);
        assert_eq!(seq, (0..23).collect::<Vec<_>>());
        for threads in [2usize, 3, 8] {
            assert_eq!(with_thread_count(threads, reduce), seq);
        }
    }

    #[test]
    fn par_join_returns_both_results() {
        for threads in [1usize, 4] {
            with_thread_count(threads, || {
                let (a, b) = par_join(|| 2 + 2, || "ok");
                assert_eq!(a, 4);
                assert_eq!(b, "ok");
            });
        }
    }

    #[test]
    fn below_threshold_runs_inline() {
        // With an enormous threshold the parallel path must not spawn; we
        // can't observe threads directly, but inline execution preserves
        // strict tile order, which this asserts via an order log.
        with_thread_count(8, || {
            let mut order = Vec::new();
            let log = std::sync::Mutex::new(&mut order);
            par_tiles(40, 4, 1, usize::MAX, |tile| {
                log.lock().unwrap().push(tile.index);
            });
            assert_eq!(order, (0..10).collect::<Vec<_>>());
        });
    }
}
