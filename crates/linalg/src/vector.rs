//! Free functions on `&[f64]` vectors.
//!
//! These are the scalar kernels underneath the correlation, sampling, and
//! t-SNE code. They are deliberately slice-based so callers can apply them
//! to matrix rows without copies.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Debug-asserts equal lengths; in release the shorter length governs.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    // Four-way unrolled accumulation: independent partial sums let the CPU
    // overlap the FMA chains (perf-book "loop unrolling for ILP").
    let mut s0 = 0.0;
    let mut s1 = 0.0;
    let mut s2 = 0.0;
    let mut s3 = 0.0;
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        s0 += a[j] * b[j];
        s1 += a[j + 1] * b[j + 1];
        s2 += a[j + 2] * b[j + 2];
        s3 += a[j + 3] * b[j + 3];
    }
    let mut tail = 0.0;
    for j in chunks * 4..a.len().min(b.len()) {
        tail += a[j] * b[j];
    }
    s0 + s1 + s2 + s3 + tail
}

/// Mixed-precision dot product: an `f32` gallery row against an `f64` query
/// row, **accumulating in f64**. Each `f32` element widens to `f64` exactly,
/// so the result is the exact-[`dot`] of the widened gallery — the only
/// rounding is the one-time `f64 → f32` storage conversion the caller made.
///
/// Same four-way unrolled accumulation order as [`dot`], so the f32 gallery
/// path keeps the per-dtype bit-identity contract at any thread count.
#[inline]
pub fn dot_f32_f64(a: &[f32], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut s0 = 0.0;
    let mut s1 = 0.0;
    let mut s2 = 0.0;
    let mut s3 = 0.0;
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        s0 += a[j] as f64 * b[j];
        s1 += a[j + 1] as f64 * b[j + 1];
        s2 += a[j + 2] as f64 * b[j + 2];
        s3 += a[j + 3] as f64 * b[j + 3];
    }
    let mut tail = 0.0;
    for j in chunks * 4..a.len().min(b.len()) {
        tail += a[j] as f64 * b[j];
    }
    s0 + s1 + s2 + s3 + tail
}

/// Euclidean norm `‖a‖₂`.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean norm `‖a‖₂²`.
#[inline]
pub fn norm2_sq(a: &[f64]) -> f64 {
    dot(a, a)
}

/// Squared Euclidean distance `‖a − b‖₂²`.
#[inline]
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        s += d * d;
    }
    s
}

/// In-place `y ← y + alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place scaling `x ← alpha * x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for v in x {
        *v *= alpha;
    }
}

/// Sum of all elements.
#[inline]
pub fn sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

/// Arithmetic mean; `0.0` for an empty slice.
#[inline]
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        sum(a) / a.len() as f64
    }
}

/// Index of the maximum element (first occurrence); `None` if empty or all NaN.
pub fn argmax(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the minimum element (first occurrence); `None` if empty or all NaN.
pub fn argmin(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv <= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Returns indices that would sort `a` in descending order.
///
/// NaNs sort last. Ties keep ascending index order, making feature selection
/// deterministic — the paper's deterministic top-`t` leverage selection
/// depends on this.
pub fn argsort_desc(a: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..a.len()).collect();
    idx.sort_by(|&i, &j| {
        a[j].partial_cmp(&a[i])
            .unwrap_or_else(|| {
                // Push NaNs to the end regardless of side.
                match (a[i].is_nan(), a[j].is_nan()) {
                    (true, false) => std::cmp::Ordering::Greater,
                    (false, true) => std::cmp::Ordering::Less,
                    _ => std::cmp::Ordering::Equal,
                }
            })
            .then(i.cmp(&j))
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f64> = (0..37).map(|i| i as f64 * 0.5 - 3.0).collect();
        let b: Vec<f64> = (0..37).map(|i| (i as f64).cos()).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-10);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn norms() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((norm2_sq(&[3.0, 4.0]) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn dist_sq_known() {
        assert_eq!(dist_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist_sq(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = [1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, [-3.0, 6.0]);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn argmax_argmin_basic() {
        let a = [1.0, 5.0, 3.0, 5.0];
        assert_eq!(argmax(&a), Some(1)); // first of the ties
        assert_eq!(argmin(&a), Some(0));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn argmax_skips_nan() {
        assert_eq!(argmax(&[f64::NAN, 2.0, 1.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN]), None);
    }

    #[test]
    fn argsort_desc_orders_and_breaks_ties_by_index() {
        let a = [1.0, 3.0, 2.0, 3.0];
        assert_eq!(argsort_desc(&a), vec![1, 3, 2, 0]);
    }

    #[test]
    fn argsort_desc_pushes_nan_last() {
        let a = [f64::NAN, 1.0, 2.0];
        let idx = argsort_desc(&a);
        assert_eq!(idx[2], 0);
        assert_eq!(idx[0], 2);
    }
}
