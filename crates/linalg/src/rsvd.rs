//! Randomized SVD (Halko–Martinsson–Tropp range finder).
//!
//! The paper's §3.1.2 machinery descends from randomized numerical linear
//! algebra; this module completes the family with the randomized
//! range-finder SVD: project onto `A Ω` for a Gaussian test matrix `Ω`,
//! orthonormalize, and solve the small projected problem. With `q` power
//! iterations the approximation error decays rapidly for matrices with
//! decaying spectra — exactly the group matrices the attack builds — and
//! the cost drops from `O(mn²)` to `O(mn(k+p))`.
//!
//! Regime note (measured in `benches/micro.rs`): for the paper's group
//! matrices the column count is the *subject* count (≈ 100), so the exact
//! Gram-route SVD is already `O(mn²)` with tiny `n` and beats this code.
//! The randomized path pays off when the column count grows — e.g.
//! voxel-level feature spaces or stacked multi-condition designs.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::qr::qr;
use crate::rng::Rng64;
use crate::svd::{thin_svd, Svd};
use crate::Result;

/// Configuration for the randomized SVD.
#[derive(Debug, Clone)]
pub struct RsvdConfig {
    /// Target rank `k` (number of singular triplets returned).
    pub rank: usize,
    /// Oversampling `p` (extra random directions; 5–10 is standard).
    pub oversample: usize,
    /// Power iterations `q` (0–2; each sharpens the spectrum's tail).
    pub power_iters: usize,
    /// RNG seed for the Gaussian test matrix.
    pub seed: u64,
}

impl Default for RsvdConfig {
    fn default() -> Self {
        RsvdConfig {
            rank: 10,
            oversample: 8,
            power_iters: 1,
            seed: 0x125d,
        }
    }
}

/// Computes a rank-`k` approximate SVD of `a` (`m × n`, any shape with
/// `m ≥ k`): returns `U ∈ R^{m×k}`, `σ₁ ≥ … ≥ σ_k`, `V ∈ R^{n×k}` such that
/// `A ≈ U Σ Vᵀ`.
pub fn randomized_svd(a: &Matrix, config: &RsvdConfig) -> Result<Svd> {
    let (m, n) = a.shape();
    if a.is_empty() {
        return Err(LinalgError::EmptyMatrix {
            op: "randomized_svd",
        });
    }
    let k = config.rank;
    if k == 0 || k > m.min(n) {
        return Err(LinalgError::InvalidParameter {
            name: "rank",
            reason: "need 1 <= rank <= min(rows, cols)",
        });
    }
    let l = (k + config.oversample).min(n);
    // Gaussian test matrix Ω ∈ R^{n×l}.
    let mut rng = Rng64::new(config.seed);
    let omega = Matrix::from_fn(n, l, |_, _| rng.gaussian());
    // Sample the range: Y = A Ω, with optional power iterations
    // Y ← A (Aᵀ Y) re-orthonormalized each half-step for stability.
    let mut y = a.matmul(&omega)?;
    for _ in 0..config.power_iters {
        let q1 = qr(&y)?.q;
        let z = a.transpose().matmul(&q1)?;
        let q2 = qr(&z)?.q;
        y = a.matmul(&q2)?;
    }
    let q_basis = qr(&y)?.q; // m × l orthonormal
                             // Project: B = Qᵀ A (l × n), solve the small SVD.
    let b = q_basis.transpose().matmul(a)?;
    // thin_svd requires rows ≥ cols; transpose if needed.
    let small = if b.rows() >= b.cols() {
        thin_svd(&b)?
    } else {
        let f = thin_svd(&b.transpose())?;
        Svd {
            u: f.v,
            sigma: f.sigma,
            v: f.u,
        }
    };
    // Lift back: U = Q · U_b, truncate to k.
    let idx: Vec<usize> = (0..k.min(small.sigma.len())).collect();
    let u = q_basis.matmul(&small.u.select_cols(&idx)?)?;
    let v = small.v.select_cols(&idx)?;
    let sigma: Vec<f64> = idx.iter().map(|&i| small.sigma[i]).collect();
    Ok(Svd { u, sigma, v })
}

/// Approximate leverage scores from a randomized rank-`k` SVD — the fast
/// path for feature selection on very large group matrices.
pub fn randomized_leverage_scores(a: &Matrix, config: &RsvdConfig) -> Result<Vec<f64>> {
    let f = randomized_svd(a, config)?;
    let m = a.rows();
    let mut scores = vec![0.0; m];
    for (r, s) in scores.iter_mut().enumerate() {
        *s = f.u.row(r).iter().map(|x| x * x).sum();
    }
    Ok(scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svd::leverage_scores;
    use crate::vector::argsort_desc;

    /// A tall matrix with sharply decaying spectrum (rank-3 + noise).
    fn structured(m: usize, n: usize) -> Matrix {
        Matrix::from_fn(m, n, |r, c| {
            let u1 = (r as f64 * 0.13).sin();
            let u2 = (r as f64 * 0.041).cos();
            let u3 = ((r * r) as f64 * 0.002).sin();
            8.0 * u1 * ((c + 1) as f64 * 0.5).cos()
                + 3.0 * u2 * (c as f64 * 0.9).sin()
                + 1.0 * u3 * ((c * c) as f64 * 0.1).cos()
                + 0.01 * (((r * 31 + c * 7) % 13) as f64 - 6.0)
        })
    }

    #[test]
    fn matches_exact_svd_on_leading_triplets() {
        let a = structured(300, 40);
        let exact = thin_svd(&a).unwrap();
        let approx = randomized_svd(
            &a,
            &RsvdConfig {
                rank: 5,
                power_iters: 2,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..3 {
            let rel = (approx.sigma[i] - exact.sigma[i]).abs() / exact.sigma[i];
            assert!(
                rel < 0.02,
                "σ_{i}: {} vs {}",
                approx.sigma[i],
                exact.sigma[i]
            );
        }
    }

    #[test]
    fn low_rank_reconstruction_error_near_optimal() {
        let a = structured(200, 30);
        let k = 3;
        let approx = randomized_svd(
            &a,
            &RsvdConfig {
                rank: k,
                power_iters: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let rec = approx.reconstruct().unwrap();
        let err = a.sub(&rec).unwrap().frobenius_norm();
        let exact = thin_svd(&a).unwrap();
        let opt: f64 = exact.sigma[k..].iter().map(|s| s * s).sum::<f64>().sqrt();
        assert!(err < 1.6 * opt + 1e-9, "err {err} vs optimal {opt}");
    }

    #[test]
    fn randomized_leverage_agrees_on_top_features() {
        // The top-20 deterministic and randomized selections overlap
        // heavily on a spectrally decaying matrix.
        let a = structured(400, 20);
        let exact = leverage_scores(&a, Some(5)).unwrap();
        let approx = randomized_leverage_scores(
            &a,
            &RsvdConfig {
                rank: 5,
                power_iters: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let top_exact: std::collections::HashSet<usize> =
            argsort_desc(&exact)[..20].iter().copied().collect();
        let top_approx = argsort_desc(&approx);
        let overlap = top_approx[..20]
            .iter()
            .filter(|i| top_exact.contains(i))
            .count();
        assert!(overlap >= 15, "only {overlap}/20 overlap");
    }

    #[test]
    fn u_and_v_orthonormal() {
        let a = structured(150, 25);
        let f = randomized_svd(&a, &RsvdConfig::default()).unwrap();
        let utu = f.u.transpose().matmul(&f.u).unwrap();
        let vtv = f.v.transpose().matmul(&f.v).unwrap();
        let k = f.sigma.len();
        assert!(utu.sub(&Matrix::identity(k)).unwrap().max_abs() < 1e-8);
        assert!(vtv.sub(&Matrix::identity(k)).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = structured(100, 15);
        let f1 = randomized_svd(&a, &RsvdConfig::default()).unwrap();
        let f2 = randomized_svd(&a, &RsvdConfig::default()).unwrap();
        assert_eq!(f1.sigma, f2.sigma);
    }

    #[test]
    fn validations() {
        let a = structured(50, 10);
        assert!(randomized_svd(
            &a,
            &RsvdConfig {
                rank: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(randomized_svd(
            &a,
            &RsvdConfig {
                rank: 11,
                ..Default::default()
            }
        )
        .is_err());
    }
}
