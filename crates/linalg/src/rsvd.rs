//! Randomized SVD (Halko–Martinsson–Tropp range finder).
//!
//! The paper's §3.1.2 machinery descends from randomized numerical linear
//! algebra; this module completes the family with the randomized
//! range-finder SVD: project onto `A Ω` for a Gaussian test matrix `Ω`,
//! orthonormalize, and solve the small projected problem. With `q` power
//! iterations the approximation error decays rapidly for matrices with
//! decaying spectra — exactly the group matrices the attack builds — and
//! the cost drops from `O(mn²)` to `O(mn(k+p))`.
//!
//! Regime note (measured in `benches/micro.rs`): for the paper's group
//! matrices the column count is the *subject* count (≈ 100), so the exact
//! Gram-route SVD is already `O(mn²)` with tiny `n` and beats this code.
//! The randomized path pays off when the column count grows — e.g.
//! voxel-level feature spaces or stacked multi-condition designs.

use crate::eigen::sym_eigen;
use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::qr::qr;
use crate::rng::Rng64;
use crate::svd::{leverage_scores_from_svd, thin_svd, Svd, RANK_TOL};
use crate::Result;

/// Configuration for the randomized SVD.
#[derive(Debug, Clone)]
pub struct RsvdConfig {
    /// Target rank `k` (number of singular triplets returned).
    pub rank: usize,
    /// Oversampling `p` (extra random directions; 5–10 is standard).
    pub oversample: usize,
    /// Power iterations `q` (0–2; each sharpens the spectrum's tail).
    pub power_iters: usize,
    /// RNG seed for the Gaussian test matrix.
    pub seed: u64,
}

impl Default for RsvdConfig {
    fn default() -> Self {
        RsvdConfig {
            rank: 10,
            oversample: 8,
            power_iters: 1,
            seed: 0x125d,
        }
    }
}

/// Computes a rank-`k` approximate SVD of `a` (`m × n`, any shape with
/// `m ≥ k`): returns `U ∈ R^{m×k}`, `σ₁ ≥ … ≥ σ_k`, `V ∈ R^{n×k}` such that
/// `A ≈ U Σ Vᵀ`.
pub fn randomized_svd(a: &Matrix, config: &RsvdConfig) -> Result<Svd> {
    let (m, n) = a.shape();
    if a.is_empty() {
        return Err(LinalgError::EmptyMatrix {
            op: "randomized_svd",
        });
    }
    let k = config.rank;
    if k == 0 || k > m.min(n) {
        return Err(LinalgError::InvalidParameter {
            name: "rank",
            reason: "need 1 <= rank <= min(rows, cols)",
        });
    }
    let l = (k + config.oversample).min(n);
    // Gaussian test matrix Ω ∈ R^{n×l}.
    let mut rng = Rng64::new(config.seed);
    let omega = Matrix::from_fn(n, l, |_, _| rng.gaussian());
    // Sample the range: Y = A Ω, with optional power iterations
    // Y ← A (Aᵀ Y) re-orthonormalized each half-step for stability.
    let mut y = a.matmul(&omega)?;
    for _ in 0..config.power_iters {
        let q1 = qr(&y)?.q;
        let z = a.transpose().matmul(&q1)?;
        let q2 = qr(&z)?.q;
        y = a.matmul(&q2)?;
    }
    let q_basis = qr(&y)?.q; // m × l orthonormal
                             // Project: B = Qᵀ A (l × n), solve the small SVD.
    let b = q_basis.transpose().matmul(a)?;
    // thin_svd requires rows ≥ cols; transpose if needed.
    let small = if b.rows() >= b.cols() {
        thin_svd(&b)?
    } else {
        let f = thin_svd(&b.transpose())?;
        Svd {
            u: f.v,
            sigma: f.sigma,
            v: f.u,
        }
    };
    // Lift back: U = Q · U_b, truncate to k.
    let idx: Vec<usize> = (0..k.min(small.sigma.len())).collect();
    let u = q_basis.matmul(&small.u.select_cols(&idx)?)?;
    let v = small.v.select_cols(&idx)?;
    let sigma: Vec<f64> = idx.iter().map(|&i| small.sigma[i]).collect();
    Ok(Svd { u, sigma, v })
}

/// Blocked randomized subspace iteration on the Gram operator `AᵀA` — the
/// tall-matrix route (`m ≥ 2n`). One blocked [`Matrix::gram`] pass reduces
/// the problem to `n × n`; a seeded Gaussian start block plus
/// `config.power_iters` power iterations (re-orthonormalized each step)
/// converge the leading `rank + oversample` eigendirections; a Rayleigh–Ritz
/// projection extracts the singular pairs; and only the retained `rank`
/// left singular vectors are recovered via `U_k = A V_k Σ_k⁻¹`.
///
/// Two costs vanish compared to the alternatives: the `n − k` trailing
/// columns of the full Gram-route `U` recovery (the dominant `O(mn²)` term
/// of an exact thin SVD), and the HMT range finder's orthonormalization of
/// `m × l` panels ([`randomized_svd`] QR-decomposes tall sample matrices,
/// which strides column-wise across row-major storage and is cache-hostile
/// at feature-space heights). Like the exact Gram route this squares the
/// condition number, so directions near the rank tolerance are noisier
/// than Jacobi's — leverage selection only consumes the leading subspace,
/// where the squaring is harmless.
///
/// Deterministic per `config.seed`, and bit-identical at any thread count
/// (every kernel underneath carries the `linalg::par` contract).
pub fn subspace_svd(a: &Matrix, config: &RsvdConfig) -> Result<Svd> {
    let (m, n) = a.shape();
    if a.is_empty() {
        return Err(LinalgError::EmptyMatrix { op: "subspace_svd" });
    }
    let k = config.rank;
    if k == 0 || k > m.min(n) {
        return Err(LinalgError::InvalidParameter {
            name: "rank",
            reason: "need 1 <= rank <= min(rows, cols)",
        });
    }
    let l = (k + config.oversample).min(n);
    let mut rng = Rng64::new(config.seed);
    let omega = Matrix::from_fn(n, l, |_, _| rng.gaussian());
    let g = a.gram();
    let mut x = g.matmul(&omega)?;
    for _ in 0..config.power_iters {
        x = g.matmul(&qr(&x)?.q)?;
    }
    let q_basis = qr(&x)?.q; // n × l orthonormal
                             // Rayleigh–Ritz on the Gram operator: H = Qᵀ G Q, symmetrized against
                             // rounding so the eigensolver sees an exactly symmetric block.
    let gq = g.matmul(&q_basis)?;
    let mut h = q_basis.transpose().matmul(&gq)?;
    for i in 0..l {
        for j in (i + 1)..l {
            let s = 0.5 * (h[(i, j)] + h[(j, i)]);
            h[(i, j)] = s;
            h[(j, i)] = s;
        }
    }
    let eig = sym_eigen(&h)?;
    let idx: Vec<usize> = (0..k.min(eig.values.len())).collect();
    let v = q_basis.matmul(&eig.vectors.select_cols(&idx)?)?; // n × k
                                                              // Eigenvalues of AᵀA are σ²; clamp tiny negatives from rounding.
    let sigma: Vec<f64> = idx.iter().map(|&i| eig.values[i].max(0.0).sqrt()).collect();
    // U_k = A V_k Σ_k⁻¹ column by column, zeroing directions below the
    // Gram-route tolerance (same recovery as the exact path).
    let mut u = a.matmul(&v)?;
    let smax = sigma.first().copied().unwrap_or(0.0);
    let tol = RANK_TOL * smax.max(f64::MIN_POSITIVE) * (m as f64).sqrt();
    for (c, &s) in sigma.iter().enumerate() {
        if s > tol {
            let inv = 1.0 / s;
            for r in 0..u.rows() {
                u[(r, c)] *= inv;
            }
        } else {
            for r in 0..u.rows() {
                u[(r, c)] = 0.0;
            }
        }
    }
    Ok(Svd { u, sigma, v })
}

/// Shape-dispatched randomized SVD: tall matrices (`m ≥ 2n`, the attack's
/// feature-space group matrices) take the Gram-operator
/// [`subspace_svd`]; squarish ones take the HMT range finder
/// ([`randomized_svd`]), whose sampling does not square the condition
/// number. Callers that must agree bit-for-bit on the same input — the
/// direct randomized attack and the memoized plan's subspace bank — route
/// through this single dispatch.
pub fn randomized_svd_auto(a: &Matrix, config: &RsvdConfig) -> Result<Svd> {
    if a.rows() >= 2 * a.cols() {
        subspace_svd(a, config)
    } else {
        randomized_svd(a, config)
    }
}

/// Approximate leverage scores from a randomized rank-`k` SVD — the fast
/// path for feature selection on very large group matrices. Tall inputs
/// take the [`subspace_svd`] route via [`randomized_svd_auto`]; scores are
/// row norms of the retained `U` columns, rank-truncated exactly like the
/// exact path's [`leverage_scores_from_svd`].
pub fn randomized_leverage_scores(a: &Matrix, config: &RsvdConfig) -> Result<Vec<f64>> {
    let f = randomized_svd_auto(a, config)?;
    Ok(leverage_scores_from_svd(&f, None))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svd::leverage_scores;
    use crate::vector::argsort_desc;

    /// A tall matrix with sharply decaying spectrum (rank-3 + noise).
    fn structured(m: usize, n: usize) -> Matrix {
        Matrix::from_fn(m, n, |r, c| {
            let u1 = (r as f64 * 0.13).sin();
            let u2 = (r as f64 * 0.041).cos();
            let u3 = ((r * r) as f64 * 0.002).sin();
            8.0 * u1 * ((c + 1) as f64 * 0.5).cos()
                + 3.0 * u2 * (c as f64 * 0.9).sin()
                + 1.0 * u3 * ((c * c) as f64 * 0.1).cos()
                + 0.01 * (((r * 31 + c * 7) % 13) as f64 - 6.0)
        })
    }

    #[test]
    fn matches_exact_svd_on_leading_triplets() {
        let a = structured(300, 40);
        let exact = thin_svd(&a).unwrap();
        let approx = randomized_svd(
            &a,
            &RsvdConfig {
                rank: 5,
                power_iters: 2,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..3 {
            let rel = (approx.sigma[i] - exact.sigma[i]).abs() / exact.sigma[i];
            assert!(
                rel < 0.02,
                "σ_{i}: {} vs {}",
                approx.sigma[i],
                exact.sigma[i]
            );
        }
    }

    #[test]
    fn low_rank_reconstruction_error_near_optimal() {
        let a = structured(200, 30);
        let k = 3;
        let approx = randomized_svd(
            &a,
            &RsvdConfig {
                rank: k,
                power_iters: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let rec = approx.reconstruct().unwrap();
        let err = a.sub(&rec).unwrap().frobenius_norm();
        let exact = thin_svd(&a).unwrap();
        let opt: f64 = exact.sigma[k..].iter().map(|s| s * s).sum::<f64>().sqrt();
        assert!(err < 1.6 * opt + 1e-9, "err {err} vs optimal {opt}");
    }

    #[test]
    fn randomized_leverage_agrees_on_top_features() {
        // The top-20 deterministic and randomized selections overlap
        // heavily on a spectrally decaying matrix.
        let a = structured(400, 20);
        let exact = leverage_scores(&a, Some(5)).unwrap();
        let approx = randomized_leverage_scores(
            &a,
            &RsvdConfig {
                rank: 5,
                power_iters: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let top_exact: std::collections::HashSet<usize> =
            argsort_desc(&exact)[..20].iter().copied().collect();
        let top_approx = argsort_desc(&approx);
        let overlap = top_approx[..20]
            .iter()
            .filter(|i| top_exact.contains(i))
            .count();
        assert!(overlap >= 15, "only {overlap}/20 overlap");
    }

    #[test]
    fn u_and_v_orthonormal() {
        let a = structured(150, 25);
        let f = randomized_svd(&a, &RsvdConfig::default()).unwrap();
        let utu = f.u.transpose().matmul(&f.u).unwrap();
        let vtv = f.v.transpose().matmul(&f.v).unwrap();
        let k = f.sigma.len();
        assert!(utu.sub(&Matrix::identity(k)).unwrap().max_abs() < 1e-8);
        assert!(vtv.sub(&Matrix::identity(k)).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = structured(100, 15);
        let f1 = randomized_svd(&a, &RsvdConfig::default()).unwrap();
        let f2 = randomized_svd(&a, &RsvdConfig::default()).unwrap();
        assert_eq!(f1.sigma, f2.sigma);
    }

    #[test]
    fn validations() {
        let a = structured(50, 10);
        assert!(randomized_svd(
            &a,
            &RsvdConfig {
                rank: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(randomized_svd(
            &a,
            &RsvdConfig {
                rank: 11,
                ..Default::default()
            }
        )
        .is_err());
        assert!(subspace_svd(
            &a,
            &RsvdConfig {
                rank: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(subspace_svd(
            &a,
            &RsvdConfig {
                rank: 11,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn subspace_matches_exact_svd_on_leading_triplets() {
        let a = structured(500, 40);
        let exact = thin_svd(&a).unwrap();
        let approx = subspace_svd(
            &a,
            &RsvdConfig {
                rank: 5,
                power_iters: 2,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..3 {
            let rel = (approx.sigma[i] - exact.sigma[i]).abs() / exact.sigma[i];
            assert!(
                rel < 0.02,
                "σ_{i}: {} vs {}",
                approx.sigma[i],
                exact.sigma[i]
            );
        }
        // Leading left singular directions agree up to sign.
        for i in 0..2 {
            let mut dot = 0.0;
            for r in 0..a.rows() {
                dot += approx.u[(r, i)] * exact.u[(r, i)];
            }
            assert!(
                dot.abs() > 0.99,
                "u_{i} misaligned: |<u,û>| = {}",
                dot.abs()
            );
        }
    }

    #[test]
    fn subspace_u_and_v_orthonormal() {
        let a = structured(300, 24);
        let f = subspace_svd(
            &a,
            &RsvdConfig {
                rank: 6,
                power_iters: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let k = f.sigma.len();
        assert_eq!(f.u.shape(), (300, k));
        assert_eq!(f.v.shape(), (24, k));
        let utu = f.u.transpose().matmul(&f.u).unwrap();
        let vtv = f.v.transpose().matmul(&f.v).unwrap();
        assert!(utu.sub(&Matrix::identity(k)).unwrap().max_abs() < 1e-8);
        assert!(vtv.sub(&Matrix::identity(k)).unwrap().max_abs() < 1e-8);
        for w in f.sigma.windows(2) {
            assert!(w[0] >= w[1], "sigma not descending: {:?}", f.sigma);
        }
    }

    #[test]
    fn subspace_deterministic_per_seed() {
        let a = structured(200, 16);
        let f1 = subspace_svd(&a, &RsvdConfig::default()).unwrap();
        let f2 = subspace_svd(&a, &RsvdConfig::default()).unwrap();
        for (x, y) in f1.sigma.iter().zip(&f2.sigma) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in f1.u.as_slice().iter().zip(f2.u.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn auto_dispatches_on_aspect_ratio() {
        let config = RsvdConfig {
            rank: 4,
            power_iters: 1,
            ..Default::default()
        };
        // Tall: auto must be bitwise the subspace route.
        let tall = structured(120, 10);
        let auto = randomized_svd_auto(&tall, &config).unwrap();
        let sub = subspace_svd(&tall, &config).unwrap();
        for (x, y) in auto.u.as_slice().iter().zip(sub.u.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // Squarish: auto must be bitwise the HMT range-finder route.
        let squarish = structured(30, 20);
        let auto = randomized_svd_auto(&squarish, &config).unwrap();
        let hmt = randomized_svd(&squarish, &config).unwrap();
        for (x, y) in auto.u.as_slice().iter().zip(hmt.u.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
