//! Deterministic pseudo-random number generation.
//!
//! The whole reproduction — synthetic cohorts, scanner noise, sampling
//! algorithms, t-SNE initialization, train/test splits — must be replayable
//! from a single seed. [`Rng64`] implements xoshiro256++ (Blackman & Vigna)
//! seeded through SplitMix64, with Gaussian sampling via the polar
//! Box–Muller transform. Keeping the generator in-crate means no library
//! crate depends on `rand`, and the byte-for-byte stream is stable across
//! toolchain upgrades.

/// A deterministic xoshiro256++ pseudo-random generator.
///
/// # Examples
///
/// ```
/// use neurodeanon_linalg::Rng64;
///
/// let mut a = Rng64::new(42);
/// let mut b = Rng64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
    /// Cached second Gaussian from the polar method.
    gauss_spare: Option<f64>,
}

impl Rng64 {
    /// Creates a generator from a seed, expanding it with SplitMix64 so that
    /// nearby seeds yield uncorrelated streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            // SplitMix64 step.
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        // xoshiro's all-zero state is absorbing; SplitMix64 cannot produce it
        // for four consecutive outputs, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng64 {
            s,
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator; used to give each subject /
    /// session / experiment repetition its own stream so that adding more
    /// draws in one place never perturbs another.
    pub fn fork(&mut self, stream: u64) -> Rng64 {
        let mix = self.next_u64() ^ stream.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        Rng64::new(mix)
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` via Lemire's multiply-shift rejection.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng64::below(0)");
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n {
                return (m >> 64) as usize;
            }
            // Rejection zone: accept unless lo < (2^64 mod n).
            let threshold = n.wrapping_neg() % n;
            if lo >= threshold {
                return (m >> 64) as usize;
            }
        }
    }

    /// Standard normal draw via the polar Box–Muller method.
    pub fn gaussian(&mut self) -> f64 {
        if let Some(v) = self.gauss_spare.take() {
            return v;
        }
        loop {
            let u = 2.0 * self.uniform() - 1.0;
            let v = 2.0 * self.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                self.gauss_spare = Some(v * f);
                return u * f;
            }
        }
    }

    /// Normal draw with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Fills `out` with i.i.d. standard normal draws.
    pub fn fill_gaussian(&mut self, out: &mut [f64]) {
        for v in out {
            *v = self.gaussian();
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (a uniform random subset,
    /// order randomized). Returns fewer than `k` only if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: only the first k positions need settling.
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Draws an index according to the (unnormalized, non-negative) weights.
    ///
    /// Returns `None` if the weights sum to zero or the slice is empty.
    /// This is the primitive behind the paper's Algorithm 1 row sampler.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| w.is_finite()).sum();
        if total <= 0.0 || !total.is_finite() {
            return None;
        }
        let mut target = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w <= 0.0 {
                continue;
            }
            target -= w;
            if target <= 0.0 {
                return Some(i);
            }
        }
        // Floating-point slack: return the last positive-weight index.
        weights.iter().rposition(|&w| w > 0.0 && w.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed() {
        let mut a = Rng64::new(123);
        let mut b = Rng64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = Rng64::new(7);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut r = Rng64::new(99);
        let n = 50_000;
        let m: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((m - 0.5).abs() < 0.01, "mean {m}");
    }

    #[test]
    fn below_bounds_and_coverage() {
        let mut r = Rng64::new(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic]
    fn below_zero_panics() {
        Rng64::new(0).below(0);
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng64::new(2024);
        let n = 100_000;
        let draws: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut r = Rng64::new(11);
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng64::new(3);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut r = Rng64::new(17);
        let s = r.sample_indices(100, 20);
        assert_eq!(s.len(), 20);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_indices_caps_at_n() {
        let mut r = Rng64::new(17);
        assert_eq!(r.sample_indices(3, 10).len(), 3);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = Rng64::new(21);
        let w = [0.0, 1.0, 0.0, 3.0];
        let mut counts = [0usize; 4];
        for _ in 0..20_000 {
            counts[r.weighted_index(&w).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[2], 0);
        let ratio = counts[3] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_degenerate() {
        let mut r = Rng64::new(1);
        assert_eq!(r.weighted_index(&[]), None);
        assert_eq!(r.weighted_index(&[0.0, 0.0]), None);
        assert_eq!(r.weighted_index(&[f64::NAN]), None);
    }

    #[test]
    fn fork_streams_are_independent_of_parent_use() {
        let mut a = Rng64::new(5);
        let mut fork_a = a.fork(1);
        let mut b = Rng64::new(5);
        let mut fork_b = b.fork(1);
        assert_eq!(fork_a.next_u64(), fork_b.next_u64());
        // Different stream ids give different streams.
        let mut c = Rng64::new(5);
        let mut fork_c = c.fork(2);
        let mut d = Rng64::new(5);
        let mut fork_d = d.fork(1);
        assert_ne!(fork_c.next_u64(), fork_d.next_u64());
    }
}
