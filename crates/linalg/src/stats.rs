//! Statistical kernels: means, variances, z-scoring, Pearson correlation.
//!
//! These implement the paper's §3.1.1 data path: time-series matrices are
//! z-score normalized and turned into Pearson correlation ("co-firing")
//! matrices, and the attack's final matching step correlates subject columns
//! across reduced group matrices.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::par::{self, DisjointMut};
use crate::vector::{dot, dot_f32_f64};
use crate::Result;

/// Minimum element count before `zscore_rows` spreads rows over threads;
/// z-scoring is two cheap streaming passes, so the bar is low but nonzero.
const ZSCORE_PAR_THRESHOLD: usize = 1 << 16;

/// Edge of the square row-pair blocks `correlation_matrix` tiles the upper
/// triangle into. 32 × 32 output blocks over a shared `regions × time`
/// operand keep both row streams cache-resident.
const CORR_TILE: usize = 32;

/// Minimum multiply-add count before `correlation_matrix` goes parallel.
const CORR_PAR_THRESHOLD: usize = 1 << 20;

/// Minimum multiply-add count before `cross_correlation` goes parallel.
const CROSS_PAR_THRESHOLD: usize = 1 << 20;

/// Minimum element count before the masked (NaN-aware) cross-correlation
/// spreads output rows over threads. The masked kernel does per-pair work,
/// so the bar matches the dense kernel's.
const MASKED_PAR_THRESHOLD: usize = 1 << 20;

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Used by the preprocessing QC metrics to summarize long voxel time series
/// in one pass without storing them.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// New, empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (÷ n). 0 when fewer than one observation.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (÷ n−1). 0 when fewer than two observations.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }
}

/// Mean of a slice (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    crate::vector::mean(xs)
}

/// Population variance of a slice (÷ n, 0 for empty).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Z-scores a slice in place: subtract the mean, divide by the population
/// standard deviation. A constant (zero-variance) series becomes all zeros
/// rather than NaN — constant voxel series are common at brain-mask edges
/// and must not poison downstream correlations.
pub fn zscore_in_place(xs: &mut [f64]) {
    let m = mean(xs);
    let s = std_dev(xs);
    if s <= f64::EPSILON * m.abs().max(1.0) {
        for x in xs.iter_mut() {
            *x = 0.0;
        }
        return;
    }
    let inv = 1.0 / s;
    for x in xs.iter_mut() {
        *x = (*x - m) * inv;
    }
}

/// NaN-aware z-scoring: normalizes the *finite* entries of a slice by their
/// own mean and population standard deviation, leaving non-finite entries
/// untouched (NaN stays NaN, so downstream masked kernels still see which
/// observations are missing).
///
/// On a fully finite slice this takes exactly the [`zscore_in_place`] code
/// path, so the masked and dense kernels are bit-identical on clean data —
/// the contract the `Mask` degradation policy rests on. Degenerate cases
/// follow the dense conventions: fewer than one finite entry is a no-op, and
/// a constant finite subset becomes zeros.
pub fn zscore_masked_in_place(xs: &mut [f64]) {
    if xs.iter().all(|x| x.is_finite()) {
        zscore_in_place(xs);
        return;
    }
    let mut n = 0usize;
    let mut sum = 0.0;
    for &x in xs.iter() {
        if x.is_finite() {
            n += 1;
            sum += x;
        }
    }
    if n == 0 {
        return;
    }
    let m = sum / n as f64;
    let mut ss = 0.0;
    for &x in xs.iter() {
        if x.is_finite() {
            ss += (x - m) * (x - m);
        }
    }
    let s = (ss / n as f64).sqrt();
    if s <= f64::EPSILON * m.abs().max(1.0) {
        for x in xs.iter_mut() {
            if x.is_finite() {
                *x = 0.0;
            }
        }
        return;
    }
    let inv = 1.0 / s;
    for x in xs.iter_mut() {
        if x.is_finite() {
            *x = (*x - m) * inv;
        }
    }
}

/// Masked analogue of [`zscore_rows`]: every row is z-scored over its finite
/// entries via [`zscore_masked_in_place`]; non-finite entries survive as NaN
/// markers. Bit-identical to [`zscore_rows`] on a fully finite matrix.
pub fn zscore_rows_masked(m: &mut Matrix) {
    let cols = m.cols();
    if cols == 0 {
        return;
    }
    par::par_chunks_mut(m.as_mut_slice(), cols, 2, ZSCORE_PAR_THRESHOLD, |_, row| {
        zscore_masked_in_place(row)
    });
}

/// Z-scores every row of a matrix in place (each row treated as one series).
///
/// Rows are independent, so this parallelizes one row per chunk; each row is
/// normalized by the same sequential two-pass kernel at any thread count.
pub fn zscore_rows(m: &mut Matrix) {
    let cols = m.cols();
    if cols == 0 {
        return;
    }
    par::par_chunks_mut(m.as_mut_slice(), cols, 2, ZSCORE_PAR_THRESHOLD, |_, row| {
        zscore_in_place(row)
    });
}

/// Pearson correlation coefficient of two equal-length series.
///
/// Returns an error on length mismatch or empty input. A zero-variance
/// series yields correlation `0.0` (no linear association measurable),
/// matching the convention used for constant parcels.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64> {
    if x.len() != y.len() {
        return Err(LinalgError::DimensionMismatch {
            op: "pearson",
            lhs: (1, x.len()),
            rhs: (1, y.len()),
        });
    }
    if x.is_empty() {
        return Err(LinalgError::EmptyMatrix { op: "pearson" });
    }
    let mx = mean(x);
    let my = mean(y);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return Ok(0.0);
    }
    // Clamp to [-1, 1]: rounding can push |r| epsilon past 1.
    Ok((sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0))
}

/// Row-by-row Pearson correlation matrix of `m` (rows are series).
///
/// For a `regions × time` matrix this produces the `regions × regions`
/// functional connectome of §3.1.1. Implemented by z-scoring a copy of the
/// rows and taking a scaled Gram product, so the heavy lifting is one
/// matmul rather than `n²/2` pair scans.
pub fn correlation_matrix(m: &Matrix) -> Result<Matrix> {
    let _span = neurodeanon_obs::span("stats.corr_matrix");
    if m.is_empty() {
        return Err(LinalgError::EmptyMatrix {
            op: "correlation_matrix",
        });
    }
    if m.cols() < 2 {
        return Err(LinalgError::InvalidParameter {
            name: "time points",
            reason: "need at least 2 samples per series for correlation",
        });
    }
    let mut z = m.clone();
    zscore_rows(&mut z);
    // corr = Z Zᵀ / T  (population normalization matches zscore_in_place).
    // Symmetry means only the upper triangle is computed: the triangle is
    // tiled into fixed CORR_TILE × CORR_TILE row-pair blocks, each block
    // writing a disjoint region of the output, so block scheduling cannot
    // change a single bit.
    let n = z.rows();
    let t_len = z.cols();
    let inv_t = 1.0 / t_len as f64;
    let n_blocks = n.div_ceil(CORR_TILE);
    let mut blocks: Vec<(usize, usize)> = Vec::with_capacity(n_blocks * (n_blocks + 1) / 2);
    for bi in 0..n_blocks {
        for bj in bi..n_blocks {
            blocks.push((bi, bj));
        }
    }
    let mut c = Matrix::zeros(n, n);
    {
        let zref = &z;
        let cdata = DisjointMut::new(c.as_mut_slice());
        par::par_tiles(
            blocks.len(),
            1,
            CORR_TILE * CORR_TILE * t_len,
            CORR_PAR_THRESHOLD,
            |tile| {
                for &(bi, bj) in &blocks[tile.range()] {
                    let (i0, i1) = (bi * CORR_TILE, ((bi + 1) * CORR_TILE).min(n));
                    let (j0, j1) = (bj * CORR_TILE, ((bj + 1) * CORR_TILE).min(n));
                    for i in i0..i1 {
                        let jlo = j0.max(i);
                        if jlo >= j1 {
                            continue;
                        }
                        let zi = zref.row(i);
                        // SAFETY: block (bi, bj) exclusively owns the
                        // upper-triangle output range [i*n+jlo, i*n+j1).
                        let crow = unsafe { cdata.slice(i * n + jlo, j1 - jlo) };
                        for (o, j) in crow.iter_mut().zip(jlo..j1) {
                            *o = dot(zi, zref.row(j)) * inv_t;
                        }
                    }
                }
            },
        );
    }
    // Sequential fixup: exact ones on the diagonal, clamp rounding noise
    // elsewhere, mirror the upper triangle into the lower.
    for i in 0..n {
        for j in i..n {
            let v = c[(i, j)].clamp(-1.0, 1.0);
            let v = if i == j {
                // A zero-variance row z-scored to zeros has self-corr 0.
                if v == 0.0 {
                    0.0
                } else {
                    1.0
                }
            } else {
                v
            };
            c[(i, j)] = v;
            c[(j, i)] = v;
        }
    }
    Ok(c)
}

/// Pearson correlation between every column of `a` and every column of `b`.
///
/// Output is `a.cols() × b.cols()`; entry `(i, j)` is the correlation of
/// `a[:, i]` with `b[:, j]`. This is the attack's cross-dataset similarity
/// matrix (Figure 1/2): columns are subjects, rows are the retained features.
pub fn cross_correlation(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    let _span = neurodeanon_obs::span("stats.xcorr");
    if a.rows() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "cross_correlation",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if a.is_empty() || b.is_empty() {
        return Err(LinalgError::EmptyMatrix {
            op: "cross_correlation",
        });
    }
    // Z-score columns of both (as rows of the transposes, prepared on two
    // threads — the operands are independent), then out = Aᵀ B / rows.
    let (az, bz) = par::par_join(
        || {
            let mut az = Matrix::zeros(0, 0);
            zscored_cols_into(a, &mut az);
            az
        },
        || {
            let mut bz = Matrix::zeros(0, 0);
            zscored_cols_into(b, &mut bz);
            bz
        },
    );
    let mut out = Matrix::zeros(0, 0);
    cross_correlation_zscored_into(&az, &bz, &mut out)?;
    Ok(out)
}

/// Writes the z-scored columns of `a` into `out` as rows (`out` becomes
/// `a.cols() × a.rows()`), reusing `out`'s allocation.
///
/// This is the preparation half of [`cross_correlation`], split out so a
/// sweep can z-score its de-anonymized operand once and hold the result
/// while many anonymous operands stream through the other side.
pub fn zscored_cols_into(a: &Matrix, out: &mut Matrix) {
    let _span = neurodeanon_obs::span("stats.zscore_cols");
    a.transpose_into(out);
    zscore_rows(out);
}

/// The product half of [`cross_correlation`]: given operands already
/// prepared by [`zscored_cols_into`] (rows are z-scored subject series of a
/// common length), writes the subject-by-subject Pearson matrix
/// (`az.rows() × bz.rows()`) into `out`, reusing `out`'s allocation.
///
/// Calling `zscored_cols_into` on both operands and then this function is
/// bit-identical to [`cross_correlation`] — same kernels, same order — so
/// caching the prepared side of a sweep cannot change a single result.
pub fn cross_correlation_zscored_into(az: &Matrix, bz: &Matrix, out: &mut Matrix) -> Result<()> {
    let _span = neurodeanon_obs::span("stats.xcorr_zscored");
    if az.cols() != bz.cols() {
        return Err(LinalgError::DimensionMismatch {
            op: "cross_correlation",
            lhs: az.shape(),
            rhs: bz.shape(),
        });
    }
    if az.is_empty() || bz.is_empty() {
        return Err(LinalgError::EmptyMatrix {
            op: "cross_correlation",
        });
    }
    let t_len = az.cols();
    let inv = 1.0 / t_len as f64;
    let bcols = bz.rows();
    out.reshape_for_overwrite(az.rows(), bcols);
    // One output row per chunk: row i correlates subject i of `a` against
    // every subject of `b`, reading shared z-scored operands and writing a
    // disjoint row — the similarity matrix the matching step consumes.
    par::par_chunks_mut(
        out.as_mut_slice(),
        bcols,
        t_len,
        CROSS_PAR_THRESHOLD,
        |i, orow| {
            let ai = az.row(i);
            for (j, o) in orow.iter_mut().enumerate() {
                *o = (dot(ai, bz.row(j)) * inv).clamp(-1.0, 1.0);
            }
        },
    );
    Ok(())
}

/// Fused query-path kernel: transposes + z-scores the columns of `b` and
/// correlates them against the pre-z-scored rows of `az`, in one pass per
/// query column.
///
/// Semantically `zscored_cols_into(b, bz)` followed by
/// [`cross_correlation_zscored_into`]`(az, bz, out)` — and **bit-identical**
/// to that composition: the transpose is an exact copy, each query row is
/// normalized by the same sequential [`zscore_in_place`] kernel, and every
/// output element is the same `(dot · 1/t).clamp(±1)` expression in the same
/// order. The fusion changes *when* the work happens, not what it computes:
/// a query column is z-scored and immediately consumed for its `az.rows()`
/// dot products while still cache-hot, instead of being written out in a
/// z-scoring pass and re-read in a correlation pass. `bz` still receives the
/// z-scored queries (it is the steady-state scratch the attack plan reuses).
///
/// Parallelism is over query columns (each owns one column of `out`, written
/// through [`DisjointMut`]); the determinism contract holds because each
/// element's value depends only on its own row/column operands.
pub fn cross_correlation_fused_into(
    az: &Matrix,
    b: &Matrix,
    bz: &mut Matrix,
    out: &mut Matrix,
) -> Result<()> {
    let _span = neurodeanon_obs::span("stats.xcorr_fused");
    if az.cols() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "cross_correlation",
            lhs: az.shape(),
            rhs: (b.cols(), b.rows()),
        });
    }
    if az.is_empty() || b.is_empty() {
        return Err(LinalgError::EmptyMatrix {
            op: "cross_correlation",
        });
    }
    let n_a = az.rows();
    let t_len = az.cols();
    let q = b.cols();
    let inv = 1.0 / t_len as f64;
    b.transpose_into(bz);
    out.reshape_for_overwrite(n_a, q);
    let odata = DisjointMut::new(out.as_mut_slice());
    par::par_chunks_mut(
        bz.as_mut_slice(),
        t_len,
        n_a.max(2),
        CROSS_PAR_THRESHOLD,
        |j, brow| {
            zscore_in_place(brow);
            for i in 0..n_a {
                let v = (dot(az.row(i), brow) * inv).clamp(-1.0, 1.0);
                // SAFETY: query j exclusively owns output column j.
                unsafe { *odata.get(i * q + j) = v };
            }
        },
    );
    Ok(())
}

/// The f32-gallery variant of [`cross_correlation_fused_into`]: the prepared
/// known side is stored as an `a_rows × t` row-major `f32` slice (converted
/// once at plan-preparation time), queries stay `f64`, and every dot product
/// **accumulates in f64** (each `f32` gallery element is widened exactly, so
/// the only precision loss is the one-time `f64 → f32` rounding of the
/// stored gallery).
///
/// Determinism: bit-identical at any thread count for the same reasons as
/// the f64 kernel — per-dtype bit-identity is the contract; f32-vs-f64
/// *agreement* is bounded statistically by the property suite, not exactly.
pub fn cross_correlation_fused_f32_into(
    az: &[f32],
    a_rows: usize,
    b: &Matrix,
    bz: &mut Matrix,
    out: &mut Matrix,
) -> Result<()> {
    let _span = neurodeanon_obs::span("stats.xcorr_fused_f32");
    let t_len = az.len().checked_div(a_rows).unwrap_or(0);
    if a_rows == 0 || az.len() != a_rows * t_len || t_len != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "cross_correlation",
            lhs: (a_rows, t_len),
            rhs: (b.cols(), b.rows()),
        });
    }
    if az.is_empty() || b.is_empty() {
        return Err(LinalgError::EmptyMatrix {
            op: "cross_correlation",
        });
    }
    let q = b.cols();
    let inv = 1.0 / t_len as f64;
    b.transpose_into(bz);
    out.reshape_for_overwrite(a_rows, q);
    let odata = DisjointMut::new(out.as_mut_slice());
    par::par_chunks_mut(
        bz.as_mut_slice(),
        t_len,
        a_rows.max(2),
        CROSS_PAR_THRESHOLD,
        |j, brow| {
            zscore_in_place(brow);
            for i in 0..a_rows {
                let ai = &az[i * t_len..(i + 1) * t_len];
                let v = (dot_f32_f64(ai, brow) * inv).clamp(-1.0, 1.0);
                // SAFETY: query j exclusively owns output column j.
                unsafe { *odata.get(i * q + j) = v };
            }
        },
    );
    Ok(())
}

/// Batched serve-path kernel: correlates `queries.len()` already-reduced
/// query rows (each of length `az.cols()`) against the pre-z-scored gallery
/// rows of `az` in one fused z-score + GEMM pass — the `t×n_known · t×Q`
/// product of the attack-as-a-service batch path.
///
/// This is [`cross_correlation_fused_into`] with the transpose peeled off:
/// the fused kernel receives queries as *columns* of a `t × Q` matrix and
/// copies them into rows of `bz`; here the queries already arrive as rows
/// and are copied into `bz` directly. A transpose is an exact element copy,
/// so output column `j` is **bit-identical** to the fused kernel run on a
/// matrix whose `j`-th column is `queries[j]` — and therefore bit-identical
/// to running query `j` alone through the per-query path: each column is
/// produced by the same sequential [`zscore_in_place`] + `(dot · 1/t)`
/// `.clamp(±1)` expressions, and depends on no other column of the batch.
/// Batch packing, batch order, and thread count cannot change a bit.
///
/// Errors on an empty gallery, an empty batch, or any query whose length
/// differs from `az.cols()` (mid-stream gallery-shape changes surface here
/// as a typed error, never as a slice panic).
pub fn cross_correlation_batched_into(
    az: &Matrix,
    queries: &[&[f64]],
    bz: &mut Matrix,
    out: &mut Matrix,
) -> Result<()> {
    let _span = neurodeanon_obs::span("stats.xcorr_batched");
    let t_len = az.cols();
    if az.is_empty() {
        return Err(LinalgError::EmptyMatrix {
            op: "cross_correlation_batched",
        });
    }
    if queries.is_empty() {
        return Err(LinalgError::InvalidParameter {
            name: "queries",
            reason: "batch must contain at least one query",
        });
    }
    for q in queries {
        if q.len() != t_len {
            return Err(LinalgError::DimensionMismatch {
                op: "cross_correlation_batched",
                lhs: az.shape(),
                rhs: (1, q.len()),
            });
        }
    }
    let n_a = az.rows();
    let q_count = queries.len();
    let inv = 1.0 / t_len as f64;
    bz.reshape_for_overwrite(q_count, t_len);
    for (row, q) in queries.iter().enumerate() {
        bz.row_mut(row).copy_from_slice(q);
    }
    out.reshape_for_overwrite(n_a, q_count);
    let odata = DisjointMut::new(out.as_mut_slice());
    par::par_chunks_mut(
        bz.as_mut_slice(),
        t_len,
        n_a.max(2),
        CROSS_PAR_THRESHOLD,
        |j, brow| {
            zscore_in_place(brow);
            for i in 0..n_a {
                let v = (dot(az.row(i), brow) * inv).clamp(-1.0, 1.0);
                // SAFETY: query j exclusively owns output column j.
                unsafe { *odata.get(i * q_count + j) = v };
            }
        },
    );
    Ok(())
}

/// The f32-gallery variant of [`cross_correlation_batched_into`]: the
/// prepared known side is an `a_rows × t` row-major `f32` slice, queries
/// stay `f64`, dots accumulate in f64 — the same storage/accumulation
/// contract as [`cross_correlation_fused_f32_into`], to which each output
/// column is bit-identical for the same query.
pub fn cross_correlation_batched_f32_into(
    az: &[f32],
    a_rows: usize,
    queries: &[&[f64]],
    bz: &mut Matrix,
    out: &mut Matrix,
) -> Result<()> {
    let _span = neurodeanon_obs::span("stats.xcorr_batched_f32");
    let t_len = az.len().checked_div(a_rows).unwrap_or(0);
    if a_rows == 0 || az.is_empty() || az.len() != a_rows * t_len {
        return Err(LinalgError::DimensionMismatch {
            op: "cross_correlation_batched",
            lhs: (a_rows, t_len),
            rhs: (0, 0),
        });
    }
    if queries.is_empty() {
        return Err(LinalgError::InvalidParameter {
            name: "queries",
            reason: "batch must contain at least one query",
        });
    }
    for q in queries {
        if q.len() != t_len {
            return Err(LinalgError::DimensionMismatch {
                op: "cross_correlation_batched",
                lhs: (a_rows, t_len),
                rhs: (1, q.len()),
            });
        }
    }
    let q_count = queries.len();
    let inv = 1.0 / t_len as f64;
    bz.reshape_for_overwrite(q_count, t_len);
    for (row, q) in queries.iter().enumerate() {
        bz.row_mut(row).copy_from_slice(q);
    }
    out.reshape_for_overwrite(a_rows, q_count);
    let odata = DisjointMut::new(out.as_mut_slice());
    par::par_chunks_mut(
        bz.as_mut_slice(),
        t_len,
        a_rows.max(2),
        CROSS_PAR_THRESHOLD,
        |j, brow| {
            zscore_in_place(brow);
            for i in 0..a_rows {
                let ai = &az[i * t_len..(i + 1) * t_len];
                let v = (dot_f32_f64(ai, brow) * inv).clamp(-1.0, 1.0);
                // SAFETY: query j exclusively owns output column j.
                unsafe { *odata.get(i * q_count + j) = v };
            }
        },
    );
    Ok(())
}

/// Pairwise-complete Pearson correlation: correlates two equal-length
/// series over the observations where **both** are finite.
///
/// Returns `Ok(None)` when fewer than `min_overlap` complete pairs exist —
/// the documented fallback for series whose missing-data patterns barely
/// overlap: no correlation is measurable, and pretending otherwise would
/// inject an arbitrary number into the similarity matrix. Length mismatch
/// and empty input error like [`pearson`]. On fully finite input with
/// `min_overlap <= len` this is exactly [`pearson`] (same kernel).
pub fn pearson_masked(x: &[f64], y: &[f64], min_overlap: usize) -> Result<Option<f64>> {
    if x.len() != y.len() {
        return Err(LinalgError::DimensionMismatch {
            op: "pearson_masked",
            lhs: (1, x.len()),
            rhs: (1, y.len()),
        });
    }
    if x.is_empty() {
        return Err(LinalgError::EmptyMatrix {
            op: "pearson_masked",
        });
    }
    if x.iter().all(|v| v.is_finite()) && y.iter().all(|v| v.is_finite()) {
        return if x.len() < min_overlap {
            Ok(None)
        } else {
            pearson(x, y).map(Some)
        };
    }
    let mut xs = Vec::with_capacity(x.len());
    let mut ys = Vec::with_capacity(y.len());
    for (&a, &b) in x.iter().zip(y) {
        if a.is_finite() && b.is_finite() {
            xs.push(a);
            ys.push(b);
        }
    }
    if xs.len() < min_overlap.max(1) {
        return Ok(None);
    }
    pearson(&xs, &ys).map(Some)
}

/// NaN-aware analogue of [`cross_correlation`]: Pearson correlation between
/// every column of `a` and every column of `b` over pairwise-complete
/// observations (rows where both columns are finite).
///
/// Entries whose overlap is below `min_overlap` are `NaN` — "no measurable
/// similarity" — which the matching layer treats as an unusable candidate
/// rather than a confident score. Column pairs that are fully finite take
/// the same z-score + scaled-dot kernel as [`cross_correlation`], so on a
/// fully finite input the result is **bit-identical** to the dense path;
/// partially observed pairs are re-centered on their own overlap
/// (pairwise-complete Pearson, exact, not an approximation from the global
/// z-scores).
pub fn cross_correlation_masked(a: &Matrix, b: &Matrix, min_overlap: usize) -> Result<Matrix> {
    let _span = neurodeanon_obs::span("stats.xcorr_masked");
    if a.rows() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "cross_correlation_masked",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if a.is_empty() || b.is_empty() {
        return Err(LinalgError::EmptyMatrix {
            op: "cross_correlation_masked",
        });
    }
    // Operate on transposed copies (rows = subject series): raw for the
    // pairwise-complete entries, masked-z-scored for the dense fast path.
    let (at, bt) = par::par_join(|| a.transpose(), || b.transpose());
    let (az, bz) = par::par_join(
        || {
            let mut az = at.clone();
            zscore_rows_masked(&mut az);
            az
        },
        || {
            let mut bz = bt.clone();
            zscore_rows_masked(&mut bz);
            bz
        },
    );
    let a_finite: Vec<bool> = (0..at.rows())
        .map(|i| at.row(i).iter().all(|v| v.is_finite()))
        .collect();
    let b_finite: Vec<bool> = (0..bt.rows())
        .map(|j| bt.row(j).iter().all(|v| v.is_finite()))
        .collect();
    let t_len = at.cols();
    let inv = 1.0 / t_len as f64;
    let bcols = bt.rows();
    let mut out = Matrix::zeros(at.rows(), bcols);
    let (at, bt, az, bz) = (&at, &bt, &az, &bz);
    let (a_finite, b_finite) = (&a_finite, &b_finite);
    par::par_chunks_mut(
        out.as_mut_slice(),
        bcols,
        t_len,
        MASKED_PAR_THRESHOLD,
        |i, orow| {
            for (j, o) in orow.iter_mut().enumerate() {
                *o = if a_finite[i] && b_finite[j] {
                    if t_len < min_overlap {
                        f64::NAN
                    } else {
                        (dot(az.row(i), bz.row(j)) * inv).clamp(-1.0, 1.0)
                    }
                } else {
                    // Exact pairwise-complete Pearson on the raw series.
                    match pearson_masked(at.row(i), bt.row(j), min_overlap) {
                        Ok(Some(r)) => r,
                        // Overlap too small (or, unreachably here, a shape
                        // error): no measurable similarity.
                        _ => f64::NAN,
                    }
                };
            }
        },
    );
    Ok(out)
}

/// Replaces every non-finite cell of `m` with the mean of the *finite*
/// entries in its row (the group-level mean-imputation used by the
/// `Impute` degradation policy: a missing feature observation is replaced
/// by that feature's cohort average). Rows with no finite entry at all are
/// imputed to `0.0`. Returns the number of cells imputed.
pub fn impute_row_means(m: &mut Matrix) -> usize {
    let mut imputed = 0usize;
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let mut n = 0usize;
        let mut sum = 0.0;
        for &x in row.iter() {
            if x.is_finite() {
                n += 1;
                sum += x;
            }
        }
        if n == row.len() {
            continue;
        }
        let fill = if n == 0 { 0.0 } else { sum / n as f64 };
        for x in row.iter_mut() {
            if !x.is_finite() {
                *x = fill;
                imputed += 1;
            }
        }
    }
    imputed
}

/// Normalized root-mean-squared error, in percent, as used by Table 1.
///
/// `nRMSE = 100 · sqrt(mean((pred − truth)²)) / (max(truth) − min(truth))`.
/// Returns an error on length mismatch, empty input, or a constant truth
/// vector (zero range).
pub fn nrmse_percent(pred: &[f64], truth: &[f64]) -> Result<f64> {
    if pred.len() != truth.len() {
        return Err(LinalgError::DimensionMismatch {
            op: "nrmse",
            lhs: (1, pred.len()),
            rhs: (1, truth.len()),
        });
    }
    if truth.is_empty() {
        return Err(LinalgError::EmptyMatrix { op: "nrmse" });
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &t in truth {
        lo = lo.min(t);
        hi = hi.max(t);
    }
    let range = hi - lo;
    if range <= 0.0 {
        return Err(LinalgError::InvalidParameter {
            name: "truth",
            reason: "constant target vector has zero range",
        });
    }
    let mse = pred
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / truth.len() as f64;
    Ok(100.0 * mse.sqrt() / range)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_batch() {
        let xs = [1.0, 2.0, 4.0, 8.0, 16.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - mean(&xs)).abs() < 1e-12);
        assert!((w.variance() - variance(&xs)).abs() < 1e-12);
        assert_eq!(w.count(), 5);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.variance(), 0.0);
        w.push(3.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.mean(), 3.0);
    }

    #[test]
    fn zscore_normalizes() {
        let mut xs = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        zscore_in_place(&mut xs);
        assert!(mean(&xs).abs() < 1e-12);
        assert!((variance(&xs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zscore_constant_becomes_zero() {
        let mut xs = vec![7.0; 10];
        zscore_in_place(&mut xs);
        assert!(xs.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn pearson_perfect_positive_and_negative() {
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 4.0, 6.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let z = [3.0, 2.0, 1.0];
        assert!((pearson(&x, &z).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_shift_scale_invariant() {
        let x = [0.3, -1.2, 2.5, 0.0, 1.1];
        let y = [1.0, 0.2, -0.7, 0.9, 2.2];
        let r1 = pearson(&x, &y).unwrap();
        let xs: Vec<f64> = x.iter().map(|v| 3.0 * v + 10.0).collect();
        let r2 = pearson(&xs, &y).unwrap();
        assert!((r1 - r2).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_series_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).unwrap(), 0.0);
    }

    #[test]
    fn pearson_errors() {
        assert!(pearson(&[1.0], &[1.0, 2.0]).is_err());
        assert!(pearson(&[], &[]).is_err());
    }

    #[test]
    fn correlation_matrix_diagonal_ones() {
        let m = Matrix::from_rows(&[
            &[1.0, 2.0, 3.0, 4.0],
            &[4.0, 3.0, 2.0, 1.0],
            &[1.0, -1.0, 1.0, -1.0],
        ])
        .unwrap();
        let c = correlation_matrix(&m).unwrap();
        assert_eq!(c.shape(), (3, 3));
        for i in 0..3 {
            assert!((c[(i, i)] - 1.0).abs() < 1e-12);
        }
        assert!((c[(0, 1)] + 1.0).abs() < 1e-9);
        // Symmetry.
        for i in 0..3 {
            for j in 0..3 {
                assert!((c[(i, j)] - c[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn correlation_matrix_matches_pairwise_pearson() {
        let m = Matrix::from_fn(5, 30, |r, c| {
            ((r * 7 + c * 13) % 11) as f64 + (c as f64 * 0.1)
        });
        let cm = correlation_matrix(&m).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                let p = pearson(m.row(i), m.row(j)).unwrap();
                assert!((cm[(i, j)] - p).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn correlation_matrix_rejects_single_sample() {
        let m = Matrix::zeros(3, 1);
        assert!(correlation_matrix(&m).is_err());
    }

    #[test]
    fn cross_correlation_self_diag_is_one() {
        let a = Matrix::from_fn(20, 4, |r, c| ((r * (c + 2)) % 7) as f64 - 3.0);
        let x = cross_correlation(&a, &a).unwrap();
        for i in 0..4 {
            assert!((x[(i, i)] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn cross_correlation_matches_pearson_on_columns() {
        let a = Matrix::from_fn(15, 3, |r, c| ((r + c * 5) % 6) as f64);
        let b = Matrix::from_fn(15, 2, |r, c| ((r * 2 + c) % 5) as f64);
        let x = cross_correlation(&a, &b).unwrap();
        for i in 0..3 {
            for j in 0..2 {
                let p = pearson(&a.col(i), &b.col(j)).unwrap();
                assert!((x[(i, j)] - p).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn split_cross_correlation_is_bit_identical() {
        // The workspace path (prepare each side, multiply into scratch) must
        // reproduce cross_correlation exactly — this is the contract the
        // attack plan's cached known side rests on.
        let a = Matrix::from_fn(40, 6, |r, c| ((r * 3 + c * 7) % 13) as f64 - 6.0);
        let b = Matrix::from_fn(40, 5, |r, c| ((r * 5 + c * 11) % 9) as f64 - 4.0);
        let direct = cross_correlation(&a, &b).unwrap();
        let mut az = Matrix::filled(3, 3, 9.0); // dirty scratch
        let mut bz = Matrix::filled(1, 7, -2.0);
        let mut out = Matrix::zeros(2, 2);
        zscored_cols_into(&a, &mut az);
        zscored_cols_into(&b, &mut bz);
        cross_correlation_zscored_into(&az, &bz, &mut out).unwrap();
        assert_eq!(out.shape(), direct.shape());
        for (x, y) in out.as_slice().iter().zip(direct.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn fused_cross_correlation_is_bit_identical_to_split() {
        // The fused query kernel must reproduce the split path (transpose +
        // z-score, then correlate) exactly — this is the contract that lets
        // the attack plan's steady-state path fuse without changing a bit.
        let a = Matrix::from_fn(43, 7, |r, c| ((r * 3 + c * 7) % 13) as f64 - 6.0);
        let b = Matrix::from_fn(43, 5, |r, c| ((r * 5 + c * 11) % 9) as f64 - 4.0);
        let mut az = Matrix::zeros(0, 0);
        zscored_cols_into(&a, &mut az);
        let mut bz_split = Matrix::zeros(0, 0);
        let mut split = Matrix::zeros(0, 0);
        zscored_cols_into(&b, &mut bz_split);
        cross_correlation_zscored_into(&az, &bz_split, &mut split).unwrap();
        let mut bz_fused = Matrix::filled(2, 9, 3.0); // dirty scratch
        let mut fused = Matrix::filled(1, 4, -5.0);
        cross_correlation_fused_into(&az, &b, &mut bz_fused, &mut fused).unwrap();
        assert_eq!(fused.shape(), split.shape());
        for (x, y) in fused.as_slice().iter().zip(split.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // The scratch receives the same z-scored queries as the split path.
        assert_eq!(bz_fused.shape(), bz_split.shape());
        for (x, y) in bz_fused.as_slice().iter().zip(bz_split.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn fused_cross_correlation_rejects_mismatch_and_empty() {
        let az = Matrix::zeros(3, 10);
        let b = Matrix::zeros(9, 4);
        let mut bz = Matrix::zeros(0, 0);
        let mut out = Matrix::zeros(0, 0);
        assert!(cross_correlation_fused_into(&az, &b, &mut bz, &mut out).is_err());
        let empty = Matrix::zeros(0, 0);
        assert!(cross_correlation_fused_into(&empty, &b, &mut bz, &mut out).is_err());
    }

    #[test]
    fn fused_f32_close_to_f64_and_deterministic() {
        let a = Matrix::from_fn(60, 6, |r, c| ((r * 3 + c * 7) % 13) as f64 * 0.17 - 1.0);
        let b = Matrix::from_fn(60, 4, |r, c| ((r * 5 + c * 11) % 9) as f64 * 0.31 - 1.2);
        let mut az = Matrix::zeros(0, 0);
        zscored_cols_into(&a, &mut az);
        let az32: Vec<f32> = az.as_slice().iter().map(|&v| v as f32).collect();
        let mut bz = Matrix::zeros(0, 0);
        let mut out64 = Matrix::zeros(0, 0);
        cross_correlation_fused_into(&az, &b, &mut bz, &mut out64).unwrap();
        let mut out32 = Matrix::zeros(0, 0);
        cross_correlation_fused_f32_into(&az32, az.rows(), &b, &mut bz, &mut out32).unwrap();
        assert_eq!(out32.shape(), out64.shape());
        for (x, y) in out32.as_slice().iter().zip(out64.as_slice()) {
            // Correlations are O(1); f32 storage rounding perturbs them by
            // at most ~len·2⁻²⁴ relative noise.
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
        // Bad gallery geometry is a typed error, not a panic.
        assert!(
            cross_correlation_fused_f32_into(&az32, 7, &b, &mut bz, &mut out32).is_err()
                || az.rows() == 7
        );
    }

    #[test]
    fn batched_cross_correlation_is_bit_identical_to_fused() {
        // The serve batch path must reproduce the fused query kernel exactly,
        // column by column: batched(Q queries) == fused(t × Q matrix), and
        // each column == fused on that query alone. This is the contract the
        // match server's batching rests on.
        let a = Matrix::from_fn(37, 6, |r, c| ((r * 3 + c * 7) % 13) as f64 - 6.0);
        let b = Matrix::from_fn(37, 5, |r, c| ((r * 5 + c * 11) % 9) as f64 - 4.0);
        let mut az = Matrix::zeros(0, 0);
        zscored_cols_into(&a, &mut az);
        let mut bz = Matrix::zeros(0, 0);
        let mut fused = Matrix::zeros(0, 0);
        cross_correlation_fused_into(&az, &b, &mut bz, &mut fused).unwrap();
        let cols: Vec<Vec<f64>> = (0..b.cols()).map(|j| b.col(j)).collect();
        let queries: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let mut bz_b = Matrix::filled(2, 9, 3.0); // dirty scratch
        let mut batched = Matrix::filled(1, 4, -5.0);
        cross_correlation_batched_into(&az, &queries, &mut bz_b, &mut batched).unwrap();
        assert_eq!(batched.shape(), fused.shape());
        for (x, y) in batched.as_slice().iter().zip(fused.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // Singleton batches reproduce their fused column too.
        for (j, q) in queries.iter().enumerate() {
            let mut solo = Matrix::zeros(0, 0);
            cross_correlation_batched_into(&az, &[q], &mut bz_b, &mut solo).unwrap();
            for i in 0..az.rows() {
                assert_eq!(solo[(i, 0)].to_bits(), fused[(i, j)].to_bits());
            }
        }
    }

    #[test]
    fn batched_f32_matches_fused_f32() {
        let a = Matrix::from_fn(50, 5, |r, c| ((r * 3 + c * 7) % 13) as f64 * 0.17 - 1.0);
        let b = Matrix::from_fn(50, 4, |r, c| ((r * 5 + c * 11) % 9) as f64 * 0.31 - 1.2);
        let mut az = Matrix::zeros(0, 0);
        zscored_cols_into(&a, &mut az);
        let az32: Vec<f32> = az.as_slice().iter().map(|&v| v as f32).collect();
        let mut bz = Matrix::zeros(0, 0);
        let mut fused = Matrix::zeros(0, 0);
        cross_correlation_fused_f32_into(&az32, az.rows(), &b, &mut bz, &mut fused).unwrap();
        let cols: Vec<Vec<f64>> = (0..b.cols()).map(|j| b.col(j)).collect();
        let queries: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let mut batched = Matrix::zeros(0, 0);
        cross_correlation_batched_f32_into(&az32, az.rows(), &queries, &mut bz, &mut batched)
            .unwrap();
        assert_eq!(batched.shape(), fused.shape());
        for (x, y) in batched.as_slice().iter().zip(fused.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn batched_cross_correlation_typed_errors() {
        let a = Matrix::from_fn(12, 3, |r, c| (r + c) as f64);
        let mut az = Matrix::zeros(0, 0);
        zscored_cols_into(&a, &mut az);
        let mut bz = Matrix::zeros(0, 0);
        let mut out = Matrix::zeros(0, 0);
        // Empty batch.
        assert!(cross_correlation_batched_into(&az, &[], &mut bz, &mut out).is_err());
        // Wrong-length query (mid-stream gallery-shape change).
        let short = vec![1.0; az.cols() - 1];
        let good = vec![1.0; az.cols()];
        assert!(cross_correlation_batched_into(
            &az,
            &[good.as_slice(), short.as_slice()],
            &mut bz,
            &mut out
        )
        .is_err());
        // Empty gallery.
        let empty = Matrix::zeros(0, 0);
        assert!(
            cross_correlation_batched_into(&empty, &[good.as_slice()], &mut bz, &mut out).is_err()
        );
        let az32: Vec<f32> = az.as_slice().iter().map(|&v| v as f32).collect();
        assert!(cross_correlation_batched_f32_into(
            &az32,
            0,
            &[good.as_slice()],
            &mut bz,
            &mut out
        )
        .is_err());
        assert!(cross_correlation_batched_f32_into(
            &az32,
            az.rows(),
            &[short.as_slice()],
            &mut bz,
            &mut out
        )
        .is_err());
    }

    #[test]
    fn cross_correlation_zscored_rejects_mismatch_and_empty() {
        let az = Matrix::zeros(3, 10);
        let bz = Matrix::zeros(4, 9);
        let mut out = Matrix::zeros(0, 0);
        assert!(cross_correlation_zscored_into(&az, &bz, &mut out).is_err());
        let empty = Matrix::zeros(0, 0);
        assert!(cross_correlation_zscored_into(&empty, &az, &mut out).is_err());
    }

    #[test]
    fn cross_correlation_shape_mismatch() {
        let a = Matrix::zeros(5, 2);
        let b = Matrix::zeros(6, 2);
        assert!(cross_correlation(&a, &b).is_err());
    }

    #[test]
    fn zscore_masked_matches_dense_on_finite() {
        let mut a = vec![0.3, -1.2, 2.5, 0.0, 1.1, 4.4];
        let mut b = a.clone();
        zscore_in_place(&mut a);
        zscore_masked_in_place(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn zscore_masked_ignores_nan() {
        let mut xs = vec![1.0, f64::NAN, 2.0, 3.0, f64::NAN, 4.0, 5.0];
        zscore_masked_in_place(&mut xs);
        assert!(xs[1].is_nan() && xs[4].is_nan());
        let finite: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
        assert!(mean(&finite).abs() < 1e-12);
        assert!((variance(&finite) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zscore_masked_constant_and_empty_support() {
        let mut xs = vec![7.0, f64::NAN, 7.0, 7.0];
        zscore_masked_in_place(&mut xs);
        assert_eq!(&xs[..1], &[0.0]);
        assert!(xs[1].is_nan());
        let mut none = vec![f64::NAN, f64::NAN];
        zscore_masked_in_place(&mut none);
        assert!(none.iter().all(|x| x.is_nan()));
    }

    #[test]
    fn pearson_masked_matches_pearson_on_finite() {
        let x = [0.3, -1.2, 2.5, 0.0, 1.1];
        let y = [1.0, 0.2, -0.7, 0.9, 2.2];
        let dense = pearson(&x, &y).unwrap();
        let masked = pearson_masked(&x, &y, 4).unwrap().unwrap();
        assert_eq!(dense.to_bits(), masked.to_bits());
    }

    #[test]
    fn pearson_masked_uses_pairwise_complete_overlap() {
        // NaN in either series drops that observation from both.
        let x = [1.0, 2.0, f64::NAN, 3.0, 4.0, 5.0];
        let y = [2.0, 4.0, 1.0, f64::NAN, 8.0, 10.0];
        let r = pearson_masked(&x, &y, 2).unwrap().unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_masked_small_overlap_is_none() {
        let x = [1.0, f64::NAN, f64::NAN, 4.0];
        let y = [f64::NAN, 2.0, 3.0, 8.0];
        assert_eq!(pearson_masked(&x, &y, 2).unwrap(), None);
        assert!(pearson_masked(&x, &[1.0], 2).is_err());
    }

    #[test]
    fn cross_correlation_masked_bit_identical_on_finite() {
        let a = Matrix::from_fn(40, 6, |r, c| ((r * 3 + c * 7) % 13) as f64 - 6.0);
        let b = Matrix::from_fn(40, 5, |r, c| ((r * 5 + c * 11) % 9) as f64 - 4.0);
        let dense = cross_correlation(&a, &b).unwrap();
        let masked = cross_correlation_masked(&a, &b, 4).unwrap();
        assert_eq!(dense.shape(), masked.shape());
        for (x, y) in dense.as_slice().iter().zip(masked.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn cross_correlation_masked_recovers_through_nan() {
        // Column 0 of `a` has two missing observations; the surviving overlap
        // still correlates perfectly with column 0 of `b`.
        let mut a = Matrix::from_fn(10, 2, |r, c| (r * (c + 1)) as f64);
        let b = a.clone();
        a[(3, 0)] = f64::NAN;
        a[(7, 0)] = f64::NAN;
        let x = cross_correlation_masked(&a, &b, 4).unwrap();
        assert!((x[(0, 0)] - 1.0).abs() < 1e-12);
        // Fully observed pair is untouched.
        assert!((x[(1, 1)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cross_correlation_masked_under_overlap_is_nan() {
        let mut a = Matrix::from_fn(6, 2, |r, c| (r + c) as f64);
        let b = Matrix::from_fn(6, 2, |r, c| (r * 2 + c) as f64);
        for r in 0..5 {
            a[(r, 0)] = f64::NAN;
        }
        let x = cross_correlation_masked(&a, &b, 4).unwrap();
        assert!(x[(0, 0)].is_nan() && x[(0, 1)].is_nan());
        assert!(x[(1, 0)].is_finite());
    }

    #[test]
    fn impute_row_means_fills_and_counts() {
        let mut m =
            Matrix::from_rows(&[&[1.0, f64::NAN, 3.0], &[f64::NAN, f64::NAN, f64::NAN]]).unwrap();
        let n = impute_row_means(&mut m);
        assert_eq!(n, 4);
        assert_eq!(m[(0, 1)], 2.0);
        assert!(m.row(1).iter().all(|&x| x == 0.0));
        // Idempotent on a finite matrix.
        assert_eq!(impute_row_means(&mut m), 0);
    }

    #[test]
    fn nrmse_zero_for_exact_prediction() {
        let t = [1.0, 2.0, 3.0];
        assert_eq!(nrmse_percent(&t, &t).unwrap(), 0.0);
    }

    #[test]
    fn nrmse_known_value() {
        // errors all 1, range 10 -> 100 * 1 / 10 = 10%.
        let truth = [0.0, 5.0, 10.0];
        let pred = [1.0, 6.0, 11.0];
        assert!((nrmse_percent(&pred, &truth).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn nrmse_rejects_constant_truth() {
        assert!(nrmse_percent(&[1.0, 1.0], &[2.0, 2.0]).is_err());
    }
}
