#![warn(missing_docs)]

//! # neurodeanon-linalg
//!
//! From-scratch dense linear algebra for the `neurodeanon` workspace.
//!
//! This crate provides every numerical primitive the de-anonymization attack
//! of Ravindra & Grama (SIGMOD 2021) depends on, with no external numerics
//! dependencies:
//!
//! * [`Matrix`] — an owned, row-major dense `f64` matrix with blocked,
//!   optionally multi-threaded multiplication.
//! * [`qr`] — Householder QR factorization.
//! * [`svd`] — thin singular value decomposition (one-sided Jacobi for
//!   square-ish inputs, Gram-matrix route for tall matrices such as the
//!   64,620 × 100 group matrices of the paper).
//! * [`cholesky`] — Cholesky factorization used by the synthetic scanner to
//!   draw time series with a prescribed correlation structure.
//! * [`eigen`] — symmetric Jacobi eigendecomposition.
//! * [`stats`] — means, variances, z-scoring, Pearson correlation.
//! * [`rsvd`] — randomized range-finder SVD (Halko–Martinsson–Tropp) and
//!   approximate leverage scores, the fast path for very large group
//!   matrices.
//! * [`rng`] — a small deterministic xoshiro256++ RNG with Gaussian sampling,
//!   so the whole reproduction is seed-reproducible end to end.
//! * [`par`] — dependency-free scoped parallel-for layer with a hard
//!   determinism contract (fixed tile boundaries, fixed merge order), shared
//!   by every multi-threaded kernel in the workspace.
//!
//! All fallible operations return [`LinalgError`] instead of panicking, per
//! the workspace convention that library code never aborts on bad input.

pub mod cholesky;
pub mod eigen;
pub mod error;
pub mod matrix;
pub mod par;
pub mod pinv;
pub mod qr;
pub mod rng;
pub mod rsvd;
pub mod stats;
pub mod svd;
pub mod vector;

pub use error::LinalgError;
pub use matrix::Matrix;
pub use rng::Rng64;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
