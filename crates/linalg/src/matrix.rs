//! Owned, row-major dense `f64` matrix.
//!
//! [`Matrix`] is the workhorse container of the reproduction: group matrices
//! (features × subjects), connectomes (regions × regions), time-series blocks
//! (regions × time) and t-SNE embeddings all use it. The multiplication
//! kernel is cache-blocked and parallelizes over row panels with scoped
//! threads, which is what makes the 64,620-feature group-matrix products of
//! the paper tractable on a laptop.

use crate::error::LinalgError;
use crate::{par, Result};

/// Default cache block edge for the blocked matmul kernel (the `k`
/// dimension) and the tiled transpose.
///
/// 64 × 64 f64 tiles are 32 KiB — three tiles fit comfortably in a typical
/// 256 KiB L2 slice, which the Rust Performance Book's blocking guidance
/// targets. Public so the ragged-edge kernel property tests can probe
/// `BLOCK ± 1` without hardcoding the value.
pub const BLOCK: usize = 64;

/// Rows of the register-tiled matmul microkernel: each invocation keeps an
/// `MR × NR` block of the output in registers across a full `k`-block.
pub const MATMUL_MR: usize = 4;

/// Columns of the register-tiled matmul microkernel.
pub const MATMUL_NR: usize = 8;

/// Rows of `self` folded per pass of the blocked Gram kernel. Eight rows per
/// pass cuts the read/write traffic on the `n × n` partial by 8× while
/// keeping the per-element accumulation order r-ascending (bit-identical to
/// the row-at-a-time rank-1 formulation).
pub const GRAM_ROW_BLOCK: usize = 8;

/// Minimum number of scalar multiply-adds before `matmul` tiles across
/// threads; below this the spawn overhead dominates.
const MATMUL_PAR_THRESHOLD: usize = par::DEFAULT_PAR_THRESHOLD;

/// Rows per matmul output tile. Tile boundaries are fixed by shape alone
/// (determinism contract), so this also bounds load imbalance.
const MATMUL_ROW_TILE: usize = 16;

/// Columns per matmul output tile on the single-row (`m == 1`) path, where
/// wide `1×k · k×n` products tile over output columns instead of rows.
const MATMUL_COL_TILE: usize = 256;

/// Rows of `self` per Gram partial panel. Each panel accumulates a private
/// upper-triangle `n × n` partial; partials merge in fixed panel order.
/// Public for the same reason as [`BLOCK`]: the panel merge order is part of
/// the bit pattern, so reference implementations in tests must mimic it for
/// inputs taller than one panel.
pub const GRAM_ROW_PANEL: usize = 512;

/// Minimum `m · n² / 2` work before `gram` goes parallel. Lower than the
/// matmul threshold because the panel partials are cheap to merge when `n`
/// is small (the paper's group matrices have n = 100).
const GRAM_PAR_THRESHOLD: usize = 1 << 20;

/// An owned, row-major dense matrix of `f64`.
///
/// # Examples
///
/// ```
/// use neurodeanon_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c, a);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for r in 0..show_rows {
            write!(f, "  [")?;
            let show_cols = self.cols.min(8);
            for c in 0..show_cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self[(r, c)])?;
            }
            if self.cols > show_cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of row slices.
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if rows have unequal
    /// lengths and [`LinalgError::EmptyMatrix`] for an empty input.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::EmptyMatrix { op: "from_rows" });
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(LinalgError::DimensionMismatch {
                    op: "from_rows",
                    lhs: (rows.len(), cols),
                    rhs: (1, r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (1, data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` if the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Borrow the flat row-major backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the flat row-major backing slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix, returning the flat row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    /// Panics if `r >= self.rows()`; use [`Matrix::try_row`] for a checked
    /// variant.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Checked row access.
    pub fn try_row(&self, r: usize) -> Result<&[f64]> {
        if r >= self.rows {
            return Err(LinalgError::IndexOutOfBounds {
                index: (r, 0),
                shape: self.shape(),
            });
        }
        Ok(self.row(r))
    }

    /// Mutably borrow row `r` as a slice.
    ///
    /// # Panics
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` into a new vector.
    ///
    /// # Panics
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column {c} out of bounds ({})", self.cols);
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c])
            .collect()
    }

    /// Overwrite column `c` with `values`.
    pub fn set_col(&mut self, c: usize, values: &[f64]) -> Result<()> {
        if c >= self.cols {
            return Err(LinalgError::IndexOutOfBounds {
                index: (0, c),
                shape: self.shape(),
            });
        }
        if values.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "set_col",
                lhs: (self.rows, 1),
                rhs: (values.len(), 1),
            });
        }
        for (r, &v) in values.iter().enumerate() {
            self.data[r * self.cols + c] = v;
        }
        Ok(())
    }

    /// Overwrite row `r` with `values`.
    pub fn set_row(&mut self, r: usize, values: &[f64]) -> Result<()> {
        if r >= self.rows {
            return Err(LinalgError::IndexOutOfBounds {
                index: (r, 0),
                shape: self.shape(),
            });
        }
        if values.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "set_row",
                lhs: (1, self.cols),
                rhs: (1, values.len()),
            });
        }
        self.row_mut(r).copy_from_slice(values);
        Ok(())
    }

    /// Reshapes `self` to `rows × cols` for a full overwrite, reusing the
    /// existing allocation whenever its capacity suffices. Contents after
    /// the call are unspecified (the caller writes every entry).
    pub(crate) fn reshape_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        // clear + resize keeps capacity, so a steady-state sweep that cycles
        // through same-shaped operands performs no allocation at all.
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// Writes the transpose of `self` into `out`, reusing `out`'s
    /// allocation when it is large enough (the workspace form used by the
    /// attack-plan sweep loop, where the same scratch matrix absorbs one
    /// reduced group matrix per iteration).
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.reshape_for_overwrite(self.cols, self.rows);
        // Tile the transpose to keep both the read and write streams in
        // cache; a naive double loop thrashes on tall group matrices.
        for rb in (0..self.rows).step_by(BLOCK) {
            for cb in (0..self.cols).step_by(BLOCK) {
                let rend = (rb + BLOCK).min(self.rows);
                let cend = (cb + BLOCK).min(self.cols);
                for r in rb..rend {
                    for c in cb..cend {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
    }

    /// Matrix product `self * rhs` using a cache-blocked kernel, parallel
    /// over fixed row tiles (column tiles for single-row products) when the
    /// work is large enough to amortize thread spawn cost. Results are
    /// bit-identical at any thread count ([`crate::par`] contract).
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        if out.is_empty() {
            return Ok(out);
        }
        let a = &self.data;
        let b = &rhs.data;
        if m >= 2 {
            // Tile over fixed row panels of the output. Each output element
            // accumulates over k in the same order regardless of how panels
            // are distributed, so results are bit-identical at any thread
            // count (see `par`'s determinism contract).
            par::par_chunks_mut(
                &mut out.data,
                MATMUL_ROW_TILE * n,
                k,
                MATMUL_PAR_THRESHOLD,
                |tile, chunk| {
                    let row0 = tile * MATMUL_ROW_TILE;
                    let rows = chunk.len() / n;
                    matmul_panel(&a[row0 * k..(row0 + rows) * k], b, chunk, k, n);
                },
            );
        } else {
            // A single output row can't tile over rows; wide 1×k · k×n
            // products (leverage-score probes) tile over output columns.
            par::par_chunks_mut(
                &mut out.data,
                MATMUL_COL_TILE,
                k,
                MATMUL_PAR_THRESHOLD,
                |tile, chunk| {
                    matmul_col_panel(a, b, chunk, tile * MATMUL_COL_TILE, k, n);
                },
            );
        }
        Ok(out)
    }

    /// Computes `selfᵀ * self` (the Gram matrix) exploiting symmetry.
    ///
    /// This is the hot kernel on group matrices: for `A ∈ R^{64620×100}` the
    /// Gram matrix is only 100 × 100 and drives the SVD used for leverage
    /// scores.
    pub fn gram(&self) -> Matrix {
        let (m, n) = (self.rows, self.cols);
        let mut g = Matrix::zeros(n, n);
        if m == 0 || n == 0 {
            return g;
        }
        let a = &self.data;
        // Fixed row panels each accumulate a private upper-triangle n × n
        // partial (rank-1 updates in row order within the panel); partials
        // are then added elementwise in panel order, so the merge tree is
        // identical at any thread count.
        let upper = par::par_reduce_tiles(
            m,
            GRAM_ROW_PANEL,
            n * n / 2 + 1,
            GRAM_PAR_THRESHOLD,
            vec![0.0f64; n * n],
            |tile| {
                let mut part = vec![0.0f64; n * n];
                let range = tile.range();
                // Fold GRAM_ROW_BLOCK rows per pass over the partial: the
                // per-element additions stay r-ascending (bit-identical to
                // one rank-1 update per row) while the n² partial is read
                // and written once per 8 rows instead of once per row.
                let mut r0 = range.start;
                while r0 + GRAM_ROW_BLOCK <= range.end {
                    gram_block(a, &mut part, r0, n);
                    r0 += GRAM_ROW_BLOCK;
                }
                for r in r0..range.end {
                    let row = &a[r * n..(r + 1) * n];
                    for i in 0..n {
                        let ri = row[i];
                        // No `ri == 0.0` skip here: BOLD-derived group
                        // matrices are dense, so the branch is a
                        // misprediction per element, not a saving. Sparse
                        // inputs would want a dedicated sparse kernel, not a
                        // per-element test on this one.
                        let grow = &mut part[i * n..(i + 1) * n];
                        for j in i..n {
                            grow[j] += ri * row[j];
                        }
                    }
                }
                part
            },
            |mut acc, part| {
                for (av, pv) in acc.iter_mut().zip(&part) {
                    *av += pv;
                }
                acc
            },
        );
        g.data = upper;
        // Mirror the upper triangle into the lower.
        for i in 0..n {
            for j in (i + 1)..n {
                g.data[j * n + i] = g.data[i * n + j];
            }
        }
        g
    }

    /// Elementwise sum with `rhs`.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Elementwise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Elementwise product (Hadamard).
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "hadamard", |a, b| a * b)
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiply every element by `s`, in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns a copy scaled by `s`.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_mut(s);
        m
    }

    /// Frobenius norm `sqrt(Σ aᵢⱼ²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// `true` if all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Returns a new matrix containing only the listed rows, in order.
    ///
    /// This is how the attack restricts a group matrix to its principal
    /// features subspace: `group.select_rows(&top_leverage_indices)`.
    pub fn select_rows(&self, indices: &[usize]) -> Result<Matrix> {
        let mut out = Matrix::zeros(0, 0);
        self.select_rows_into(indices, &mut out)?;
        Ok(out)
    }

    /// Writes the listed rows, in order, into `out`, reusing `out`'s
    /// allocation when it is large enough. `out` is untouched on error.
    ///
    /// This is the workspace form of [`Matrix::select_rows`] for sweep
    /// loops: restricting a group matrix to each new feature set reuses one
    /// scratch matrix instead of allocating tens of megabytes per point.
    pub fn select_rows_into(&self, indices: &[usize], out: &mut Matrix) -> Result<()> {
        for &i in indices {
            if i >= self.rows {
                return Err(LinalgError::IndexOutOfBounds {
                    index: (i, 0),
                    shape: self.shape(),
                });
            }
        }
        out.rows = indices.len();
        out.cols = self.cols;
        out.data.clear();
        out.data.reserve(indices.len() * self.cols);
        for &i in indices {
            out.data.extend_from_slice(self.row(i));
        }
        Ok(())
    }

    /// Returns a new matrix containing only the listed columns, in order.
    pub fn select_cols(&self, indices: &[usize]) -> Result<Matrix> {
        for &c in indices {
            if c >= self.cols {
                return Err(LinalgError::IndexOutOfBounds {
                    index: (0, c),
                    shape: self.shape(),
                });
            }
        }
        let mut out = Matrix::zeros(self.rows, indices.len());
        for r in 0..self.rows {
            let src = self.row(r);
            let dst = out.row_mut(r);
            for (k, &c) in indices.iter().enumerate() {
                dst[k] = src[c];
            }
        }
        Ok(out)
    }

    /// Stacks `self` on top of `other` (both must have equal column counts).
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Concatenates `self` with `other` side by side (equal row counts).
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        Ok(out)
    }

    /// Checked element access.
    pub fn get(&self, r: usize, c: usize) -> Result<f64> {
        if r >= self.rows || c >= self.cols {
            return Err(LinalgError::IndexOutOfBounds {
                index: (r, c),
                shape: self.shape(),
            });
        }
        Ok(self.data[r * self.cols + c])
    }

    /// Checked element write.
    pub fn set(&mut self, r: usize, c: usize, v: f64) -> Result<()> {
        if r >= self.rows || c >= self.cols {
            return Err(LinalgError::IndexOutOfBounds {
                index: (r, c),
                shape: self.shape(),
            });
        }
        self.data[r * self.cols + c] = v;
        Ok(())
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Serial blocked kernel computing `out += a * b` for a row panel of `a`.
///
/// `a` is `(out.len()/n) × k`, `b` is `k × n`, `out` is the destination panel.
/// The panel is walked in `MATMUL_MR × MATMUL_NR` register tiles: each tile
/// loads its output block into a local accumulator array, folds a whole
/// `k`-block into it, and stores it back, so the output sees one load and one
/// store per `k`-block instead of one per `k` step. Row/column remainders go
/// through [`matmul_edge`], which keeps the identical per-element order.
///
/// Determinism: every output element is a single accumulator updated in
/// k-ascending order (register spill/reload of an f64 is exact), so the
/// result is bit-identical to the unblocked ikj kernel and unchanged by how
/// [`Matrix::matmul`] distributes panels over threads. The dense-hostile
/// `aik == 0.0` skip of the pre-blocked kernel is gone (same rationale as
/// `gram`: BOLD-derived matrices are dense, the branch is a misprediction
/// per element); on finite inputs adding the skipped `±0.0` products leaves
/// every bit unchanged unless an accumulator is exactly `-0.0`.
fn matmul_panel(a: &[f64], b: &[f64], out: &mut [f64], k: usize, n: usize) {
    let m = a.len().checked_div(k).unwrap_or(0);
    for kb in (0..k).step_by(BLOCK) {
        let kend = (kb + BLOCK).min(k);
        let mut i = 0;
        while i + MATMUL_MR <= m {
            let mut j = 0;
            while j + MATMUL_NR <= n {
                matmul_micro(a, b, out, i, j, kb, kend, k, n);
                j += MATMUL_NR;
            }
            if j < n {
                matmul_edge(a, b, out, i, MATMUL_MR, j, n - j, kb, kend, k, n);
            }
            i += MATMUL_MR;
        }
        if i < m {
            matmul_edge(a, b, out, i, m - i, 0, n, kb, kend, k, n);
        }
    }
}

/// Register-tiled `MATMUL_MR × MATMUL_NR` microkernel: folds `a[i0.., kb..kend]
/// · b[kb..kend, j0..]` into the output block held entirely in registers.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn matmul_micro(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    i0: usize,
    j0: usize,
    kb: usize,
    kend: usize,
    k: usize,
    n: usize,
) {
    let mut acc = [[0.0f64; MATMUL_NR]; MATMUL_MR];
    for (r, accr) in acc.iter_mut().enumerate() {
        let o0 = (i0 + r) * n + j0;
        accr.copy_from_slice(&out[o0..o0 + MATMUL_NR]);
    }
    for kk in kb..kend {
        let mut brow = [0.0f64; MATMUL_NR];
        brow.copy_from_slice(&b[kk * n + j0..kk * n + j0 + MATMUL_NR]);
        for (r, accr) in acc.iter_mut().enumerate() {
            let aik = a[(i0 + r) * k + kk];
            for (av, &bv) in accr.iter_mut().zip(&brow) {
                *av += aik * bv;
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let o0 = (i0 + r) * n + j0;
        out[o0..o0 + MATMUL_NR].copy_from_slice(accr);
    }
}

/// Generic edge kernel for the `m % MATMUL_MR` / `n % MATMUL_NR` remainders
/// of [`matmul_panel`]. Same per-element k-ascending accumulation as the
/// register microkernel, just without the fixed-size tiles.
#[allow(clippy::too_many_arguments)]
fn matmul_edge(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    i0: usize,
    mr: usize,
    j0: usize,
    nr: usize,
    kb: usize,
    kend: usize,
    k: usize,
    n: usize,
) {
    for r in 0..mr {
        let arow = &a[(i0 + r) * k..(i0 + r + 1) * k];
        let o0 = (i0 + r) * n + j0;
        let orow = &mut out[o0..o0 + nr];
        for kk in kb..kend {
            let aik = arow[kk];
            let brow = &b[kk * n + j0..kk * n + j0 + nr];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += aik * bv;
            }
        }
    }
}

/// Folds [`GRAM_ROW_BLOCK`] consecutive rows of `a` (starting at `r0`) into
/// the upper triangle of the `n × n` Gram partial.
///
/// For every element `(i, j)` the additions run r-ascending over the block —
/// the same order as `GRAM_ROW_BLOCK` successive rank-1 updates — and the
/// load/update/store of the f64 partial element is exact, so this is
/// bit-identical to the row-at-a-time formulation while touching the partial
/// once per block instead of once per row.
#[inline]
fn gram_block(a: &[f64], part: &mut [f64], r0: usize, n: usize) {
    let rows = &a[r0 * n..(r0 + GRAM_ROW_BLOCK) * n];
    for i in 0..n {
        let mut ri = [0.0f64; GRAM_ROW_BLOCK];
        for (r, v) in ri.iter_mut().enumerate() {
            *v = rows[r * n + i];
        }
        let grow = &mut part[i * n..(i + 1) * n];
        for j in i..n {
            let mut acc = grow[j];
            for (r, &rv) in ri.iter().enumerate() {
                acc += rv * rows[r * n + j];
            }
            grow[j] = acc;
        }
    }
}

/// Serial kernel computing one output-column panel of a single-row product:
/// `out[j - c0] = Σ_k a[k] * b[k][c0 + j]` for columns `c0 .. c0 + out.len()`.
///
/// Accumulation runs k-ascending exactly like [`matmul_panel`], so splitting
/// the row into column panels cannot change any output bit.
fn matmul_col_panel(a: &[f64], b: &[f64], out: &mut [f64], c0: usize, k: usize, n: usize) {
    let w = out.len();
    for (kk, &aik) in a.iter().enumerate().take(k) {
        if aik == 0.0 {
            continue;
        }
        let brow = &b[kk * n + c0..kk * n + c0 + w];
        for (o, &bv) in out.iter_mut().zip(brow) {
            *o += aik * bv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f64) -> bool {
        a.shape() == b.shape()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 5);
        assert_eq!(m.shape(), (3, 5));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let m = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let e = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(e, LinalgError::DimensionMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(matches!(
            Matrix::from_rows(&[]),
            Err(LinalgError::EmptyMatrix { .. })
        ));
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(7, 13, |r, c| (r * 13 + c) as f64);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_swaps_indices() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t[(0, 1)], 4.0);
    }

    #[test]
    fn matmul_small_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expect = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap();
        assert!(approx_eq(&c, &expect, 1e-12));
    }

    #[test]
    fn matmul_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(5, 5, |r, c| (r + 2 * c) as f64);
        let i = Matrix::identity(5);
        assert!(approx_eq(&a.matmul(&i).unwrap(), &a, 1e-12));
        assert!(approx_eq(&i.matmul(&a).unwrap(), &a, 1e-12));
    }

    #[test]
    fn matmul_matches_naive_on_rectangular() {
        let a = Matrix::from_fn(9, 17, |r, c| ((r * 31 + c * 7) % 11) as f64 - 5.0);
        let b = Matrix::from_fn(17, 5, |r, c| ((r * 13 + c * 3) % 7) as f64 - 3.0);
        let c = a.matmul(&b).unwrap();
        for i in 0..9 {
            for j in 0..5 {
                let mut s = 0.0;
                for k in 0..17 {
                    s += a[(i, k)] * b[(k, j)];
                }
                assert!((c[(i, j)] - s).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn parallel_matmul_matches_serial() {
        // Big enough to cross PAR_THRESHOLD.
        let a = Matrix::from_fn(256, 300, |r, c| ((r * 7 + c) % 13) as f64 * 0.25 - 1.0);
        let b = Matrix::from_fn(300, 64, |r, c| ((r + c * 5) % 17) as f64 * 0.125 - 1.0);
        let par = a.matmul(&b).unwrap();
        // Serial reference.
        let mut serial = Matrix::zeros(256, 64);
        matmul_panel(a.as_slice(), b.as_slice(), serial.as_mut_slice(), 300, 64);
        assert!(approx_eq(&par, &serial, 1e-9));
    }

    #[test]
    fn gram_matches_explicit_ata() {
        let a = Matrix::from_fn(23, 6, |r, c| ((r * 3 + c * 11) % 9) as f64 - 4.0);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert!(approx_eq(&g, &explicit, 1e-9));
    }

    #[test]
    fn gram_is_symmetric() {
        let a = Matrix::from_fn(11, 7, |r, c| (r as f64 * 0.3).sin() + c as f64);
        let g = a.gram();
        for i in 0..7 {
            for j in 0..7 {
                assert_eq!(g[(i, j)], g[(j, i)]);
            }
        }
    }

    #[test]
    fn add_sub_hadamard() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[10.0, 20.0], &[30.0, 40.0]]).unwrap();
        assert_eq!(a.add(&b).unwrap()[(1, 1)], 44.0);
        assert_eq!(b.sub(&a).unwrap()[(0, 1)], 18.0);
        assert_eq!(a.hadamard(&b).unwrap()[(1, 0)], 90.0);
        assert!(a.add(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn frobenius_norm_of_known_matrix() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn select_rows_into_reuses_buffer_and_matches() {
        let m = Matrix::from_fn(6, 3, |r, c| (r * 10 + c) as f64);
        // Start from a dirty, differently-shaped scratch buffer.
        let mut out = Matrix::filled(9, 2, 7.0);
        m.select_rows_into(&[5, 1, 3], &mut out).unwrap();
        assert_eq!(out.shape(), (3, 3));
        let direct = m.select_rows(&[5, 1, 3]).unwrap();
        assert_eq!(out.as_slice(), direct.as_slice());
        // An out-of-bounds index errors without clobbering the buffer.
        let before = out.clone();
        assert!(m.select_rows_into(&[0, 6], &mut out).is_err());
        assert_eq!(out.as_slice(), before.as_slice());
        assert_eq!(out.shape(), before.shape());
    }

    #[test]
    fn transpose_into_matches_transpose_on_dirty_buffer() {
        let m = Matrix::from_fn(70, 5, |r, c| (r * 7 + c * 3) as f64 - 11.0);
        let mut out = Matrix::filled(2, 2, -1.0);
        m.transpose_into(&mut out);
        let direct = m.transpose();
        assert_eq!(out.shape(), direct.shape());
        assert_eq!(out.as_slice(), direct.as_slice());
    }

    #[test]
    fn select_rows_picks_and_orders() {
        let m = Matrix::from_fn(5, 2, |r, _| r as f64);
        let s = m.select_rows(&[4, 0, 2]).unwrap();
        assert_eq!(s.col(0), vec![4.0, 0.0, 2.0]);
        assert!(m.select_rows(&[5]).is_err());
    }

    #[test]
    fn select_cols_picks_and_orders() {
        let m = Matrix::from_fn(2, 5, |_, c| c as f64);
        let s = m.select_cols(&[3, 1]).unwrap();
        assert_eq!(s.row(0), &[3.0, 1.0]);
        assert!(m.select_cols(&[9]).is_err());
    }

    #[test]
    fn stack_operations() {
        let a = Matrix::filled(2, 3, 1.0);
        let b = Matrix::filled(1, 3, 2.0);
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (3, 3));
        assert_eq!(v[(2, 0)], 2.0);

        let c = Matrix::filled(2, 1, 5.0);
        let h = a.hstack(&c).unwrap();
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h[(0, 3)], 5.0);

        assert!(a.vstack(&c).is_err());
        assert!(a.hstack(&b).is_err());
    }

    #[test]
    fn get_set_checked() {
        let mut m = Matrix::zeros(2, 2);
        m.set(1, 1, 9.0).unwrap();
        assert_eq!(m.get(1, 1).unwrap(), 9.0);
        assert!(m.get(2, 0).is_err());
        assert!(m.set(0, 2, 1.0).is_err());
    }

    #[test]
    fn set_row_and_col() {
        let mut m = Matrix::zeros(3, 2);
        m.set_row(1, &[1.0, 2.0]).unwrap();
        m.set_col(0, &[7.0, 8.0, 9.0]).unwrap();
        assert_eq!(m[(1, 0)], 8.0);
        assert_eq!(m[(1, 1)], 2.0);
        assert!(m.set_row(1, &[1.0]).is_err());
        assert!(m.set_col(5, &[0.0; 3]).is_err());
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut m = Matrix::zeros(2, 2);
        assert!(m.is_finite());
        m[(0, 1)] = f64::NAN;
        assert!(!m.is_finite());
    }

    #[test]
    fn debug_format_truncates() {
        let m = Matrix::zeros(100, 100);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 100x100"));
        assert!(s.len() < 2000);
    }
}
