//! Moore–Penrose pseudo-inverse via the thin SVD.
//!
//! The paper's Equation 4 error bound is stated in terms of `A Ã† Ã` with
//! `†` the pseudo-inverse of the sampled sketch; the sketch-quality checks
//! in `neurodeanon-sampling` evaluate that expression with this routine.

use crate::matrix::Matrix;
use crate::svd::thin_svd;
use crate::Result;

/// Computes the pseudo-inverse `A† ∈ R^{n×m}` of `A ∈ R^{m×n}`.
///
/// Wide inputs are handled by transposing first (`(Aᵀ)†ᵀ = A†`). Singular
/// directions below the SVD's rank tolerance are zeroed, which is exactly
/// the Moore–Penrose convention.
pub fn pinv(a: &Matrix) -> Result<Matrix> {
    if a.rows() < a.cols() {
        let p = pinv(&a.transpose())?;
        return Ok(p.transpose());
    }
    let f = thin_svd(a)?;
    let n = f.sigma.len();
    let rank = f.rank();
    // A† = V Σ† Uᵀ; build V Σ† first (n × n), then multiply by Uᵀ.
    let mut vs = f.v.clone();
    for c in 0..n {
        let inv = if c < rank && f.sigma[c] > 0.0 {
            1.0 / f.sigma[c]
        } else {
            0.0
        };
        for r in 0..n {
            vs[(r, c)] *= inv;
        }
    }
    vs.matmul(&f.u.transpose())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_diff(a: &Matrix, b: &Matrix) -> f64 {
        a.sub(b).unwrap().max_abs()
    }

    #[test]
    fn pinv_of_invertible_is_inverse() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]).unwrap();
        let p = pinv(&a).unwrap();
        let id = a.matmul(&p).unwrap();
        assert!(max_diff(&id, &Matrix::identity(2)) < 1e-10);
    }

    #[test]
    fn moore_penrose_conditions_tall() {
        let a = Matrix::from_fn(9, 3, |r, c| ((r * 5 + c * 7) % 11) as f64 - 5.0);
        let p = pinv(&a).unwrap();
        // A A† A = A
        let apa = a.matmul(&p).unwrap().matmul(&a).unwrap();
        assert!(max_diff(&apa, &a) < 1e-8);
        // A† A A† = A†
        let pap = p.matmul(&a).unwrap().matmul(&p).unwrap();
        assert!(max_diff(&pap, &p) < 1e-8);
        // (A A†)ᵀ = A A†
        let aap = a.matmul(&p).unwrap();
        assert!(max_diff(&aap, &aap.transpose()) < 1e-8);
        // (A† A)ᵀ = A† A
        let paa = p.matmul(&a).unwrap();
        assert!(max_diff(&paa, &paa.transpose()) < 1e-8);
    }

    #[test]
    fn moore_penrose_conditions_wide() {
        let a = Matrix::from_fn(3, 8, |r, c| ((r * 3 + c * 5) % 7) as f64 - 3.0);
        let p = pinv(&a).unwrap();
        assert_eq!(p.shape(), (8, 3));
        let apa = a.matmul(&p).unwrap().matmul(&a).unwrap();
        assert!(max_diff(&apa, &a) < 1e-8);
    }

    #[test]
    fn pinv_of_rank_deficient() {
        // Rank-1: a = u vᵀ.
        let u = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]).unwrap();
        let v = Matrix::from_rows(&[&[1.0, 1.0]]).unwrap();
        let a = u.matmul(&v).unwrap();
        let p = pinv(&a).unwrap();
        let apa = a.matmul(&p).unwrap().matmul(&a).unwrap();
        assert!(max_diff(&apa, &a) < 1e-8);
    }

    #[test]
    fn pinv_of_zero_is_zero() {
        let a = Matrix::zeros(4, 2);
        let p = pinv(&a).unwrap();
        assert_eq!(p.shape(), (2, 4));
        assert!(p.as_slice().iter().all(|&v| v == 0.0));
    }
}
