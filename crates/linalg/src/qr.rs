//! Householder QR factorization.
//!
//! QR gives an orthonormal basis `Q` for the column space of a matrix — the
//! `U` needed by the leverage-score definition (Equation 3 of the paper) can
//! be taken from either SVD or QR. We keep both routes: QR is the cheaper
//! option when singular values are not needed, and it cross-validates the
//! Jacobi SVD in tests.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// The thin QR factorization `A = Q R` with `Q ∈ R^{m×n}` orthonormal and
/// `R ∈ R^{n×n}` upper triangular (requires `m ≥ n`).
#[derive(Debug, Clone)]
pub struct Qr {
    /// Orthonormal factor, `m × n`.
    pub q: Matrix,
    /// Upper-triangular factor, `n × n`.
    pub r: Matrix,
}

/// Computes the thin QR factorization of `a` by Householder reflections.
///
/// Returns [`LinalgError::DimensionMismatch`] when `a.rows() < a.cols()`
/// (the thin form needs a tall or square input) and
/// [`LinalgError::NonFinite`] when the input contains NaN/∞.
pub fn qr(a: &Matrix) -> Result<Qr> {
    let (m, n) = a.shape();
    if a.is_empty() {
        return Err(LinalgError::EmptyMatrix { op: "qr" });
    }
    if m < n {
        return Err(LinalgError::DimensionMismatch {
            op: "qr (need rows >= cols)",
            lhs: (m, n),
            rhs: (n, n),
        });
    }
    if !a.is_finite() {
        return Err(LinalgError::NonFinite { op: "qr" });
    }

    // Work on a copy; store Householder vectors in-place below the diagonal.
    let mut work = a.clone();
    // Scalar factors tau_k for each reflector.
    let mut taus = vec![0.0_f64; n];

    for k in 0..n {
        // Build the reflector that zeroes work[k+1.., k].
        let mut norm_sq = 0.0;
        for i in k..m {
            let v = work[(i, k)];
            norm_sq += v * v;
        }
        let norm = norm_sq.sqrt();
        if norm == 0.0 {
            taus[k] = 0.0;
            continue;
        }
        let alpha = if work[(k, k)] >= 0.0 { -norm } else { norm };
        // v = x - alpha e1, normalized so v[0] = 1. The sign choice above
        // makes v0 = x0 - alpha large in magnitude, avoiding cancellation.
        let v0 = work[(k, k)] - alpha;
        let mut v = vec![0.0; m - k];
        v[0] = 1.0;
        for i in (k + 1)..m {
            v[i - k] = work[(i, k)] / v0;
        }
        let vtv: f64 = v.iter().map(|x| x * x).sum();
        let tau = 2.0 / vtv;
        taus[k] = tau;

        // Apply H = I - tau v vᵀ to the trailing columns k..n of work.
        for j in k..n {
            let mut dot = 0.0;
            for i in k..m {
                dot += v[i - k] * work[(i, j)];
            }
            let f = tau * dot;
            for i in k..m {
                work[(i, j)] -= f * v[i - k];
            }
        }
        // Record R's diagonal and store v below it.
        work[(k, k)] = alpha;
        for i in (k + 1)..m {
            work[(i, k)] = v[i - k];
        }
    }

    // Extract R (upper triangle of the top n×n block).
    let mut r = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            r[(i, j)] = work[(i, j)];
        }
    }

    // Form thin Q by applying the reflectors to the first n columns of I.
    let mut q = Matrix::zeros(m, n);
    for i in 0..n {
        q[(i, i)] = 1.0;
    }
    for k in (0..n).rev() {
        let tau = taus[k];
        if tau == 0.0 {
            continue;
        }
        for j in 0..n {
            // dot = v ⋅ q[k.., j], with v[0] = 1 implicit.
            let mut dot = q[(k, j)];
            for i in (k + 1)..m {
                dot += work[(i, k)] * q[(i, j)];
            }
            let f = tau * dot;
            q[(k, j)] -= f;
            for i in (k + 1)..m {
                let w = work[(i, k)];
                q[(i, j)] -= f * w;
            }
        }
    }

    Ok(Qr { q, r })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(qr_: &Qr) -> Matrix {
        qr_.q.matmul(&qr_.r).unwrap()
    }

    fn max_diff(a: &Matrix, b: &Matrix) -> f64 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()))
    }

    #[test]
    fn qr_reconstructs_square() {
        let a =
            Matrix::from_rows(&[&[4.0, 1.0, -2.0], &[1.0, 2.0, 0.0], &[-2.0, 0.0, 3.0]]).unwrap();
        let f = qr(&a).unwrap();
        assert!(max_diff(&reconstruct(&f), &a) < 1e-10);
    }

    #[test]
    fn qr_reconstructs_tall() {
        let a = Matrix::from_fn(20, 5, |r, c| ((r * 13 + c * 7) % 17) as f64 - 8.0);
        let f = qr(&a).unwrap();
        assert!(max_diff(&reconstruct(&f), &a) < 1e-9);
    }

    #[test]
    fn q_is_orthonormal() {
        let a = Matrix::from_fn(15, 6, |r, c| ((r * 5 + c * 3) % 11) as f64 * 0.7 - 3.0);
        let f = qr(&a).unwrap();
        let qtq = f.q.transpose().matmul(&f.q).unwrap();
        assert!(max_diff(&qtq, &Matrix::identity(6)) < 1e-10);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_fn(10, 4, |r, c| ((r + 1) * (c + 2)) as f64 % 7.0);
        let f = qr(&a).unwrap();
        for i in 0..4 {
            for j in 0..i {
                assert!(f.r[(i, j)].abs() < 1e-12);
            }
        }
    }

    #[test]
    fn qr_rejects_wide() {
        let a = Matrix::zeros(2, 5);
        assert!(matches!(qr(&a), Err(LinalgError::DimensionMismatch { .. })));
    }

    #[test]
    fn qr_rejects_nan() {
        let mut a = Matrix::zeros(3, 2);
        a[(1, 1)] = f64::NAN;
        assert!(matches!(qr(&a), Err(LinalgError::NonFinite { .. })));
    }

    #[test]
    fn qr_handles_rank_deficient_column() {
        // Second column identical to first: reflector for col 2 sees a zero
        // residual, tau = 0 path.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]).unwrap();
        let f = qr(&a).unwrap();
        assert!(max_diff(&reconstruct(&f), &a) < 1e-10);
    }

    #[test]
    fn qr_identity() {
        let i = Matrix::identity(4);
        let f = qr(&i).unwrap();
        assert!(max_diff(&reconstruct(&f), &i) < 1e-12);
    }
}
