//! Property-based tests for the linear-algebra substrate.
//!
//! Each property restates the mathematical definition the implementation
//! must satisfy, on randomized inputs — the testkit counterpart of the
//! hand-picked unit tests inside each module.

use neurodeanon_linalg::cholesky::{cholesky, cholesky_solve};
use neurodeanon_linalg::eigen::sym_eigen;
use neurodeanon_linalg::matrix::Matrix;
use neurodeanon_linalg::pinv::pinv;
use neurodeanon_linalg::qr::qr;
use neurodeanon_linalg::stats;
use neurodeanon_linalg::svd::{leverage_scores, thin_svd};
use neurodeanon_linalg::vector;
use neurodeanon_testkit::gen::{f64_in, from_fn, matrix_in, vec_of, Gen};
use neurodeanon_testkit::{forall, tk_assert, tk_assert_eq, Config};

fn cfg() -> Config {
    Config::cases(64)
}

/// Generator: a random tall matrix with 4..=20 rows, 2..=4 cols, rows >= cols.
fn tall_matrix() -> impl Gen<Value = Matrix> {
    from_fn(|rng| {
        let n = 2 + rng.below(3); // 2..=4
        let m = (4 + rng.below(17)).max(n); // 4..=20
        Matrix::from_fn(m, n, |_, _| rng.uniform_range(-10.0, 10.0))
    })
}

#[test]
fn matmul_is_associative() {
    forall!(cfg(), (a in matrix_in(4, 3, -10.0, 10.0),
                    b in matrix_in(3, 5, -10.0, 10.0),
                    c in matrix_in(5, 2, -10.0, 10.0)) => {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        tk_assert!(left.sub(&right).unwrap().max_abs() < 1e-8);
    });
}

#[test]
fn matmul_distributes_over_add() {
    forall!(cfg(), (a in matrix_in(3, 4, -10.0, 10.0),
                    b in matrix_in(4, 3, -10.0, 10.0),
                    c in matrix_in(4, 3, -10.0, 10.0)) => {
        let left = a.matmul(&b.add(&c).unwrap()).unwrap();
        let right = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        tk_assert!(left.sub(&right).unwrap().max_abs() < 1e-8);
    });
}

#[test]
fn transpose_of_product() {
    forall!(cfg(), (a in matrix_in(4, 3, -10.0, 10.0), b in matrix_in(3, 5, -10.0, 10.0)) => {
        // (AB)ᵀ = BᵀAᵀ
        let left = a.matmul(&b).unwrap().transpose();
        let right = b.transpose().matmul(&a.transpose()).unwrap();
        tk_assert!(left.sub(&right).unwrap().max_abs() < 1e-9);
    });
}

#[test]
fn gram_equals_ata() {
    forall!(cfg(), (a in tall_matrix()) => {
        let g = a.gram();
        let ata = a.transpose().matmul(&a).unwrap();
        tk_assert!(g.sub(&ata).unwrap().max_abs() < 1e-8);
    });
}

#[test]
fn svd_reconstructs() {
    forall!(cfg(), (a in tall_matrix()) => {
        let f = thin_svd(&a).unwrap();
        let rec = f.reconstruct().unwrap();
        let scale = a.max_abs().max(1.0);
        tk_assert!(a.sub(&rec).unwrap().max_abs() < 1e-7 * scale);
    });
}

#[test]
fn svd_v_orthonormal() {
    forall!(cfg(), (a in tall_matrix()) => {
        let f = thin_svd(&a).unwrap();
        let vtv = f.v.transpose().matmul(&f.v).unwrap();
        tk_assert!(vtv.sub(&Matrix::identity(a.cols())).unwrap().max_abs() < 1e-8);
    });
}

#[test]
fn svd_frobenius_identity() {
    forall!(cfg(), (a in tall_matrix()) => {
        // ‖A‖_F² = Σ σᵢ²
        let f = thin_svd(&a).unwrap();
        let fro2 = a.frobenius_norm().powi(2);
        let ssum: f64 = f.sigma.iter().map(|s| s * s).sum();
        tk_assert!((fro2 - ssum).abs() < 1e-6 * fro2.max(1.0));
    });
}

#[test]
fn leverage_scores_sum_to_rank_prop() {
    forall!(cfg(), (a in tall_matrix()) => {
        let f = thin_svd(&a).unwrap();
        let scores = leverage_scores(&a, None).unwrap();
        let sum: f64 = scores.iter().sum();
        tk_assert!((sum - f.rank() as f64).abs() < 1e-6,
            "sum {} rank {}", sum, f.rank());
        for &s in &scores {
            tk_assert!((-1e-9..=1.0 + 1e-9).contains(&s));
        }
    });
}

#[test]
fn qr_reconstructs_and_q_orthonormal() {
    forall!(cfg(), (a in tall_matrix()) => {
        let f = qr(&a).unwrap();
        let rec = f.q.matmul(&f.r).unwrap();
        let scale = a.max_abs().max(1.0);
        tk_assert!(a.sub(&rec).unwrap().max_abs() < 1e-8 * scale);
        let qtq = f.q.transpose().matmul(&f.q).unwrap();
        tk_assert!(qtq.sub(&Matrix::identity(a.cols())).unwrap().max_abs() < 1e-8);
    });
}

#[test]
fn cholesky_roundtrip_on_generated_spd() {
    forall!(cfg(), (b in matrix_in(5, 5, -10.0, 10.0)) => {
        // A = B Bᵀ + 5 I is SPD for any B.
        let mut a = b.matmul(&b.transpose()).unwrap();
        for i in 0..5 { a[(i, i)] += 5.0; }
        let l = cholesky(&a).unwrap();
        let llt = l.matmul(&l.transpose()).unwrap();
        tk_assert!(a.sub(&llt).unwrap().max_abs() < 1e-7 * a.max_abs());
        // And the solver inverts it.
        let x_true = Matrix::from_fn(5, 1, |r, _| r as f64 - 2.0);
        let rhs = a.matmul(&x_true).unwrap();
        let x = cholesky_solve(&l, &rhs).unwrap();
        tk_assert!(x.sub(&x_true).unwrap().max_abs() < 1e-6);
    });
}

#[test]
fn sym_eigen_trace_and_orthogonality() {
    forall!(cfg(), (b in matrix_in(4, 4, -10.0, 10.0)) => {
        let a = b.add(&b.transpose()).unwrap(); // symmetrize
        let e = sym_eigen(&a).unwrap();
        let trace: f64 = (0..4).map(|i| a[(i, i)]).sum();
        let esum: f64 = e.values.iter().sum();
        tk_assert!((trace - esum).abs() < 1e-7 * trace.abs().max(1.0));
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        tk_assert!(vtv.sub(&Matrix::identity(4)).unwrap().max_abs() < 1e-8);
    });
}

#[test]
fn pinv_satisfies_apa_eq_a() {
    forall!(cfg(), (a in tall_matrix()) => {
        let p = pinv(&a).unwrap();
        let apa = a.matmul(&p).unwrap().matmul(&a).unwrap();
        let scale = a.max_abs().max(1.0);
        tk_assert!(apa.sub(&a).unwrap().max_abs() < 1e-5 * scale);
    });
}

#[test]
fn pearson_bounded_and_symmetric() {
    forall!(cfg(), (x in vec_of(f64_in(-100.0..100.0), 5..40),
                    y_seed in vec_of(f64_in(-100.0..100.0), 5..40)) => {
        let n = x.len().min(y_seed.len());
        let xs = &x[..n];
        let ys = &y_seed[..n];
        let r = stats::pearson(xs, ys).unwrap();
        tk_assert!((-1.0..=1.0).contains(&r));
        let r2 = stats::pearson(ys, xs).unwrap();
        tk_assert!((r - r2).abs() < 1e-12);
    });
}

#[test]
fn pearson_invariant_to_affine() {
    forall!(cfg(), (x in vec_of(f64_in(-10.0..10.0), 8..20),
                    scale in f64_in(0.1..10.0), shift in f64_in(-100.0..100.0)) => {
        let y: Vec<f64> = x.iter().enumerate().map(|(i, &v)| v + (i as f64).sin()).collect();
        let r1 = stats::pearson(&x, &y).unwrap();
        let xs: Vec<f64> = x.iter().map(|v| scale * v + shift).collect();
        let r2 = stats::pearson(&xs, &y).unwrap();
        tk_assert!((r1 - r2).abs() < 1e-8);
    });
}

#[test]
fn zscore_idempotent() {
    forall!(cfg(), (x in vec_of(f64_in(-50.0..50.0), 4..30)) => {
        let mut x = x;
        stats::zscore_in_place(&mut x);
        let once = x.clone();
        stats::zscore_in_place(&mut x);
        for (a, b) in once.iter().zip(&x) {
            tk_assert!((a - b).abs() < 1e-9);
        }
    });
}

#[test]
fn correlation_matrix_is_valid() {
    forall!(cfg(), (m in matrix_in(4, 12, -10.0, 10.0)) => {
        let c = stats::correlation_matrix(&m).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                tk_assert!((-1.0..=1.0).contains(&c[(i, j)]));
                tk_assert!((c[(i, j)] - c[(j, i)]).abs() < 1e-10);
            }
        }
    });
}

#[test]
fn argsort_desc_is_sorted_permutation() {
    forall!(cfg(), (v in vec_of(f64_in(-1000.0..1000.0), 0..50)) => {
        let idx = vector::argsort_desc(&v);
        tk_assert_eq!(idx.len(), v.len());
        let mut seen = idx.clone();
        seen.sort_unstable();
        tk_assert_eq!(seen, (0..v.len()).collect::<Vec<_>>());
        for w in idx.windows(2) {
            tk_assert!(v[w[0]] >= v[w[1]]);
        }
    });
}

#[test]
fn dot_is_bilinear() {
    forall!(cfg(), (a in vec_of(f64_in(-5.0..5.0), 10..11),
                    b in vec_of(f64_in(-5.0..5.0), 10..11),
                    c in vec_of(f64_in(-5.0..5.0), 10..11),
                    alpha in f64_in(-3.0..3.0)) => {
        // dot(αa + b, c) = α·dot(a,c) + dot(b,c)
        let combo: Vec<f64> = a.iter().zip(&b).map(|(x, y)| alpha * x + y).collect();
        let left = vector::dot(&combo, &c);
        let right = alpha * vector::dot(&a, &c) + vector::dot(&b, &c);
        tk_assert!((left - right).abs() < 1e-8);
    });
}

#[test]
fn nrmse_scale_behaviour() {
    forall!(cfg(), (truth in vec_of(f64_in(0.0..100.0), 4..20),
                    noise in f64_in(-0.5..0.5)) => {
        // Non-constant target guaranteed by adding an index ramp.
        let truth: Vec<f64> = truth.iter().enumerate().map(|(i, &t)| t + i as f64 * 10.0).collect();
        let pred: Vec<f64> = truth.iter().map(|&t| t + noise).collect();
        let e = stats::nrmse_percent(&pred, &truth).unwrap();
        tk_assert!(e >= 0.0);
        // Error of a constant-offset prediction is |noise| / range * 100.
        let range = truth.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - truth.iter().cloned().fold(f64::INFINITY, f64::min);
        tk_assert!((e - 100.0 * noise.abs() / range).abs() < 1e-6);
    });
}
