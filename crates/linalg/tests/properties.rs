//! Property-based tests for the linear-algebra substrate.
//!
//! Each property restates the mathematical definition the implementation
//! must satisfy, on randomized inputs — the proptest counterpart of the
//! hand-picked unit tests inside each module.

use neurodeanon_linalg::cholesky::{cholesky, cholesky_solve};
use neurodeanon_linalg::eigen::sym_eigen;
use neurodeanon_linalg::matrix::Matrix;
use neurodeanon_linalg::pinv::pinv;
use neurodeanon_linalg::qr::qr;
use neurodeanon_linalg::stats;
use neurodeanon_linalg::svd::{leverage_scores, thin_svd};
use neurodeanon_linalg::vector;
use proptest::prelude::*;

/// Strategy: a rows×cols matrix with entries in [-10, 10].
fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0_f64..10.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).expect("sized vec"))
}

/// Strategy: a random tall matrix with 4..=20 rows, 2..=4 cols, rows >= cols.
fn tall_matrix() -> impl Strategy<Value = Matrix> {
    (4usize..=20, 2usize..=4)
        .prop_flat_map(|(m, n)| matrix_strategy(m.max(n), n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_associative(a in matrix_strategy(4, 3), b in matrix_strategy(3, 5), c in matrix_strategy(5, 2)) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.sub(&right).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn matmul_distributes_over_add(a in matrix_strategy(3, 4), b in matrix_strategy(4, 3), c in matrix_strategy(4, 3)) {
        let left = a.matmul(&b.add(&c).unwrap()).unwrap();
        let right = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.sub(&right).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn transpose_of_product(a in matrix_strategy(4, 3), b in matrix_strategy(3, 5)) {
        // (AB)ᵀ = BᵀAᵀ
        let left = a.matmul(&b).unwrap().transpose();
        let right = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(left.sub(&right).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn gram_equals_ata(a in tall_matrix()) {
        let g = a.gram();
        let ata = a.transpose().matmul(&a).unwrap();
        prop_assert!(g.sub(&ata).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn svd_reconstructs(a in tall_matrix()) {
        let f = thin_svd(&a).unwrap();
        let rec = f.reconstruct().unwrap();
        let scale = a.max_abs().max(1.0);
        prop_assert!(a.sub(&rec).unwrap().max_abs() < 1e-7 * scale);
    }

    #[test]
    fn svd_v_orthonormal(a in tall_matrix()) {
        let f = thin_svd(&a).unwrap();
        let vtv = f.v.transpose().matmul(&f.v).unwrap();
        prop_assert!(vtv.sub(&Matrix::identity(a.cols())).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn svd_frobenius_identity(a in tall_matrix()) {
        // ‖A‖_F² = Σ σᵢ²
        let f = thin_svd(&a).unwrap();
        let fro2 = a.frobenius_norm().powi(2);
        let ssum: f64 = f.sigma.iter().map(|s| s * s).sum();
        prop_assert!((fro2 - ssum).abs() < 1e-6 * fro2.max(1.0));
    }

    #[test]
    fn leverage_scores_sum_to_rank_prop(a in tall_matrix()) {
        let f = thin_svd(&a).unwrap();
        let scores = leverage_scores(&a, None).unwrap();
        let sum: f64 = scores.iter().sum();
        prop_assert!((sum - f.rank() as f64).abs() < 1e-6,
            "sum {} rank {}", sum, f.rank());
        for &s in &scores {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&s));
        }
    }

    #[test]
    fn qr_reconstructs_and_q_orthonormal(a in tall_matrix()) {
        let f = qr(&a).unwrap();
        let rec = f.q.matmul(&f.r).unwrap();
        let scale = a.max_abs().max(1.0);
        prop_assert!(a.sub(&rec).unwrap().max_abs() < 1e-8 * scale);
        let qtq = f.q.transpose().matmul(&f.q).unwrap();
        prop_assert!(qtq.sub(&Matrix::identity(a.cols())).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn cholesky_roundtrip_on_generated_spd(b in matrix_strategy(5, 5)) {
        // A = B Bᵀ + 5 I is SPD for any B.
        let mut a = b.matmul(&b.transpose()).unwrap();
        for i in 0..5 { a[(i, i)] += 5.0; }
        let l = cholesky(&a).unwrap();
        let llt = l.matmul(&l.transpose()).unwrap();
        prop_assert!(a.sub(&llt).unwrap().max_abs() < 1e-7 * a.max_abs());
        // And the solver inverts it.
        let x_true = Matrix::from_fn(5, 1, |r, _| r as f64 - 2.0);
        let rhs = a.matmul(&x_true).unwrap();
        let x = cholesky_solve(&l, &rhs).unwrap();
        prop_assert!(x.sub(&x_true).unwrap().max_abs() < 1e-6);
    }

    #[test]
    fn sym_eigen_trace_and_orthogonality(b in matrix_strategy(4, 4)) {
        let a = b.add(&b.transpose()).unwrap(); // symmetrize
        let e = sym_eigen(&a).unwrap();
        let trace: f64 = (0..4).map(|i| a[(i, i)]).sum();
        let esum: f64 = e.values.iter().sum();
        prop_assert!((trace - esum).abs() < 1e-7 * trace.abs().max(1.0));
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        prop_assert!(vtv.sub(&Matrix::identity(4)).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn pinv_satisfies_apa_eq_a(a in tall_matrix()) {
        let p = pinv(&a).unwrap();
        let apa = a.matmul(&p).unwrap().matmul(&a).unwrap();
        let scale = a.max_abs().max(1.0);
        prop_assert!(apa.sub(&a).unwrap().max_abs() < 1e-5 * scale);
    }

    #[test]
    fn pearson_bounded_and_symmetric(x in prop::collection::vec(-100.0_f64..100.0, 5..40),
                                     y_seed in prop::collection::vec(-100.0_f64..100.0, 5..40)) {
        let n = x.len().min(y_seed.len());
        let xs = &x[..n];
        let ys = &y_seed[..n];
        let r = stats::pearson(xs, ys).unwrap();
        prop_assert!((-1.0..=1.0).contains(&r));
        let r2 = stats::pearson(ys, xs).unwrap();
        prop_assert!((r - r2).abs() < 1e-12);
    }

    #[test]
    fn pearson_invariant_to_affine(x in prop::collection::vec(-10.0_f64..10.0, 8..20),
                                   scale in 0.1_f64..10.0, shift in -100.0_f64..100.0) {
        let y: Vec<f64> = x.iter().enumerate().map(|(i, &v)| v + (i as f64).sin()).collect();
        let r1 = stats::pearson(&x, &y).unwrap();
        let xs: Vec<f64> = x.iter().map(|v| scale * v + shift).collect();
        let r2 = stats::pearson(&xs, &y).unwrap();
        prop_assert!((r1 - r2).abs() < 1e-8);
    }

    #[test]
    fn zscore_idempotent(mut x in prop::collection::vec(-50.0_f64..50.0, 4..30)) {
        stats::zscore_in_place(&mut x);
        let once = x.clone();
        stats::zscore_in_place(&mut x);
        for (a, b) in once.iter().zip(&x) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn correlation_matrix_is_valid(m in matrix_strategy(4, 12)) {
        let c = stats::correlation_matrix(&m).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                prop_assert!((-1.0..=1.0).contains(&c[(i, j)]));
                prop_assert!((c[(i, j)] - c[(j, i)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn argsort_desc_is_sorted_permutation(v in prop::collection::vec(-1000.0_f64..1000.0, 0..50)) {
        let idx = vector::argsort_desc(&v);
        prop_assert_eq!(idx.len(), v.len());
        let mut seen = idx.clone();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..v.len()).collect::<Vec<_>>());
        for w in idx.windows(2) {
            prop_assert!(v[w[0]] >= v[w[1]]);
        }
    }

    #[test]
    fn dot_is_bilinear(a in prop::collection::vec(-5.0_f64..5.0, 10),
                       b in prop::collection::vec(-5.0_f64..5.0, 10),
                       c in prop::collection::vec(-5.0_f64..5.0, 10),
                       alpha in -3.0_f64..3.0) {
        // dot(αa + b, c) = α·dot(a,c) + dot(b,c)
        let combo: Vec<f64> = a.iter().zip(&b).map(|(x, y)| alpha * x + y).collect();
        let left = vector::dot(&combo, &c);
        let right = alpha * vector::dot(&a, &c) + vector::dot(&b, &c);
        prop_assert!((left - right).abs() < 1e-8);
    }

    #[test]
    fn nrmse_scale_behaviour(truth in prop::collection::vec(0.0_f64..100.0, 4..20),
                             noise in -0.5_f64..0.5) {
        // Non-constant target guaranteed by adding an index ramp.
        let truth: Vec<f64> = truth.iter().enumerate().map(|(i, &t)| t + i as f64 * 10.0).collect();
        let pred: Vec<f64> = truth.iter().map(|&t| t + noise).collect();
        let e = stats::nrmse_percent(&pred, &truth).unwrap();
        prop_assert!(e >= 0.0);
        // Error of a constant-offset prediction is |noise| / range * 100.
        let range = truth.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - truth.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!((e - 100.0 * noise.abs() / range).abs() < 1e-6);
    }
}
