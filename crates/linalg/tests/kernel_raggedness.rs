//! Bitwise contracts of the cache-blocked kernels at ragged shapes.
//!
//! The register-tiled `matmul` microkernel (`MATMUL_MR × MATMUL_NR` tiles,
//! `BLOCK`-sized k panels) and the `GRAM_ROW_BLOCK`-folded `gram` kernel
//! both promise **bit-identical** results to a naive single-accumulator
//! loop: every output element is one f64 accumulator updated in ascending
//! reduction order, and storing/reloading an f64 between k-blocks is exact.
//! Tiling only pays off — and only hides bugs — at the block boundaries, so
//! these properties sweep the ragged edges: dimension 1, `BLOCK ± 1`,
//! exact multiples of the tile sizes, and primes that leave remainders in
//! every loop.
//!
//! Inputs avoid exact zeros: the single-row matmul path keeps a historical
//! `aik == 0.0` skip whose only observable effect is on signed zeros and
//! non-finite operands, neither of which group matrices contain.

use neurodeanon_linalg::matrix::{Matrix, BLOCK, GRAM_ROW_BLOCK, MATMUL_MR, MATMUL_NR};
use neurodeanon_testkit::gen::u64_in;
use neurodeanon_testkit::{forall, tk_assert, tk_assert_eq, Config};

/// Naive matmul: one k-ascending accumulator per output element — the
/// reference semantics the blocked kernel must reproduce bit-for-bit.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for kk in 0..k {
                acc += a[(i, kk)] * b[(kk, j)];
            }
            out[(i, j)] = acc;
        }
    }
    out
}

/// Naive Gram: r-ascending accumulation per upper-triangle element, then
/// mirror — valid as a bitwise reference for `m <= GRAM_ROW_PANEL` (one
/// row panel, so no partial-merge additions reorder anything).
fn naive_gram(a: &Matrix) -> Matrix {
    let (m, n) = a.shape();
    let mut g = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let mut acc = 0.0f64;
            for r in 0..m {
                acc += a[(r, i)] * a[(r, j)];
            }
            g[(i, j)] = acc;
            g[(j, i)] = acc;
        }
    }
    g
}

fn assert_bits_equal(got: &Matrix, want: &Matrix, ctx: &str) -> Result<(), String> {
    tk_assert_eq!(got.shape(), want.shape(), "{ctx}");
    for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
        tk_assert!(
            x.to_bits() == y.to_bits(),
            "{ctx}: {x} != {y} ({:#x} vs {:#x})",
            x.to_bits(),
            y.to_bits()
        );
    }
    Ok(())
}

/// Dense nonzero test matrix: uniform in ±[0.25, 4.25], never exactly zero.
fn nonzero_matrix(rng: &mut neurodeanon_linalg::Rng64, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        let mag = 0.25 + rng.uniform_range(0.0, 4.0);
        if rng.below(2) == 0 {
            mag
        } else {
            -mag
        }
    })
}

#[test]
fn blocked_matmul_is_bitwise_naive_at_ragged_shapes() {
    // Every loop in the kernel has a boundary here: m covers the MR stripe
    // remainder, n the NR tile remainder, k the BLOCK panel remainder.
    let shapes: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, BLOCK - 1, MATMUL_NR + 1),
        (MATMUL_MR - 1, BLOCK + 1, MATMUL_NR - 1),
        (MATMUL_MR, BLOCK, MATMUL_NR),
        (MATMUL_MR + 1, 1, 2 * MATMUL_NR + 3),
        (2 * MATMUL_MR + 1, BLOCK + 1, MATMUL_NR + 1),
        (7, 67, 11),
        (13, 129, 5),
        (31, 63, 17),
    ];
    forall!(Config::cases(4), (seed in u64_in(0..10_000)) => {
        let mut rng = neurodeanon_linalg::Rng64::new(seed);
        for &(m, k, n) in shapes {
            let a = nonzero_matrix(&mut rng, m, k);
            let b = nonzero_matrix(&mut rng, k, n);
            let got = a.matmul(&b).unwrap();
            let want = naive_matmul(&a, &b);
            assert_bits_equal(&got, &want, &format!("matmul {m}x{k}x{n}"))?;
        }
    });
}

#[test]
fn blocked_gram_is_bitwise_naive_at_ragged_shapes() {
    // m sweeps the GRAM_ROW_BLOCK fold boundary (all < GRAM_ROW_PANEL so
    // the naive flat accumulation is the exact merge order); n sweeps tiny
    // and prime column counts.
    let shapes: &[(usize, usize)] = &[
        (1, 1),
        (GRAM_ROW_BLOCK - 1, 3),
        (GRAM_ROW_BLOCK, 8),
        (GRAM_ROW_BLOCK + 1, 9),
        (BLOCK - 1, 5),
        (BLOCK + 1, 17),
        (127, 7),
        (251, 13),
    ];
    forall!(Config::cases(4), (seed in u64_in(0..10_000)) => {
        let mut rng = neurodeanon_linalg::Rng64::new(seed);
        for &(m, n) in shapes {
            let a = nonzero_matrix(&mut rng, m, n);
            let got = a.gram();
            let want = naive_gram(&a);
            assert_bits_equal(&got, &want, &format!("gram {m}x{n}"))?;
        }
    });
}

/// The microkernel consts the shape lists above are built from must keep
/// the relationships the kernels assume; a change here is a determinism-
/// contract change and needs the DESIGN.md §1.5 story updated with it.
#[test]
fn kernel_block_consts_are_as_documented() {
    assert_eq!(BLOCK, 64);
    assert_eq!(MATMUL_MR, 4);
    assert_eq!(MATMUL_NR, 8);
    assert_eq!(GRAM_ROW_BLOCK, 8);
}
