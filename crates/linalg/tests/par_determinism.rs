//! Determinism contract of `linalg::par`: every parallel kernel must return
//! **bit-identical** results at any thread count.
//!
//! Each property computes a reference result with the thread count forced to
//! 1 and re-runs the same kernel at 2 and 8 threads (oversubscribing the
//! host if needed — `with_thread_count` permits that deliberately), comparing
//! outputs with `f64::to_bits`, not a tolerance. Shapes are chosen so the
//! work sizes actually cross each kernel's parallel threshold; a dedicated
//! case pins the behavior just below and just above the matmul cutoff.

use neurodeanon_linalg::matrix::Matrix;
use neurodeanon_linalg::par::with_thread_count;
use neurodeanon_linalg::stats::{correlation_matrix, cross_correlation};
use neurodeanon_linalg::svd::thin_svd;
use neurodeanon_testkit::gen::matrix_in;
use neurodeanon_testkit::{forall, tk_assert, Config};

/// Thread counts every kernel is exercised at (1 is the reference).
const THREAD_COUNTS: [usize; 2] = [2, 8];

fn bits_equal(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn vec_bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

#[test]
fn matmul_bitwise_across_thread_counts() {
    // 160 · 170 · 160 ≈ 4.35M multiply-adds: above the 1 << 22 cutoff.
    forall!(Config::cases(4), (a in matrix_in(160, 170, -5.0, 5.0),
                               b in matrix_in(170, 160, -5.0, 5.0)) => {
        let reference = with_thread_count(1, || a.matmul(&b).unwrap());
        for t in THREAD_COUNTS {
            let par = with_thread_count(t, || a.matmul(&b).unwrap());
            tk_assert!(bits_equal(&reference, &par), "matmul diverged at {t} threads");
        }
    });
}

#[test]
fn matmul_bitwise_at_threshold_boundary() {
    // 128 · 128 · 255 = 4,177,920 sits just below the 1 << 22 = 4,194,304
    // cutoff (inline path); 128 · 128 · 257 = 4,210,688 just above it
    // (parallel path). Both must agree with the 1-thread run bit-for-bit.
    forall!(Config::cases(3), (a in matrix_in(128, 128, -3.0, 3.0),
                               below in matrix_in(128, 255, -3.0, 3.0),
                               above in matrix_in(128, 257, -3.0, 3.0)) => {
        for b in [&below, &above] {
            let reference = with_thread_count(1, || a.matmul(b).unwrap());
            for t in THREAD_COUNTS {
                let par = with_thread_count(t, || a.matmul(b).unwrap());
                tk_assert!(bits_equal(&reference, &par),
                           "matmul boundary ({}x{}) diverged at {t} threads",
                           b.rows(), b.cols());
            }
        }
    });
}

#[test]
fn single_row_matmul_tiles_over_columns_bitwise() {
    // 1 × 2000 · 2000 × 4000 = 8M multiply-adds: the old `m >= 2` guard
    // forced this wide product onto one thread; it now tiles over output
    // columns and must still be exact.
    forall!(Config::cases(3), (a in matrix_in(1, 2000, -2.0, 2.0),
                               b in matrix_in(2000, 4000, -2.0, 2.0)) => {
        let reference = with_thread_count(1, || a.matmul(&b).unwrap());
        for t in THREAD_COUNTS {
            let par = with_thread_count(t, || a.matmul(&b).unwrap());
            tk_assert!(bits_equal(&reference, &par),
                       "column-tiled matmul diverged at {t} threads");
        }
    });
}

#[test]
fn gram_bitwise_across_thread_counts() {
    // 1200 rows → three 512-row panels; 1200 · (50²/2 + 1) ≈ 1.5M crosses
    // the gram threshold.
    forall!(Config::cases(4), (a in matrix_in(1200, 50, -4.0, 4.0)) => {
        let reference = with_thread_count(1, || a.gram());
        for t in THREAD_COUNTS {
            let par = with_thread_count(t, || a.gram());
            tk_assert!(bits_equal(&reference, &par), "gram diverged at {t} threads");
        }
    });
}

#[test]
fn correlation_matrix_bitwise_across_thread_counts() {
    // 80 series → 6 upper-triangle 32×32 blocks over 500 time points.
    forall!(Config::cases(4), (m in matrix_in(80, 500, -6.0, 6.0)) => {
        let reference = with_thread_count(1, || correlation_matrix(&m).unwrap());
        for t in THREAD_COUNTS {
            let par = with_thread_count(t, || correlation_matrix(&m).unwrap());
            tk_assert!(bits_equal(&reference, &par),
                       "correlation_matrix diverged at {t} threads");
        }
    });
}

#[test]
fn cross_correlation_bitwise_across_thread_counts() {
    // 2000 observations exercise both the parallel z-score path
    // (40 · 2000 > 2¹⁶) and the parallel similarity rows (1200 · 2000 > 2²⁰).
    forall!(Config::cases(3), (a in matrix_in(2000, 40, -3.0, 3.0),
                               b in matrix_in(2000, 30, -3.0, 3.0)) => {
        let reference = with_thread_count(1, || cross_correlation(&a, &b).unwrap());
        for t in THREAD_COUNTS {
            let par = with_thread_count(t, || cross_correlation(&a, &b).unwrap());
            tk_assert!(bits_equal(&reference, &par),
                       "cross_correlation diverged at {t} threads");
        }
    });
}

#[test]
fn jacobi_svd_bitwise_across_thread_counts() {
    // 300 × 160 has m < 2n, forcing the Jacobi route; each round-robin round
    // holds 80 disjoint pairs at 8 · 300 work each, crossing the Jacobi
    // threshold.
    forall!(Config::cases(2), (a in matrix_in(300, 160, -2.0, 2.0)) => {
        let reference = with_thread_count(1, || thin_svd(&a).unwrap());
        for t in THREAD_COUNTS {
            let par = with_thread_count(t, || thin_svd(&a).unwrap());
            tk_assert!(vec_bits_equal(&reference.sigma, &par.sigma),
                       "jacobi sigma diverged at {t} threads");
            tk_assert!(bits_equal(&reference.u, &par.u), "jacobi U diverged at {t} threads");
            tk_assert!(bits_equal(&reference.v, &par.v), "jacobi V diverged at {t} threads");
        }
    });
}
