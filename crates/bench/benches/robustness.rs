//! Corruption-severity robustness sweep: accuracy/margin curves per fault
//! kind under the `mask` and `impute` degradation policies, recorded to the
//! bench JSON trajectory (`NEURODEANON_BENCH_JSON`, default
//! `bench_results.jsonl`) as group `robustness_sweep`.
//!
//! Invariants asserted here, not just in the unit suites:
//! - severity 0 reproduces the clean baseline **bit-identically** for every
//!   fault kind and policy (the degradation layer's acceptance criterion);
//! - accuracy decays weakly monotonically along each severity curve
//!   (small tolerance for the discreteness of tiny cohorts);
//! - no recorded accuracy or margin is NaN.
//!
//! Scale comes from `NEURODEANON_BENCH_SCALE` (`small` default; `paper`
//! runs the full HCP shape with a denser severity grid).

use neurodeanon_bench::fail;
use neurodeanon_bench::scale::Scale;
use neurodeanon_bench::timing::{self, Bench};
use neurodeanon_core::attack::DegradedInput;
use neurodeanon_core::experiments::robustness::{robustness_sweep, RobustnessResult};
use neurodeanon_datasets::CorruptionKind;
use neurodeanon_testkit::json;
use std::path::PathBuf;

fn bench_json_path() -> PathBuf {
    std::env::var("NEURODEANON_BENCH_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("bench_results.jsonl"))
}

/// Per-kind curve must not *gain* accuracy as severity rises (tolerance
/// absorbs one subject flipping on a tiny cohort).
fn assert_weakly_monotone(res: &RobustnessResult, tolerance: f64) {
    for &kind in CorruptionKind::ALL.iter() {
        let curve: Vec<(f64, f64)> = res
            .points
            .iter()
            .filter(|p| p.kind == kind)
            .filter_map(|p| p.accuracy.map(|a| (p.severity, a)))
            .collect();
        for w in curve.windows(2) {
            assert!(
                w[1].1 <= w[0].1 + tolerance,
                "{kind}: accuracy rose with severity: {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
    }
}

fn main() {
    let scale = match std::env::var("NEURODEANON_BENCH_SCALE") {
        Ok(v) => Scale::parse(&v).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        }),
        Err(_) => Scale::Small,
    };
    let (scale_name, severities): (&str, &[f64]) = match scale {
        Scale::Small => ("small", &[0.0, 0.25, 0.5, 1.0]),
        Scale::Paper => ("paper", &[0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0]),
    };
    let json_path = bench_json_path();
    let cohort = scale.hcp(0x0b5e55ed);
    let b = Bench::new("robustness").iters(1).warmup(0);

    let mut records = 0usize;
    for policy in [DegradedInput::Mask, DegradedInput::Impute] {
        let mut res: Option<RobustnessResult> = None;
        let sample = b.run(
            &format!("robustness_{}_{scale_name}", policy.name()),
            || {
                res = Some(
                    robustness_sweep(&cohort, severities, policy, 0xDE6)
                        .unwrap_or_else(|e| fail(&format!("{e} at robustness.rs:{}", line!()))),
                );
            },
        );
        let res = res.unwrap_or_else(|| fail("robustness sweep produced no result"));

        assert!(
            res.baseline_accuracy.is_finite() && res.baseline_accuracy > 0.5,
            "{policy}: implausible clean baseline {}",
            res.baseline_accuracy
        );
        for p in res.points.iter().filter(|p| p.severity == 0.0) {
            assert_eq!(
                p.accuracy.map(f64::to_bits),
                Some(res.baseline_accuracy.to_bits()),
                "{policy}/{}: severity-0 must be bit-identical to clean",
                p.kind
            );
        }
        assert_weakly_monotone(&res, 0.15);

        for p in &res.points {
            if let Some(a) = p.accuracy {
                assert!(a.is_finite(), "{policy}/{}: NaN accuracy", p.kind);
            }
            if let Some(m) = p.mean_margin {
                assert!(m.is_finite(), "{policy}/{}: NaN margin", p.kind);
            }
            // NaN serializes as null in the in-repo JSON writer, so the
            // Option fields map onto nullable JSONL columns.
            let rec = json!({
                "group": "robustness_sweep",
                "scale": scale_name,
                "policy": policy.name(),
                "kind": p.kind.name(),
                "severity": p.severity,
                "baseline_accuracy": res.baseline_accuracy,
                "accuracy": p.accuracy.unwrap_or(f64::NAN),
                "mean_margin": p.mean_margin.unwrap_or(f64::NAN),
                "recovered_accuracy": p.recovered_accuracy.unwrap_or(f64::NAN),
                "error": p.error.clone().unwrap_or_default(),
                "sweep_ns": sample.median.as_nanos() as f64,
            });
            if let Err(e) = timing::append_jsonl(&json_path, &rec) {
                eprintln!("bench json append failed for {}: {e}", json_path.display());
            }
            records += 1;
        }
        println!(
            "{policy}: baseline {:.3}, {} points in {:?}",
            res.baseline_accuracy,
            res.points.len(),
            sample.median
        );
    }

    // The trajectory must stay machine-readable end to end.
    let text = std::fs::read_to_string(&json_path)
        .unwrap_or_else(|e| fail(&format!("bench trajectory readable: {e}")));
    let mut ours = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let v = neurodeanon_testkit::json::parse(line)
            .unwrap_or_else(|e| fail(&format!("trajectory line parses as JSON: {e}")));
        if v.get("group").and_then(|g| g.as_str()) == Some("robustness_sweep") {
            ours += 1;
        }
    }
    assert!(
        ours >= records,
        "expected {records} robustness_sweep records in the trajectory, found {ours}"
    );
    println!(
        "trajectory {} verified: {ours} robustness_sweep records",
        json_path.display()
    );
}
