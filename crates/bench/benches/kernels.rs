//! Raw-speed floor for the attack's hot kernels: cache-blocked `matmul`,
//! `gram`, and the fused z-score + cross-correlation pass, timed at 1 and 8
//! forced threads, in f64 and (for the fused query path) the f32-gallery
//! variant. Each case emits one `kernel_bench` JSONL record carrying
//! GFLOP/s, and the committed `kernel_baseline.jsonl` gates regressions:
//! a case more than 25% below its best committed baseline is a soft
//! warning while the label has a single baseline record and a hard failure
//! once two or more exist (set `NEURODEANON_UPDATE_KERNEL_BASELINE=1` to
//! append the current run as a new baseline).
//!
//! The bench also times the `LeverageBank` builds — exact thin SVD,
//! one-sided Jacobi, and the blocked randomized subspace iteration — and at
//! paper scale asserts the subspace build is ≥3× faster than Jacobi and
//! that the subspace feature-count ablation tracks the exact path within
//! 0.5pp mean accuracy.
//!
//! Scale comes from `NEURODEANON_BENCH_SCALE` (`small` default; `paper`
//! runs the 64,620 × 100 HCP shape of §3.1.2).

use neurodeanon_bench::fail;
use neurodeanon_bench::scale::Scale;
use neurodeanon_bench::timing::{self, Bench, Sample};
use neurodeanon_core::attack::{AttackConfig, AttackPlan, MatchRule};
use neurodeanon_datasets::{Session, Task};
use neurodeanon_linalg::par::with_thread_count;
use neurodeanon_linalg::rsvd::RsvdConfig;
use neurodeanon_linalg::stats::{
    cross_correlation_fused_f32_into, cross_correlation_fused_into, zscored_cols_into,
};
use neurodeanon_linalg::svd::jacobi_svd;
use neurodeanon_linalg::vector::argmax;
use neurodeanon_linalg::Matrix;
use neurodeanon_sampling::LeverageBank;
use neurodeanon_testkit::{json, Value};
use std::path::{Path, PathBuf};

/// Committed per-label GFLOP/s baselines (lives in the repo, unlike the
/// gitignored trajectory file).
const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/benches/kernel_baseline.jsonl");

/// Regression gate: fail/warn when a case drops below this fraction of its
/// best committed baseline GFLOP/s.
const REGRESSION_FLOOR: f64 = 0.75;

fn bench_json_path() -> PathBuf {
    std::env::var("NEURODEANON_BENCH_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("bench_results.jsonl"))
}

/// One timed kernel case: its sample plus the GFLOP/s derived from the
/// fastest iteration.
struct KernelCase {
    sample: Sample,
    gflops: f64,
    threads: usize,
}

impl KernelCase {
    fn new(sample: Sample, flops: f64, threads: usize) -> Self {
        let gflops = flops / sample.min.as_nanos().max(1) as f64;
        KernelCase {
            sample,
            gflops,
            threads,
        }
    }

    fn to_json(&self, scale: &str) -> Value {
        json!({
            "group": "kernel_bench",
            "label": self.sample.label.as_str(),
            "scale": scale,
            "threads": self.threads as f64,
            "min_ns": self.sample.min.as_nanos() as f64,
            "median_ns": self.sample.median.as_nanos() as f64,
            "mean_ns": self.sample.mean.as_nanos() as f64,
            "gflops": self.gflops,
        })
    }
}

fn append(path: &Path, rec: &Value) {
    if let Err(e) = timing::append_jsonl(path, rec) {
        eprintln!("bench json append failed for {}: {e}", path.display());
    }
}

/// Baseline records for one label: every committed GFLOP/s figure.
fn baseline_gflops(baseline: &[Value], label: &str) -> Vec<f64> {
    baseline
        .iter()
        .filter(|v| v.get("label").and_then(Value::as_str) == Some(label))
        .filter_map(|v| v.get("gflops").and_then(Value::as_f64))
        .collect()
}

fn load_baseline(path: &Path) -> Vec<Value> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            neurodeanon_testkit::json::parse(l)
                .unwrap_or_else(|e| fail(&format!("kernel baseline line parses: {e}")))
        })
        .collect()
}

fn main() {
    // `--trace` turns on the obs span recorder for the whole bench run and
    // prints the aggregated tree at the end; results are unaffected by
    // contract (DESIGN.md §1.6), so the GFLOP/s gate still applies.
    let traced = std::env::args().skip(1).any(|a| a == "--trace");
    if traced {
        neurodeanon_obs::enable();
    }
    let scale = match std::env::var("NEURODEANON_BENCH_SCALE") {
        Ok(v) => Scale::parse(&v).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        }),
        Err(_) => Scale::Small,
    };
    let scale_name = match scale {
        Scale::Small => "small",
        Scale::Paper => "paper",
    };
    let json_path = bench_json_path();
    let baseline_path = PathBuf::from(BASELINE_PATH);
    let baseline = load_baseline(&baseline_path);

    let cohort = scale.hcp(0x5eed);
    let known = cohort
        .group_matrix(Task::Rest, Session::One)
        .unwrap_or_else(|e| fail(&format!("{e} at kernels.rs:{}", line!())));
    let anon = cohort
        .group_matrix(Task::Rest, Session::Two)
        .unwrap_or_else(|e| fail(&format!("{e} at kernels.rs:{}", line!())));
    let a = known.as_matrix();
    let b = anon.as_matrix();
    let (m, n) = a.shape();
    println!("kernels @ {scale_name}: {m} features x {n} subjects");

    let iters = match scale {
        Scale::Small => 15,
        Scale::Paper => 3,
    };
    let bench = Bench::new("kernels").iters(iters).warmup(1);

    // Shared operands, built once outside the timed regions.
    let at = a.transpose();
    let mut az = Matrix::zeros(0, 0);
    zscored_cols_into(a, &mut az);
    let az32: Vec<f32> = az.as_slice().iter().map(|&v| v as f32).collect();

    let mut cases: Vec<KernelCase> = Vec::new();
    let mut out64 = Matrix::zeros(0, 0);
    let mut out32 = Matrix::zeros(0, 0);
    for threads in [1usize, 8] {
        with_thread_count(threads, || {
            // (n x m) · (m x n): the Gram-shaped product the thin SVD's
            // U-recovery and the rsvd projections are made of.
            let s = bench.run(&format!("matmul_{scale_name}_t{threads}"), || {
                at.matmul(a)
                    .unwrap_or_else(|e| fail(&format!("{e} at kernels.rs:{}", line!())))
            });
            cases.push(KernelCase::new(s, 2.0 * (n * m * n) as f64, threads));

            // AᵀA via the symmetric row-panel kernel (thin SVD's Gram route).
            let s = bench.run(&format!("gram_{scale_name}_t{threads}"), || a.gram());
            cases.push(KernelCase::new(s, (m * n * (n + 1)) as f64, threads));

            // The plan's steady-state query path: transpose + z-score +
            // correlate in one blocked pass, f64 gallery.
            let mut bz = Matrix::zeros(0, 0);
            let mut out = Matrix::zeros(0, 0);
            let s = bench.run(&format!("fused_xcorr_{scale_name}_t{threads}"), || {
                cross_correlation_fused_into(&az, b, &mut bz, &mut out)
                    .unwrap_or_else(|e| fail(&format!("{e} at kernels.rs:{}", line!())))
            });
            cases.push(KernelCase::new(s, 2.0 * (n * n * m) as f64, threads));
            if threads == 1 {
                out64 = out.clone();
            }

            // Same pass over the f32 gallery (half the steady-state bytes).
            let s = bench.run(&format!("fused_xcorr_f32_{scale_name}_t{threads}"), || {
                cross_correlation_fused_f32_into(&az32, n, b, &mut bz, &mut out)
                    .unwrap_or_else(|e| fail(&format!("{e} at kernels.rs:{}", line!())))
            });
            cases.push(KernelCase::new(s, 2.0 * (n * n * m) as f64, threads));
            if threads == 1 {
                out32 = out.clone();
            }
        });
    }

    // The f32 gallery may flip argmax only where the f64 margin is within
    // the ~t·2⁻²⁴ storage-rounding band — a small fraction of queries on
    // any cohort, paper scale included.
    let q = out64.cols();
    let disagreements = (0..q)
        .filter(|&j| argmax(&out64.col(j)) != argmax(&out32.col(j)))
        .count();
    assert!(
        disagreements * 20 <= q,
        "f32 gallery flipped {disagreements}/{q} argmax decisions"
    );
    println!("f32 vs f64 argmax disagreements: {disagreements}/{q}");

    // ---- LeverageBank builds: exact thin SVD vs one-sided Jacobi vs the
    // blocked randomized subspace iteration.
    let build = Bench::new("kernels").iters(1).warmup(0);
    let s_exact = build.run(&format!("bank_exact_{scale_name}"), || {
        LeverageBank::new(a).unwrap_or_else(|e| fail(&format!("{e} at kernels.rs:{}", line!())))
    });
    // Rank 48 + two power iterations: the subspace build has ~60x headroom
    // against the 3x Jacobi gate, so spend a little of it on capturing more
    // leverage mass — this is what holds the ablation delta under 0.5pp.
    let rsvd_cfg = RsvdConfig {
        rank: 48.min(n),
        power_iters: 2,
        ..Default::default()
    };
    let s_subspace = build.run(&format!("bank_subspace_{scale_name}"), || {
        LeverageBank::new_subspace(a, &rsvd_cfg)
            .unwrap_or_else(|e| fail(&format!("{e} at kernels.rs:{}", line!())))
    });
    let s_jacobi = build.run(&format!("bank_jacobi_{scale_name}"), || {
        jacobi_svd(a).unwrap_or_else(|e| fail(&format!("{e} at kernels.rs:{}", line!())))
    });
    let vs_jacobi = s_jacobi.min.as_nanos() as f64 / s_subspace.min.as_nanos().max(1) as f64;
    let vs_exact = s_exact.min.as_nanos() as f64 / s_subspace.min.as_nanos().max(1) as f64;
    println!("bank build: subspace is {vs_jacobi:.2}x faster than jacobi, {vs_exact:.2}x vs exact");
    if scale == Scale::Paper {
        assert!(
            vs_jacobi >= 3.0,
            "subspace bank build must be >=3x faster than the Jacobi path at paper scale, got {vs_jacobi:.2}x"
        );
    }
    for (s, speedup) in [
        (&s_exact, None),
        (&s_subspace, Some(vs_jacobi)),
        (&s_jacobi, None),
    ] {
        let rec = match speedup {
            Some(x) => json!({
                "group": "bank_build",
                "label": s.label.as_str(),
                "scale": scale_name,
                "min_ns": s.min.as_nanos() as f64,
                "median_ns": s.median.as_nanos() as f64,
                "mean_ns": s.mean.as_nanos() as f64,
                "speedup_vs_jacobi": x,
            }),
            None => s.to_json("bank_build"),
        };
        append(&json_path, &rec);
    }

    // ---- Subspace ablation tracking: mean accuracy across the Figure 4
    // feature-count sweep must degrade by <0.5pp vs the exact bank.
    let t_values = [50usize, 100, 200, 300];
    let mut exact_plan = AttackPlan::prepare(known.clone(), AttackConfig::default())
        .unwrap_or_else(|e| fail(&format!("{e} at kernels.rs:{}", line!())));
    let mut subspace_plan = AttackPlan::prepare(
        known.clone(),
        AttackConfig {
            randomized: Some(rsvd_cfg.clone()),
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| fail(&format!("{e} at kernels.rs:{}", line!())));
    let mut mean_exact = 0.0;
    let mut mean_subspace = 0.0;
    for &t in &t_values {
        mean_exact += exact_plan
            .run_with(&anon, t, MatchRule::Argmax)
            .unwrap_or_else(|e| fail(&format!("{e} at kernels.rs:{}", line!())))
            .accuracy;
        mean_subspace += subspace_plan
            .run_with(&anon, t, MatchRule::Argmax)
            .unwrap_or_else(|e| fail(&format!("{e} at kernels.rs:{}", line!())))
            .accuracy;
    }
    mean_exact /= t_values.len() as f64;
    mean_subspace /= t_values.len() as f64;
    let degradation = mean_exact - mean_subspace;
    println!(
        "ablation mean accuracy: exact {mean_exact:.4}, subspace {mean_subspace:.4} (delta {degradation:+.4})"
    );
    if scale == Scale::Paper {
        assert!(
            degradation < 0.005,
            "subspace ablation degraded mean accuracy by {degradation:.4} (>0.5pp)"
        );
    }

    // ---- Emit kernel records and apply the baseline regression gate.
    let mut failures: Vec<String> = Vec::new();
    for case in &cases {
        let rec = case.to_json(scale_name);
        append(&json_path, &rec);
        let prior = baseline_gflops(&baseline, &case.sample.label);
        if prior.is_empty() {
            continue;
        }
        let best = prior.iter().fold(f64::MIN, |a, &b| a.max(b));
        if case.gflops < REGRESSION_FLOOR * best {
            let msg = format!(
                "{}: {:.3} GFLOP/s is more than 25% below the committed baseline {:.3}",
                case.sample.label, case.gflops, best
            );
            if prior.len() == 1 {
                eprintln!("WARNING (single baseline record, not yet gating): {msg}");
            } else {
                failures.push(msg);
            }
        }
    }
    assert!(
        failures.is_empty(),
        "kernel regression gate failed:\n  {}",
        failures.join("\n  ")
    );

    if std::env::var("NEURODEANON_UPDATE_KERNEL_BASELINE").as_deref() == Ok("1") {
        for case in &cases {
            append(&baseline_path, &case.to_json(scale_name));
        }
        println!(
            "appended {} records to {}",
            cases.len(),
            baseline_path.display()
        );
    }

    // The trajectory must stay machine-readable end to end.
    let text = std::fs::read_to_string(&json_path)
        .unwrap_or_else(|e| fail(&format!("bench trajectory readable: {e}")));
    let ours = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            neurodeanon_testkit::json::parse(l)
                .unwrap_or_else(|e| fail(&format!("trajectory line parses as JSON: {e}")))
        })
        .filter(|v| v.get("group").and_then(Value::as_str) == Some("kernel_bench"))
        .count();
    assert!(
        ours >= cases.len(),
        "expected {} kernel_bench records in the trajectory, found {ours}",
        cases.len()
    );
    println!(
        "trajectory {} verified: {ours} kernel_bench records",
        json_path.display()
    );

    if traced {
        let snap = neurodeanon_obs::snapshot();
        eprintln!("--- trace ---");
        eprint!("{}", snap.render_tree());
        neurodeanon_bench::trace::export_jsonl(&snap, "kernels", &json_path)
            .unwrap_or_else(|e| fail(&format!("trace export writes: {e}")));
    }
}
