//! Sweep-shaped attack benchmarks: the memoized `AttackPlan` against the
//! direct per-call path, on the two sweep shapes the paper's evaluation is
//! built from — the Figure 4 retained-feature-count sweep and the Figure 5
//! 8 × 8 cross-task grid.
//!
//! Both paths must produce **bit-identical** outcomes (asserted here, not
//! just in the unit suites), and the plan path must perform exactly one
//! thin SVD per known matrix (asserted via the `linalg::svd` call counter).
//! Timings land in the bench JSON trajectory (`NEURODEANON_BENCH_JSON`,
//! default `bench_results.jsonl`), including the measured speedup, and the
//! trajectory is re-parsed with `testkit::json` before exit.
//!
//! Scale comes from `NEURODEANON_BENCH_SCALE` (`small` default; `paper`
//! runs the 64,620 × 100 HCP shape of §3.1.2).

use neurodeanon_bench::fail;
use neurodeanon_bench::scale::Scale;
use neurodeanon_bench::timing::{self, Bench, Sample};
use neurodeanon_core::attack::{AttackConfig, AttackOutcome, AttackPlan, DeanonAttack, MatchRule};
use neurodeanon_datasets::{Session, Task};
use neurodeanon_linalg::svd::thin_svd_calls;
use neurodeanon_testkit::json;
use std::path::{Path, PathBuf};

/// Path of the bench JSON trajectory file (`NEURODEANON_BENCH_JSON`
/// overrides the default `bench_results.jsonl` in the working directory).
fn bench_json_path() -> PathBuf {
    std::env::var("NEURODEANON_BENCH_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("bench_results.jsonl"))
}

/// Appends one sweep sample to the bench JSON trajectory; plan-path samples
/// carry the measured direct/plan speedup.
fn record(path: &Path, s: &Sample, scale: &str, speedup: Option<f64>) {
    let rec = match speedup {
        Some(x) => json!({
            "group": "attack_plan_sweeps",
            "label": s.label.as_str(),
            "scale": scale,
            "min_ns": s.min.as_nanos() as f64,
            "median_ns": s.median.as_nanos() as f64,
            "mean_ns": s.mean.as_nanos() as f64,
            "speedup": x,
        }),
        None => json!({
            "group": "attack_plan_sweeps",
            "label": s.label.as_str(),
            "scale": scale,
            "min_ns": s.min.as_nanos() as f64,
            "median_ns": s.median.as_nanos() as f64,
            "mean_ns": s.mean.as_nanos() as f64,
        }),
    };
    if let Err(e) = timing::append_jsonl(path, &rec) {
        eprintln!("bench json append failed for {}: {e}", path.display());
    }
}

/// Every observable field of the outcome must agree to the bit.
fn assert_bit_identical(direct: &AttackOutcome, planned: &AttackOutcome, what: &str) {
    assert_eq!(direct.predicted, planned.predicted, "{what}: predictions");
    assert_eq!(direct.truth, planned.truth, "{what}: truth");
    assert_eq!(
        direct.selected_features, planned.selected_features,
        "{what}: features"
    );
    assert_eq!(
        direct.accuracy.to_bits(),
        planned.accuracy.to_bits(),
        "{what}: accuracy"
    );
    assert_eq!(direct.similarity.shape(), planned.similarity.shape());
    for (x, y) in direct
        .similarity
        .as_slice()
        .iter()
        .zip(planned.similarity.as_slice())
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: similarity");
    }
}

fn main() {
    // Same contract as the kernels bench: `--trace` only adds reporting.
    let traced = std::env::args().skip(1).any(|a| a == "--trace");
    if traced {
        neurodeanon_obs::enable();
    }
    let scale = match std::env::var("NEURODEANON_BENCH_SCALE") {
        Ok(v) => Scale::parse(&v).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        }),
        Err(_) => Scale::Small,
    };
    let scale_name = match scale {
        Scale::Small => "small",
        Scale::Paper => "paper",
    };
    let json_path = bench_json_path();
    let cohort = scale.hcp(0x5eed);
    let b = Bench::new("attack_sweeps").iters(1).warmup(0);

    // ---- Figure 4 shape: one known matrix, eight retained-feature counts.
    let known = cohort
        .group_matrix(Task::Rest, Session::One)
        .unwrap_or_else(|e| fail(&format!("{e} at sweeps.rs:{}", line!())));
    let anon = cohort
        .group_matrix(Task::Rest, Session::Two)
        .unwrap_or_else(|e| fail(&format!("{e} at sweeps.rs:{}", line!())));
    let t_values: Vec<usize> = [10usize, 25, 50, 75, 100, 150, 200, 300]
        .iter()
        .map(|&t| t.min(known.n_features()))
        .collect();

    let mut direct_runs: Vec<AttackOutcome> = Vec::new();
    let svd0 = thin_svd_calls();
    let s_direct = b.run(&format!("feature_sweep_direct_{scale_name}"), || {
        direct_runs.clear();
        for &t in &t_values {
            let attack = DeanonAttack::new(AttackConfig {
                n_features: t,
                ..Default::default()
            })
            .unwrap_or_else(|e| fail(&format!("{e} at sweeps.rs:{}", line!())));
            direct_runs.push(
                attack
                    .run(&known, &anon)
                    .unwrap_or_else(|e| fail(&format!("{e} at sweeps.rs:{}", line!()))),
            );
        }
    });
    assert_eq!(
        (thin_svd_calls() - svd0) as usize,
        t_values.len(),
        "direct sweep factors once per feature count"
    );

    let mut plan_runs: Vec<AttackOutcome> = Vec::new();
    let svd0 = thin_svd_calls();
    let s_plan = b.run(&format!("feature_sweep_plan_{scale_name}"), || {
        plan_runs.clear();
        let mut plan = AttackPlan::prepare(known.clone(), AttackConfig::default())
            .unwrap_or_else(|e| fail(&format!("{e} at sweeps.rs:{}", line!())));
        for &t in &t_values {
            plan_runs.push(
                plan.run_with(&anon, t, MatchRule::Argmax)
                    .unwrap_or_else(|e| fail(&format!("{e} at sweeps.rs:{}", line!()))),
            );
        }
    });
    assert_eq!(
        thin_svd_calls() - svd0,
        1,
        "the whole plan sweep must perform exactly one thin SVD"
    );

    assert_eq!(direct_runs.len(), plan_runs.len());
    for (i, (d, p)) in direct_runs.iter().zip(&plan_runs).enumerate() {
        assert_bit_identical(d, p, &format!("feature sweep t={}", t_values[i]));
    }
    let sweep_speedup = s_direct.median.as_nanos() as f64 / s_plan.median.as_nanos().max(1) as f64;
    record(&json_path, &s_direct, scale_name, None);
    record(&json_path, &s_plan, scale_name, Some(sweep_speedup));
    println!("feature sweep: plan is {sweep_speedup:.2}x faster than direct");

    // ---- Figure 5 shape: the 8 × 8 cross-task grid. Features come from
    // the row (known) dataset, so the plan path factors 8 matrices instead
    // of the direct path's 64.
    let tasks = Task::ALL;
    let known_grid: Vec<_> = tasks
        .iter()
        .map(|&t| {
            cohort
                .group_matrix(t, Session::One)
                .unwrap_or_else(|e| fail(&format!("{e} at sweeps.rs:{}", line!())))
        })
        .collect();
    let anon_grid: Vec<_> = tasks
        .iter()
        .map(|&t| {
            cohort
                .group_matrix(t, Session::Two)
                .unwrap_or_else(|e| fail(&format!("{e} at sweeps.rs:{}", line!())))
        })
        .collect();

    let mut direct_grid: Vec<AttackOutcome> = Vec::new();
    let svd0 = thin_svd_calls();
    let s_direct = b.run(&format!("cross_task_grid_direct_{scale_name}"), || {
        direct_grid.clear();
        let attack = DeanonAttack::new(AttackConfig::default())
            .unwrap_or_else(|e| fail(&format!("{e} at sweeps.rs:{}", line!())));
        for kg in &known_grid {
            for ag in &anon_grid {
                direct_grid.push(
                    attack
                        .run(kg, ag)
                        .unwrap_or_else(|e| fail(&format!("{e} at sweeps.rs:{}", line!()))),
                );
            }
        }
    });
    assert_eq!(
        (thin_svd_calls() - svd0) as usize,
        tasks.len() * tasks.len(),
        "direct grid factors once per cell"
    );

    let mut plan_grid: Vec<AttackOutcome> = Vec::new();
    let svd0 = thin_svd_calls();
    let s_plan = b.run(&format!("cross_task_grid_plan_{scale_name}"), || {
        plan_grid.clear();
        for kg in &known_grid {
            let mut plan = AttackPlan::prepare(kg.clone(), AttackConfig::default())
                .unwrap_or_else(|e| fail(&format!("{e} at sweeps.rs:{}", line!())));
            for ag in &anon_grid {
                plan_grid.push(
                    plan.run_against(ag)
                        .unwrap_or_else(|e| fail(&format!("{e} at sweeps.rs:{}", line!()))),
                );
            }
        }
    });
    assert_eq!(
        (thin_svd_calls() - svd0) as usize,
        tasks.len(),
        "plan grid factors once per row"
    );

    assert_eq!(direct_grid.len(), plan_grid.len());
    for (i, (d, p)) in direct_grid.iter().zip(&plan_grid).enumerate() {
        assert_bit_identical(d, p, &format!("grid cell {i}"));
    }
    let grid_speedup = s_direct.median.as_nanos() as f64 / s_plan.median.as_nanos().max(1) as f64;
    record(&json_path, &s_direct, scale_name, None);
    record(&json_path, &s_plan, scale_name, Some(grid_speedup));
    println!("cross-task grid: plan is {grid_speedup:.2}x faster than direct");

    // ---- The trajectory file must stay machine-readable: every line
    // parses with the in-repo JSON parser and our records are present.
    let text = std::fs::read_to_string(&json_path)
        .unwrap_or_else(|e| fail(&format!("bench trajectory readable: {e}")));
    let mut ours = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let v = neurodeanon_testkit::json::parse(line)
            .unwrap_or_else(|e| fail(&format!("trajectory line parses as JSON: {e}")));
        if v.get("group").and_then(|g| g.as_str()) == Some("attack_plan_sweeps") {
            ours += 1;
        }
    }
    assert!(
        ours >= 4,
        "expected the four sweep records in the trajectory, found {ours}"
    );
    println!(
        "trajectory {} verified: {ours} attack_plan_sweeps records",
        json_path.display()
    );

    if traced {
        let snap = neurodeanon_obs::snapshot();
        eprintln!("--- trace ---");
        eprint!("{}", snap.render_tree());
        neurodeanon_bench::trace::export_jsonl(&snap, "sweeps", &json_path)
            .unwrap_or_else(|e| fail(&format!("trace export writes: {e}")));
    }
}
