//! Micro-benchmarks of the numerical substrates the attack is built on:
//! matrix multiplication, Gram products, SVD (both routes), leverage
//! scores, Pearson connectome construction, FIR/FFT filtering, and t-SNE
//! iterations. These are the kernels whose cost the paper's "computationally
//! inexpensive, and can scale to large datasets" claim rests on. Timed by
//! the in-repo `neurodeanon_bench::timing` harness (build with
//! `--features criterion-bench`).

use neurodeanon_bench::fail;
use neurodeanon_bench::timing::{self, Bench, Sample};
use neurodeanon_embedding::tsne::{tsne, TsneConfig};
use neurodeanon_linalg::stats::correlation_matrix;
use neurodeanon_linalg::svd::{leverage_scores, thin_svd};
use neurodeanon_linalg::{par, Matrix, Rng64};
use neurodeanon_preprocess::filter::{fft_bandpass, fir_bandpass, Band};
use neurodeanon_testkit::json;
use std::path::{Path, PathBuf};

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Rng64::new(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gaussian())
}

/// Path of the bench JSON trajectory file (`NEURODEANON_BENCH_JSON`
/// overrides the default `bench_results.jsonl` in the working directory).
fn bench_json_path() -> PathBuf {
    std::env::var("NEURODEANON_BENCH_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("bench_results.jsonl"))
}

/// Appends one thread-sweep sample to the bench JSON trajectory.
fn record_sweep(path: &Path, s: &Sample, threads: usize) {
    let rec = json!({
        "group": "paper_scale_thread_sweep",
        "label": s.label.as_str(),
        "threads": threads,
        "min_ns": s.min.as_nanos() as f64,
        "median_ns": s.median.as_nanos() as f64,
        "mean_ns": s.mean.as_nanos() as f64,
    });
    if let Err(e) = timing::append_jsonl(path, &rec) {
        eprintln!("bench json append failed for {}: {e}", path.display());
    }
}

fn main() {
    let b = Bench::new("matmul").iters(10);
    for n in [64usize, 128, 256] {
        let a = random_matrix(n, n, 1);
        let bm = random_matrix(n, n, 2);
        b.run(&format!("{n}"), || {
            a.matmul(&bm)
                .unwrap_or_else(|e| fail(&format!("{e} at micro.rs:{}", line!())))
        });
    }

    let b = Bench::new("gram_group_matrix").iters(10);
    // Tall group-matrix shapes: features × subjects.
    for (rows, cols) in [(6_670usize, 50usize), (20_000, 50)] {
        let a = random_matrix(rows, cols, 3);
        b.run(&format!("{rows}x{cols}"), || a.gram());
    }

    let b = Bench::new("thin_svd").iters(10);
    // Gram route (tall) and Jacobi route (square-ish).
    let tall = random_matrix(6_670, 40, 4);
    b.run("gram_route_6670x40", || {
        thin_svd(&tall).unwrap_or_else(|e| fail(&format!("{e} at micro.rs:{}", line!())))
    });
    let squareish = random_matrix(120, 80, 5);
    b.run("jacobi_route_120x80", || {
        thin_svd(&squareish).unwrap_or_else(|e| fail(&format!("{e} at micro.rs:{}", line!())))
    });

    let b = Bench::new("leverage").iters(10);
    let a = random_matrix(6_670, 40, 6);
    b.run("leverage_scores_6670x40", || {
        leverage_scores(&a, None).unwrap_or_else(|e| fail(&format!("{e} at micro.rs:{}", line!())))
    });
    // Randomized fast path at the same shape.
    let cfg = neurodeanon_linalg::rsvd::RsvdConfig {
        rank: 10,
        power_iters: 1,
        ..Default::default()
    };
    b.run("randomized_leverage_6670x40", || {
        neurodeanon_linalg::rsvd::randomized_leverage_scores(&a, &cfg)
            .unwrap_or_else(|e| fail(&format!("{e} at micro.rs:{}", line!())))
    });

    let b = Bench::new("correlation_matrix").iters(10);
    for (regions, t) in [(116usize, 500usize), (360, 800)] {
        let ts = random_matrix(regions, t, 7);
        b.run(&format!("{regions}x{t}"), || {
            correlation_matrix(&ts)
                .unwrap_or_else(|e| fail(&format!("{e} at micro.rs:{}", line!())))
        });
    }

    let b = Bench::new("bandpass").iters(10);
    let band = Band::hcp_resting();
    let ts = random_matrix(116, 500, 8);
    b.run("fft_116x500", || {
        let mut m = ts.clone();
        fft_bandpass(&mut m, band)
            .unwrap_or_else(|e| fail(&format!("{e} at micro.rs:{}", line!())));
        m
    });
    b.run("fir_116x500", || {
        let mut m = ts.clone();
        fir_bandpass(&mut m, band, 101)
            .unwrap_or_else(|e| fail(&format!("{e} at micro.rs:{}", line!())));
        m
    });

    let b = Bench::new("tsne").iters(10);
    let points = random_matrix(160, 64, 9);
    let cfg = TsneConfig {
        perplexity: 20.0,
        n_iter: 250,
        ..TsneConfig::default()
    };
    b.run("160pts_250iters", || {
        tsne(&points, &cfg).unwrap_or_else(|e| fail(&format!("{e} at micro.rs:{}", line!())))
    });

    // Paper-scale shapes (the 64,620 × 100 HCP group matrix of §4) swept
    // over thread counts; medians land in the bench JSON trajectory so the
    // NEURODEANON_THREADS=1 vs default speedup is recorded, not just printed.
    let json_path = bench_json_path();
    let a = random_matrix(64_620, 100, 10);
    let bm = random_matrix(100, 100, 11);
    let mut sweep: Vec<usize> = Vec::new();
    for t in [1, 2, par::num_threads()] {
        if !sweep.contains(&t) {
            sweep.push(t);
        }
    }
    for &t in &sweep {
        par::with_thread_count(t, || {
            let b = Bench::new("paper_scale").iters(3);
            let s = b.run(&format!("matmul_64620x100_100x100_t{t}"), || {
                a.matmul(&bm)
                    .unwrap_or_else(|e| fail(&format!("{e} at micro.rs:{}", line!())))
            });
            record_sweep(&json_path, &s, t);
            let s = b.run(&format!("gram_64620x100_t{t}"), || a.gram());
            record_sweep(&json_path, &s, t);
            let s = b.run(&format!("thin_svd_64620x100_t{t}"), || {
                thin_svd(&a).unwrap_or_else(|e| fail(&format!("{e} at micro.rs:{}", line!())))
            });
            record_sweep(&json_path, &s, t);
        });
    }
}
