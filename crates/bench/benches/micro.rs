//! Micro-benchmarks of the numerical substrates the attack is built on:
//! matrix multiplication, Gram products, SVD (both routes), leverage
//! scores, Pearson connectome construction, FIR/FFT filtering, and t-SNE
//! iterations. These are the kernels whose cost the paper's "computationally
//! inexpensive, and can scale to large datasets" claim rests on. Timed by
//! the in-repo `neurodeanon_bench::timing` harness (build with
//! `--features criterion-bench`).

use neurodeanon_bench::timing::Bench;
use neurodeanon_embedding::tsne::{tsne, TsneConfig};
use neurodeanon_linalg::stats::correlation_matrix;
use neurodeanon_linalg::svd::{leverage_scores, thin_svd};
use neurodeanon_linalg::{Matrix, Rng64};
use neurodeanon_preprocess::filter::{fft_bandpass, fir_bandpass, Band};

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Rng64::new(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gaussian())
}

fn main() {
    let b = Bench::new("matmul").iters(10);
    for n in [64usize, 128, 256] {
        let a = random_matrix(n, n, 1);
        let bm = random_matrix(n, n, 2);
        b.run(&format!("{n}"), || a.matmul(&bm).unwrap());
    }

    let b = Bench::new("gram_group_matrix").iters(10);
    // Tall group-matrix shapes: features × subjects.
    for (rows, cols) in [(6_670usize, 50usize), (20_000, 50)] {
        let a = random_matrix(rows, cols, 3);
        b.run(&format!("{rows}x{cols}"), || a.gram());
    }

    let b = Bench::new("thin_svd").iters(10);
    // Gram route (tall) and Jacobi route (square-ish).
    let tall = random_matrix(6_670, 40, 4);
    b.run("gram_route_6670x40", || thin_svd(&tall).unwrap());
    let squareish = random_matrix(120, 80, 5);
    b.run("jacobi_route_120x80", || thin_svd(&squareish).unwrap());

    let b = Bench::new("leverage").iters(10);
    let a = random_matrix(6_670, 40, 6);
    b.run("leverage_scores_6670x40", || {
        leverage_scores(&a, None).unwrap()
    });
    // Randomized fast path at the same shape.
    let cfg = neurodeanon_linalg::rsvd::RsvdConfig {
        rank: 10,
        power_iters: 1,
        ..Default::default()
    };
    b.run("randomized_leverage_6670x40", || {
        neurodeanon_linalg::rsvd::randomized_leverage_scores(&a, &cfg).unwrap()
    });

    let b = Bench::new("correlation_matrix").iters(10);
    for (regions, t) in [(116usize, 500usize), (360, 800)] {
        let ts = random_matrix(regions, t, 7);
        b.run(&format!("{regions}x{t}"), || {
            correlation_matrix(&ts).unwrap()
        });
    }

    let b = Bench::new("bandpass").iters(10);
    let band = Band::hcp_resting();
    let ts = random_matrix(116, 500, 8);
    b.run("fft_116x500", || {
        let mut m = ts.clone();
        fft_bandpass(&mut m, band).unwrap();
        m
    });
    b.run("fir_116x500", || {
        let mut m = ts.clone();
        fir_bandpass(&mut m, band, 101).unwrap();
        m
    });

    let b = Bench::new("tsne").iters(10);
    let points = random_matrix(160, 64, 9);
    let cfg = TsneConfig {
        perplexity: 20.0,
        n_iter: 250,
        ..TsneConfig::default()
    };
    b.run("160pts_250iters", || tsne(&points, &cfg).unwrap());
}
