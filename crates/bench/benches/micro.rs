//! Micro-benchmarks of the numerical substrates the attack is built on:
//! matrix multiplication, Gram products, SVD (both routes), leverage
//! scores, Pearson connectome construction, FIR/FFT filtering, and t-SNE
//! iterations. These are the kernels whose cost the paper's "computationally
//! inexpensive, and can scale to large datasets" claim rests on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neurodeanon_embedding::tsne::{tsne, TsneConfig};
use neurodeanon_linalg::stats::correlation_matrix;
use neurodeanon_linalg::svd::{leverage_scores, thin_svd};
use neurodeanon_linalg::{Matrix, Rng64};
use neurodeanon_preprocess::filter::{fft_bandpass, fir_bandpass, Band};
use std::hint::black_box;

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Rng64::new(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gaussian())
}

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    for n in [64usize, 128, 256] {
        let a = random_matrix(n, n, 1);
        let b = random_matrix(n, n, 2);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b).unwrap()))
        });
    }
    g.finish();
}

fn bench_gram(c: &mut Criterion) {
    let mut g = c.benchmark_group("gram_group_matrix");
    // Tall group-matrix shapes: features × subjects.
    for (rows, cols) in [(6_670usize, 50usize), (20_000, 50)] {
        let a = random_matrix(rows, cols, 3);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{rows}x{cols}")),
            &rows,
            |bench, _| bench.iter(|| black_box(a.gram())),
        );
    }
    g.finish();
}

fn bench_svd(c: &mut Criterion) {
    let mut g = c.benchmark_group("thin_svd");
    g.sample_size(10);
    // Gram route (tall) and Jacobi route (square-ish).
    let tall = random_matrix(6_670, 40, 4);
    g.bench_function("gram_route_6670x40", |b| {
        b.iter(|| black_box(thin_svd(&tall).unwrap()))
    });
    let squareish = random_matrix(120, 80, 5);
    g.bench_function("jacobi_route_120x80", |b| {
        b.iter(|| black_box(thin_svd(&squareish).unwrap()))
    });
    g.finish();
}

fn bench_leverage(c: &mut Criterion) {
    let a = random_matrix(6_670, 40, 6);
    c.bench_function("leverage_scores_6670x40", |b| {
        b.iter(|| black_box(leverage_scores(&a, None).unwrap()))
    });
    // Randomized fast path at the same shape.
    let cfg = neurodeanon_linalg::rsvd::RsvdConfig {
        rank: 10,
        power_iters: 1,
        ..Default::default()
    };
    c.bench_function("randomized_leverage_6670x40", |b| {
        b.iter(|| {
            black_box(
                neurodeanon_linalg::rsvd::randomized_leverage_scores(&a, &cfg).unwrap(),
            )
        })
    });
}

fn bench_connectome(c: &mut Criterion) {
    let mut g = c.benchmark_group("correlation_matrix");
    for (regions, t) in [(116usize, 500usize), (360, 800)] {
        let ts = random_matrix(regions, t, 7);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{regions}x{t}")),
            &regions,
            |bench, _| bench.iter(|| black_box(correlation_matrix(&ts).unwrap())),
        );
    }
    g.finish();
}

fn bench_filters(c: &mut Criterion) {
    let mut g = c.benchmark_group("bandpass");
    let band = Band::hcp_resting();
    let ts = random_matrix(116, 500, 8);
    g.bench_function("fft_116x500", |b| {
        b.iter_batched(
            || ts.clone(),
            |mut m| {
                fft_bandpass(&mut m, band).unwrap();
                black_box(m)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("fir_116x500", |b| {
        b.iter_batched(
            || ts.clone(),
            |mut m| {
                fir_bandpass(&mut m, band, 101).unwrap();
                black_box(m)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_tsne(c: &mut Criterion) {
    let mut g = c.benchmark_group("tsne");
    g.sample_size(10);
    let points = random_matrix(160, 64, 9);
    let cfg = TsneConfig {
        perplexity: 20.0,
        n_iter: 250,
        ..TsneConfig::default()
    };
    g.bench_function("160pts_250iters", |b| {
        b.iter(|| black_box(tsne(&points, &cfg).unwrap()))
    });
    g.finish();
}

criterion_group!(
    micro,
    bench_matmul,
    bench_gram,
    bench_svd,
    bench_leverage,
    bench_connectome,
    bench_filters,
    bench_tsne
);
criterion_main!(micro);
