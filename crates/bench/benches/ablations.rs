//! Ablation benches for the design choices DESIGN.md §4 calls out:
//! sampling strategy, retained-feature count, matching rule, atlas
//! granularity, and the t-SNE vs PCA embedding comparison that motivates
//! the paper's choice of a non-linear reduction for task identification.
//! Timed by the in-repo `neurodeanon_bench::timing` harness (build with
//! `--features criterion-bench`).

use neurodeanon_bench::fail;
use neurodeanon_bench::timing::Bench;
use neurodeanon_core::experiments::ablations::embedding_ablation_groups;
use neurodeanon_core::experiments::{
    ablation_atlas_granularity, ablation_feature_count, ablation_matching_rule,
    ablation_sampling_strategy,
};
use neurodeanon_datasets::{HcpCohort, HcpCohortConfig};
use neurodeanon_embedding::pca;
use neurodeanon_embedding::tsne::{tsne, TsneConfig};
use neurodeanon_linalg::Matrix;
use neurodeanon_ml::metrics::accuracy;
use neurodeanon_ml::KnnClassifier;

fn cohort() -> HcpCohort {
    HcpCohort::generate(HcpCohortConfig::small(12, 0xab))
        .unwrap_or_else(|e| fail(&format!("valid config: {e}")))
}

fn main() {
    let cohort = cohort();

    let b = Bench::new("ablation_sampling_strategy").iters(10);
    b.run("four_strategies", || {
        let rows = ablation_sampling_strategy(&cohort, 60, 3)
            .unwrap_or_else(|e| fail(&format!("{e} at ablations.rs:{}", line!())));
        // The paper's claim: leverage-based selection dominates.
        let det = rows
            .iter()
            .find(|r| r.strategy == "deterministic-leverage")
            .unwrap_or_else(|| fail("missing deterministic-leverage strategy row"))
            .accuracy;
        let uni = rows
            .iter()
            .find(|r| r.strategy == "uniform")
            .unwrap_or_else(|| fail("missing uniform strategy row"))
            .accuracy;
        assert!(det >= uni);
        rows
    });

    let b = Bench::new("ablation_feature_count").iters(10);
    b.run("sweep_5_to_400", || {
        ablation_feature_count(&cohort, &[5, 20, 100, 400])
            .unwrap_or_else(|e| fail(&format!("{e} at ablations.rs:{}", line!())))
    });

    let b = Bench::new("ablation_matching_rule").iters(10);
    b.run("argmax_vs_hungarian", || {
        ablation_matching_rule(&cohort)
            .unwrap_or_else(|e| fail(&format!("{e} at ablations.rs:{}", line!())))
    });

    let b = Bench::new("ablation_atlas_granularity").iters(10);
    b.run("regions_20_40", || {
        ablation_atlas_granularity(&[20, 40], 8, 5)
            .unwrap_or_else(|e| fail(&format!("{e} at ablations.rs:{}", line!())))
    });

    bench_ablation_embedding(&cohort);
}

/// t-SNE vs PCA for task clustering: embed the stacked conditions to 2-D
/// with both methods, transfer labels by 1-NN from half the subjects, and
/// compare accuracy — the paper's implicit justification for preferring the
/// non-linear embedding.
fn bench_ablation_embedding(cohort: &HcpCohort) {
    let groups = embedding_ablation_groups(cohort)
        .unwrap_or_else(|e| fail(&format!("{e} at ablations.rs:{}", line!())));
    let n_subjects = groups[0].n_subjects();
    // Stack points condition-major.
    let n_features = groups[0].n_features();
    let n_points = groups.len() * n_subjects;
    let mut points = Matrix::zeros(n_points, n_features);
    let mut labels = Vec::new();
    for (cond, grp) in groups.iter().enumerate() {
        let p = grp.to_points();
        for s in 0..n_subjects {
            points
                .set_row(cond * n_subjects + s, p.row(s))
                .unwrap_or_else(|e| fail(&format!("{e} at ablations.rs:{}", line!())));
            labels.push(cond);
        }
    }
    // Labeled = first half of subjects (all their conditions).
    let labeled: Vec<usize> = (0..n_points)
        .filter(|p| (p % n_subjects) < n_subjects / 2)
        .collect();
    let unlabeled: Vec<usize> = (0..n_points)
        .filter(|p| (p % n_subjects) >= n_subjects / 2)
        .collect();
    let eval = |embedding: &Matrix| -> f64 {
        let train_x = embedding
            .select_rows(&labeled)
            .unwrap_or_else(|e| fail(&format!("{e} at ablations.rs:{}", line!())));
        let train_y: Vec<usize> = labeled.iter().map(|&p| labels[p]).collect();
        let test_x = embedding
            .select_rows(&unlabeled)
            .unwrap_or_else(|e| fail(&format!("{e} at ablations.rs:{}", line!())));
        let truth: Vec<usize> = unlabeled.iter().map(|&p| labels[p]).collect();
        let mut knn = KnnClassifier::new(1)
            .unwrap_or_else(|e| fail(&format!("{e} at ablations.rs:{}", line!())));
        knn.fit(&train_x, &train_y)
            .unwrap_or_else(|e| fail(&format!("{e} at ablations.rs:{}", line!())));
        accuracy(
            &knn.predict(&test_x)
                .unwrap_or_else(|e| fail(&format!("{e} at ablations.rs:{}", line!()))),
            &truth,
        )
        .unwrap_or_else(|e| fail(&format!("{e} at ablations.rs:{}", line!())))
    };

    let b = Bench::new("ablation_embedding").iters(10);
    let cfg = TsneConfig {
        perplexity: 10.0,
        n_iter: 250,
        ..TsneConfig::default()
    };
    b.run("tsne_2d_plus_1nn", || {
        let emb = tsne(&points, &cfg)
            .unwrap_or_else(|e| fail(&format!("{e} at ablations.rs:{}", line!())));
        eval(&emb.embedding)
    });
    b.run("pca_2d_plus_1nn", || {
        let emb =
            pca(&points, 2).unwrap_or_else(|e| fail(&format!("{e} at ablations.rs:{}", line!())));
        eval(&emb)
    });
}
