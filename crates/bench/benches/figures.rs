//! One bench target per paper table/figure (DESIGN.md §3): each case runs
//! the corresponding experiment driver end to end at a reduced scale, so
//! the harness both times the attack pipeline and regenerates the
//! artifact's numbers on every bench run. The `repro` binary produces the
//! same numbers at paper scale. Timed by the in-repo
//! `neurodeanon_bench::timing` harness (build with
//! `--features criterion-bench`).

use neurodeanon_bench::fail;
use neurodeanon_bench::timing::Bench;
use neurodeanon_core::attack::AttackConfig;
use neurodeanon_core::experiments::preprocess_ablation::PreprocessAblationConfig;
use neurodeanon_core::experiments::{
    adhd_experiment, cross_task_matrix, multi_site_sweep, performance_table, preprocess_ablation,
    similarity_experiment, task_prediction_experiment,
};
use neurodeanon_core::performance::PerfConfig;
use neurodeanon_core::task_id::TaskIdConfig;
use neurodeanon_datasets::{
    AdhdCohort, AdhdCohortConfig, AdhdGroup, HcpCohort, HcpCohortConfig, Task,
};
use neurodeanon_embedding::tsne::TsneConfig;

fn hcp() -> HcpCohort {
    HcpCohort::generate(HcpCohortConfig::small(12, 0xbe))
        .unwrap_or_else(|e| fail(&format!("valid config: {e}")))
}

fn adhd() -> AdhdCohort {
    AdhdCohort::generate(AdhdCohortConfig::small(8, 4, 0xbe))
        .unwrap_or_else(|e| fail(&format!("valid config: {e}")))
}

fn main() {
    let cohort = hcp();

    let b = Bench::new("fig1_rest_similarity").iters(10);
    b.run("rest_session1_vs_session2", || {
        let res = similarity_experiment(&cohort, Task::Rest, AttackConfig::default())
            .unwrap_or_else(|e| fail(&format!("{e} at figures.rs:{}", line!())));
        assert!(res.mean_diagonal > res.mean_offdiagonal);
        res
    });

    let b = Bench::new("fig2_language_similarity").iters(10);
    b.run("language_session1_vs_session2", || {
        similarity_experiment(&cohort, Task::Language, AttackConfig::default())
            .unwrap_or_else(|e| fail(&format!("{e} at figures.rs:{}", line!())))
    });

    let b = Bench::new("fig5_cross_task_matrix").iters(10);
    b.run("8x8_sweep", || {
        cross_task_matrix(&cohort, AttackConfig::default())
            .unwrap_or_else(|e| fail(&format!("{e} at figures.rs:{}", line!())))
    });

    let b = Bench::new("fig6_task_prediction").iters(10);
    let cfg = TaskIdConfig {
        tsne: TsneConfig {
            perplexity: 12.0,
            n_iter: 250,
            ..TsneConfig::default()
        },
        ..TaskIdConfig::default()
    };
    b.run("tsne_plus_1nn", || {
        task_prediction_experiment(&cohort, &cfg, 1)
            .unwrap_or_else(|e| fail(&format!("{e} at figures.rs:{}", line!())))
    });

    let b = Bench::new("table1_performance").iters(10);
    let cfg = PerfConfig {
        n_repeats: 2,
        ..Default::default()
    };
    b.run("four_tasks_two_splits", || {
        performance_table(&cohort, &cfg)
            .unwrap_or_else(|e| fail(&format!("{e} at figures.rs:{}", line!())))
    });

    let adhd_cohort = adhd();
    let b = Bench::new("fig789_adhd").iters(10);
    let subtype1 = adhd_cohort.subjects_in(AdhdGroup::Subtype(1));
    b.run("subtype1_similarity", || {
        adhd_experiment(&adhd_cohort, &subtype1, "subtype1", AttackConfig::default())
            .unwrap_or_else(|e| fail(&format!("{e} at figures.rs:{}", line!())))
    });
    let all: Vec<usize> = (0..adhd_cohort.n_subjects()).collect();
    b.run("mixed_cases_controls", || {
        adhd_experiment(&adhd_cohort, &all, "mixed", AttackConfig::default())
            .unwrap_or_else(|e| fail(&format!("{e} at figures.rs:{}", line!())))
    });

    let b = Bench::new("table2_multisite").iters(10);
    b.run("noise_sweep_10_30pct", || {
        multi_site_sweep(
            &cohort,
            &adhd_cohort,
            &[0.1, 0.3],
            1,
            AttackConfig::default(),
            1,
        )
        .unwrap_or_else(|e| fail(&format!("{e} at figures.rs:{}", line!())))
    });

    let b = Bench::new("fig4_preprocess_ablation").iters(10);
    let cfg = PreprocessAblationConfig {
        n_subjects: 6,
        grid_edge: 10,
        n_regions: 12,
        n_timepoints: 300,
        n_features: 40,
        ..Default::default()
    };
    b.run("artifact_stage_pairs", || {
        preprocess_ablation(&cfg)
            .unwrap_or_else(|e| fail(&format!("{e} at figures.rs:{}", line!())))
    });
}
