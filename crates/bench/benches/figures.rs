//! One Criterion bench per paper table/figure (DESIGN.md §3): each target
//! runs the corresponding experiment driver end to end at a reduced scale,
//! so the harness both times the attack pipeline and regenerates the
//! artifact's numbers on every bench run. The `repro` binary produces the
//! same numbers at paper scale.

use criterion::{criterion_group, criterion_main, Criterion};
use neurodeanon_core::attack::AttackConfig;
use neurodeanon_core::experiments::preprocess_ablation::PreprocessAblationConfig;
use neurodeanon_core::experiments::{
    adhd_experiment, cross_task_matrix, multi_site_sweep, performance_table,
    preprocess_ablation, similarity_experiment, task_prediction_experiment,
};
use neurodeanon_core::performance::PerfConfig;
use neurodeanon_core::task_id::TaskIdConfig;
use neurodeanon_datasets::{
    AdhdCohort, AdhdCohortConfig, AdhdGroup, HcpCohort, HcpCohortConfig, Task,
};
use neurodeanon_embedding::tsne::TsneConfig;
use std::hint::black_box;

fn hcp() -> HcpCohort {
    HcpCohort::generate(HcpCohortConfig::small(12, 0xbe)).expect("valid config")
}

fn adhd() -> AdhdCohort {
    AdhdCohort::generate(AdhdCohortConfig::small(8, 4, 0xbe)).expect("valid config")
}

fn bench_fig1_rest_similarity(c: &mut Criterion) {
    let cohort = hcp();
    let mut g = c.benchmark_group("fig1_rest_similarity");
    g.sample_size(10);
    g.bench_function("rest_session1_vs_session2", |b| {
        b.iter(|| {
            let res =
                similarity_experiment(&cohort, Task::Rest, AttackConfig::default()).unwrap();
            assert!(res.mean_diagonal > res.mean_offdiagonal);
            black_box(res)
        })
    });
    g.finish();
}

fn bench_fig2_task_similarity(c: &mut Criterion) {
    let cohort = hcp();
    let mut g = c.benchmark_group("fig2_language_similarity");
    g.sample_size(10);
    g.bench_function("language_session1_vs_session2", |b| {
        b.iter(|| {
            black_box(
                similarity_experiment(&cohort, Task::Language, AttackConfig::default()).unwrap(),
            )
        })
    });
    g.finish();
}

fn bench_fig5_cross_task(c: &mut Criterion) {
    let cohort = hcp();
    let mut g = c.benchmark_group("fig5_cross_task_matrix");
    g.sample_size(10);
    g.bench_function("8x8_sweep", |b| {
        b.iter(|| black_box(cross_task_matrix(&cohort, AttackConfig::default()).unwrap()))
    });
    g.finish();
}

fn bench_fig6_tsne_task(c: &mut Criterion) {
    let cohort = hcp();
    let mut g = c.benchmark_group("fig6_task_prediction");
    g.sample_size(10);
    let cfg = TaskIdConfig {
        tsne: TsneConfig {
            perplexity: 12.0,
            n_iter: 250,
            ..TsneConfig::default()
        },
        ..TaskIdConfig::default()
    };
    g.bench_function("tsne_plus_1nn", |b| {
        b.iter(|| black_box(task_prediction_experiment(&cohort, &cfg, 1).unwrap()))
    });
    g.finish();
}

fn bench_table1_svr(c: &mut Criterion) {
    let cohort = hcp();
    let mut g = c.benchmark_group("table1_performance");
    g.sample_size(10);
    let cfg = PerfConfig {
        n_repeats: 2,
        ..Default::default()
    };
    g.bench_function("four_tasks_two_splits", |b| {
        b.iter(|| black_box(performance_table(&cohort, &cfg).unwrap()))
    });
    g.finish();
}

fn bench_fig789_adhd(c: &mut Criterion) {
    let cohort = adhd();
    let mut g = c.benchmark_group("fig789_adhd");
    g.sample_size(10);
    let subtype1 = cohort.subjects_in(AdhdGroup::Subtype(1));
    g.bench_function("subtype1_similarity", |b| {
        b.iter(|| {
            black_box(
                adhd_experiment(&cohort, &subtype1, "subtype1", AttackConfig::default()).unwrap(),
            )
        })
    });
    let all: Vec<usize> = (0..cohort.n_subjects()).collect();
    g.bench_function("mixed_cases_controls", |b| {
        b.iter(|| {
            black_box(adhd_experiment(&cohort, &all, "mixed", AttackConfig::default()).unwrap())
        })
    });
    g.finish();
}

fn bench_table2_multisite(c: &mut Criterion) {
    let hcp = hcp();
    let adhd = adhd();
    let mut g = c.benchmark_group("table2_multisite");
    g.sample_size(10);
    g.bench_function("noise_sweep_10_30pct", |b| {
        b.iter(|| {
            black_box(
                multi_site_sweep(&hcp, &adhd, &[0.1, 0.3], 1, AttackConfig::default(), 1)
                    .unwrap(),
            )
        })
    });
    g.finish();
}

fn bench_fig4_preprocess(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_preprocess_ablation");
    g.sample_size(10);
    let cfg = PreprocessAblationConfig {
        n_subjects: 6,
        grid_edge: 10,
        n_regions: 12,
        n_timepoints: 300,
        n_features: 40,
        ..Default::default()
    };
    g.bench_function("artifact_stage_pairs", |b| {
        b.iter(|| black_box(preprocess_ablation(&cfg).unwrap()))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig1_rest_similarity,
    bench_fig2_task_similarity,
    bench_fig5_cross_task,
    bench_fig6_tsne_task,
    bench_table1_svr,
    bench_fig789_adhd,
    bench_table2_multisite,
    bench_fig4_preprocess
);
criterion_main!(figures);
