//! Throughput/latency bench for the `MatchServer` service layer: a flood of
//! small synthetic queries (the paper's per-record connectome shape on a
//! compact gallery) through the batched fused-GEMM path, with a bounded
//! in-flight window so memory stays flat at any query count.
//!
//! Two passes run back to back:
//!
//! * **clean** — every response is asserted bitwise-identical (best index,
//!   score bits, margin bits, decision) to a reference computed by a
//!   1-worker / batch-1 server, i.e. the batching and parallelism of the
//!   loaded server are observationally invisible;
//! * **chaos** — a seeded [`ChaosSpec`] injects malformed payloads, NaN
//!   payloads, worker panics, and producer stalls; exactly the faulted
//!   queries must fail with their expected taxonomy and every untouched
//!   query must still match the reference bitwise.
//!
//! Each pass emits one `serve_bench` JSONL record (p50/p99 latency, qps,
//! shed/quarantine/respawn counts, error taxonomy) and the run fails unless
//! the server drains clean (`submitted == answered + failed`).
//!
//! Scale comes from `NEURODEANON_BENCH_SCALE`: `small` (default) floods
//! 20k clean + 5k chaos queries; `paper` floods 10⁶ clean + 50k chaos.

use neurodeanon_bench::scale::Scale;
use neurodeanon_bench::timing::{self, Sample};
use neurodeanon_bench::{fail, or_fail};
use neurodeanon_connectome::GroupMatrix;
use neurodeanon_core::attack::{AttackConfig, AttackPlan};
use neurodeanon_core::serve::{MatchResponse, MatchServer, Query, QueryResult, ServeConfig};
use neurodeanon_core::Decision;
use neurodeanon_datasets::{
    chaos, ChaosSpec, HcpCohort, HcpCohortConfig, ServiceFaultKind, Session, Task,
};
use neurodeanon_testkit::{json, Value};
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Gallery subjects: small on purpose — the bench stresses the service
/// layer (queue, batching, reply channels), not the GEMM throughput the
/// kernels bench already gates.
const GALLERY_SUBJECTS: usize = 20;

/// Bounded in-flight window: submits stall once this many replies are
/// pending, so a 10⁶-query flood holds ~window × payload bytes, not the
/// whole flood.
const INFLIGHT_WINDOW: usize = 4096;

fn bench_json_path() -> PathBuf {
    std::env::var("NEURODEANON_BENCH_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("bench_results.jsonl"))
}

/// What one drained pass measured.
struct PassOutcome {
    latencies: Vec<Duration>,
    wall: Duration,
    taxonomy: BTreeMap<&'static str, u64>,
    report: neurodeanon_core::serve::ServeReport,
}

fn main() {
    let scale = match std::env::var("NEURODEANON_BENCH_SCALE") {
        Ok(v) => Scale::parse(&v).unwrap_or_else(|e| fail(&e)),
        Err(_) => Scale::Small,
    };
    let (scale_name, n_clean, n_chaos) = match scale {
        Scale::Small => ("small", 20_000u64, 5_000u64),
        Scale::Paper => ("paper", 1_000_000u64, 50_000u64),
    };
    let json_path = bench_json_path();

    // Small synthetic gallery + probe set: session 1 enrolls, session 2
    // queries (the paper's S1 → S2 re-identification direction).
    let cohort = or_fail(
        "serve cohort",
        HcpCohort::generate(HcpCohortConfig::small(GALLERY_SUBJECTS, 0x5e47e)),
    );
    let known = or_fail(
        "known gallery",
        cohort.group_matrix(Task::Rest, Session::One),
    );
    let anon = or_fail("anon probes", cohort.group_matrix(Task::Rest, Session::Two));
    let n_features = known.n_features();
    let columns: Vec<Vec<f64>> = (0..anon.n_subjects())
        .map(|s| anon.subject_features(s))
        .collect();
    let ids: Vec<String> = anon.subject_ids().to_vec();
    println!(
        "serve bench @ {scale_name}: gallery {GALLERY_SUBJECTS} x {n_features} features, \
         {n_clean} clean + {n_chaos} chaos queries, window {INFLIGHT_WINDOW}"
    );

    let config = AttackConfig {
        n_features: 100,
        ..AttackConfig::default()
    };

    // Reference: 1 worker, batch 1 — the degenerate server whose responses
    // the loaded server must reproduce bit for bit.
    let reference = reference_responses(&known, &config, &columns, &ids);

    let serve_cfg = ServeConfig {
        workers: 4,
        queue_capacity: 256,
        batch_max: 16,
        submit_timeout: Duration::from_secs(30),
        max_respawns: u32::MAX,
    };

    // ---- Clean pass.
    let outcome = flood(
        &known, &config, &serve_cfg, &columns, &ids, n_clean, None, &reference,
    );
    report_pass(
        "clean", scale_name, n_clean, &serve_cfg, &outcome, &json_path,
    );

    // ---- Chaos pass: seeded injectors at a 6% fault rate.
    let spec = ChaosSpec {
        seed: 0xc4a05,
        rate: 0.06,
    };
    or_fail("chaos spec", spec.validate());
    let outcome = flood(
        &known,
        &config,
        &serve_cfg,
        &columns,
        &ids,
        n_chaos,
        Some(&spec),
        &reference,
    );
    // The injected faults and only the injected faults may fail.
    let expected_faulted = (0..n_chaos)
        .filter(|&i| {
            spec.fault_for(i)
                .is_some_and(ServiceFaultKind::is_payload_fault)
                || spec.fault_for(i) == Some(ServiceFaultKind::WorkerPanic)
        })
        .count() as u64;
    let failed_typed = outcome.report.failed - outcome.report.drained;
    assert_eq!(
        failed_typed, expected_faulted,
        "chaos pass: {failed_typed} typed failures, expected exactly the {expected_faulted} injected faults"
    );
    report_pass(
        "chaos", scale_name, n_chaos, &serve_cfg, &outcome, &json_path,
    );
}

/// Computes the per-probe reference responses on a batch-1 single worker.
fn reference_responses(
    known: &GroupMatrix,
    config: &AttackConfig,
    columns: &[Vec<f64>],
    ids: &[String],
) -> Vec<MatchResponse> {
    let plan = or_fail(
        "reference plan",
        AttackPlan::prepare(known.clone(), config.clone()),
    );
    let server = or_fail(
        "reference server",
        MatchServer::start(
            plan,
            ServeConfig {
                workers: 1,
                batch_max: 1,
                ..ServeConfig::default()
            },
        ),
    );
    let receivers: Vec<mpsc::Receiver<QueryResult>> = columns
        .iter()
        .zip(ids)
        .enumerate()
        .map(|(i, (col, id))| {
            server
                .submit(Query::new(i as u64, id.clone(), col.clone()))
                .unwrap_or_else(|(_, e)| fail(&format!("reference submit: {e}")))
        })
        .collect();
    let responses: Vec<MatchResponse> = receivers
        .into_iter()
        .map(|rx| {
            let result = or_fail("reference reply", rx.recv());
            or_fail("reference response", result)
        })
        .collect();
    let report = server.shutdown();
    assert!(report.clean_drain(), "reference server must drain clean");
    responses
}

/// Floods the server with `n_queries` (cycling the probe columns), keeping
/// at most [`INFLIGHT_WINDOW`] replies pending, and checks every response
/// against the reference (respecting injected faults when `spec` is set).
#[allow(clippy::too_many_arguments)]
fn flood(
    known: &GroupMatrix,
    config: &AttackConfig,
    serve_cfg: &ServeConfig,
    columns: &[Vec<f64>],
    ids: &[String],
    n_queries: u64,
    spec: Option<&ChaosSpec>,
    reference: &[MatchResponse],
) -> PassOutcome {
    let plan = or_fail(
        "bench plan",
        AttackPlan::prepare(known.clone(), config.clone()),
    );
    let server = or_fail("bench server", MatchServer::start(plan, serve_cfg.clone()));
    let n_cols = columns.len() as u64;

    let mut latencies = Vec::with_capacity(n_queries as usize);
    let mut taxonomy: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut inflight: VecDeque<(u64, mpsc::Receiver<QueryResult>, Instant)> =
        VecDeque::with_capacity(INFLIGHT_WINDOW);
    let t_start = Instant::now();
    for i in 0..n_queries {
        if inflight.len() >= INFLIGHT_WINDOW {
            let job = inflight
                .pop_front()
                .unwrap_or_else(|| fail("inflight window underflow"));
            drain_one(job, spec, n_cols, reference, &mut latencies, &mut taxonomy);
        }
        let col = (i % n_cols) as usize;
        let mut values = columns[col].clone();
        let mut query = Query::new(i, ids[col].clone(), values.clone());
        if let Some(spec) = spec {
            match spec.apply(i, &mut values) {
                Some(ServiceFaultKind::WorkerPanic) => {
                    query.injected = Some(ServiceFaultKind::WorkerPanic);
                }
                Some(ServiceFaultKind::StallProducer) => {
                    std::thread::sleep(chaos::stall_duration());
                }
                _ => {}
            }
            query.values = values;
            query = query.with_deadline(Instant::now() + Duration::from_secs(30));
        }
        let rx = server
            .submit(query)
            .unwrap_or_else(|(q, e)| fail(&format!("submit query {}: {e}", q.id)));
        inflight.push_back((i, rx, Instant::now()));
    }
    for job in inflight {
        drain_one(job, spec, n_cols, reference, &mut latencies, &mut taxonomy);
    }
    let wall = t_start.elapsed();
    let report = server.shutdown();
    assert!(
        report.clean_drain(),
        "serve bench must drain clean: {report:?}"
    );
    PassOutcome {
        latencies,
        wall,
        taxonomy,
        report,
    }
}

/// Receives one reply, records its latency and taxonomy, and asserts the
/// response (or typed error) is exactly what the fault plan predicts.
fn drain_one(
    (id, rx, t0): (u64, mpsc::Receiver<QueryResult>, Instant),
    spec: Option<&ChaosSpec>,
    n_cols: u64,
    reference: &[MatchResponse],
    latencies: &mut Vec<Duration>,
    taxonomy: &mut BTreeMap<&'static str, u64>,
) {
    let result = or_fail("bench reply channel", rx.recv());
    latencies.push(t0.elapsed());
    let fault = spec.and_then(|s| s.fault_for(id));
    match result {
        Ok(resp) => match fault {
            None | Some(ServiceFaultKind::StallProducer) => {
                assert_same(&resp, &reference[(id % n_cols) as usize], id);
            }
            Some(kind) => fail(&format!(
                "query {id} carried injected fault {} but was answered normally",
                kind.name()
            )),
        },
        Err(e) => {
            *taxonomy.entry(e.taxonomy()).or_insert(0) += 1;
            let expected = match fault {
                Some(ServiceFaultKind::TruncatePayload) => "wrong_dimension",
                Some(ServiceFaultKind::NanPayload) => "non_finite",
                Some(ServiceFaultKind::WorkerPanic) => "panic",
                _ => fail(&format!("un-faulted query {id} failed: {e}")),
            };
            assert_eq!(
                e.taxonomy(),
                expected,
                "query {id}: fault {:?} must surface as {expected}",
                fault
            );
        }
    }
}

/// Bitwise response identity: same best index/id, same score and margin
/// bits, same open-world decision.
fn assert_same(got: &MatchResponse, want: &MatchResponse, id: u64) {
    let same = got.best == want.best
        && got.best_id == want.best_id
        && got.score.to_bits() == want.score.to_bits()
        && got.margin.to_bits() == want.margin.to_bits()
        && decisions_eq(got.decision, want.decision);
    assert!(
        same,
        "query {id}: loaded-server response diverged from the batch-1 reference:\n  got  {got:?}\n  want {want:?}"
    );
}

fn decisions_eq(a: Decision, b: Decision) -> bool {
    a == b
}

/// Prints the pass summary and appends its `serve_bench` JSONL record.
fn report_pass(
    label: &str,
    scale_name: &str,
    n_queries: u64,
    serve_cfg: &ServeConfig,
    outcome: &PassOutcome,
    json_path: &std::path::Path,
) {
    let sample = or_fail(
        "latency sample",
        Sample::from_times(label, outcome.latencies.clone()),
    );
    let r = &outcome.report;
    let qps = r.answered as f64 / outcome.wall.as_secs_f64().max(1e-9);
    println!(
        "serve/{label:<6} {n_queries} queries in {}  p50 {}  p99 {}  ~{qps:.0} answered/s",
        timing::fmt_duration(outcome.wall),
        timing::fmt_duration(sample.median),
        timing::fmt_duration(sample.p99),
    );
    println!(
        "            answered {}  failed {}  shed {}  quarantined {}  respawns {}  batches {}",
        r.answered, r.failed, r.shed, r.quarantined, r.respawns, r.batches
    );
    if !outcome.taxonomy.is_empty() {
        let tax: Vec<String> = outcome
            .taxonomy
            .iter()
            .map(|(k, v)| format!("{k}:{v}"))
            .collect();
        println!("            errors: {}", tax.join(" "));
    }
    let mut rec = json!({
        "group": "serve_bench",
        "label": label,
        "scale": scale_name,
        "n_queries": n_queries as f64,
        "workers": serve_cfg.workers as f64,
        "batch_max": serve_cfg.batch_max as f64,
        "queue_capacity": serve_cfg.queue_capacity as f64,
        "wall_ms": outcome.wall.as_secs_f64() * 1e3,
        "qps": qps,
        "p50_ns": sample.median.as_nanos() as f64,
        "p95_ns": sample.p95.as_nanos() as f64,
        "p99_ns": sample.p99.as_nanos() as f64,
        "min_ns": sample.min.as_nanos() as f64,
        "mean_ns": sample.mean.as_nanos() as f64,
        "submitted": r.submitted as f64,
        "answered": r.answered as f64,
        "failed": r.failed as f64,
        "shed": r.shed as f64,
        "quarantined": r.quarantined as f64,
        "respawns": r.respawns as f64,
        "batches": r.batches as f64,
    });
    if let Value::Object(fields) = &mut rec {
        for (k, v) in &outcome.taxonomy {
            fields.push((format!("err_{k}"), Value::Number(*v as f64)));
        }
    }
    if let Err(e) = timing::append_jsonl(json_path, &rec) {
        eprintln!("bench json append failed for {}: {e}", json_path.display());
    }
}
