//! Open-world evaluation sweep: enrollment-rate × rejection-threshold grid
//! over the rest/rest release pair, recorded to the bench JSON trajectory
//! (`NEURODEANON_BENCH_JSON`, default `bench_results.jsonl`) as groups
//! `openworld_cmc` and `openworld_roc`.
//!
//! Invariants asserted here, not just in the unit suites:
//! - the `enroll_rate = 1.0` row reproduces the closed-world baseline
//!   accuracy **bit-identically** (the open-world layer's acceptance
//!   criterion);
//! - every CMC curve is monotone non-decreasing and ends at the closed-set
//!   hit rate;
//! - TPIR and FPIR are weakly decreasing along the threshold sweep;
//! - the appended JSONL trajectory re-parses with `testkit::json`.
//!
//! Scale comes from `NEURODEANON_BENCH_SCALE` (`small` default; `paper`
//! runs the full HCP shape with a denser rate/threshold grid).

use neurodeanon_bench::fail;
use neurodeanon_bench::scale::Scale;
use neurodeanon_bench::timing::{self, Bench};
use neurodeanon_core::experiments::openworld::{openworld_sweep, OpenWorldResult};
use neurodeanon_testkit::json;
use std::path::PathBuf;

fn bench_json_path() -> PathBuf {
    std::env::var("NEURODEANON_BENCH_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("bench_results.jsonl"))
}

fn assert_result_invariants(r: &OpenWorldResult) {
    assert_eq!(r.cmc.len(), r.n_enrolled, "CMC has one entry per rank");
    for w in r.cmc.windows(2) {
        assert!(
            w[1] >= w[0],
            "rate {}: CMC not monotone ({} then {})",
            r.enroll_rate,
            w[0],
            w[1]
        );
    }
    assert_eq!(
        *r.cmc.last().unwrap_or_else(|| fail("cmc curve is empty")),
        1.0,
        "rate {}: finite-score CMC must end at hit rate 1",
        r.enroll_rate
    );
    for w in r.roc.windows(2) {
        assert!(
            w[1].tpir <= w[0].tpir,
            "rate {}: TPIR rose with threshold",
            r.enroll_rate
        );
        assert!(
            !(w[1].fpir > w[0].fpir),
            "rate {}: FPIR rose with threshold",
            r.enroll_rate
        );
    }
}

fn main() {
    let scale = match std::env::var("NEURODEANON_BENCH_SCALE") {
        Ok(v) => Scale::parse(&v).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        }),
        Err(_) => Scale::Small,
    };
    let (scale_name, rates, thresholds): (&str, &[f64], &[f64]) = match scale {
        Scale::Small => ("small", &[0.25, 0.5, 1.0], &[0.0, 0.02, 0.05, 0.1, 0.5]),
        Scale::Paper => (
            "paper",
            &[0.1, 0.25, 0.5, 0.75, 0.9, 1.0],
            &[0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 1.0],
        ),
    };
    let json_path = bench_json_path();
    let cohort = scale.hcp(0x09e2_11d0);
    let b = Bench::new("openworld").iters(1).warmup(0);

    let mut res = None;
    let sample = b.run(&format!("openworld_sweep_{scale_name}"), || {
        res = Some(
            openworld_sweep(&cohort, rates, thresholds, 0x5eed)
                .unwrap_or_else(|e| fail(&format!("{e} at openworld.rs:{}", line!()))),
        );
    });
    let res = res.unwrap_or_else(|| fail("openworld sweep produced no result"));

    assert!(
        res.baseline_accuracy.is_finite() && res.baseline_accuracy > 0.5,
        "implausible closed-world baseline {}",
        res.baseline_accuracy
    );
    let full = res
        .results
        .iter()
        .find(|r| r.enroll_rate == 1.0)
        .unwrap_or_else(|| fail("the grid is missing the closed-world corner"));
    assert_eq!(
        full.rank1_accuracy.to_bits(),
        res.baseline_accuracy.to_bits(),
        "rate 1.0 must collapse onto the closed-world accuracy bit-for-bit"
    );
    assert_eq!(full.n_impostors, 0);

    let mut records = 0usize;
    for r in &res.results {
        assert_result_invariants(r);
        let rank5 = r.cmc.get(4).copied().unwrap_or(1.0);
        let cmc_rec = json!({
            "group": "openworld_cmc",
            "scale": scale_name,
            "enroll_rate": r.enroll_rate,
            "n_enrolled": r.n_enrolled as f64,
            "n_impostors": r.n_impostors as f64,
            "baseline_accuracy": res.baseline_accuracy,
            "rank1_accuracy": r.rank1_accuracy,
            "rank5_accuracy": rank5,
            "cmc": r.cmc.clone(),
            "sweep_ns": sample.median.as_nanos() as f64,
        });
        if let Err(e) = timing::append_jsonl(&json_path, &cmc_rec) {
            eprintln!("bench json append failed for {}: {e}", json_path.display());
        }
        records += 1;
        for p in &r.roc {
            // NaN FPIR (no impostors at rate 1.0) serializes as null.
            let roc_rec = json!({
                "group": "openworld_roc",
                "scale": scale_name,
                "enroll_rate": r.enroll_rate,
                "threshold": p.threshold,
                "tpir": p.tpir,
                "fpir": p.fpir,
                "fnir": p.fnir,
            });
            if let Err(e) = timing::append_jsonl(&json_path, &roc_rec) {
                eprintln!("bench json append failed for {}: {e}", json_path.display());
            }
            records += 1;
        }
        println!(
            "rate {:.2}: gallery {}, impostors {}, rank-1 {:.3}, TPIR@0 {:.3}",
            r.enroll_rate, r.n_enrolled, r.n_impostors, r.rank1_accuracy, r.roc[0].tpir
        );
    }

    // The trajectory must stay machine-readable end to end.
    let text = std::fs::read_to_string(&json_path)
        .unwrap_or_else(|e| fail(&format!("bench trajectory readable: {e}")));
    let mut ours = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let v = neurodeanon_testkit::json::parse(line)
            .unwrap_or_else(|e| fail(&format!("trajectory line parses as JSON: {e}")));
        match v.get("group").and_then(|g| g.as_str()) {
            Some("openworld_cmc") | Some("openworld_roc") => ours += 1,
            _ => {}
        }
    }
    assert!(
        ours >= records,
        "expected {records} openworld records in the trajectory, found {ours}"
    );
    println!(
        "trajectory {} verified: {ours} openworld records (baseline {:.3})",
        json_path.display(),
        res.baseline_accuracy
    );
}
