//! Minimal wall-clock benchmark harness for the `criterion-bench` targets.
//!
//! A deliberately small stand-in for an external benchmarking framework:
//! each benchmark runs a warm-up pass, then a fixed number of timed
//! iterations, and reports min / median / mean wall time. Results are
//! printed as a table; no statistics beyond the basics are attempted, so
//! use the medians for coarse comparisons, not for microbenchmark claims.

use neurodeanon_testkit::{json, Value};
use std::collections::HashSet;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A group of named timings sharing warm-up and iteration settings.
pub struct Bench {
    name: String,
    warmup: usize,
    iters: usize,
}

/// Timing summary for one benchmark case.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Case label.
    pub label: String,
    /// Fastest observed iteration.
    pub min: Duration,
    /// Median iteration (the 50th percentile).
    pub median: Duration,
    /// Mean iteration.
    pub mean: Duration,
    /// 95th-percentile iteration (nearest rank).
    pub p95: Duration,
    /// 99th-percentile iteration (nearest rank).
    pub p99: Duration,
    /// Number of timed iterations behind the statistics.
    pub iters: usize,
}

/// Typed failure of the timing statistics layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingError {
    /// Statistics over zero samples are undefined; callers get this typed
    /// error instead of a panic (or a garbage duration) on an empty input —
    /// e.g. a bench whose measured section shed every query.
    EmptySample,
}

impl std::fmt::Display for TimingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimingError::EmptySample => write!(f, "no samples: statistics are undefined"),
        }
    }
}

impl std::error::Error for TimingError {}

/// Nearest-rank percentile over an ascending-sorted sample.
pub fn percentile(sorted: &[Duration], p: f64) -> Result<Duration, TimingError> {
    if sorted.is_empty() {
        return Err(TimingError::EmptySample);
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    Ok(sorted[idx.min(sorted.len() - 1)])
}

impl Bench {
    /// Creates a benchmark group with the default 1 warm-up + 10 timed runs.
    pub fn new(name: &str) -> Self {
        Bench {
            name: name.to_string(),
            warmup: 1,
            iters: 10,
        }
    }

    /// Overrides the number of timed iterations (min 1).
    pub fn iters(mut self, n: usize) -> Self {
        self.iters = n.max(1);
        self
    }

    /// Overrides the number of warm-up iterations.
    pub fn warmup(mut self, n: usize) -> Self {
        self.warmup = n;
        self
    }

    /// Times `f`, printing one table row, and returns the sample. The
    /// closure's return value is passed through [`std::hint::black_box`] so
    /// the work cannot be optimized away.
    pub fn run<T>(&self, label: &str, mut f: impl FnMut() -> T) -> Sample {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut times = Vec::with_capacity(self.iters);
        for _ in 0..self.iters {
            let t0 = Instant::now();
            std::hint::black_box(f());
            times.push(t0.elapsed());
        }
        let s = match Sample::from_times(label, times) {
            Ok(s) => s,
            // `iters` is clamped to >= 1 in the builder.
            Err(TimingError::EmptySample) => unreachable!("Bench always times at least one iter"),
        };
        println!(
            "{}/{label:<40} min {:>10}  median {:>10}  mean {:>10}  ({} iters)",
            self.name,
            fmt_duration(s.min),
            fmt_duration(s.median),
            fmt_duration(s.mean),
            self.iters,
        );
        s
    }
}

impl Sample {
    /// Builds the summary statistics from raw iteration times (any order;
    /// sorted internally). The entry point for callers that collected their
    /// own latencies — e.g. the serve bench's per-query response times —
    /// rather than timing through [`Bench::run`]. Typed
    /// [`TimingError::EmptySample`] on an empty input.
    pub fn from_times(label: &str, mut times: Vec<Duration>) -> Result<Sample, TimingError> {
        times.sort_unstable();
        let min = *times.first().ok_or(TimingError::EmptySample)?;
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        Ok(Sample {
            label: label.to_string(),
            min,
            median: percentile(&times, 50.0)?,
            mean,
            p95: percentile(&times, 95.0)?,
            p99: percentile(&times, 99.0)?,
            iters: times.len(),
        })
    }
    /// Renders the sample as one JSON record for the bench trajectory file,
    /// tagged with its benchmark `group` name.
    pub fn to_json(&self, group: &str) -> Value {
        json!({
            "group": group,
            "label": self.label.as_str(),
            "min_ns": self.min.as_nanos() as f64,
            "median_ns": self.median.as_nanos() as f64,
            "mean_ns": self.mean.as_nanos() as f64,
            "p50_ns": self.median.as_nanos() as f64,
            "p95_ns": self.p95.as_nanos() as f64,
            "p99_ns": self.p99.as_nanos() as f64,
            "iters": self.iters as f64,
        })
    }
}

/// Process-wide ordinal for [`append_jsonl`] records: interleaved writers
/// (bench groups, trace exports) stay totally ordered within one run even
/// when wall-clock resolution cannot separate them.
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Appends one JSON record as a line to a JSONL file, creating it if needed.
///
/// Object records are stamped with host metadata before writing (existing
/// keys are never overwritten — membership is checked against one
/// `HashSet` of the record's keys rather than a scan per field), so every
/// `bench::timing` trajectory line carries the context needed to compare
/// runs across machines and configs:
///
/// * `seq` — a process-wide monotonic record ordinal;
/// * `threads` — the effective `linalg::par` worker count;
/// * `threads_env` — the raw `NEURODEANON_THREADS` value (absent when the
///   variable is unset), which may exceed `threads` on small hosts because
///   the pool clamps to the core count;
/// * `profile` — `"debug"` or `"release"` build profile.
///
/// A trailing *partial* line (a previous writer crashed mid-record, leaving
/// no final newline) is tolerated: the new record starts on a fresh line
/// instead of being glued onto the damaged one, so one truncated record
/// never corrupts the lines appended after it.
pub fn append_jsonl(path: &Path, record: &Value) -> std::io::Result<()> {
    let mut stamped = record.clone();
    if let Value::Object(fields) = &mut stamped {
        let present: HashSet<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        let mut missing: Vec<(String, Value)> = Vec::new();
        let mut put = |key: &str, value: Value| {
            if !present.contains(key) {
                missing.push((key.to_string(), value));
            }
        };
        put(
            "seq",
            Value::Number(SEQ.fetch_add(1, Ordering::Relaxed) as f64),
        );
        put(
            "threads",
            Value::Number(neurodeanon_linalg::par::num_threads() as f64),
        );
        if let Ok(env) = std::env::var("NEURODEANON_THREADS") {
            put("threads_env", Value::String(env));
        }
        let profile = if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        };
        put("profile", Value::String(profile.to_string()));
        fields.extend(missing);
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .read(true)
        .append(true)
        .open(path)?;
    if missing_final_newline(&mut f)? {
        f.write_all(b"\n")?;
    }
    writeln!(f, "{stamped}")
}

/// Whether a non-empty file's last byte is not `\n` (a truncated record).
/// The seek only moves the read cursor; append-mode writes still go to the
/// end of the file.
fn missing_final_newline(f: &mut std::fs::File) -> std::io::Result<bool> {
    use std::io::{Read as _, Seek as _, SeekFrom};
    if f.metadata()?.len() == 0 {
        return Ok(false);
    }
    f.seek(SeekFrom::End(-1))?;
    let mut last = [0u8; 1];
    f.read_exact(&mut last)?;
    Ok(last[0] != b'\n')
}

/// Formats a duration with an adaptive unit (ns / µs / ms / s).
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_orders_stats() {
        let b = Bench::new("test").iters(5).warmup(0);
        let s = b.run("spin", || {
            let mut acc = 0u64;
            for i in 0..1000 {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        assert_eq!(s.label, "spin");
        assert!(s.min <= s.median);
        assert!(s.min <= s.mean);
    }

    #[test]
    fn sample_json_record_and_jsonl_append() {
        let s = Sample {
            label: "gram_64620x100".to_string(),
            min: Duration::from_nanos(5),
            median: Duration::from_nanos(7),
            mean: Duration::from_nanos(6),
            p95: Duration::from_nanos(9),
            p99: Duration::from_nanos(11),
            iters: 10,
        };
        let v = s.to_json("thread_sweep");
        assert_eq!(v.get("group").and_then(Value::as_str), Some("thread_sweep"));
        assert_eq!(v.get("median_ns").and_then(Value::as_f64), Some(7.0));
        assert_eq!(v.get("p50_ns").and_then(Value::as_f64), Some(7.0));
        assert_eq!(v.get("p95_ns").and_then(Value::as_f64), Some(9.0));
        assert_eq!(v.get("p99_ns").and_then(Value::as_f64), Some(11.0));
        assert_eq!(v.get("iters").and_then(Value::as_f64), Some(10.0));

        let path = std::env::temp_dir().join(format!("nd_timing_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        append_jsonl(&path, &v).unwrap();
        append_jsonl(&path, &v).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        let parsed = neurodeanon_testkit::json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(parsed.get("min_ns").and_then(Value::as_f64), Some(5.0));
        // Consecutive records carry strictly increasing sequence numbers.
        let second = neurodeanon_testkit::json::parse(text.lines().nth(1).unwrap()).unwrap();
        let s0 = parsed.get("seq").and_then(Value::as_f64).unwrap();
        let s1 = second.get("seq").and_then(Value::as_f64).unwrap();
        assert!(s1 > s0, "seq must be monotonic: {s0} then {s1}");
        // Host metadata is stamped on write.
        assert_eq!(
            parsed.get("threads").and_then(Value::as_f64),
            Some(neurodeanon_linalg::par::num_threads() as f64)
        );
        let profile = if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        };
        assert_eq!(parsed.get("profile").and_then(Value::as_str), Some(profile));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_jsonl_never_overwrites_caller_fields() {
        let v = json!({ "group": "g", "threads": 99.0, "profile": "custom" });
        let path = std::env::temp_dir().join(format!("nd_meta_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        append_jsonl(&path, &v).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = neurodeanon_testkit::json::parse(text.trim()).unwrap();
        assert_eq!(parsed.get("threads").and_then(Value::as_f64), Some(99.0));
        assert_eq!(
            parsed.get("profile").and_then(Value::as_str),
            Some("custom")
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duration_formatting_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }

    #[test]
    fn duration_formatting_unit_boundaries() {
        // The last value of each unit and the first of the next.
        assert_eq!(fmt_duration(Duration::from_nanos(999)), "999 ns");
        assert_eq!(fmt_duration(Duration::from_nanos(1_000)), "1.00 µs");
        assert_eq!(fmt_duration(Duration::from_nanos(999_999)), "1000.00 µs");
        assert_eq!(fmt_duration(Duration::from_nanos(1_000_000)), "1.00 ms");
        assert_eq!(
            fmt_duration(Duration::from_nanos(999_999_999)),
            "1000.00 ms"
        );
        assert_eq!(fmt_duration(Duration::from_nanos(1_000_000_000)), "1.00 s");
        assert_eq!(fmt_duration(Duration::ZERO), "0 ns");
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let times: Vec<Duration> = (1..=100).map(Duration::from_nanos).collect();
        assert_eq!(percentile(&times, 50.0), Ok(Duration::from_nanos(51)));
        assert_eq!(percentile(&times, 95.0), Ok(Duration::from_nanos(95)));
        assert_eq!(percentile(&times, 99.0), Ok(Duration::from_nanos(99)));
        assert_eq!(percentile(&times, 100.0), Ok(Duration::from_nanos(100)));
        let one = [Duration::from_nanos(7)];
        assert_eq!(percentile(&one, 99.0), Ok(Duration::from_nanos(7)));
    }

    #[test]
    fn empty_samples_are_a_typed_error_not_a_panic() {
        assert_eq!(percentile(&[], 50.0), Err(TimingError::EmptySample));
        assert_eq!(
            Sample::from_times("empty", Vec::new()).unwrap_err(),
            TimingError::EmptySample
        );
        // Non-empty inputs summarize, unsorted accepted.
        let s = Sample::from_times(
            "three",
            vec![
                Duration::from_nanos(9),
                Duration::from_nanos(1),
                Duration::from_nanos(5),
            ],
        )
        .unwrap();
        assert_eq!(s.min, Duration::from_nanos(1));
        assert_eq!(s.median, Duration::from_nanos(5));
        assert_eq!(s.p99, Duration::from_nanos(9));
        assert_eq!(s.iters, 3);
    }

    #[test]
    fn append_jsonl_repairs_a_trailing_partial_line() {
        let path = std::env::temp_dir().join(format!("nd_partial_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        // A writer died mid-record: no trailing newline.
        std::fs::write(&path, "{\"group\":\"g\",\"truncat").unwrap();
        append_jsonl(&path, &json!({ "group": "h", "ok": 1.0 })).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "partial line must be terminated: {text:?}");
        // The damaged record stays damaged; the new one parses.
        assert!(neurodeanon_testkit::json::parse(lines[0]).is_err());
        let parsed = neurodeanon_testkit::json::parse(lines[1]).unwrap();
        assert_eq!(parsed.get("ok").and_then(Value::as_f64), Some(1.0));
        // A well-terminated file gains no spurious blank line.
        append_jsonl(&path, &json!({ "group": "h", "ok": 2.0 })).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(!text.contains("\n\n"), "no blank lines: {text:?}");
        std::fs::remove_file(&path).unwrap();
    }
}
