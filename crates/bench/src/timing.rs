//! Minimal wall-clock benchmark harness for the `criterion-bench` targets.
//!
//! A deliberately small stand-in for an external benchmarking framework:
//! each benchmark runs a warm-up pass, then a fixed number of timed
//! iterations, and reports min / median / mean wall time. Results are
//! printed as a table; no statistics beyond the basics are attempted, so
//! use the medians for coarse comparisons, not for microbenchmark claims.

use neurodeanon_testkit::{json, Value};
use std::io::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

/// A group of named timings sharing warm-up and iteration settings.
pub struct Bench {
    name: String,
    warmup: usize,
    iters: usize,
}

/// Timing summary for one benchmark case.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Case label.
    pub label: String,
    /// Fastest observed iteration.
    pub min: Duration,
    /// Median iteration.
    pub median: Duration,
    /// Mean iteration.
    pub mean: Duration,
}

impl Bench {
    /// Creates a benchmark group with the default 1 warm-up + 10 timed runs.
    pub fn new(name: &str) -> Self {
        Bench {
            name: name.to_string(),
            warmup: 1,
            iters: 10,
        }
    }

    /// Overrides the number of timed iterations (min 1).
    pub fn iters(mut self, n: usize) -> Self {
        self.iters = n.max(1);
        self
    }

    /// Overrides the number of warm-up iterations.
    pub fn warmup(mut self, n: usize) -> Self {
        self.warmup = n;
        self
    }

    /// Times `f`, printing one table row, and returns the sample. The
    /// closure's return value is passed through [`std::hint::black_box`] so
    /// the work cannot be optimized away.
    pub fn run<T>(&self, label: &str, mut f: impl FnMut() -> T) -> Sample {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut times = Vec::with_capacity(self.iters);
        for _ in 0..self.iters {
            let t0 = Instant::now();
            std::hint::black_box(f());
            times.push(t0.elapsed());
        }
        times.sort_unstable();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        let s = Sample {
            label: label.to_string(),
            min,
            median,
            mean,
        };
        println!(
            "{}/{label:<40} min {:>10}  median {:>10}  mean {:>10}  ({} iters)",
            self.name,
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            self.iters,
        );
        s
    }
}

impl Sample {
    /// Renders the sample as one JSON record for the bench trajectory file,
    /// tagged with its benchmark `group` name.
    pub fn to_json(&self, group: &str) -> Value {
        json!({
            "group": group,
            "label": self.label.as_str(),
            "min_ns": self.min.as_nanos() as f64,
            "median_ns": self.median.as_nanos() as f64,
            "mean_ns": self.mean.as_nanos() as f64,
        })
    }
}

/// Appends one JSON record as a line to a JSONL file, creating it if needed.
///
/// Object records are stamped with host metadata before writing (existing
/// keys are never overwritten), so every `bench::timing` trajectory line
/// carries the context needed to compare runs across machines and configs:
///
/// * `threads` — the effective `linalg::par` worker count;
/// * `threads_env` — the raw `NEURODEANON_THREADS` value (absent when the
///   variable is unset), which may exceed `threads` on small hosts because
///   the pool clamps to the core count;
/// * `profile` — `"debug"` or `"release"` build profile.
pub fn append_jsonl(path: &Path, record: &Value) -> std::io::Result<()> {
    let mut stamped = record.clone();
    if let Value::Object(fields) = &mut stamped {
        let mut put = |key: &str, value: Value| {
            if !fields.iter().any(|(k, _)| k == key) {
                fields.push((key.to_string(), value));
            }
        };
        put(
            "threads",
            Value::Number(neurodeanon_linalg::par::num_threads() as f64),
        );
        if let Ok(env) = std::env::var("NEURODEANON_THREADS") {
            put("threads_env", Value::String(env));
        }
        let profile = if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        };
        put("profile", Value::String(profile.to_string()));
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{stamped}")
}

/// Formats a duration with an adaptive unit (ns / µs / ms / s).
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_orders_stats() {
        let b = Bench::new("test").iters(5).warmup(0);
        let s = b.run("spin", || {
            let mut acc = 0u64;
            for i in 0..1000 {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        assert_eq!(s.label, "spin");
        assert!(s.min <= s.median);
        assert!(s.min <= s.mean);
    }

    #[test]
    fn sample_json_record_and_jsonl_append() {
        let s = Sample {
            label: "gram_64620x100".to_string(),
            min: Duration::from_nanos(5),
            median: Duration::from_nanos(7),
            mean: Duration::from_nanos(6),
        };
        let v = s.to_json("thread_sweep");
        assert_eq!(v.get("group").and_then(Value::as_str), Some("thread_sweep"));
        assert_eq!(v.get("median_ns").and_then(Value::as_f64), Some(7.0));

        let path = std::env::temp_dir().join(format!("nd_timing_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        append_jsonl(&path, &v).unwrap();
        append_jsonl(&path, &v).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        let parsed = neurodeanon_testkit::json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(parsed.get("min_ns").and_then(Value::as_f64), Some(5.0));
        // Host metadata is stamped on write.
        assert_eq!(
            parsed.get("threads").and_then(Value::as_f64),
            Some(neurodeanon_linalg::par::num_threads() as f64)
        );
        let profile = if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        };
        assert_eq!(parsed.get("profile").and_then(Value::as_str), Some(profile));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_jsonl_never_overwrites_caller_fields() {
        let v = json!({ "group": "g", "threads": 99.0, "profile": "custom" });
        let path = std::env::temp_dir().join(format!("nd_meta_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        append_jsonl(&path, &v).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = neurodeanon_testkit::json::parse(text.trim()).unwrap();
        assert_eq!(parsed.get("threads").and_then(Value::as_f64), Some(99.0));
        assert_eq!(
            parsed.get("profile").and_then(Value::as_str),
            Some("custom")
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duration_formatting_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
