//! JSONL export of an observability snapshot.
//!
//! The `obs` crate sits below the workspace's JSON layer, so it only
//! *collects* span/counter/gauge state; this module renders a
//! [`neurodeanon_obs::Snapshot`] into the bench trajectory format — one
//! record per span node (`"record": "obs_span"`), counter
//! (`"obs_counter"`), and gauge (`"obs_gauge"`) — through
//! [`timing::append_jsonl`], which stamps every line with the host
//! metadata (`seq`, `threads`, `profile`) shared by all bench records.

use crate::timing::append_jsonl;
use neurodeanon_obs::Snapshot;
use neurodeanon_testkit::{json, Value};
use std::path::Path;

/// Renders every span node of `snap` as JSON records, parents before
/// children (the snapshot's path order).
pub fn span_records(snap: &Snapshot, run: &str) -> Vec<Value> {
    snap.spans
        .iter()
        .map(|n| {
            json!({
                "record": "obs_span",
                "run": run,
                "path": n.path.as_str(),
                "name": n.name.as_str(),
                "depth": n.depth as f64,
                "count": n.stats.count as f64,
                "total_ns": n.stats.total_ns as f64,
                "min_ns": n.stats.min_ns as f64,
                "max_ns": n.stats.max_ns as f64,
            })
        })
        .collect()
}

/// Renders every counter and gauge of `snap` as JSON records.
pub fn metric_records(snap: &Snapshot, run: &str) -> Vec<Value> {
    let counters = snap.counters.iter().map(|(name, value)| {
        json!({
            "record": "obs_counter",
            "run": run,
            "name": name.as_str(),
            "value": *value as f64,
        })
    });
    let gauges = snap.gauges.iter().map(|(name, last, max)| {
        json!({
            "record": "obs_gauge",
            "run": run,
            "name": name.as_str(),
            "last": *last,
            "max": *max,
        })
    });
    counters.chain(gauges).collect()
}

/// Appends the whole snapshot (spans, then counters, then gauges) to a
/// JSONL file. `run` tags every record so several exports can share one
/// trajectory file.
pub fn export_jsonl(snap: &Snapshot, run: &str, path: &Path) -> std::io::Result<()> {
    for record in span_records(snap, run)
        .iter()
        .chain(metric_records(snap, run).iter())
    {
        append_jsonl(path, record)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurodeanon_obs as obs;
    use neurodeanon_testkit::json::parse;

    #[test]
    fn exported_snapshot_round_trips_through_the_json_parser() {
        // Build a tiny snapshot by hand via the public obs API. The obs
        // registries are process-global; this is the only bench test that
        // touches them, so no cross-test lock is needed.
        obs::reset();
        obs::enable();
        {
            let _root = obs::span("export.root");
            let _child = obs::span("export.child");
        }
        obs::counter("export.events").add(3);
        obs::gauge("export.level").set(0.5);
        let snap = obs::snapshot();
        obs::disable();

        let path =
            std::env::temp_dir().join(format!("nd_trace_export_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        export_jsonl(&snap, "unit", &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let records: Vec<Value> = text.lines().map(|l| parse(l).unwrap()).collect();
        // The obs registries are process-global, so sibling tests may have
        // registered extra counters; look our records up by name/path
        // instead of asserting an exact total.
        let by = |key: &str, want: &str| {
            records
                .iter()
                .find(|r| r.get(key).and_then(Value::as_str) == Some(want))
                .unwrap_or_else(|| panic!("no record with {key}={want}"))
        };

        let root = by("path", "export.root");
        assert_eq!(root.get("record").and_then(Value::as_str), Some("obs_span"));
        assert_eq!(root.get("run").and_then(Value::as_str), Some("unit"));
        let child = by("path", "export.root/export.child");
        assert_eq!(child.get("depth").and_then(Value::as_f64), Some(1.0));
        assert_eq!(child.get("count").and_then(Value::as_f64), Some(1.0));
        let counter = by("name", "export.events");
        assert_eq!(
            counter.get("record").and_then(Value::as_str),
            Some("obs_counter")
        );
        assert_eq!(counter.get("value").and_then(Value::as_f64), Some(3.0));
        let gauge = by("name", "export.level");
        assert_eq!(
            gauge.get("record").and_then(Value::as_str),
            Some("obs_gauge")
        );
        assert_eq!(gauge.get("last").and_then(Value::as_f64), Some(0.5));
        // Host stamping applies to trace records too.
        assert!(root.get("seq").is_some());
        assert!(root.get("threads").is_some());
        obs::reset();
        std::fs::remove_file(&path).unwrap();
    }
}
