//! Text + JSON experiment reports.
//!
//! The `repro` binary prints a human-readable block per experiment and
//! appends a machine-readable JSON record to `repro_results.jsonl`, which
//! EXPERIMENTS.md quotes. JSON is written and parsed by the in-repo
//! [`neurodeanon_testkit::json`] module, so the harness has no external
//! serialization dependency.

use neurodeanon_testkit::{json, Value};
use std::io::Write as _;

/// One experiment's report: a title, free-form text lines, and a JSON
/// payload for the results file.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id (e.g. `"fig5"`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Result payload (arbitrary JSON).
    pub data: Value,
    /// Pre-formatted table lines for the terminal (not serialized).
    pub lines: Vec<String>,
}

impl Report {
    /// Creates a report.
    pub fn new(id: &str, title: &str) -> Self {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            data: Value::Null,
            lines: Vec::new(),
        }
    }

    /// Adds a display line.
    pub fn line(&mut self, s: impl Into<String>) -> &mut Self {
        self.lines.push(s.into());
        self
    }

    /// Sets the JSON payload.
    pub fn data(&mut self, v: Value) -> &mut Self {
        self.data = v;
        self
    }

    /// Prints the report block to stdout.
    pub fn print(&self) {
        println!("\n=== {} — {} ===", self.id, self.title);
        for l in &self.lines {
            println!("{l}");
        }
    }

    /// The JSON record appended to the results file.
    pub fn record(&self) -> Value {
        json!({
            "id": self.id.as_str(),
            "title": self.title.as_str(),
            "data": self.data.clone(),
        })
    }

    /// Appends the JSON record to `path` (JSON-lines format).
    pub fn append_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(f, "{}", self.record())
    }
}

/// Formats a `(mean, std)` pair the way the paper's tables do.
pub fn pm(v: (f64, f64)) -> String {
    format!("{:.2} ± {:.2}", v.0, v.1)
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurodeanon_testkit::json::parse;

    #[test]
    fn report_builds_and_serializes() {
        let mut r = Report::new("fig1", "rest similarity");
        r.line("hello").data(json!({"acc": 0.94}));
        assert_eq!(r.lines.len(), 1);
        let dir = std::env::temp_dir().join("neurodeanon_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        let _ = std::fs::remove_file(&path);
        r.append_json(&path).unwrap();
        r.append_json(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 2);
        assert!(content.contains("fig1"));
    }

    #[test]
    fn written_record_parses_back_with_fields_intact() {
        let mut r = Report::new("e9", "round trip");
        r.data(json!({
            "accuracy": 0.875,
            "n": 16,
            "curve": vec![0.5, 0.75, 0.875],
        }));
        let dir = std::env::temp_dir().join("neurodeanon_report_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        let _ = std::fs::remove_file(&path);
        r.append_json(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let back = parse(content.lines().next().unwrap()).unwrap();
        assert_eq!(back["id"].as_str(), Some("e9"));
        assert_eq!(back["title"].as_str(), Some("round trip"));
        assert_eq!(back["data"]["accuracy"].as_f64(), Some(0.875));
        assert_eq!(back["data"]["n"].as_f64(), Some(16.0));
        assert_eq!(back["data"]["curve"][2].as_f64(), Some(0.875));
        assert_eq!(back, r.record());
    }

    #[test]
    fn formatting() {
        assert_eq!(pm((1.234, 0.5)), "1.23 ± 0.50");
        assert_eq!(pct(0.944), "94.4%");
    }
}
