//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! repro [--scale small|paper] [--out results.jsonl] <experiment>...
//! ```
//!
//! Experiments: `fig1 fig2 fig5 fig6 table1 fig7 fig8 fig9 table2
//! fig4-ablation ablations all`. See DESIGN.md §3 for the experiment ↔
//! paper-artifact index.

use neurodeanon_bench::report::{pct, pm, Report};
use neurodeanon_bench::Scale;
use neurodeanon_core::attack::AttackConfig;
use neurodeanon_core::experiments::preprocess_ablation::PreprocessAblationConfig;
use neurodeanon_core::experiments::{
    ablation_atlas_granularity, ablation_feature_count, ablation_matching_rule,
    ablation_sampling_strategy, adhd_experiment, block_performance_experiment, cross_task_matrix,
    defense_sweep, multi_site_sweep, performance_table, preprocess_ablation,
    signature_localization, similarity_experiment, task_prediction_experiment,
};
use neurodeanon_core::performance::PerfConfig;
use neurodeanon_core::task_id::TaskIdConfig;
use neurodeanon_datasets::Task;
use neurodeanon_testkit::{json, Value};
use std::path::PathBuf;

/// Prints a typed failure and exits with code 2 — an experiment or flag
/// error is a user-facing diagnostic, not a panic with a backtrace.
fn fail(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

/// Unwraps an experiment result, failing with the experiment's name and the
/// rendered typed error.
fn or_fail<T, E: std::fmt::Display>(what: &str, result: Result<T, E>) -> T {
    result.unwrap_or_else(|e| fail(&format!("{what}: {e}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut out = PathBuf::from("repro_results.jsonl");
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_else(|| fail("--scale needs a value"));
                scale = Scale::parse(v).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--out" => {
                out = PathBuf::from(it.next().unwrap_or_else(|| fail("--out needs a value")));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--scale small|paper] [--out FILE] \
                     fig1|fig2|fig5|fig6|table1|fig7|fig8|fig9|table2|fig4-ablation|\
                     localization|block-timing|defense|ablations|all"
                );
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        wanted.push("all".to_string());
    }
    let all = wanted.iter().any(|w| w == "all");
    let want = |id: &str| all || wanted.iter().any(|w| w == id);

    println!("# neurodeanon repro — scale: {scale:?}");
    // Print and persist each report the moment its experiment finishes, so
    // a long paper-scale run streams results instead of buffering them.
    let mut count = 0usize;
    let mut emit = |r: Report| {
        r.print();
        if let Err(e) = r.append_json(&out) {
            eprintln!("warning: could not write {}: {e}", out.display());
        }
        count += 1;
    };

    if want("fig1") || want("fig2") {
        let cohort = scale.hcp(0x4c50);
        if want("fig1") {
            let res = or_fail(
                "fig1",
                similarity_experiment(&cohort, Task::Rest, AttackConfig::default()),
            );
            let mut r = Report::new("fig1", "pairwise similarity of resting-state connectomes");
            r.line(format!(
                "identification accuracy      {}",
                pct(res.accuracy)
            ));
            r.line(format!(
                "mean diagonal similarity     {:.3}",
                res.mean_diagonal
            ));
            r.line(format!(
                "mean off-diagonal similarity {:.3}",
                res.mean_offdiagonal
            ));
            r.line(format!(
                "diag/off-diag contrast       {:.3}",
                res.contrast()
            ));
            r.line("paper: accuracy > 94%, strong diagonal".to_string());
            r.data(json!({
                "accuracy": res.accuracy,
                "mean_diagonal": res.mean_diagonal,
                "mean_offdiagonal": res.mean_offdiagonal,
            }));
            emit(r);
        }
        if want("fig2") {
            let rest = or_fail(
                "fig2 (rest reference)",
                similarity_experiment(&cohort, Task::Rest, AttackConfig::default()),
            );
            let lang = or_fail(
                "fig2",
                similarity_experiment(&cohort, Task::Language, AttackConfig::default()),
            );
            let mut r = Report::new("fig2", "pairwise similarity of LANGUAGE task connectomes");
            r.line(format!(
                "identification accuracy      {}",
                pct(lang.accuracy)
            ));
            r.line(format!(
                "diag/off-diag contrast       {:.3}",
                lang.contrast()
            ));
            r.line(format!(
                "rest contrast (fig1 ref)     {:.3}  (task contrast must be weaker)",
                rest.contrast()
            ));
            r.data(json!({
                "accuracy": lang.accuracy,
                "contrast": lang.contrast(),
                "rest_contrast": rest.contrast(),
            }));
            emit(r);
        }
    }

    if want("fig5") {
        let cohort = scale.hcp(0x4c51);
        let res = or_fail("fig5", cross_task_matrix(&cohort, AttackConfig::default()));
        let mut r = Report::new(
            "fig5",
            "cross-task identification accuracy (rows de-anonymized, cols anonymous)",
        );
        let header = res
            .tasks
            .iter()
            .map(|t| format!("{:>10}", t.name()))
            .collect::<Vec<_>>()
            .join("");
        r.line(format!("{:>12}{header}", ""));
        for (i, t) in res.tasks.iter().enumerate() {
            let row = res.accuracy[i]
                .iter()
                .map(|a| format!("{:>10.2}", a))
                .collect::<Vec<_>>()
                .join("");
            r.line(format!("{:>12}{row}", t.name()));
        }
        r.line("paper: REST row strongest; LANGUAGE/RELATIONAL > 0.9; MOTOR/WM ineffective");
        r.data(json!({
            "tasks": res.tasks.iter().map(|t| t.name()).collect::<Vec<_>>(),
            "accuracy": res.accuracy,
        }));
        emit(r);
    }

    if want("fig6") {
        let cohort = scale.hcp(0x4c52);
        let reps = match scale {
            Scale::Small => 3,
            Scale::Paper => 10,
        };
        let res = or_fail(
            "fig6",
            task_prediction_experiment(&cohort, &TaskIdConfig::default(), reps),
        );
        let mut r = Report::new("fig6", "t-SNE task clusters + 1-NN task prediction");
        r.line(format!(
            "overall accuracy         {}",
            pm(res.overall_accuracy)
        ));
        for (t, acc) in res.tasks.iter().zip(&res.per_task_accuracy) {
            r.line(format!("{:>12}             {}", t.name(), pm(*acc)));
        }
        let conf = res
            .rest_confusions
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(t, &c)| format!("{}:{}", res.tasks[t].name(), c))
            .collect::<Vec<_>>()
            .join(", ");
        r.line(format!("rest misclassified as    [{conf}]"));
        r.line("paper: 100% on tasks, 99.01 ± 0.52% on rest; rest confused with gambling");
        r.data(json!({
            "overall": res.overall_accuracy,
            "per_task": res.per_task_accuracy,
            "rest_confusions": res.rest_confusions,
        }));
        emit(r);
    }

    if want("table1") {
        let cohort = scale.hcp(0x4c53);
        let cfg = PerfConfig {
            n_repeats: scale.repeats(),
            ..Default::default()
        };
        let rows = or_fail("table1", performance_table(&cohort, &cfg));
        let mut r = Report::new("table1", "task-performance prediction error (nRMSE %)");
        r.line(format!(
            "{:>16} {:>16} {:>16}",
            "task", "train nRMSE", "test nRMSE"
        ));
        let mut data = Vec::new();
        for row in &rows {
            r.line(format!(
                "{:>16} {:>16} {:>16}",
                row.task.name(),
                pm(row.train),
                pm(row.test)
            ));
            data.push(json!({
                "task": row.task.name(),
                "train": row.train,
                "test": row.test,
            }));
        }
        r.line("paper: Language 0.33/1.52, Emotion 0.28/0.60, Relational 0.44/2.74, WM 0.57/1.93");
        r.data(Value::Array(data));
        emit(r);
    }

    if want("fig7") || want("fig8") || want("fig9") {
        let cohort = scale.adhd(0xadbd);
        for (id, label, subjects) in [
            (
                "fig7",
                "ADHD subtype 1 intra/inter-subject similarity",
                cohort.subjects_in(neurodeanon_datasets::AdhdGroup::Subtype(1)),
            ),
            (
                "fig8",
                "ADHD subtype 3 intra/inter-subject similarity",
                cohort.subjects_in(neurodeanon_datasets::AdhdGroup::Subtype(3)),
            ),
            (
                "fig9",
                "ADHD cases + controls similarity",
                (0..cohort.n_subjects()).collect::<Vec<_>>(),
            ),
        ] {
            if !want(id) {
                continue;
            }
            let res = or_fail(
                id,
                adhd_experiment(&cohort, &subjects, label, AttackConfig::default()),
            );
            let mut r = Report::new(id, label);
            r.line(format!("subjects                 {}", subjects.len()));
            r.line(format!("identification accuracy  {}", pct(res.accuracy)));
            r.line(format!("mean diagonal            {:.3}", res.mean_diagonal));
            r.line(format!(
                "mean off-diagonal        {:.3}",
                res.mean_offdiagonal
            ));
            if id == "fig9" {
                let (mean, std) = or_fail(
                    "fig9 (train/test transfer)",
                    neurodeanon_core::experiments::adhd::adhd_train_test_transfer(
                        &cohort,
                        100,
                        0.3,
                        scale.repeats(),
                        7,
                    ),
                );
                r.line(format!(
                    "train/test transfer acc  {mean:.1} ± {std:.1}%  (paper: 97.2 ± 0.9%)"
                ));
            }
            r.data(json!({
                "subjects": subjects.len(),
                "accuracy": res.accuracy,
                "mean_diagonal": res.mean_diagonal,
                "mean_offdiagonal": res.mean_offdiagonal,
            }));
            emit(r);
        }
    }

    if want("table2") {
        let hcp = scale.hcp(0x4c54);
        let adhd = scale.adhd(0xadbe);
        // The paper sweeps 10–30%; our synthetic connectomes need larger
        // fractions before estimation noise erodes matching, so the sweep
        // extends to 400% — the paper's accuracy band (≈91% → 79%) appears
        // in the extended range (see EXPERIMENTS.md).
        let res = or_fail(
            "table2",
            multi_site_sweep(
                &hcp,
                &adhd,
                &[0.10, 0.20, 0.30, 1.0, 2.0, 4.0],
                scale.repeats().min(5),
                AttackConfig::default(),
                11,
            ),
        );
        let mut r = Report::new("table2", "multi-site noise sweep (accuracy %)");
        r.line(format!(
            "{:>12} {:>16} {:>16}",
            "noise var", "HCP", "ADHD-200"
        ));
        for (i, f) in res.noise_fractions.iter().enumerate() {
            r.line(format!(
                "{:>11.0}% {:>16} {:>16}",
                f * 100.0,
                pm(res.hcp[i]),
                pm(res.adhd[i])
            ));
        }
        r.line("paper: 10% → 91.14/96.33, 20% → 86.71/89.17, 30% → 79.05/84.10");
        r.data(json!({
            "noise_fractions": res.noise_fractions,
            "hcp": res.hcp,
            "adhd": res.adhd,
        }));
        emit(r);
    }

    if want("fig4-ablation") {
        let cfg = match scale {
            Scale::Small => PreprocessAblationConfig {
                n_subjects: 8,
                grid_edge: 12,
                n_regions: 16,
                n_timepoints: 600,
                n_features: 60,
                ..Default::default()
            },
            Scale::Paper => PreprocessAblationConfig::default(),
        };
        let rows = or_fail("fig4-ablation", preprocess_ablation(&cfg));
        let mut r = Report::new(
            "fig4-ablation",
            "preprocessing-stage ablation (voxel-level path)",
        );
        r.line(format!(
            "{:>26} {:>10} {:>10}",
            "artifact<->stage", "raw", "cleaned"
        ));
        let mut data = Vec::new();
        for row in &rows {
            r.line(format!(
                "{:>26} {:>10} {:>10}",
                row.variant,
                pct(row.accuracy_raw),
                pct(row.accuracy_cleaned)
            ));
            data.push(json!({
                "variant": row.variant.as_str(),
                "raw": row.accuracy_raw,
                "cleaned": row.accuracy_cleaned,
            }));
        }
        r.data(Value::Array(data));
        emit(r);
    }

    if want("block-timing") {
        let cohort = scale.hcp(0x4c57);
        let cfg = PerfConfig {
            n_repeats: scale.repeats().min(10),
            ..Default::default()
        };
        let res = or_fail(
            "block-timing",
            block_performance_experiment(&cohort, Task::Language, &cfg),
        );
        let mut r = Report::new(
            "block-timing",
            "§3.3.3 extension: block-timing-aware per-subtype performance prediction",
        );
        for u in 0..2 {
            r.line(format!(
                "subtype {u}: timing-aware {}  vs  timing-blind {}",
                pm(res.timing_aware[u]),
                pm(res.timing_blind[u])
            ));
        }
        r.line("paper (§3.3.3): \"the use of this additional data further improves prediction\"");
        r.data(json!({
            "timing_aware": res.timing_aware.as_slice(),
            "timing_blind": res.timing_blind.as_slice(),
        }));
        emit(r);
    }

    if want("defense") {
        let cohort = scale.hcp(0x4c58);
        let res = or_fail(
            "defense",
            defense_sweep(&cohort, 100, &[0.2, 0.4, 0.6, 1.0], 9),
        );
        let mut r = Report::new(
            "defense",
            "§4 defense sweep: targeted vs untargeted noise on signature edges",
        );
        r.line(format!(
            "baseline accuracy {}   untouched features {:.2}%",
            pct(res.baseline_accuracy),
            res.untouched_fraction * 100.0
        ));
        r.line(format!(
            "{:>8} {:>12} {:>12}",
            "sigma", "targeted", "untargeted"
        ));
        let mut data = Vec::new();
        for p in &res.points {
            r.line(format!(
                "{:>8.2} {:>12} {:>12}",
                p.sigma,
                pct(p.targeted_accuracy),
                pct(p.untargeted_accuracy)
            ));
            data.push(json!({
                "sigma": p.sigma,
                "targeted": p.targeted_accuracy,
                "untargeted": p.untargeted_accuracy,
            }));
        }
        r.data(json!({
            "baseline": res.baseline_accuracy,
            "untouched_fraction": res.untouched_fraction,
            "points": data,
        }));
        emit(r);
    }

    if want("localization") {
        let cohort = scale.hcp(0x4c56);
        let res = or_fail("localization", signature_localization(&cohort, 100));
        let mut r = Report::new(
            "localization",
            "signature localization (the paper's parieto-frontal restriction, §2/§4)",
        );
        r.line(format!(
            "features restricted to signature pairs:   {}",
            pct(res.signature_only)
        ));
        r.line(format!(
            "features restricted to non-signature:     {}",
            pct(res.outside_only)
        ));
        r.line(format!(
            "unrestricted attack:                      {}",
            pct(res.unrestricted)
        ));
        r.line(format!(
            "signature-pair pool size:                 {}",
            res.n_signature_features
        ));
        r.data(json!({
            "signature_only": res.signature_only,
            "outside_only": res.outside_only,
            "unrestricted": res.unrestricted,
            "n_signature_features": res.n_signature_features,
        }));
        emit(r);
    }

    if want("ablations") {
        let cohort = scale.hcp(0x4c55);
        let mut r = Report::new("ablations", "design-choice ablations (DESIGN.md §4)");
        let strategies = or_fail(
            "ablations (sampling strategy)",
            ablation_sampling_strategy(&cohort, 100, 3),
        );
        r.line("feature-selection strategy (rest-rest accuracy):");
        let mut strat_data = Vec::new();
        for row in &strategies {
            r.line(format!("  {:>24} {}", row.strategy, pct(row.accuracy)));
            strat_data.push(json!({
                "strategy": row.strategy.as_str(), "accuracy": row.accuracy
            }));
        }
        let counts = match scale {
            Scale::Small => vec![5, 20, 100, 400],
            Scale::Paper => vec![10, 50, 100, 500, 2000, 10_000],
        };
        let sweep = or_fail(
            "ablations (feature count)",
            ablation_feature_count(&cohort, &counts),
        );
        r.line("retained-feature sweep:");
        for (t, acc) in &sweep {
            r.line(format!("  t = {:>6} {}", t, pct(*acc)));
        }
        let rules = or_fail("ablations (matching rule)", ablation_matching_rule(&cohort));
        r.line("matching rule:");
        for (rule, acc) in &rules {
            r.line(format!("  {:>24} {}", rule, pct(*acc)));
        }
        let grans = match scale {
            Scale::Small => vec![20, 40, 60],
            Scale::Paper => vec![60, 120, 240, 360],
        };
        let gran = or_fail(
            "ablations (atlas granularity)",
            ablation_atlas_granularity(&grans, 20, 5),
        );
        r.line("atlas granularity (20 subjects):");
        for (n, acc) in &gran {
            r.line(format!("  {:>5} regions {}", n, pct(*acc)));
        }
        r.data(json!({
            "strategies": strat_data,
            "feature_sweep": sweep,
            "matching": rules,
            "granularity": gran,
        }));
        emit(r);
    }

    println!("\n{count} experiment(s) written to {}", out.display());
}
