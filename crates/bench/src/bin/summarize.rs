//! `summarize` — renders a `repro_results.jsonl` file (written by the
//! `repro` binary) as a compact table: one line per experiment record with
//! its headline numbers, newest record per experiment id winning. This is
//! the tooling EXPERIMENTS.md is assembled from.
//!
//! ```text
//! summarize [results.jsonl]
//! ```

use neurodeanon_testkit::{json, Value};
use std::collections::BTreeMap;

/// Extracts a one-line headline from an experiment's JSON payload.
fn headline(id: &str, data: &Value) -> String {
    let pct = |v: &Value| -> String {
        v.as_f64()
            .map(|x| format!("{:.1}%", x * 100.0))
            .unwrap_or_else(|| "—".into())
    };
    match id {
        "fig2" => format!(
            "accuracy {}, contrast {:.3} (rest ref {:.3})",
            pct(&data["accuracy"]),
            data["contrast"].as_f64().unwrap_or(f64::NAN),
            data["rest_contrast"].as_f64().unwrap_or(f64::NAN),
        ),
        "fig1" | "fig7" | "fig8" | "fig9" => {
            format!(
                "accuracy {}, diag {:.3} vs off {:.3}",
                pct(&data["accuracy"]),
                data["mean_diagonal"].as_f64().unwrap_or(f64::NAN),
                data["mean_offdiagonal"].as_f64().unwrap_or(f64::NAN),
            )
        }
        "fig5" => {
            let acc = &data["accuracy"];
            let diag: Vec<String> = (0..8)
                .map(|i| {
                    acc[i][i]
                        .as_f64()
                        .map(|v| format!("{v:.2}"))
                        .unwrap_or_else(|| "—".into())
                })
                .collect();
            format!("same-task diagonal: [{}]", diag.join(", "))
        }
        "fig6" => format!(
            "overall {:.1}%, rest {:.1}%",
            data["overall"][0].as_f64().unwrap_or(f64::NAN),
            data["per_task"][0][0].as_f64().unwrap_or(f64::NAN),
        ),
        "table1" => {
            let rows: Vec<String> = data
                .as_array()
                .map(|arr| {
                    arr.iter()
                        .map(|r| {
                            format!(
                                "{} {:.1}%",
                                r["task"].as_str().unwrap_or("?"),
                                r["test"][0].as_f64().unwrap_or(f64::NAN)
                            )
                        })
                        .collect()
                })
                .unwrap_or_default();
            format!("test nRMSE: {}", rows.join(", "))
        }
        "table2" => {
            let hcp: Vec<String> = data["hcp"]
                .as_array()
                .map(|arr| {
                    arr.iter()
                        .map(|p| format!("{:.1}", p[0].as_f64().unwrap_or(f64::NAN)))
                        .collect()
                })
                .unwrap_or_default();
            format!("HCP accuracy over noise sweep: [{}]", hcp.join(", "))
        }
        "localization" => format!(
            "signature-only {}, outside {}, unrestricted {}",
            pct(&data["signature_only"]),
            pct(&data["outside_only"]),
            pct(&data["unrestricted"]),
        ),
        "defense" => format!(
            "baseline {}, targeted @max-σ {}",
            pct(&data["baseline"]),
            data["points"]
                .as_array()
                .and_then(|p| p.last())
                .map(|p| pct(&p["targeted"]))
                .unwrap_or_else(|| "—".into()),
        ),
        "block-timing" => format!(
            "timing-aware [{:.1}%, {:.1}%] vs blind [{:.1}%, {:.1}%]",
            data["timing_aware"][0][0].as_f64().unwrap_or(f64::NAN),
            data["timing_aware"][1][0].as_f64().unwrap_or(f64::NAN),
            data["timing_blind"][0][0].as_f64().unwrap_or(f64::NAN),
            data["timing_blind"][1][0].as_f64().unwrap_or(f64::NAN),
        ),
        _ => "(see JSON payload)".to_string(),
    }
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "repro_results.jsonl".to_string());
    let content = match std::fs::read_to_string(&path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("summarize: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    // Latest record per experiment id wins.
    let mut latest: BTreeMap<String, Value> = BTreeMap::new();
    for (lineno, line) in content.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match json::parse(line) {
            Ok(v) => {
                if let Some(id) = v["id"].as_str() {
                    latest.insert(id.to_string(), v);
                }
            }
            Err(e) => eprintln!("summarize: skipping malformed line {}: {e}", lineno + 1),
        }
    }
    if latest.is_empty() {
        eprintln!("summarize: no records in {path}");
        std::process::exit(1);
    }
    println!("{:<14} {:<44} headline", "experiment", "title");
    for (id, v) in &latest {
        let title = v["title"].as_str().unwrap_or("");
        let title = if title.len() > 42 {
            format!(
                "{}…",
                &title[..title.char_indices().nth(41).map(|(i, _)| i).unwrap_or(41)]
            )
        } else {
            title.to_string()
        };
        println!("{:<14} {:<44} {}", id, title, headline(id, &v["data"]));
    }
}
