//! `deanon` — the attack as a command-line tool.
//!
//! Takes two group-matrix CSV files (see `neurodeanon_connectome::io` for
//! the format): one de-anonymized (subject ids are real identities) and one
//! anonymous, and prints the predicted identity of every anonymous record.
//!
//! ```text
//! deanon --known archive.csv --anon release.csv [--features 100] [--hungarian]
//!        [--degraded-policy reject|mask|impute]
//! ```
//!
//! Missing observations in the CSVs (empty cells, `NaN`) are handled per
//! `--degraded-policy`: `reject` (default) refuses degraded inputs with a
//! typed message, `mask` runs the attack on the usable feature support, and
//! `impute` mean-fills before attacking. Records the masked attack cannot
//! place print `unidentifiable` instead of a fabricated identity.
//!
//! A `--demo` flag synthesizes the two files from the built-in HCP-like
//! cohort first, so the tool can be tried without data.

use neurodeanon_connectome::io::{read_group_csv, write_group_csv};
use neurodeanon_core::attack::{AttackConfig, AttackPlan, DegradedInput, MatchRule};
use neurodeanon_datasets::{HcpCohort, HcpCohortConfig, Session, Task};
use std::path::PathBuf;

fn fail(msg: &str) -> ! {
    eprintln!("deanon: {msg}");
    eprintln!(
        "usage: deanon --known FILE.csv --anon FILE.csv [--features N] [--hungarian] \
         [--degraded-policy reject|mask|impute] [--demo]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut known_path: Option<PathBuf> = None;
    let mut anon_path: Option<PathBuf> = None;
    let mut n_features = 100usize;
    let mut rule = MatchRule::Argmax;
    let mut degraded = DegradedInput::Reject;
    let mut demo = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--known" => {
                known_path = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| fail("--known needs a path")),
                ))
            }
            "--anon" => {
                anon_path = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| fail("--anon needs a path")),
                ))
            }
            "--features" => {
                n_features = it
                    .next()
                    .unwrap_or_else(|| fail("--features needs a count"))
                    .parse()
                    .unwrap_or_else(|_| fail("--features must be a positive integer"));
            }
            "--hungarian" => rule = MatchRule::Hungarian,
            "--degraded-policy" => {
                degraded = DegradedInput::parse(
                    it.next()
                        .unwrap_or_else(|| fail("--degraded-policy needs a value")),
                )
                .unwrap_or_else(|_| fail("--degraded-policy must be reject, mask, or impute"));
            }
            "--demo" => demo = true,
            "--help" | "-h" => fail("prints predicted identities for anonymous records"),
            other => fail(&format!("unknown argument `{other}`")),
        }
    }

    if demo {
        let dir = std::env::temp_dir().join("deanon_demo");
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| fail(&format!("creating demo dir {}: {e}", dir.display())));
        let kp = dir.join("known.csv");
        let ap = dir.join("anon.csv");
        eprintln!(
            "demo: synthesizing a 15-subject cohort into {}",
            dir.display()
        );
        let cohort = HcpCohort::generate(HcpCohortConfig::small(15, 0xde40))
            .unwrap_or_else(|e| fail(&format!("generating demo cohort: {e}")));
        let known = cohort
            .group_matrix(Task::Rest, Session::One)
            .unwrap_or_else(|e| fail(&format!("building demo known matrix: {e}")));
        let anon = cohort
            .group_matrix(Task::Rest, Session::Two)
            .unwrap_or_else(|e| fail(&format!("building demo anon matrix: {e}")));
        write_group_csv(&known, &kp)
            .unwrap_or_else(|e| fail(&format!("writing {}: {e}", kp.display())));
        write_group_csv(&anon, &ap)
            .unwrap_or_else(|e| fail(&format!("writing {}: {e}", ap.display())));
        known_path = Some(kp);
        anon_path = Some(ap);
    }

    let known_path = known_path.unwrap_or_else(|| fail("missing --known"));
    let anon_path = anon_path.unwrap_or_else(|| fail("missing --anon"));
    let known = read_group_csv(&known_path)
        .unwrap_or_else(|e| fail(&format!("reading {}: {e}", known_path.display())));
    let anon = read_group_csv(&anon_path)
        .unwrap_or_else(|e| fail(&format!("reading {}: {e}", anon_path.display())));
    eprintln!(
        "known: {} subjects × {} features | anonymous: {} subjects",
        known.n_subjects(),
        known.n_features(),
        anon.n_subjects()
    );

    let mut plan = AttackPlan::prepare(
        known,
        AttackConfig {
            n_features,
            match_rule: rule,
            degraded,
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| fail(&e.to_string()));
    let outcome = plan
        .run_against(&anon)
        .unwrap_or_else(|e| fail(&e.to_string()));

    println!("record,predicted_identity,similarity");
    for (j, &i) in outcome.predicted.iter().enumerate() {
        // The mask policy marks whole-missing records with the no-prediction
        // sentinel rather than fabricating a match.
        if i == usize::MAX {
            println!("{},unidentifiable,", anon.subject_ids()[j]);
            continue;
        }
        println!(
            "{},{},{:.4}",
            anon.subject_ids()[j],
            plan.known().subject_ids()[i],
            outcome.similarity[(i, j)]
        );
    }
    if outcome.accuracy.is_finite() {
        eprintln!(
            "ground-truth overlap detected: accuracy {:.1}%",
            outcome.accuracy * 100.0
        );
    }
}
