//! `deanon` — the attack as a command-line tool.
//!
//! Takes two group-matrix CSV files (see `neurodeanon_connectome::io` for
//! the format): one de-anonymized (subject ids are real identities) and one
//! anonymous, and prints the predicted identity of every anonymous record.
//!
//! ```text
//! deanon --known archive.csv --anon release.csv [--features 100] [--hungarian]
//!        [--degraded-policy reject|mask|impute] [--enroll-rate R] [--reject-margin T]
//!        [--trace] [--metrics-out FILE.jsonl]
//! ```
//!
//! Missing observations in the CSVs (empty cells, `NaN`) are handled per
//! `--degraded-policy`: `reject` (default) refuses degraded inputs with a
//! typed message, `mask` runs the attack on the usable feature support, and
//! `impute` mean-fills before attacking. Records the masked attack cannot
//! place print `unidentifiable` instead of a fabricated identity.
//!
//! Open-world evaluation (DESIGN.md §1.4): `--enroll-rate R` enrolls only a
//! seeded fraction `R` of the known subjects as the gallery, turning the
//! rest of the anonymous queries into impostors; `--reject-margin T`
//! demotes predictions whose best-vs-runner-up similarity margin falls
//! below `T` to `unidentifiable` instead of naming a low-confidence match.
//!
//! A `--demo` flag synthesizes the two files from the built-in HCP-like
//! cohort first, so the tool can be tried without data.
//!
//! Observability (DESIGN.md §1.6): `--trace` enables the in-repo span
//! recorder and prints the aggregated stage tree (prepare → select →
//! correlate → match) plus counters and gauges to stderr after the run;
//! `--metrics-out FILE.jsonl` additionally appends one `obs_span` /
//! `obs_counter` / `obs_gauge` JSON record per node to `FILE.jsonl`
//! (implies `--trace`). Tracing never changes results: the predictions of
//! a traced run are bitwise identical to an untraced one.

use neurodeanon_bench::trace::export_jsonl;
use neurodeanon_connectome::io::{read_group_csv, write_group_csv};
use neurodeanon_core::attack::{AttackConfig, AttackPlan, DegradedInput, MatchRule};
use neurodeanon_core::matching::Decision;
use neurodeanon_core::splits::enrollment_split;
use neurodeanon_datasets::{HcpCohort, HcpCohortConfig, Session, Task};
use neurodeanon_obs as obs;
use std::path::PathBuf;

/// Seed for the `--enroll-rate` gallery split: fixed so repeated runs on
/// the same inputs enroll the same subjects.
const SPLIT_SEED: u64 = 0x5eed;

fn fail(msg: &str) -> ! {
    eprintln!("deanon: {msg}");
    eprintln!(
        "usage: deanon --known FILE.csv --anon FILE.csv [--features N] [--hungarian] \
         [--degraded-policy reject|mask|impute] [--enroll-rate R] [--reject-margin T] \
         [--trace] [--metrics-out FILE.jsonl] [--demo]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut known_path: Option<PathBuf> = None;
    let mut anon_path: Option<PathBuf> = None;
    let mut n_features = 100usize;
    let mut rule = MatchRule::Argmax;
    let mut degraded = DegradedInput::Reject;
    let mut enroll_rate: Option<f64> = None;
    let mut reject_margin: Option<f64> = None;
    let mut demo = false;
    let mut traced = false;
    let mut metrics_out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--known" => {
                known_path = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| fail("--known needs a path")),
                ))
            }
            "--anon" => {
                anon_path = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| fail("--anon needs a path")),
                ))
            }
            "--features" => {
                n_features = it
                    .next()
                    .unwrap_or_else(|| fail("--features needs a count"))
                    .parse()
                    .unwrap_or_else(|_| fail("--features must be a positive integer"));
            }
            "--hungarian" => rule = MatchRule::Hungarian,
            "--degraded-policy" => {
                degraded = DegradedInput::parse(
                    it.next()
                        .unwrap_or_else(|| fail("--degraded-policy needs a value")),
                )
                .unwrap_or_else(|_| fail("--degraded-policy must be reject, mask, or impute"));
            }
            "--enroll-rate" => {
                let r: f64 = it
                    .next()
                    .unwrap_or_else(|| fail("--enroll-rate needs a fraction"))
                    .parse()
                    .unwrap_or_else(|_| fail("--enroll-rate must be a number in [0, 1]"));
                if !r.is_finite() || !(0.0..=1.0).contains(&r) {
                    fail("--enroll-rate must be a number in [0, 1]");
                }
                enroll_rate = Some(r);
            }
            "--reject-margin" => {
                let t: f64 = it
                    .next()
                    .unwrap_or_else(|| fail("--reject-margin needs a threshold"))
                    .parse()
                    .unwrap_or_else(|_| fail("--reject-margin must be a finite number"));
                if !t.is_finite() {
                    fail("--reject-margin must be a finite number");
                }
                reject_margin = Some(t);
            }
            "--trace" => traced = true,
            "--metrics-out" => {
                metrics_out = Some(PathBuf::from(
                    it.next()
                        .unwrap_or_else(|| fail("--metrics-out needs a path")),
                ));
                traced = true;
            }
            "--demo" => demo = true,
            "--help" | "-h" => fail("prints predicted identities for anonymous records"),
            other => fail(&format!("unknown argument `{other}`")),
        }
    }

    if traced {
        obs::enable();
    }
    let _root_span = obs::span("deanon.run");

    if demo {
        let _span = obs::span("cli.demo_synth");
        let dir = std::env::temp_dir().join("deanon_demo");
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| fail(&format!("creating demo dir {}: {e}", dir.display())));
        let kp = dir.join("known.csv");
        let ap = dir.join("anon.csv");
        eprintln!(
            "demo: synthesizing a 15-subject cohort into {}",
            dir.display()
        );
        let cohort = HcpCohort::generate(HcpCohortConfig::small(15, 0xde40))
            .unwrap_or_else(|e| fail(&format!("generating demo cohort: {e}")));
        let known = cohort
            .group_matrix(Task::Rest, Session::One)
            .unwrap_or_else(|e| fail(&format!("building demo known matrix: {e}")));
        let anon = cohort
            .group_matrix(Task::Rest, Session::Two)
            .unwrap_or_else(|e| fail(&format!("building demo anon matrix: {e}")));
        write_group_csv(&known, &kp)
            .unwrap_or_else(|e| fail(&format!("writing {}: {e}", kp.display())));
        write_group_csv(&anon, &ap)
            .unwrap_or_else(|e| fail(&format!("writing {}: {e}", ap.display())));
        known_path = Some(kp);
        anon_path = Some(ap);
    }

    let known_path = known_path.unwrap_or_else(|| fail("missing --known"));
    let anon_path = anon_path.unwrap_or_else(|| fail("missing --anon"));
    let load_span = obs::span("cli.load");
    let mut known = read_group_csv(&known_path)
        .unwrap_or_else(|e| fail(&format!("reading {}: {e}", known_path.display())));
    let anon = read_group_csv(&anon_path)
        .unwrap_or_else(|e| fail(&format!("reading {}: {e}", anon_path.display())));
    drop(load_span);
    eprintln!(
        "known: {} subjects × {} features | anonymous: {} subjects",
        known.n_subjects(),
        known.n_features(),
        anon.n_subjects()
    );

    if let Some(rate) = enroll_rate {
        let split = enrollment_split(known.n_subjects(), rate, SPLIT_SEED)
            .unwrap_or_else(|e| fail(&e.to_string()));
        known = split
            .gallery(&known)
            .unwrap_or_else(|e| fail(&e.to_string()));
        eprintln!(
            "open-world gallery: {} of {} subjects enrolled (rate {rate}, seed {SPLIT_SEED:#x})",
            split.enrolled().len(),
            split.n_subjects()
        );
    }

    let mut plan = AttackPlan::prepare(
        known,
        AttackConfig {
            n_features,
            match_rule: rule,
            degraded,
            reject_margin,
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| fail(&e.to_string()));
    let outcome = plan
        .run_against(&anon)
        .unwrap_or_else(|e| fail(&e.to_string()));

    let emit_span = obs::span("cli.emit");
    println!("record,predicted_identity,similarity");
    for (j, d) in outcome.decisions.iter().enumerate() {
        // Rejections — the mask policy's no-prediction sentinel and any
        // below-margin match under `--reject-margin` — print the
        // `unidentifiable` marker rather than fabricating an identity.
        match *d {
            Decision::Reject => println!("{},unidentifiable,", anon.subject_ids()[j]),
            Decision::Match(i) => println!(
                "{},{},{:.4}",
                anon.subject_ids()[j],
                plan.known().subject_ids()[i],
                outcome.similarity[(i, j)]
            ),
        }
    }
    let n_rejected = outcome.n_rejected();
    if n_rejected > 0 {
        eprintln!("{n_rejected} record(s) rejected as unidentifiable");
    }
    if outcome.accuracy.is_finite() {
        eprintln!(
            "ground-truth overlap detected: accuracy {:.1}%",
            outcome.accuracy * 100.0
        );
    }
    drop(emit_span);

    if traced {
        drop(_root_span);
        #[cfg(feature = "alloc-stats")]
        obs::alloc::publish_gauges();
        let snap = obs::snapshot();
        eprintln!("--- trace ---");
        eprint!("{}", snap.render_tree());
        if let Some(frac) = snap.child_fraction("deanon.run") {
            eprintln!("stage coverage: {:.1}% of deanon.run", frac * 100.0);
        }
        if let Some(path) = metrics_out {
            export_jsonl(&snap, "deanon", &path)
                .unwrap_or_else(|e| fail(&format!("writing {}: {e}", path.display())));
            eprintln!("metrics written to {}", path.display());
        }
    }
}
