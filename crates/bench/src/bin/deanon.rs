//! `deanon` — the attack as a command-line tool.
//!
//! Takes two group-matrix CSV files (see `neurodeanon_connectome::io` for
//! the format): one de-anonymized (subject ids are real identities) and one
//! anonymous, and prints the predicted identity of every anonymous record.
//!
//! ```text
//! deanon --known archive.csv --anon release.csv [--features 100] [--hungarian]
//!        [--degraded-policy reject|mask|impute] [--enroll-rate R] [--reject-margin T]
//!        [--trace] [--metrics-out FILE.jsonl]
//! ```
//!
//! Missing observations in the CSVs (empty cells, `NaN`) are handled per
//! `--degraded-policy`: `reject` (default) refuses degraded inputs with a
//! typed message, `mask` runs the attack on the usable feature support, and
//! `impute` mean-fills before attacking. Records the masked attack cannot
//! place print `unidentifiable` instead of a fabricated identity.
//!
//! Open-world evaluation (DESIGN.md §1.4): `--enroll-rate R` enrolls only a
//! seeded fraction `R` of the known subjects as the gallery, turning the
//! rest of the anonymous queries into impostors; `--reject-margin T`
//! demotes predictions whose best-vs-runner-up similarity margin falls
//! below `T` to `unidentifiable` instead of naming a low-confidence match.
//!
//! A `--demo` flag synthesizes the two files from the built-in HCP-like
//! cohort first, so the tool can be tried without data.
//!
//! ## `deanon serve` — attack-as-a-service (DESIGN.md §1.7)
//!
//! ```text
//! deanon serve (--demo | --known FILE.csv --anon FILE.csv)
//!        [--queries N] [--workers W] [--batch Q] [--capacity C]
//!        [--deadline-ms D] [--max-respawns N] [--features N]
//!        [--degraded-policy reject|mask|impute] [--reject-margin T]
//!        [--chaos-seed S] [--chaos-rate R] [--trace] [--metrics-out FILE.jsonl]
//! ```
//!
//! Prepares the gallery once, starts a batched match server, and streams
//! `--queries` query connectomes (cycled from the anonymous CSV's records)
//! through it. Responses print to stdout ordered by query id —
//! byte-identical at any `--workers`, `--batch`, or `NEURODEANON_THREADS`
//! setting, the serve determinism contract — while throughput, latency
//! percentiles, and the error taxonomy go to stderr. `--chaos-seed` /
//! `--chaos-rate` inject seeded service faults (truncated payloads, NaN
//! payloads, worker panics, stalled producers) to exercise the isolation
//! and respawn machinery; faulted queries fail typed, everyone else's
//! response stays bit-identical.
//!
//! Observability (DESIGN.md §1.6): `--trace` enables the in-repo span
//! recorder and prints the aggregated stage tree (prepare → select →
//! correlate → match) plus counters and gauges to stderr after the run;
//! `--metrics-out FILE.jsonl` additionally appends one `obs_span` /
//! `obs_counter` / `obs_gauge` JSON record per node to `FILE.jsonl`
//! (implies `--trace`). Tracing never changes results: the predictions of
//! a traced run are bitwise identical to an untraced one.

use neurodeanon_bench::timing::Sample;
use neurodeanon_bench::trace::export_jsonl;
use neurodeanon_connectome::io::{read_group_csv, write_group_csv};
use neurodeanon_connectome::GroupMatrix;
use neurodeanon_core::attack::{AttackConfig, AttackPlan, DegradedInput, MatchRule};
use neurodeanon_core::matching::Decision;
use neurodeanon_core::serve::{MatchServer, Query, QueryResult, ServeConfig};
use neurodeanon_core::splits::enrollment_split;
use neurodeanon_datasets::{
    chaos, ChaosSpec, HcpCohort, HcpCohortConfig, ServiceFaultKind, Session, Task,
};
use neurodeanon_obs as obs;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Seed for the `--enroll-rate` gallery split: fixed so repeated runs on
/// the same inputs enroll the same subjects.
const SPLIT_SEED: u64 = 0x5eed;

fn fail(msg: &str) -> ! {
    eprintln!("deanon: {msg}");
    eprintln!(
        "usage: deanon --known FILE.csv --anon FILE.csv [--features N] [--hungarian] \
         [--degraded-policy reject|mask|impute] [--enroll-rate R] [--reject-margin T] \
         [--trace] [--metrics-out FILE.jsonl] [--demo]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        serve_main(&args[1..]);
    }
    let mut known_path: Option<PathBuf> = None;
    let mut anon_path: Option<PathBuf> = None;
    let mut n_features = 100usize;
    let mut rule = MatchRule::Argmax;
    let mut degraded = DegradedInput::Reject;
    let mut enroll_rate: Option<f64> = None;
    let mut reject_margin: Option<f64> = None;
    let mut demo = false;
    let mut traced = false;
    let mut metrics_out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--known" => {
                known_path = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| fail("--known needs a path")),
                ))
            }
            "--anon" => {
                anon_path = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| fail("--anon needs a path")),
                ))
            }
            "--features" => {
                n_features = it
                    .next()
                    .unwrap_or_else(|| fail("--features needs a count"))
                    .parse()
                    .unwrap_or_else(|_| fail("--features must be a positive integer"));
            }
            "--hungarian" => rule = MatchRule::Hungarian,
            "--degraded-policy" => {
                degraded = DegradedInput::parse(
                    it.next()
                        .unwrap_or_else(|| fail("--degraded-policy needs a value")),
                )
                .unwrap_or_else(|_| fail("--degraded-policy must be reject, mask, or impute"));
            }
            "--enroll-rate" => {
                let r: f64 = it
                    .next()
                    .unwrap_or_else(|| fail("--enroll-rate needs a fraction"))
                    .parse()
                    .unwrap_or_else(|_| fail("--enroll-rate must be a number in [0, 1]"));
                if !r.is_finite() || !(0.0..=1.0).contains(&r) {
                    fail("--enroll-rate must be a number in [0, 1]");
                }
                enroll_rate = Some(r);
            }
            "--reject-margin" => {
                let t: f64 = it
                    .next()
                    .unwrap_or_else(|| fail("--reject-margin needs a threshold"))
                    .parse()
                    .unwrap_or_else(|_| fail("--reject-margin must be a finite number"));
                if !t.is_finite() {
                    fail("--reject-margin must be a finite number");
                }
                reject_margin = Some(t);
            }
            "--trace" => traced = true,
            "--metrics-out" => {
                metrics_out = Some(PathBuf::from(
                    it.next()
                        .unwrap_or_else(|| fail("--metrics-out needs a path")),
                ));
                traced = true;
            }
            "--demo" => demo = true,
            "--help" | "-h" => fail("prints predicted identities for anonymous records"),
            other => fail(&format!("unknown argument `{other}`")),
        }
    }

    if traced {
        obs::enable();
    }
    let _root_span = obs::span("deanon.run");

    if demo {
        let _span = obs::span("cli.demo_synth");
        let dir = std::env::temp_dir().join("deanon_demo");
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| fail(&format!("creating demo dir {}: {e}", dir.display())));
        let kp = dir.join("known.csv");
        let ap = dir.join("anon.csv");
        eprintln!(
            "demo: synthesizing a 15-subject cohort into {}",
            dir.display()
        );
        let cohort = HcpCohort::generate(HcpCohortConfig::small(15, 0xde40))
            .unwrap_or_else(|e| fail(&format!("generating demo cohort: {e}")));
        let known = cohort
            .group_matrix(Task::Rest, Session::One)
            .unwrap_or_else(|e| fail(&format!("building demo known matrix: {e}")));
        let anon = cohort
            .group_matrix(Task::Rest, Session::Two)
            .unwrap_or_else(|e| fail(&format!("building demo anon matrix: {e}")));
        write_group_csv(&known, &kp)
            .unwrap_or_else(|e| fail(&format!("writing {}: {e}", kp.display())));
        write_group_csv(&anon, &ap)
            .unwrap_or_else(|e| fail(&format!("writing {}: {e}", ap.display())));
        known_path = Some(kp);
        anon_path = Some(ap);
    }

    let known_path = known_path.unwrap_or_else(|| fail("missing --known"));
    let anon_path = anon_path.unwrap_or_else(|| fail("missing --anon"));
    let load_span = obs::span("cli.load");
    let mut known = read_group_csv(&known_path)
        .unwrap_or_else(|e| fail(&format!("reading {}: {e}", known_path.display())));
    let anon = read_group_csv(&anon_path)
        .unwrap_or_else(|e| fail(&format!("reading {}: {e}", anon_path.display())));
    drop(load_span);
    eprintln!(
        "known: {} subjects × {} features | anonymous: {} subjects",
        known.n_subjects(),
        known.n_features(),
        anon.n_subjects()
    );

    if let Some(rate) = enroll_rate {
        let split = enrollment_split(known.n_subjects(), rate, SPLIT_SEED)
            .unwrap_or_else(|e| fail(&e.to_string()));
        known = split
            .gallery(&known)
            .unwrap_or_else(|e| fail(&e.to_string()));
        eprintln!(
            "open-world gallery: {} of {} subjects enrolled (rate {rate}, seed {SPLIT_SEED:#x})",
            split.enrolled().len(),
            split.n_subjects()
        );
    }

    let mut plan = AttackPlan::prepare(
        known,
        AttackConfig {
            n_features,
            match_rule: rule,
            degraded,
            reject_margin,
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| fail(&e.to_string()));
    let outcome = plan
        .run_against(&anon)
        .unwrap_or_else(|e| fail(&e.to_string()));

    let emit_span = obs::span("cli.emit");
    println!("record,predicted_identity,similarity");
    for (j, d) in outcome.decisions.iter().enumerate() {
        // Rejections — the mask policy's no-prediction sentinel and any
        // below-margin match under `--reject-margin` — print the
        // `unidentifiable` marker rather than fabricating an identity.
        match *d {
            Decision::Reject => println!("{},unidentifiable,", anon.subject_ids()[j]),
            Decision::Match(i) => println!(
                "{},{},{:.4}",
                anon.subject_ids()[j],
                plan.known().subject_ids()[i],
                outcome.similarity[(i, j)]
            ),
        }
    }
    let n_rejected = outcome.n_rejected();
    if n_rejected > 0 {
        eprintln!("{n_rejected} record(s) rejected as unidentifiable");
    }
    if outcome.accuracy.is_finite() {
        eprintln!(
            "ground-truth overlap detected: accuracy {:.1}%",
            outcome.accuracy * 100.0
        );
    }
    drop(emit_span);

    if traced {
        drop(_root_span);
        #[cfg(feature = "alloc-stats")]
        obs::alloc::publish_gauges();
        let snap = obs::snapshot();
        eprintln!("--- trace ---");
        eprint!("{}", snap.render_tree());
        if let Some(frac) = snap.child_fraction("deanon.run") {
            eprintln!("stage coverage: {:.1}% of deanon.run", frac * 100.0);
        }
        if let Some(path) = metrics_out {
            export_jsonl(&snap, "deanon", &path)
                .unwrap_or_else(|e| fail(&format!("writing {}: {e}", path.display())));
            eprintln!("metrics written to {}", path.display());
        }
    }
}

fn serve_fail(msg: &str) -> ! {
    eprintln!("deanon serve: {msg}");
    eprintln!(
        "usage: deanon serve (--demo | --known FILE.csv --anon FILE.csv) [--queries N] \
         [--workers W] [--batch Q] [--capacity C] [--deadline-ms D] [--max-respawns N] \
         [--features N] [--degraded-policy reject|mask|impute] [--reject-margin T] \
         [--chaos-seed S] [--chaos-rate R] [--trace] [--metrics-out FILE.jsonl]"
    );
    std::process::exit(2);
}

/// The `deanon serve` subcommand: stream queries through a [`MatchServer`].
fn serve_main(args: &[String]) -> ! {
    let mut known_path: Option<PathBuf> = None;
    let mut anon_path: Option<PathBuf> = None;
    let mut n_queries: Option<usize> = None;
    let mut n_features = 100usize;
    let mut degraded = DegradedInput::Reject;
    let mut reject_margin: Option<f64> = None;
    let mut serve_cfg = ServeConfig::default();
    let mut deadline: Option<Duration> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut chaos_rate = 0.25f64;
    let mut demo = false;
    let mut traced = false;
    let mut metrics_out: Option<PathBuf> = None;

    fn parsed<T: std::str::FromStr>(it: &mut std::slice::Iter<'_, String>, flag: &str) -> T {
        it.next()
            .unwrap_or_else(|| serve_fail(&format!("{flag} needs a value")))
            .parse()
            .unwrap_or_else(|_| serve_fail(&format!("{flag}: malformed value")))
    }

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--known" => known_path = Some(PathBuf::from(parsed::<String>(&mut it, "--known"))),
            "--anon" => anon_path = Some(PathBuf::from(parsed::<String>(&mut it, "--anon"))),
            "--queries" => n_queries = Some(parsed(&mut it, "--queries")),
            "--workers" => serve_cfg.workers = parsed(&mut it, "--workers"),
            "--batch" => serve_cfg.batch_max = parsed(&mut it, "--batch"),
            "--capacity" => serve_cfg.queue_capacity = parsed(&mut it, "--capacity"),
            "--deadline-ms" => {
                deadline = Some(Duration::from_millis(parsed(&mut it, "--deadline-ms")))
            }
            "--max-respawns" => serve_cfg.max_respawns = parsed(&mut it, "--max-respawns"),
            "--features" => n_features = parsed(&mut it, "--features"),
            "--degraded-policy" => {
                degraded = DegradedInput::parse(&parsed::<String>(&mut it, "--degraded-policy"))
                    .unwrap_or_else(|_| {
                        serve_fail("--degraded-policy must be reject, mask, or impute")
                    });
            }
            "--reject-margin" => {
                let t: f64 = parsed(&mut it, "--reject-margin");
                if !t.is_finite() {
                    serve_fail("--reject-margin must be a finite number");
                }
                reject_margin = Some(t);
            }
            "--chaos-seed" => chaos_seed = Some(parsed(&mut it, "--chaos-seed")),
            "--chaos-rate" => chaos_rate = parsed(&mut it, "--chaos-rate"),
            "--demo" => demo = true,
            "--trace" => traced = true,
            "--metrics-out" => {
                metrics_out = Some(PathBuf::from(parsed::<String>(&mut it, "--metrics-out")));
                traced = true;
            }
            "--help" | "-h" => serve_fail("batched fault-tolerant match serving"),
            other => serve_fail(&format!("unknown argument `{other}`")),
        }
    }
    // The submit deadline only bounds queueing; generous by default so the
    // demo never sheds at submit time.
    serve_cfg.submit_timeout = Duration::from_secs(30);

    if traced {
        obs::enable();
    }
    let root_span = obs::span("serve.run");

    let (known, anon): (GroupMatrix, GroupMatrix) = if demo {
        let cohort = HcpCohort::generate(HcpCohortConfig::small(15, 0xde40))
            .unwrap_or_else(|e| serve_fail(&format!("generating demo cohort: {e}")));
        (
            cohort
                .group_matrix(Task::Rest, Session::One)
                .unwrap_or_else(|e| serve_fail(&format!("demo known matrix: {e}"))),
            cohort
                .group_matrix(Task::Rest, Session::Two)
                .unwrap_or_else(|e| serve_fail(&format!("demo anon matrix: {e}"))),
        )
    } else {
        let kp = known_path.unwrap_or_else(|| serve_fail("missing --known (or --demo)"));
        let ap = anon_path.unwrap_or_else(|| serve_fail("missing --anon (or --demo)"));
        (
            read_group_csv(&kp)
                .unwrap_or_else(|e| serve_fail(&format!("reading {}: {e}", kp.display()))),
            read_group_csv(&ap)
                .unwrap_or_else(|e| serve_fail(&format!("reading {}: {e}", ap.display()))),
        )
    };
    let n_queries = n_queries.unwrap_or_else(|| anon.n_subjects().max(1) * 4);
    let chaos = chaos_seed.map(|seed| {
        let spec = ChaosSpec {
            seed,
            rate: chaos_rate,
        };
        spec.validate()
            .unwrap_or_else(|e| serve_fail(&format!("chaos spec: {e}")));
        spec
    });
    eprintln!(
        "serve: gallery {} subjects × {} features | {} queries | {} workers, batch {}, capacity {}{}",
        known.n_subjects(),
        known.n_features(),
        n_queries,
        serve_cfg.workers,
        serve_cfg.batch_max,
        serve_cfg.queue_capacity,
        chaos
            .as_ref()
            .map(|c| format!(" | chaos seed {} rate {}", c.seed, c.rate))
            .unwrap_or_default(),
    );

    let plan = AttackPlan::prepare(
        known,
        AttackConfig {
            n_features,
            degraded,
            reject_margin,
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| serve_fail(&e.to_string()));
    let server = MatchServer::start(plan, serve_cfg).unwrap_or_else(|e| serve_fail(&e.to_string()));

    // Producer loop: cycle the anonymous records into queries, injecting
    // seeded chaos faults when asked.
    let anon_matrix = anon.as_matrix();
    let t0 = Instant::now();
    let mut pending: Vec<(u64, std::sync::mpsc::Receiver<QueryResult>, Instant)> = Vec::new();
    let mut submit_failures: Vec<(u64, String)> = Vec::new();
    for id in 0..n_queries as u64 {
        let col = (id as usize) % anon_matrix.cols();
        let mut values: Vec<f64> = (0..anon_matrix.rows())
            .map(|r| anon_matrix[(r, col)])
            .collect();
        let mut injected = None;
        if let Some(spec) = &chaos {
            let fault = spec.apply(id, &mut values);
            match fault {
                Some(ServiceFaultKind::WorkerPanic) => injected = fault,
                Some(ServiceFaultKind::StallProducer) => {
                    std::thread::sleep(chaos::stall_duration())
                }
                _ => {}
            }
        }
        let mut query = Query::new(id, anon.subject_ids()[col].clone(), values);
        query.injected = injected;
        if let Some(d) = deadline {
            query = query.with_deadline(Instant::now() + d);
        }
        match server.submit(query) {
            Ok(rx) => pending.push((id, rx, Instant::now())),
            Err((q, e)) => submit_failures.push((q.id, e.to_string())),
        }
    }

    // Collect every reply, then order by query id for deterministic output.
    let mut rows: BTreeMap<u64, String> = BTreeMap::new();
    let mut latencies: Vec<Duration> = Vec::with_capacity(pending.len());
    let mut taxonomy: BTreeMap<&'static str, u64> = BTreeMap::new();
    for (id, rx, submitted) in pending {
        let result = rx
            .recv()
            .unwrap_or_else(|_| serve_fail(&format!("query {id}: reply channel broke")));
        latencies.push(submitted.elapsed());
        let line = match result {
            Ok(resp) => match resp.decision {
                Decision::Reject => format!("{id},{},unidentifiable,", resp.subject_id),
                Decision::Match(_) => format!(
                    "{id},{},{},{:.6}",
                    resp.subject_id,
                    resp.best_id.as_deref().unwrap_or("?"),
                    resp.score
                ),
            },
            Err(e) => {
                *taxonomy.entry(e.taxonomy()).or_insert(0) += 1;
                format!("{id},,error,{}", e.taxonomy())
            }
        };
        rows.insert(id, line);
    }
    for (id, reason) in &submit_failures {
        *taxonomy.entry("submit").or_insert(0) += 1;
        rows.insert(*id, format!("{id},,submit-error,{reason}"));
    }
    let elapsed = t0.elapsed();
    let report = server.shutdown();

    println!("query,subject,predicted_identity,score");
    for line in rows.values() {
        println!("{line}");
    }

    let qps = report.answered as f64 / elapsed.as_secs_f64().max(1e-9);
    eprintln!("--- serve report ---");
    eprintln!(
        "submitted {}  answered {}  failed {}  shed {}  quarantined {}  respawns {}  batches {}  drained {}",
        report.submitted,
        report.answered,
        report.failed,
        report.shed,
        report.quarantined,
        report.respawns,
        report.batches,
        report.drained,
    );
    match Sample::from_times("serve", latencies) {
        Ok(s) => eprintln!(
            "latency p50 {}  p99 {}  | wall {}  ~{qps:.0} answered/s",
            neurodeanon_bench::timing::fmt_duration(s.median),
            neurodeanon_bench::timing::fmt_duration(s.p99),
            neurodeanon_bench::timing::fmt_duration(elapsed),
        ),
        Err(e) => eprintln!("latency: {e}"),
    }
    if !taxonomy.is_empty() {
        let rendered: Vec<String> = taxonomy.iter().map(|(k, v)| format!("{k}:{v}")).collect();
        eprintln!("errors: {}", rendered.join(" "));
    }
    if !report.clean_drain() {
        serve_fail(&format!("drain invariant violated: {report:?}"));
    }

    if traced {
        drop(root_span);
        let snap = obs::snapshot();
        eprintln!("--- trace ---");
        eprint!("{}", snap.render_tree());
        if let Some(path) = metrics_out {
            export_jsonl(&snap, "deanon-serve", &path)
                .unwrap_or_else(|e| serve_fail(&format!("writing {}: {e}", path.display())));
            eprintln!("metrics written to {}", path.display());
        }
    }
    std::process::exit(0);
}
