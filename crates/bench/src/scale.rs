//! Experiment scale presets.
//!
//! The `paper` preset matches the evaluation's dimensions (100 subjects,
//! 360-region atlas ⇒ 64,620 features; 85 ADHD-like subjects on 116
//! regions ⇒ 6,670 features). The `small` preset reproduces every
//! phenomenon in seconds for smoke-testing the harness.

use neurodeanon_datasets::{AdhdCohort, AdhdCohortConfig, HcpCohort, HcpCohortConfig};

/// Scale preset for the repro harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced dimensions; all phenomena, seconds of runtime.
    Small,
    /// Paper-scale dimensions (minutes of runtime).
    Paper,
}

impl Scale {
    /// Parses a preset name, case-insensitively (`"small"`, `"Paper"`, …).
    /// Unknown names return an error message listing the valid presets, so
    /// CLI callers can print it verbatim instead of synthesizing their own.
    pub fn parse(s: &str) -> Result<Scale, String> {
        match s.to_ascii_lowercase().as_str() {
            "small" => Ok(Scale::Small),
            "paper" => Ok(Scale::Paper),
            _ => Err(format!(
                "unknown scale `{s}`; valid presets are: small, paper"
            )),
        }
    }

    /// The HCP-like cohort for this scale.
    pub fn hcp(&self, seed: u64) -> HcpCohort {
        let cfg = match self {
            Scale::Small => HcpCohortConfig::small(30, seed),
            Scale::Paper => HcpCohortConfig {
                seed,
                ..HcpCohortConfig::default()
            },
        };
        HcpCohort::generate(cfg).expect("valid preset config")
    }

    /// The ADHD-like cohort for this scale.
    pub fn adhd(&self, seed: u64) -> AdhdCohort {
        let cfg = match self {
            Scale::Small => AdhdCohortConfig::small(12, 6, seed),
            Scale::Paper => AdhdCohortConfig {
                seed,
                ..AdhdCohortConfig::default()
            },
        };
        AdhdCohort::generate(cfg).expect("valid preset config")
    }

    /// Repetition count for repeated-split experiments.
    pub fn repeats(&self) -> usize {
        match self {
            Scale::Small => 5,
            Scale::Paper => 30,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_known_values_case_insensitively() {
        assert_eq!(Scale::parse("small"), Ok(Scale::Small));
        assert_eq!(Scale::parse("paper"), Ok(Scale::Paper));
        assert_eq!(Scale::parse("SMALL"), Ok(Scale::Small));
        assert_eq!(Scale::parse("Paper"), Ok(Scale::Paper));
        let err = Scale::parse("huge").unwrap_err();
        assert!(err.contains("huge"), "{err}");
        assert!(err.contains("small") && err.contains("paper"), "{err}");
    }

    #[test]
    fn small_cohorts_materialize() {
        let hcp = Scale::Small.hcp(1);
        assert_eq!(hcp.n_subjects(), 30);
        let adhd = Scale::Small.adhd(1);
        assert_eq!(adhd.n_subjects(), 12 + 18);
    }

    #[test]
    fn paper_dimensions_match_paper() {
        // Constructing the full cohort is expensive; check the config only.
        let cfg = HcpCohortConfig::default();
        assert_eq!(cfg.n_subjects, 100);
        assert_eq!(cfg.n_regions, 360);
        assert_eq!(cfg.n_regions * (cfg.n_regions - 1) / 2, 64_620);
        let acfg = AdhdCohortConfig::default();
        assert_eq!(acfg.n_regions * (acfg.n_regions - 1) / 2, 6_670);
    }
}
