#![warn(missing_docs)]

//! # neurodeanon-bench
//!
//! Reproduction harness for the paper's evaluation: the [`scale`] presets,
//! small formatting/reporting helpers shared by the `repro` binary (which
//! regenerates every table and figure as text + JSON), and the in-repo
//! [`timing`] harness used by the bench targets (gated behind the
//! `criterion-bench` feature so they stay out of the default build graph).

pub mod report;
pub mod scale;
pub mod timing;
pub mod trace;

pub use report::Report;
pub use scale::Scale;
