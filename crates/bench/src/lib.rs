#![warn(missing_docs)]

//! # neurodeanon-bench
//!
//! Reproduction harness for the paper's evaluation: the [`scale`] presets,
//! small formatting/reporting helpers shared by the `repro` binary (which
//! regenerates every table and figure as text + JSON), and the in-repo
//! [`timing`] harness used by the bench targets (gated behind the
//! `criterion-bench` feature so they stay out of the default build graph).

pub mod report;
pub mod scale;
pub mod timing;
pub mod trace;

pub use report::Report;
pub use scale::Scale;
pub use timing::TimingError;

/// Aborts a bench or binary harness with exit code 2 and a one-line reason
/// on stderr — harness paths fail typed instead of panicking with a
/// backtrace (assertions about *measured results* stay `assert!`s; this is
/// for setup, experiment, and I/O fallibility).
pub fn fail(msg: &str) -> ! {
    eprintln!("bench: {msg}");
    std::process::exit(2);
}

/// Unwraps a harness-path result, aborting via [`fail`] with context plus
/// the rendered typed error.
pub fn or_fail<T, E: std::fmt::Display>(what: &str, result: Result<T, E>) -> T {
    result.unwrap_or_else(|e| fail(&format!("{what}: {e}")))
}
