#![warn(missing_docs)]

//! # neurodeanon-bench
//!
//! Reproduction harness for the paper's evaluation: the [`scale`] presets,
//! plus small formatting/reporting helpers shared by the `repro` binary
//! (which regenerates every table and figure as text + JSON) and the
//! Criterion benches.

pub mod report;
pub mod scale;

pub use report::Report;
pub use scale::Scale;
