//! End-to-end smoke of `deanon --trace --metrics-out` (DESIGN.md §1.6):
//! tracing must not change a single output byte — across thread counts too
//! — and the exported JSONL must self-parse via `testkit::json` into a span
//! tree that covers the pipeline stages and attributes ≥ 90% of the
//! end-to-end wall time to named stages.

use neurodeanon_testkit::{json, Value};
use std::path::Path;
use std::process::Command;

/// Runs the `deanon` binary in demo mode and returns `(stdout, stderr)`.
fn run_deanon(threads: usize, extra: &[&str]) -> (String, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_deanon"));
    cmd.arg("--demo")
        .env("NEURODEANON_THREADS", threads.to_string());
    for arg in extra {
        cmd.arg(arg);
    }
    let out = cmd.output().expect("deanon runs");
    assert!(
        out.status.success(),
        "deanon exited with {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8(out.stdout).expect("stdout is UTF-8"),
        String::from_utf8(out.stderr).expect("stderr is UTF-8"),
    )
}

fn parse_jsonl(path: &Path) -> Vec<Value> {
    std::fs::read_to_string(path)
        .expect("metrics file readable")
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| json::parse(l).expect("metrics line parses as JSON"))
        .collect()
}

#[test]
fn traced_cli_output_is_bitwise_identical_and_covers_the_pipeline() {
    let dir = std::env::temp_dir().join(format!("nd_trace_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("metrics.jsonl");

    // Predictions must be byte-identical untraced vs traced, and at 1 vs 8
    // threads under tracing.
    let (plain, _) = run_deanon(8, &[]);
    let metrics_arg = metrics.to_str().unwrap().to_string();
    let (traced8, stderr8) = run_deanon(8, &["--trace", "--metrics-out", &metrics_arg]);
    let (traced1, _) = run_deanon(1, &["--trace"]);
    assert_eq!(plain, traced8, "tracing changed the CLI predictions");
    assert_eq!(traced8, traced1, "thread count changed traced predictions");
    assert!(
        stderr8.contains("--- trace ---"),
        "traced run must print the span tree:\n{stderr8}"
    );

    // The exported JSONL self-parses and contains the full stage tree.
    let records = parse_jsonl(&metrics);
    let span = |path: &str| {
        records
            .iter()
            .find(|r| {
                r.get("record").and_then(Value::as_str) == Some("obs_span")
                    && r.get("path").and_then(Value::as_str) == Some(path)
            })
            .unwrap_or_else(|| panic!("no obs_span record for {path}"))
    };
    let root = span("deanon.run");
    for stage in [
        "deanon.run/plan.prepare",
        "deanon.run/plan.run",
        "deanon.run/plan.run/plan.select",
        "deanon.run/plan.run/plan.correlate",
        "deanon.run/plan.run/plan.match",
        "deanon.run/cli.load",
    ] {
        span(stage);
    }
    assert!(records.iter().any(
        |r| r.get("record").and_then(Value::as_str) == Some("obs_counter")
            && r.get("name").and_then(Value::as_str) == Some("svd.thin_calls")
    ));

    // Stage attribution: the named direct children of `deanon.run` account
    // for ≥ 90% of the end-to-end wall time.
    let total = root.get("total_ns").and_then(Value::as_f64).unwrap();
    let child_total: f64 = records
        .iter()
        .filter(|r| {
            r.get("record").and_then(Value::as_str) == Some("obs_span")
                && r.get("depth").and_then(Value::as_f64) == Some(1.0)
                && r.get("path")
                    .and_then(Value::as_str)
                    .is_some_and(|p| p.starts_with("deanon.run/"))
        })
        .filter_map(|r| r.get("total_ns").and_then(Value::as_f64))
        .sum();
    let coverage = child_total / total;
    assert!(
        coverage >= 0.9,
        "stages cover only {:.1}% of deanon.run ({child_total} of {total} ns)",
        coverage * 100.0
    );

    std::fs::remove_dir_all(&dir).unwrap();
}
