//! Property tests for the ML layer.

use neurodeanon_linalg::{Matrix, Rng64};
use neurodeanon_ml::metrics::{accuracy, confusion_matrix, mean_std, r_squared};
use neurodeanon_ml::{kfold, train_test_split, KnnClassifier, Ridge, Svr, SvrConfig};
use neurodeanon_testkit::gen::{f64_in, from_fn, u64_in, usize_in, vec_of};
use neurodeanon_testkit::{forall, tk_assert, tk_assert_eq, Config};

fn cfg() -> Config {
    Config::cases(40)
}

#[test]
fn split_partitions() {
    forall!(cfg(), (n in usize_in(2..200), frac in f64_in(0.05..0.95), seed in u64_in(0..500)) => {
        let s = train_test_split(n, frac, &mut Rng64::new(seed)).unwrap();
        let mut all: Vec<usize> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        tk_assert_eq!(all, (0..n).collect::<Vec<_>>());
        tk_assert!(!s.train.is_empty() && !s.test.is_empty());
    });
}

#[test]
fn kfold_covers_everything() {
    // Jointly generate (n, k) with n >= k (the proptest version used
    // `prop_assume!`; here the generator enforces the constraint directly).
    forall!(cfg(), (nk in from_fn(|rng| {
        let k = 2 + rng.below(6); // 2..=7
        let lo = k.max(4);
        let n = lo + rng.below(100 - lo); // lo..100
        (n, k)
    }), seed in u64_in(0..500)) => {
        let (n, k) = nk;
        let splits = kfold(n, k, &mut Rng64::new(seed)).unwrap();
        let mut count = vec![0usize; n];
        for s in &splits {
            for &t in &s.test {
                count[t] += 1;
            }
        }
        tk_assert!(count.iter().all(|&c| c == 1));
    });
}

#[test]
fn knn_memorizes_training_set() {
    forall!(cfg(), (seed in u64_in(0..300)) => {
        let mut rng = Rng64::new(seed);
        let x = Matrix::from_fn(12, 3, |_, _| rng.gaussian() * 5.0);
        let y: Vec<usize> = (0..12).map(|i| i % 3).collect();
        let mut knn = KnnClassifier::new(1).unwrap();
        knn.fit(&x, &y).unwrap();
        // 1-NN classifies every training point as itself (distance 0),
        // unless two points coincide exactly (measure zero for Gaussians).
        tk_assert_eq!(knn.predict(&x).unwrap(), y);
    });
}

#[test]
fn svr_and_ridge_agree_on_clean_linear_data() {
    forall!(cfg(), (seed in u64_in(0..200)) => {
        let mut rng = Rng64::new(seed);
        let x = Matrix::from_fn(40, 2, |_, _| rng.gaussian());
        let y: Vec<f64> = (0..40).map(|r| 1.5 * x[(r, 0)] - 0.5 * x[(r, 1)] + 2.0).collect();
        let mut svr = Svr::new(SvrConfig { c: 10.0, epsilon: 0.01, ..Default::default() }).unwrap();
        svr.fit(&x, &y).unwrap();
        let mut ridge = Ridge::new(1e-6).unwrap();
        ridge.fit(&x, &y).unwrap();
        let ps = svr.predict(&x).unwrap();
        let pr = ridge.predict(&x).unwrap();
        for i in 0..40 {
            tk_assert!((ps[i] - pr[i]).abs() < 0.2, "svr {} ridge {}", ps[i], pr[i]);
        }
    });
}

#[test]
fn accuracy_matches_confusion_trace() {
    forall!(cfg(), (pred in vec_of(usize_in(0..4), 1..60), truth_seed in u64_in(0..100)) => {
        let mut rng = Rng64::new(truth_seed);
        let truth: Vec<usize> = pred.iter().map(|_| rng.below(4)).collect();
        let acc = accuracy(&pred, &truth).unwrap();
        let cm = confusion_matrix(&pred, &truth, 4).unwrap();
        let trace: usize = (0..4).map(|i| cm[i][i]).sum();
        tk_assert!((acc - trace as f64 / pred.len() as f64).abs() < 1e-12);
    });
}

#[test]
fn r_squared_at_most_one() {
    forall!(cfg(), (truth in vec_of(f64_in(-10.0..10.0), 3..40),
                    noise in vec_of(f64_in(-1.0..1.0), 3..40)) => {
        let n = truth.len().min(noise.len());
        // Non-constant target guaranteed by an index ramp.
        let t: Vec<f64> = truth[..n].iter().enumerate().map(|(i, &x)| x + i as f64).collect();
        let pred: Vec<f64> = t.iter().zip(&noise[..n]).map(|(x, e)| x + e).collect();
        let r2 = r_squared(&pred, &t).unwrap();
        tk_assert!(r2 <= 1.0 + 1e-12);
    });
}

#[test]
fn mean_std_bounds() {
    forall!(cfg(), (values in vec_of(f64_in(-100.0..100.0), 1..50)) => {
        let (mean, std) = mean_std(&values).unwrap();
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        tk_assert!(mean >= lo - 1e-12 && mean <= hi + 1e-12);
        tk_assert!(std >= 0.0);
    });
}
