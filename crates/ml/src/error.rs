//! ML error type.

use std::fmt;

/// Errors from the ML layer.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// Features and targets disagree in sample count.
    SampleCountMismatch {
        /// Samples in the feature matrix.
        features: usize,
        /// Entries in the target vector.
        targets: usize,
    },
    /// A model was asked to predict before being fitted.
    NotFitted,
    /// Too few samples for the requested operation.
    TooFewSamples {
        /// Minimum required.
        required: usize,
        /// Provided.
        got: usize,
    },
    /// Prediction-time feature dimensionality differs from training.
    FeatureDimMismatch {
        /// Dimensionality at fit time.
        fitted: usize,
        /// Dimensionality at predict time.
        got: usize,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint description.
        reason: &'static str,
    },
    /// Error propagated from the linear-algebra layer.
    Linalg(neurodeanon_linalg::LinalgError),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::SampleCountMismatch { features, targets } => write!(
                f,
                "sample count mismatch: {features} feature rows vs {targets} targets"
            ),
            MlError::NotFitted => write!(f, "model used before fitting"),
            MlError::TooFewSamples { required, got } => {
                write!(f, "too few samples: need {required}, got {got}")
            }
            MlError::FeatureDimMismatch { fitted, got } => write!(
                f,
                "feature dimensionality mismatch: fitted with {fitted}, got {got}"
            ),
            MlError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            MlError::Linalg(e) => write!(f, "linalg error: {e}"),
        }
    }
}

impl std::error::Error for MlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MlError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<neurodeanon_linalg::LinalgError> for MlError {
    fn from(e: neurodeanon_linalg::LinalgError) -> Self {
        MlError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(MlError::NotFitted.to_string().contains("fitting"));
        let e = MlError::SampleCountMismatch {
            features: 10,
            targets: 8,
        };
        assert!(e.to_string().contains("10") && e.to_string().contains('8'));
    }
}
