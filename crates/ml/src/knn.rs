//! k-nearest-neighbour classification.
//!
//! §3.3.2 assigns task labels to anonymous points "on the basis of their
//! nearest neighbor with known task label" — 1-NN on the 2-D t-SNE map.
//! The classifier here generalizes to odd `k` with majority voting.

use crate::error::MlError;
use crate::Result;
use neurodeanon_linalg::vector::dist_sq;
use neurodeanon_linalg::Matrix;

/// A k-NN classifier over `usize` class labels.
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    k: usize,
    train_x: Option<Matrix>,
    train_y: Vec<usize>,
}

impl KnnClassifier {
    /// Creates a classifier with neighbourhood size `k ≥ 1`.
    pub fn new(k: usize) -> Result<Self> {
        if k == 0 {
            return Err(MlError::InvalidParameter {
                name: "k",
                reason: "neighbourhood size must be at least 1",
            });
        }
        Ok(KnnClassifier {
            k,
            train_x: None,
            train_y: Vec::new(),
        })
    }

    /// Stores the training set (samples × features and labels).
    pub fn fit(&mut self, x: &Matrix, y: &[usize]) -> Result<()> {
        if x.rows() != y.len() {
            return Err(MlError::SampleCountMismatch {
                features: x.rows(),
                targets: y.len(),
            });
        }
        if x.rows() < self.k {
            return Err(MlError::TooFewSamples {
                required: self.k,
                got: x.rows(),
            });
        }
        self.train_x = Some(x.clone());
        self.train_y = y.to_vec();
        Ok(())
    }

    /// Predicts the label of each row of `x` by majority vote among the `k`
    /// nearest training points (ties break toward the nearest member).
    pub fn predict(&self, x: &Matrix) -> Result<Vec<usize>> {
        let train = self.train_x.as_ref().ok_or(MlError::NotFitted)?;
        if x.cols() != train.cols() {
            return Err(MlError::FeatureDimMismatch {
                fitted: train.cols(),
                got: x.cols(),
            });
        }
        let mut out = Vec::with_capacity(x.rows());
        for r in 0..x.rows() {
            let query = x.row(r);
            // Collect (distance, label) and partial-select the k smallest.
            let mut dists: Vec<(f64, usize)> = (0..train.rows())
                .map(|t| (dist_sq(query, train.row(t)), self.train_y[t]))
                .collect();
            dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let neighbours = &dists[..self.k];
            // Majority vote; on ties the label of the closest tied member
            // wins (scan in distance order).
            let mut counts = std::collections::HashMap::new();
            for &(_, label) in neighbours {
                *counts.entry(label).or_insert(0usize) += 1;
            }
            let best_count = *counts.values().max().expect("k >= 1");
            let winner = neighbours
                .iter()
                .find(|(_, l)| counts[l] == best_count)
                .expect("at least one neighbour")
                .1;
            out.push(winner);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_clusters() -> (Matrix, Vec<usize>) {
        // Class 0 near origin, class 1 near (10, 10).
        let mut x = Matrix::zeros(10, 2);
        let mut y = Vec::new();
        for i in 0..5 {
            x[(i, 0)] = i as f64 * 0.1;
            x[(i, 1)] = -(i as f64) * 0.1;
            y.push(0);
        }
        for i in 5..10 {
            x[(i, 0)] = 10.0 + i as f64 * 0.1;
            x[(i, 1)] = 10.0 - i as f64 * 0.1;
            y.push(1);
        }
        (x, y)
    }

    #[test]
    fn one_nn_classifies_clusters() {
        let (x, y) = two_clusters();
        let mut knn = KnnClassifier::new(1).unwrap();
        knn.fit(&x, &y).unwrap();
        let q = Matrix::from_rows(&[&[0.5, 0.5], &[9.0, 9.0]]).unwrap();
        assert_eq!(knn.predict(&q).unwrap(), vec![0, 1]);
    }

    #[test]
    fn three_nn_majority_overrides_single_outlier() {
        // One mislabeled point inside class 0's region.
        let (mut x, mut y) = two_clusters();
        x[(4, 0)] = 0.2;
        x[(4, 1)] = 0.2;
        y[4] = 1; // outlier label
        let mut knn = KnnClassifier::new(3).unwrap();
        knn.fit(&x, &y).unwrap();
        let q = Matrix::from_rows(&[&[0.2, 0.2]]).unwrap();
        // 1-NN would say 1 (the outlier); 3-NN majority says 0.
        assert_eq!(knn.predict(&q).unwrap(), vec![0]);
    }

    #[test]
    fn training_point_maps_to_itself_with_one_nn() {
        let (x, y) = two_clusters();
        let mut knn = KnnClassifier::new(1).unwrap();
        knn.fit(&x, &y).unwrap();
        let pred = knn.predict(&x).unwrap();
        assert_eq!(pred, y);
    }

    #[test]
    fn validations() {
        assert!(KnnClassifier::new(0).is_err());
        let knn = KnnClassifier::new(1).unwrap();
        assert!(knn.predict(&Matrix::zeros(1, 2)).is_err());
        let (x, y) = two_clusters();
        let mut knn = KnnClassifier::new(20).unwrap();
        assert!(knn.fit(&x, &y).is_err());
        let mut knn = KnnClassifier::new(1).unwrap();
        assert!(knn.fit(&x, &y[..4]).is_err());
        knn.fit(&x, &y).unwrap();
        assert!(knn.predict(&Matrix::zeros(1, 3)).is_err());
    }
}
