//! k-fold cross-validation.
//!
//! The paper evaluates with repeated random splits; k-fold is the
//! complementary protocol the library also supports, giving every subject
//! exactly one appearance in a test fold.

use crate::error::MlError;
use crate::split::Split;
use crate::Result;
use neurodeanon_linalg::Rng64;

/// Produces `k` train/test splits covering `n` samples: the samples are
/// shuffled once, divided into `k` nearly equal folds, and each fold takes
/// one turn as the test set.
pub fn kfold(n: usize, k: usize, rng: &mut Rng64) -> Result<Vec<Split>> {
    if k < 2 {
        return Err(MlError::InvalidParameter {
            name: "k",
            reason: "need at least 2 folds",
        });
    }
    if n < k {
        return Err(MlError::TooFewSamples {
            required: k,
            got: n,
        });
    }
    let mut idx: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut idx);
    let mut splits = Vec::with_capacity(k);
    // Fold f gets samples [bounds[f], bounds[f+1]).
    let bounds: Vec<usize> = (0..=k).map(|f| f * n / k).collect();
    for f in 0..k {
        let test: Vec<usize> = idx[bounds[f]..bounds[f + 1]].to_vec();
        let train: Vec<usize> = idx[..bounds[f]]
            .iter()
            .chain(&idx[bounds[f + 1]..])
            .copied()
            .collect();
        splits.push(Split { train, test });
    }
    Ok(splits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_partition_all_samples() {
        let mut rng = Rng64::new(2);
        let splits = kfold(23, 5, &mut rng).unwrap();
        assert_eq!(splits.len(), 5);
        // Every sample appears in exactly one test fold.
        let mut seen = [0usize; 23];
        for s in &splits {
            for &t in &s.test {
                seen[t] += 1;
            }
            // Train + test = everything, disjoint.
            assert_eq!(s.train.len() + s.test.len(), 23);
            let tset: std::collections::HashSet<_> = s.test.iter().collect();
            assert!(s.train.iter().all(|t| !tset.contains(t)));
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn fold_sizes_nearly_equal() {
        let mut rng = Rng64::new(3);
        let splits = kfold(10, 3, &mut rng).unwrap();
        let sizes: Vec<usize> = splits.iter().map(|s| s.test.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = kfold(12, 4, &mut Rng64::new(7)).unwrap();
        let b = kfold(12, 4, &mut Rng64::new(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn validations() {
        let mut rng = Rng64::new(1);
        assert!(kfold(5, 1, &mut rng).is_err());
        assert!(kfold(3, 5, &mut rng).is_err());
        assert!(kfold(5, 5, &mut rng).is_ok());
    }
}
