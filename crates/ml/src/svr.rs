//! Linear ε-insensitive Support Vector Regression.
//!
//! Solves the L1-loss SVR dual by coordinate descent (the liblinear
//! `L2R_L1LOSS_SVR_DUAL` recipe):
//!
//! ```text
//! min_β  ½ βᵀQβ + ε‖β‖₁ − yᵀβ     s.t. |βᵢ| ≤ C,   Q = X Xᵀ,
//! w = Σᵢ βᵢ xᵢ
//! ```
//!
//! Each coordinate has a closed-form soft-thresholded update, so the solver
//! needs only the per-sample squared norms and the running `w`. Inputs are
//! standardized internally (zero mean, unit variance per feature; target
//! centered and scaled) because the connectome features the attack feeds in
//! have wildly varying scales after leverage selection.

use crate::error::MlError;
use crate::Result;
use neurodeanon_linalg::vector::{dot, norm2_sq};
use neurodeanon_linalg::{Matrix, Rng64};

/// SVR hyper-parameters.
#[derive(Debug, Clone)]
pub struct SvrConfig {
    /// Box constraint `C` (regularization inverse).
    pub c: f64,
    /// ε-insensitive tube half-width, in *standardized target* units.
    pub epsilon: f64,
    /// Maximum coordinate-descent passes over the data.
    pub max_passes: usize,
    /// Stop when the largest coordinate update in a pass falls below this.
    pub tol: f64,
    /// Seed for the coordinate-permutation RNG.
    pub seed: u64,
}

impl Default for SvrConfig {
    fn default() -> Self {
        SvrConfig {
            c: 1.0,
            epsilon: 0.1,
            max_passes: 200,
            tol: 1e-6,
            seed: 0x5f3759df,
        }
    }
}

/// A fitted (or fresh) linear SVR model.
#[derive(Debug, Clone)]
pub struct Svr {
    config: SvrConfig,
    state: Option<Fitted>,
}

#[derive(Debug, Clone)]
struct Fitted {
    /// Weights in standardized feature space.
    w: Vec<f64>,
    /// Intercept in standardized target space.
    b: f64,
    /// Per-feature means/stds for input standardization.
    x_mean: Vec<f64>,
    x_std: Vec<f64>,
    /// Target mean/std.
    y_mean: f64,
    y_std: f64,
}

impl Svr {
    /// Creates an unfitted model.
    pub fn new(config: SvrConfig) -> Result<Self> {
        if !(config.c > 0.0) || !(config.epsilon >= 0.0) || config.max_passes == 0 {
            return Err(MlError::InvalidParameter {
                name: "config",
                reason: "need c > 0, epsilon >= 0, max_passes >= 1",
            });
        }
        Ok(Svr {
            config,
            state: None,
        })
    }

    /// Fits on `x` (samples × features) and targets `y`.
    pub fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        let (n, d) = x.shape();
        if n != y.len() {
            return Err(MlError::SampleCountMismatch {
                features: n,
                targets: y.len(),
            });
        }
        if n < 2 {
            return Err(MlError::TooFewSamples {
                required: 2,
                got: n,
            });
        }
        // Standardize features and target.
        let mut x_mean = vec![0.0; d];
        let mut x_std = vec![0.0; d];
        for c in 0..d {
            let col: Vec<f64> = (0..n).map(|r| x[(r, c)]).collect();
            let m = col.iter().sum::<f64>() / n as f64;
            let v = col.iter().map(|a| (a - m) * (a - m)).sum::<f64>() / n as f64;
            x_mean[c] = m;
            x_std[c] = if v > 1e-24 { v.sqrt() } else { 1.0 };
        }
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let y_var = y.iter().map(|a| (a - y_mean) * (a - y_mean)).sum::<f64>() / n as f64;
        let y_std = if y_var > 1e-24 { y_var.sqrt() } else { 1.0 };

        let xs = Matrix::from_fn(n, d, |r, c| (x[(r, c)] - x_mean[c]) / x_std[c]);
        let ys: Vec<f64> = y.iter().map(|&t| (t - y_mean) / y_std).collect();

        // Dual coordinate descent. Append an implicit bias feature of 1.0
        // (handled via `b` alongside `w`).
        let mut beta = vec![0.0; n];
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        // Per-sample ‖xᵢ‖² + 1 (bias).
        let qii: Vec<f64> = (0..n).map(|r| norm2_sq(xs.row(r)) + 1.0).collect();
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = Rng64::new(self.config.seed);
        let (c_box, eps) = (self.config.c, self.config.epsilon);

        for _pass in 0..self.config.max_passes {
            rng.shuffle(&mut order);
            let mut max_delta = 0.0_f64;
            for &i in &order {
                if qii[i] <= 0.0 {
                    continue;
                }
                let xi = xs.row(i);
                // Gradient of the smooth part wrt βᵢ: (w·xᵢ + b) − yᵢ.
                let g = dot(&w, xi) + b - ys[i];
                // Soft-threshold update (L1 term ε|βᵢ|), projected to box.
                let old = beta[i];
                // Candidate without the ε term: β ← β − g/qii, then
                // soft-threshold (the unconstrained optimum of
                // ½·qii·(β−raw)² + ε|β|) and project to the box.
                let raw = old - g / qii[i];
                let shrink = eps / qii[i];
                let mut new = if raw > shrink {
                    raw - shrink
                } else if raw < -shrink {
                    raw + shrink
                } else {
                    0.0
                };
                new = new.clamp(-c_box, c_box);
                let delta = new - old;
                if delta.abs() > 1e-15 {
                    beta[i] = new;
                    for (wc, &xv) in w.iter_mut().zip(xi) {
                        *wc += delta * xv;
                    }
                    b += delta;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < self.config.tol {
                break;
            }
        }

        self.state = Some(Fitted {
            w,
            b,
            x_mean,
            x_std,
            y_mean,
            y_std,
        });
        Ok(())
    }

    /// Predicts targets for `x` (samples × features).
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let st = self.state.as_ref().ok_or(MlError::NotFitted)?;
        if x.cols() != st.w.len() {
            return Err(MlError::FeatureDimMismatch {
                fitted: st.w.len(),
                got: x.cols(),
            });
        }
        let mut out = Vec::with_capacity(x.rows());
        for r in 0..x.rows() {
            let row = x.row(r);
            let mut acc = st.b;
            for (c, (&xv, &wv)) in row.iter().zip(&st.w).enumerate() {
                acc += wv * (xv - st.x_mean[c]) / st.x_std[c];
            }
            out.push(acc * st.y_std + st.y_mean);
        }
        Ok(out)
    }

    /// Weights mapped back to the *original* feature scale (for inspecting
    /// which connectome edges drive a performance prediction).
    pub fn weights_original_scale(&self) -> Result<Vec<f64>> {
        let st = self.state.as_ref().ok_or(MlError::NotFitted)?;
        Ok(st
            .w
            .iter()
            .zip(&st.x_std)
            .map(|(&w, &s)| w * st.y_std / s)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data(n: usize, noise: f64, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = Rng64::new(seed);
        let x = Matrix::from_fn(n, 3, |_, _| rng.gaussian());
        let y: Vec<f64> = (0..n)
            .map(|r| {
                2.0 * x[(r, 0)] - 1.5 * x[(r, 1)] + 0.5 * x[(r, 2)] + 3.0 + noise * rng.gaussian()
            })
            .collect();
        (x, y)
    }

    #[test]
    fn recovers_noiseless_linear_function() {
        let (x, y) = linear_data(100, 0.0, 1);
        let mut svr = Svr::new(SvrConfig {
            epsilon: 0.01,
            c: 10.0,
            ..Default::default()
        })
        .unwrap();
        svr.fit(&x, &y).unwrap();
        let pred = svr.predict(&x).unwrap();
        let nrmse = neurodeanon_linalg::stats::nrmse_percent(&pred, &y).unwrap();
        assert!(nrmse < 2.0, "nRMSE {nrmse}%");
    }

    #[test]
    fn generalizes_with_noise() {
        let (x, y) = linear_data(150, 0.2, 2);
        let (xt, yt) = linear_data(50, 0.2, 3);
        let mut svr = Svr::new(SvrConfig::default()).unwrap();
        svr.fit(&x, &y).unwrap();
        let pred = svr.predict(&xt).unwrap();
        let nrmse = neurodeanon_linalg::stats::nrmse_percent(&pred, &yt).unwrap();
        assert!(nrmse < 8.0, "test nRMSE {nrmse}%");
    }

    #[test]
    fn epsilon_tube_tolerates_small_errors() {
        // With a huge epsilon, the model can satisfy everything with w = 0
        // (predicting the mean).
        let (x, y) = linear_data(60, 0.0, 4);
        let mut svr = Svr::new(SvrConfig {
            epsilon: 100.0,
            ..Default::default()
        })
        .unwrap();
        svr.fit(&x, &y).unwrap();
        let w = svr.weights_original_scale().unwrap();
        assert!(w.iter().all(|&v| v.abs() < 1e-6), "{w:?}");
        let pred = svr.predict(&x).unwrap();
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!(pred.iter().all(|&p| (p - mean).abs() < 1e-6));
    }

    #[test]
    fn predict_before_fit_errors() {
        let svr = Svr::new(SvrConfig::default()).unwrap();
        assert!(matches!(
            svr.predict(&Matrix::zeros(2, 3)),
            Err(MlError::NotFitted)
        ));
    }

    #[test]
    fn dimension_checks() {
        let (x, y) = linear_data(20, 0.0, 5);
        let mut svr = Svr::new(SvrConfig::default()).unwrap();
        assert!(svr.fit(&x, &y[..10]).is_err());
        svr.fit(&x, &y).unwrap();
        assert!(svr.predict(&Matrix::zeros(2, 5)).is_err());
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        let mut x = Matrix::zeros(30, 2);
        let mut rng = Rng64::new(6);
        for r in 0..30 {
            x[(r, 0)] = rng.gaussian();
            x[(r, 1)] = 5.0; // constant column
        }
        let y: Vec<f64> = (0..30).map(|r| x[(r, 0)] * 3.0).collect();
        let mut svr = Svr::new(SvrConfig {
            epsilon: 0.01,
            c: 10.0,
            ..Default::default()
        })
        .unwrap();
        svr.fit(&x, &y).unwrap();
        let pred = svr.predict(&x).unwrap();
        assert!(pred.iter().all(|p| p.is_finite()));
        let nrmse = neurodeanon_linalg::stats::nrmse_percent(&pred, &y).unwrap();
        assert!(nrmse < 3.0);
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(Svr::new(SvrConfig {
            c: 0.0,
            ..Default::default()
        })
        .is_err());
        assert!(Svr::new(SvrConfig {
            epsilon: -1.0,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn deterministic_fit() {
        let (x, y) = linear_data(50, 0.1, 7);
        let mut a = Svr::new(SvrConfig::default()).unwrap();
        let mut b = Svr::new(SvrConfig::default()).unwrap();
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict(&x).unwrap(), b.predict(&x).unwrap());
    }
}
