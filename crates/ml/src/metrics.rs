//! Evaluation metrics.

use crate::error::MlError;
use crate::Result;

/// Classification accuracy in `[0, 1]`.
pub fn accuracy(pred: &[usize], truth: &[usize]) -> Result<f64> {
    if pred.len() != truth.len() {
        return Err(MlError::SampleCountMismatch {
            features: pred.len(),
            targets: truth.len(),
        });
    }
    if pred.is_empty() {
        return Err(MlError::TooFewSamples {
            required: 1,
            got: 0,
        });
    }
    let hits = pred.iter().zip(truth).filter(|(a, b)| a == b).count();
    Ok(hits as f64 / pred.len() as f64)
}

/// Confusion matrix: `counts[t][p]` = samples with true class `t` predicted
/// as class `p`. `n_classes` must exceed every label.
pub fn confusion_matrix(
    pred: &[usize],
    truth: &[usize],
    n_classes: usize,
) -> Result<Vec<Vec<usize>>> {
    if pred.len() != truth.len() {
        return Err(MlError::SampleCountMismatch {
            features: pred.len(),
            targets: truth.len(),
        });
    }
    let mut counts = vec![vec![0usize; n_classes]; n_classes];
    for (&p, &t) in pred.iter().zip(truth) {
        if p >= n_classes || t >= n_classes {
            return Err(MlError::InvalidParameter {
                name: "n_classes",
                reason: "a label exceeds the declared class count",
            });
        }
        counts[t][p] += 1;
    }
    Ok(counts)
}

/// Coefficient of determination R².
pub fn r_squared(pred: &[f64], truth: &[f64]) -> Result<f64> {
    if pred.len() != truth.len() {
        return Err(MlError::SampleCountMismatch {
            features: pred.len(),
            targets: truth.len(),
        });
    }
    if truth.len() < 2 {
        return Err(MlError::TooFewSamples {
            required: 2,
            got: truth.len(),
        });
    }
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = pred.iter().zip(truth).map(|(p, t)| (p - t) * (p - t)).sum();
    if ss_tot <= 0.0 {
        return Err(MlError::InvalidParameter {
            name: "truth",
            reason: "constant target vector",
        });
    }
    Ok(1.0 - ss_res / ss_tot)
}

/// Mean and (sample) standard deviation of a slice — the `μ ± σ` pairs the
/// paper's tables report over experiment repetitions.
pub fn mean_std(values: &[f64]) -> Result<(f64, f64)> {
    if values.is_empty() {
        return Err(MlError::TooFewSamples {
            required: 1,
            got: 0,
        });
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() == 1 {
        return Ok((mean, 0.0));
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
    Ok((mean, var.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 3]).unwrap(), 1.0);
        assert_eq!(accuracy(&[1, 2, 3], &[1, 0, 0]).unwrap(), 1.0 / 3.0);
        assert!(accuracy(&[], &[]).is_err());
        assert!(accuracy(&[1], &[1, 2]).is_err());
    }

    #[test]
    fn confusion_matrix_counts() {
        let cm = confusion_matrix(&[0, 1, 1, 0], &[0, 1, 0, 0], 2).unwrap();
        assert_eq!(cm[0][0], 2); // true 0 predicted 0
        assert_eq!(cm[0][1], 1); // true 0 predicted 1
        assert_eq!(cm[1][1], 1);
        assert_eq!(cm[1][0], 0);
        assert!(confusion_matrix(&[2], &[0], 2).is_err());
    }

    #[test]
    fn r_squared_perfect_and_mean() {
        let t = [1.0, 2.0, 3.0, 4.0];
        assert!((r_squared(&t, &t).unwrap() - 1.0).abs() < 1e-12);
        let mean_pred = [2.5; 4];
        assert!(r_squared(&mean_pred, &t).unwrap().abs() < 1e-12);
        assert!(r_squared(&[1.0, 1.0], &[2.0, 2.0]).is_err());
    }

    #[test]
    fn mean_std_matches_table_convention() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - (32.0_f64 / 7.0).sqrt()).abs() < 1e-12);
        let (m1, s1) = mean_std(&[3.0]).unwrap();
        assert_eq!((m1, s1), (3.0, 0.0));
        assert!(mean_std(&[]).is_err());
    }
}
