#![warn(missing_docs)]

//! # neurodeanon-ml
//!
//! The machine-learning layer of the reproduction.
//!
//! * [`svr`] — linear ε-insensitive Support Vector Regression trained by
//!   dual coordinate descent; the estimator behind the paper's
//!   task-performance prediction (§3.3.3, "We use SVM for regression").
//! * [`ridge`] — ridge regression, the linear baseline for the same task.
//! * [`knn`] — k-nearest-neighbour classification (1-NN label transfer is
//!   the paper's task-prediction rule on the t-SNE map, §3.3.2) and
//!   regression.
//! * [`split`] — seeded train/test splitting (the 80/20 × 1000-repeats
//!   protocol of Table 1).
//! * [`metrics`] — accuracy, confusion matrices, nRMSE, R².

pub mod error;
pub mod kfold;
pub mod knn;
pub mod metrics;
pub mod ridge;
pub mod split;
pub mod svr;

pub use error::MlError;
pub use kfold::kfold;
pub use knn::KnnClassifier;
pub use ridge::Ridge;
pub use split::train_test_split;
pub use svr::{Svr, SvrConfig};

/// Result alias for ML operations.
pub type Result<T> = std::result::Result<T, MlError>;
