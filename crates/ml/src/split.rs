//! Train/test splitting.
//!
//! Table 1 of the paper uses random 80/20 splits repeated 1000 times; the
//! splitter here is seeded so every repetition of every experiment is
//! replayable.

use crate::error::MlError;
use crate::Result;
use neurodeanon_linalg::Rng64;

/// A train/test index split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Indices assigned to the training set.
    pub train: Vec<usize>,
    /// Indices assigned to the test set.
    pub test: Vec<usize>,
}

/// Splits `n` samples into train/test with `test_fraction` of the samples
/// (rounded, at least 1 each side) going to the test set.
pub fn train_test_split(n: usize, test_fraction: f64, rng: &mut Rng64) -> Result<Split> {
    if n < 2 {
        return Err(MlError::TooFewSamples {
            required: 2,
            got: n,
        });
    }
    if !(0.0 < test_fraction && test_fraction < 1.0) {
        return Err(MlError::InvalidParameter {
            name: "test_fraction",
            reason: "must lie strictly between 0 and 1",
        });
    }
    let n_test = ((n as f64 * test_fraction).round() as usize).clamp(1, n - 1);
    let mut idx: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut idx);
    let test = idx[..n_test].to_vec();
    let train = idx[n_test..].to_vec();
    Ok(Split { train, test })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_all_indices() {
        let mut rng = Rng64::new(4);
        let s = train_test_split(100, 0.2, &mut rng).unwrap();
        assert_eq!(s.test.len(), 20);
        assert_eq!(s.train.len(), 80);
        let mut all: Vec<usize> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn at_least_one_each_side() {
        let mut rng = Rng64::new(4);
        let s = train_test_split(2, 0.01, &mut rng).unwrap();
        assert_eq!(s.test.len(), 1);
        assert_eq!(s.train.len(), 1);
        let s = train_test_split(2, 0.99, &mut rng).unwrap();
        assert_eq!(s.test.len(), 1);
    }

    #[test]
    fn deterministic_per_seed_and_varies_across_seeds() {
        let a = train_test_split(50, 0.2, &mut Rng64::new(7)).unwrap();
        let b = train_test_split(50, 0.2, &mut Rng64::new(7)).unwrap();
        assert_eq!(a, b);
        let c = train_test_split(50, 0.2, &mut Rng64::new(8)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn validation() {
        let mut rng = Rng64::new(1);
        assert!(train_test_split(1, 0.5, &mut rng).is_err());
        assert!(train_test_split(10, 0.0, &mut rng).is_err());
        assert!(train_test_split(10, 1.0, &mut rng).is_err());
    }
}
