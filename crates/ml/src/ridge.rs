//! Ridge regression — the linear baseline for performance prediction.
//!
//! Solves `(XᵀX + λI) w = Xᵀy` by Cholesky on standardized inputs.

use crate::error::MlError;
use crate::Result;
use neurodeanon_linalg::cholesky::{cholesky_regularized, cholesky_solve};
use neurodeanon_linalg::Matrix;

/// A ridge-regression model.
#[derive(Debug, Clone)]
pub struct Ridge {
    lambda: f64,
    state: Option<FittedRidge>,
}

#[derive(Debug, Clone)]
struct FittedRidge {
    w: Vec<f64>,
    x_mean: Vec<f64>,
    x_std: Vec<f64>,
    y_mean: f64,
}

impl Ridge {
    /// Creates an unfitted model with regularization strength `lambda ≥ 0`.
    pub fn new(lambda: f64) -> Result<Self> {
        if !(lambda >= 0.0 && lambda.is_finite()) {
            return Err(MlError::InvalidParameter {
                name: "lambda",
                reason: "must be non-negative and finite",
            });
        }
        Ok(Ridge {
            lambda,
            state: None,
        })
    }

    /// Fits on `x` (samples × features) and targets `y`.
    pub fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        let (n, d) = x.shape();
        if n != y.len() {
            return Err(MlError::SampleCountMismatch {
                features: n,
                targets: y.len(),
            });
        }
        if n < 2 {
            return Err(MlError::TooFewSamples {
                required: 2,
                got: n,
            });
        }
        let mut x_mean = vec![0.0; d];
        let mut x_std = vec![0.0; d];
        for c in 0..d {
            let col: Vec<f64> = (0..n).map(|r| x[(r, c)]).collect();
            let m = col.iter().sum::<f64>() / n as f64;
            let v = col.iter().map(|a| (a - m) * (a - m)).sum::<f64>() / n as f64;
            x_mean[c] = m;
            x_std[c] = if v > 1e-24 { v.sqrt() } else { 1.0 };
        }
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let xs = Matrix::from_fn(n, d, |r, c| (x[(r, c)] - x_mean[c]) / x_std[c]);
        let yc: Vec<f64> = y.iter().map(|&t| t - y_mean).collect();

        let mut gram = xs.gram();
        // Always load at least a whisper of ridge so the solve is defined
        // even for collinear features.
        let lambda = self.lambda.max(1e-10);
        for i in 0..d {
            gram[(i, i)] += lambda;
        }
        let l = cholesky_regularized(&gram, 1e-10, 1e3)?;
        let xty = xs.transpose().matmul(&Matrix::from_vec(n, 1, yc)?)?;
        let w = cholesky_solve(&l, &xty)?;
        self.state = Some(FittedRidge {
            w: w.col(0),
            x_mean,
            x_std,
            y_mean,
        });
        Ok(())
    }

    /// Predicts targets for `x`.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let st = self.state.as_ref().ok_or(MlError::NotFitted)?;
        if x.cols() != st.w.len() {
            return Err(MlError::FeatureDimMismatch {
                fitted: st.w.len(),
                got: x.cols(),
            });
        }
        Ok((0..x.rows())
            .map(|r| {
                let mut acc = st.y_mean;
                for (c, &wv) in st.w.iter().enumerate() {
                    acc += wv * (x[(r, c)] - st.x_mean[c]) / st.x_std[c];
                }
                acc
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurodeanon_linalg::Rng64;

    #[test]
    fn recovers_linear_relation() {
        let mut rng = Rng64::new(1);
        let x = Matrix::from_fn(80, 2, |_, _| rng.gaussian());
        let y: Vec<f64> = (0..80).map(|r| 3.0 * x[(r, 0)] - x[(r, 1)] + 5.0).collect();
        let mut model = Ridge::new(1e-6).unwrap();
        model.fit(&x, &y).unwrap();
        let pred = model.predict(&x).unwrap();
        for (p, t) in pred.iter().zip(&y) {
            assert!((p - t).abs() < 1e-3);
        }
    }

    #[test]
    fn heavy_regularization_shrinks_to_mean() {
        let mut rng = Rng64::new(2);
        let x = Matrix::from_fn(40, 2, |_, _| rng.gaussian());
        let y: Vec<f64> = (0..40).map(|r| x[(r, 0)]).collect();
        let mut model = Ridge::new(1e9).unwrap();
        model.fit(&x, &y).unwrap();
        let pred = model.predict(&x).unwrap();
        let mean = y.iter().sum::<f64>() / 40.0;
        assert!(pred.iter().all(|p| (p - mean).abs() < 0.01));
    }

    #[test]
    fn survives_collinear_features() {
        let mut rng = Rng64::new(3);
        let mut x = Matrix::zeros(30, 2);
        for r in 0..30 {
            let v = rng.gaussian();
            x[(r, 0)] = v;
            x[(r, 1)] = 2.0 * v; // perfectly collinear
        }
        let y: Vec<f64> = (0..30).map(|r| x[(r, 0)]).collect();
        let mut model = Ridge::new(0.0).unwrap();
        model.fit(&x, &y).unwrap();
        let pred = model.predict(&x).unwrap();
        assert!(pred.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn validation() {
        assert!(Ridge::new(-1.0).is_err());
        let model = Ridge::new(1.0).unwrap();
        assert!(model.predict(&Matrix::zeros(1, 1)).is_err());
        let mut model = Ridge::new(1.0).unwrap();
        assert!(model.fit(&Matrix::zeros(5, 2), &[0.0; 4]).is_err());
    }
}
