//! Property tests for the embedding layer.

use neurodeanon_embedding::pca;
use neurodeanon_embedding::quality::{continuity, trustworthiness};
use neurodeanon_embedding::tsne::{pairwise_squared_distances, tsne, TsneConfig};
use neurodeanon_linalg::par::with_thread_count;
use neurodeanon_linalg::Matrix;
use neurodeanon_testkit::gen::{matrix_in, u64_in, Gen};
use neurodeanon_testkit::{forall, tk_assert, tk_assert_eq, Config};

fn cfg() -> Config {
    Config::cases(24)
}

fn points(n: usize, d: usize) -> impl Gen<Value = Matrix> {
    matrix_in(n, d, -5.0, 5.0)
}

#[test]
fn condensed_distances_match_pairwise() {
    forall!(cfg(), (p in points(10, 3)) => {
        let d2 = pairwise_squared_distances(&p);
        tk_assert_eq!(d2.len(), 45);
        let mut idx = 0;
        for i in 0..10 {
            for j in (i + 1)..10 {
                let direct = neurodeanon_linalg::vector::dist_sq(p.row(i), p.row(j));
                tk_assert!((d2[idx] - direct).abs() < 1e-12);
                tk_assert!(d2[idx] >= 0.0);
                idx += 1;
            }
        }
    });
}

#[test]
fn pca_full_rank_preserves_distances() {
    forall!(cfg(), (p in points(8, 3)) => {
        let s = pca(&p, 3).unwrap();
        for i in 0..8 {
            for j in 0..8 {
                let a = neurodeanon_linalg::vector::dist_sq(p.row(i), p.row(j));
                let b = neurodeanon_linalg::vector::dist_sq(s.row(i), s.row(j));
                tk_assert!((a - b).abs() < 1e-6 * a.max(1.0));
            }
        }
    });
}

#[test]
fn quality_metrics_bounded() {
    forall!(cfg(), (p in points(12, 3), q in points(12, 2)) => {
        let t = trustworthiness(&p, &q, 3).unwrap();
        let c = continuity(&p, &q, 3).unwrap();
        tk_assert!((0.0..=1.0).contains(&t));
        tk_assert!((0.0..=1.0).contains(&c));
        // Identity embedding is perfect in both directions.
        tk_assert!((trustworthiness(&p, &p, 3).unwrap() - 1.0).abs() < 1e-12);
    });
}

#[test]
fn tsne_output_shape_and_finiteness() {
    forall!(cfg(), (seed in u64_in(0..200)) => {
        // Deterministic blob-ish cloud varied by seed.
        let p = Matrix::from_fn(16, 4, |r, c| {
            ((seed + 1) as f64 * (r as f64 * 0.7 + c as f64 * 1.3)).sin() * 4.0
                + if r < 8 { 0.0 } else { 12.0 }
        });
        let cfg = TsneConfig {
            perplexity: 5.0,
            n_iter: 60,
            exaggeration_iters: 20,
            momentum_switch: 30,
            seed,
            ..TsneConfig::default()
        };
        let out = tsne(&p, &cfg).unwrap();
        tk_assert_eq!(out.embedding.shape(), (16, 2));
        tk_assert!(out.embedding.is_finite());
        tk_assert_eq!(out.kl_history.len(), 60);
        tk_assert!(out.kl_history.iter().all(|k| k.is_finite() && *k >= -1e-9));
    });
}

/// `linalg::par` determinism contract: the parallel distance and gradient
/// passes must be bit-identical at any thread count. n = 150–200 points put
/// the per-iteration pairwise work above the t-SNE parallel threshold.
#[test]
fn pairwise_distances_bitwise_across_thread_counts() {
    forall!(Config::cases(4), (p in points(150, 10)) => {
        let reference = with_thread_count(1, || pairwise_squared_distances(&p));
        for t in [2usize, 8] {
            let par = with_thread_count(t, || pairwise_squared_distances(&p));
            tk_assert!(
                reference.len() == par.len()
                    && reference.iter().zip(&par).all(|(x, y)| x.to_bits() == y.to_bits()),
                "pairwise distances diverged at {t} threads"
            );
        }
    });
}

#[test]
fn tsne_embedding_bitwise_across_thread_counts() {
    let cfg_tsne = TsneConfig {
        output_dims: 4,
        perplexity: 12.0,
        n_iter: 40,
        exaggeration_iters: 15,
        momentum_switch: 20,
        ..TsneConfig::default()
    };
    forall!(Config::cases(2), (p in points(200, 6)) => {
        let reference = with_thread_count(1, || tsne(&p, &cfg_tsne).unwrap());
        for t in [2usize, 8] {
            let par = with_thread_count(t, || tsne(&p, &cfg_tsne).unwrap());
            tk_assert!(
                reference
                    .embedding
                    .as_slice()
                    .iter()
                    .zip(par.embedding.as_slice())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "t-SNE embedding diverged at {t} threads"
            );
            tk_assert!(
                reference
                    .kl_history
                    .iter()
                    .zip(&par.kl_history)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "t-SNE KL history diverged at {t} threads"
            );
        }
    });
}
