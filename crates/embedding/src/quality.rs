//! Embedding quality metrics.
//!
//! §3.1.3 justifies t-SNE because "it maintains pairwise distance in low
//! dimensions well, while maintaining underlying cluster structure." These
//! metrics make that claim measurable: *trustworthiness* penalizes points
//! that become neighbours only in the embedding (false structure), and
//! *continuity* penalizes true neighbours that the embedding separates
//! (lost structure) — the standard pair from Venna & Kaski (2001).

use crate::error::EmbeddingError;
use crate::Result;
use neurodeanon_linalg::vector::dist_sq;
use neurodeanon_linalg::Matrix;

/// Ranks of every other point by distance from each point: `ranks[i][j]` =
/// the rank (1 = closest) of point `j` among `i`'s neighbours. Self gets
/// rank 0.
fn neighbour_ranks(points: &Matrix) -> Vec<Vec<usize>> {
    let n = points.rows();
    let mut ranks = vec![vec![0usize; n]; n];
    for i in 0..n {
        let mut order: Vec<(usize, f64)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| (j, dist_sq(points.row(i), points.row(j))))
            .collect();
        order.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        for (rank, &(j, _)) in order.iter().enumerate() {
            ranks[i][j] = rank + 1;
        }
    }
    ranks
}

fn validate(high: &Matrix, low: &Matrix, k: usize) -> Result<()> {
    let n = high.rows();
    if n != low.rows() {
        return Err(EmbeddingError::InvalidParameter {
            name: "low",
            reason: "embedding must have one row per input point",
        });
    }
    if n < 3 {
        return Err(EmbeddingError::TooFewPoints {
            required: 3,
            got: n,
        });
    }
    if k == 0 || k >= n {
        return Err(EmbeddingError::InvalidParameter {
            name: "k",
            reason: "neighbourhood size must satisfy 1 <= k < n_points",
        });
    }
    Ok(())
}

/// Trustworthiness `T(k) ∈ [0, 1]`: 1 when every embedding-space
/// `k`-neighbourhood contains only true high-dimensional neighbours.
///
/// `T(k) = 1 − 2/(n·k·(2n−3k−1)) · Σᵢ Σ_{j∈Uᵢ(k)} (r(i,j) − k)` where
/// `Uᵢ(k)` are points in `i`'s embedding neighbourhood but not its true
/// neighbourhood and `r(i, j)` the true rank.
pub fn trustworthiness(high: &Matrix, low: &Matrix, k: usize) -> Result<f64> {
    validate(high, low, k)?;
    let n = high.rows();
    let high_ranks = neighbour_ranks(high);
    let low_ranks = neighbour_ranks(low);
    let mut penalty = 0.0;
    for i in 0..n {
        for j in 0..n {
            if j == i {
                continue;
            }
            // In the embedding neighbourhood but not the true one.
            if low_ranks[i][j] <= k && high_ranks[i][j] > k {
                penalty += (high_ranks[i][j] - k) as f64;
            }
        }
    }
    let norm = 2.0 / (n as f64 * k as f64 * (2.0 * n as f64 - 3.0 * k as f64 - 1.0));
    Ok((1.0 - norm * penalty).clamp(0.0, 1.0))
}

/// Continuity `C(k) ∈ [0, 1]`: 1 when every true `k`-neighbourhood survives
/// into the embedding (the symmetric counterpart of trustworthiness).
pub fn continuity(high: &Matrix, low: &Matrix, k: usize) -> Result<f64> {
    // Continuity(high→low) is trustworthiness with the roles swapped.
    trustworthiness(low, high, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pca::pca;
    use crate::tsne::{tsne, TsneConfig};
    use neurodeanon_linalg::Rng64;

    fn blobs() -> Matrix {
        let mut rng = Rng64::new(5);
        let centers = [[0.0, 0.0, 0.0], [15.0, 0.0, 0.0], [0.0, 15.0, 15.0]];
        Matrix::from_fn(30, 3, |r, c| centers[r / 10][c] + rng.gaussian())
    }

    #[test]
    fn identity_embedding_is_perfect() {
        let pts = blobs();
        assert!((trustworthiness(&pts, &pts, 5).unwrap() - 1.0).abs() < 1e-12);
        assert!((continuity(&pts, &pts, 5).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_embedding_scores_poorly() {
        let pts = blobs();
        let mut rng = Rng64::new(9);
        let random = Matrix::from_fn(30, 2, |_, _| rng.gaussian());
        let t = trustworthiness(&pts, &random, 5).unwrap();
        assert!(t < 0.85, "random embedding trustworthiness {t}");
    }

    #[test]
    fn tsne_beats_random_and_matches_pca_on_blobs() {
        let pts = blobs();
        let cfg = TsneConfig {
            perplexity: 8.0,
            n_iter: 300,
            exaggeration_iters: 50,
            momentum_switch: 100,
            ..TsneConfig::default()
        };
        let emb = tsne(&pts, &cfg).unwrap().embedding;
        let t_tsne = trustworthiness(&pts, &emb, 5).unwrap();
        let p = pca(&pts, 2).unwrap();
        let t_pca = trustworthiness(&pts, &p, 5).unwrap();
        let mut rng = Rng64::new(3);
        let random = Matrix::from_fn(30, 2, |_, _| rng.gaussian());
        let t_rand = trustworthiness(&pts, &random, 5).unwrap();
        assert!(t_tsne > t_rand, "t-SNE {t_tsne} vs random {t_rand}");
        assert!(t_tsne > 0.85, "t-SNE trustworthiness {t_tsne}");
        // On linear blobs PCA is fine too; both must be strong.
        assert!(t_pca > 0.85);
        let c = continuity(&pts, &emb, 5).unwrap();
        assert!(c > 0.85, "t-SNE continuity {c}");
    }

    #[test]
    fn validations() {
        let pts = blobs();
        let emb = Matrix::zeros(29, 2);
        assert!(trustworthiness(&pts, &emb, 5).is_err());
        let ok = Matrix::zeros(30, 2);
        assert!(trustworthiness(&pts, &ok, 0).is_err());
        assert!(trustworthiness(&pts, &ok, 30).is_err());
        let tiny = Matrix::zeros(2, 2);
        assert!(trustworthiness(&tiny, &Matrix::zeros(2, 2), 1).is_err());
    }
}
