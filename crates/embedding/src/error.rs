//! Embedding error type.

use std::fmt;

/// Errors from the embedding algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum EmbeddingError {
    /// Fewer points than required (t-SNE needs at least 4, PCA at least 2).
    TooFewPoints {
        /// Minimum required.
        required: usize,
        /// Provided.
        got: usize,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint description.
        reason: &'static str,
    },
    /// The perplexity calibration failed to bracket a solution for a point
    /// (typically a duplicate point cloud where all distances are zero).
    PerplexityCalibration {
        /// Index of the point whose σ search failed.
        point: usize,
    },
    /// Error propagated from the linear-algebra layer.
    Linalg(neurodeanon_linalg::LinalgError),
}

impl fmt::Display for EmbeddingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmbeddingError::TooFewPoints { required, got } => {
                write!(f, "need at least {required} points, got {got}")
            }
            EmbeddingError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            EmbeddingError::PerplexityCalibration { point } => {
                write!(f, "perplexity calibration failed for point {point}")
            }
            EmbeddingError::Linalg(e) => write!(f, "linalg error: {e}"),
        }
    }
}

impl std::error::Error for EmbeddingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EmbeddingError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<neurodeanon_linalg::LinalgError> for EmbeddingError {
    fn from(e: neurodeanon_linalg::LinalgError) -> Self {
        EmbeddingError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(EmbeddingError::TooFewPoints {
            required: 4,
            got: 1
        }
        .to_string()
        .contains('4'));
        assert!(EmbeddingError::PerplexityCalibration { point: 3 }
            .to_string()
            .contains('3'));
    }
}
