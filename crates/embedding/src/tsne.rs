//! Exact t-SNE (Algorithm 2 of the paper).
//!
//! Pipeline: pairwise squared distances → per-point σᵢ by binary search on
//! perplexity (Equations 7–8) → conditional `p_{j|i}` → symmetrized
//! `p_ij = (p_{j|i} + p_{i|j}) / 2n` → gradient descent on the KL divergence
//! (Equation 10) with the Student-t output kernel (Equation 11), the
//! gradient of Equation 12, momentum, and early exaggeration.

use crate::error::EmbeddingError;
use crate::Result;
use neurodeanon_linalg::par::{self, DisjointMut};
use neurodeanon_linalg::vector::dist_sq;
use neurodeanon_linalg::{Matrix, Rng64};

/// Rows per tile for the pairwise Q/KL passes; small tiles keep the skewed
/// triangle row lengths balanced across threads.
const TSNE_ROW_TILE: usize = 8;

/// Minimum pairwise work before the per-iteration t-SNE passes spawn
/// threads. These passes run `n_iter` (typically hundreds of) times, so the
/// threshold is lower than for one-shot kernels.
const TSNE_PAR_THRESHOLD: usize = 1 << 15;

/// Condensed (strict upper triangle, row-major) index of pair `(i, j)`,
/// `i < j`.
#[inline]
fn cond_index(n: usize, i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < n);
    i * n - i * (i + 1) / 2 + (j - i - 1)
}

/// t-SNE hyper-parameters; defaults follow van der Maaten & Hinton (2008).
#[derive(Debug, Clone)]
pub struct TsneConfig {
    /// Output dimensionality (2 for the paper's task maps).
    pub output_dims: usize,
    /// Target perplexity (effective neighbour count), Equation 7.
    pub perplexity: f64,
    /// Total gradient iterations `T`.
    pub n_iter: usize,
    /// Learning rate `η`.
    pub learning_rate: f64,
    /// Momentum before the switch iteration.
    pub initial_momentum: f64,
    /// Momentum after the switch iteration.
    pub final_momentum: f64,
    /// Iteration at which momentum switches.
    pub momentum_switch: usize,
    /// Early-exaggeration multiplier on `P`.
    pub exaggeration: f64,
    /// Iterations during which exaggeration applies.
    pub exaggeration_iters: usize,
    /// RNG seed for the `N(0, 10⁻⁴ I)` initialization (Algorithm 2 line 3).
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            output_dims: 2,
            perplexity: 30.0,
            n_iter: 500,
            learning_rate: 200.0,
            initial_momentum: 0.5,
            final_momentum: 0.8,
            momentum_switch: 250,
            exaggeration: 4.0,
            exaggeration_iters: 100,
            seed: 0x7e51e,
        }
    }
}

impl TsneConfig {
    fn validate(&self, n: usize) -> Result<()> {
        if n < 4 {
            return Err(EmbeddingError::TooFewPoints {
                required: 4,
                got: n,
            });
        }
        if self.output_dims == 0 {
            return Err(EmbeddingError::InvalidParameter {
                name: "output_dims",
                reason: "must be at least 1",
            });
        }
        if !(self.perplexity > 1.0 && self.perplexity < n as f64) {
            return Err(EmbeddingError::InvalidParameter {
                name: "perplexity",
                reason: "must satisfy 1 < perplexity < n_points",
            });
        }
        if self.n_iter == 0 {
            return Err(EmbeddingError::InvalidParameter {
                name: "n_iter",
                reason: "must be at least 1",
            });
        }
        if !(self.learning_rate > 0.0) || !(self.exaggeration >= 1.0) {
            return Err(EmbeddingError::InvalidParameter {
                name: "learning_rate/exaggeration",
                reason: "need learning_rate > 0 and exaggeration >= 1",
            });
        }
        Ok(())
    }
}

/// Result of a t-SNE run.
#[derive(Debug, Clone)]
pub struct Tsne {
    /// The `n × output_dims` embedding.
    pub embedding: Matrix,
    /// KL divergence after each iteration (without exaggeration correction
    /// during the exaggerated phase — the raw optimized objective).
    pub kl_history: Vec<f64>,
}

/// Embeds `points` (rows = samples) with the given configuration.
pub fn tsne(points: &Matrix, config: &TsneConfig) -> Result<Tsne> {
    let n = points.rows();
    config.validate(n)?;
    let d2 = pairwise_squared_distances(points);
    tsne_from_distances(&d2, n, config)
}

/// Embeds from a precomputed condensed pairwise squared-distance buffer
/// (row-major strict upper triangle). Lets callers reuse distances across
/// repetitions (the paper's 100-iteration task-prediction protocol).
pub fn tsne_from_distances(d2: &[f64], n: usize, config: &TsneConfig) -> Result<Tsne> {
    config.validate(n)?;
    if d2.len() != n * (n - 1) / 2 {
        return Err(EmbeddingError::InvalidParameter {
            name: "d2",
            reason: "condensed distance length must be n(n-1)/2",
        });
    }
    let p = joint_probabilities(d2, n, config.perplexity)?;

    // Initialization: Y ~ N(0, 1e-4 I).
    let mut rng = Rng64::new(config.seed);
    let dims = config.output_dims;
    let mut y = Matrix::from_fn(n, dims, |_, _| rng.gaussian() * 1e-2);
    let mut velocity = Matrix::zeros(n, dims);
    // Per-cell adaptive gains (the standard t-SNE "gains" trick).
    let mut gains = Matrix::filled(n, dims, 1.0);

    let mut kl_history = Vec::with_capacity(config.n_iter);
    let mut q = vec![0.0; n * (n - 1) / 2];
    let mut grad = Matrix::zeros(n, dims);

    for iter in 0..config.n_iter {
        let exaggerate = if iter < config.exaggeration_iters {
            config.exaggeration
        } else {
            1.0
        };
        // Q from current embedding (Equation 11), unnormalized then summed.
        // Fixed row tiles fill disjoint condensed-triangle segments; the
        // per-tile partial sums merge in tile order (par determinism
        // contract), so qsum is bit-stable at any thread count.
        let qsum = {
            let yref = &y;
            let qshare = DisjointMut::new(&mut q);
            2.0 * par::par_reduce_tiles(
                n,
                TSNE_ROW_TILE,
                n,
                TSNE_PAR_THRESHOLD,
                0.0f64,
                |tile| {
                    let mut local = 0.0;
                    for i in tile.range() {
                        if i + 1 >= n {
                            continue;
                        }
                        // SAFETY: row i exclusively owns its condensed
                        // segment [cond_index(i, i+1), +n−1−i).
                        let qrow = unsafe { qshare.slice(cond_index(n, i, i + 1), n - 1 - i) };
                        let yi = yref.row(i);
                        for (o, j) in qrow.iter_mut().zip(i + 1..n) {
                            let w = 1.0 / (1.0 + dist_sq(yi, yref.row(j)));
                            *o = w;
                            local += w;
                        }
                    }
                    local
                },
                |acc, part| acc + part,
            )
        };

        // Gradient (Equation 12): dC/dyᵢ = 4 Σⱼ (pᵢⱼ − qᵢⱼ)(yᵢ − yⱼ)wᵢⱼ.
        // One embedding row per chunk: row i reads every pair (i, j) from
        // both triangles and owns its own gradient row, so no cross-row
        // accumulation races exist to begin with.
        {
            let yref = &y;
            let pref = &p;
            let qref = &q;
            par::par_chunks_mut(
                grad.as_mut_slice(),
                dims,
                n,
                TSNE_PAR_THRESHOLD,
                |i, grow| {
                    grow.fill(0.0);
                    let yi = yref.row(i);
                    for j in 0..n {
                        if j == i {
                            continue;
                        }
                        let idx = cond_index(n, i.min(j), i.max(j));
                        let w = qref[idx];
                        let qij = (w / qsum).max(1e-300);
                        let coeff = 4.0 * (exaggerate * pref[idx] - qij) * w;
                        let yj = yref.row(j);
                        for ((g, &yiv), &yjv) in grow.iter_mut().zip(yi).zip(yj) {
                            *g += coeff * (yiv - yjv);
                        }
                    }
                },
            );
        }

        // KL divergence over the same fixed row tiles, partials folded in
        // tile order.
        let kl = par::par_reduce_tiles(
            n,
            TSNE_ROW_TILE,
            n,
            TSNE_PAR_THRESHOLD,
            0.0f64,
            |tile| {
                let mut local = 0.0;
                for i in tile.range() {
                    if i + 1 >= n {
                        continue;
                    }
                    let base = cond_index(n, i, i + 1);
                    let row = base..base + n - 1 - i;
                    for (&pij, &w) in p[row.clone()].iter().zip(&q[row]) {
                        if pij > 0.0 {
                            let qij = (w / qsum).max(1e-300);
                            // Both (i,j) and (j,i) contribute identically.
                            local += 2.0 * pij * (pij / qij).ln();
                        }
                    }
                }
                local
            },
            |acc, part| acc + part,
        );
        kl_history.push(kl);

        // Momentum + gains update (Algorithm 2 line 7).
        let momentum = if iter < config.momentum_switch {
            config.initial_momentum
        } else {
            config.final_momentum
        };
        for i in 0..n {
            for dcol in 0..dims {
                let g = grad[(i, dcol)];
                let v = velocity[(i, dcol)];
                let gain = &mut gains[(i, dcol)];
                *gain = if g.signum() == v.signum() {
                    (*gain * 0.8).max(0.01)
                } else {
                    *gain + 0.2
                };
                let nv = momentum * v - config.learning_rate * *gain * g;
                velocity[(i, dcol)] = nv;
                y[(i, dcol)] += nv;
            }
        }
        // Re-center to keep the embedding from drifting.
        for dcol in 0..dims {
            let mean: f64 = (0..n).map(|i| y[(i, dcol)]).sum::<f64>() / n as f64;
            for i in 0..n {
                y[(i, dcol)] -= mean;
            }
        }
    }

    Ok(Tsne {
        embedding: y,
        kl_history,
    })
}

/// Condensed (strict upper triangle, row-major) pairwise squared distances.
///
/// Parallel over fixed row tiles; each row writes its own disjoint segment
/// of the condensed buffer, so output is identical at any thread count.
pub fn pairwise_squared_distances(points: &Matrix) -> Vec<f64> {
    let n = points.rows();
    let dims = points.cols();
    let mut out = vec![0.0; n * (n - 1) / 2];
    if n < 2 {
        return out;
    }
    {
        let share = DisjointMut::new(&mut out);
        par::par_tiles(n - 1, TSNE_ROW_TILE, n * dims, TSNE_PAR_THRESHOLD, |tile| {
            for i in tile.range() {
                // SAFETY: row i exclusively owns its condensed segment.
                let orow = unsafe { share.slice(cond_index(n, i, i + 1), n - 1 - i) };
                let pi = points.row(i);
                for (o, j) in orow.iter_mut().zip(i + 1..n) {
                    *o = dist_sq(pi, points.row(j));
                }
            }
        });
    }
    out
}

/// Symmetrized joint probabilities `p_ij` from condensed squared distances,
/// calibrating σᵢ per point to the target perplexity by binary search.
fn joint_probabilities(d2: &[f64], n: usize, perplexity: f64) -> Result<Vec<f64>> {
    let log_perp = perplexity.ln();
    let cond_idx = |i: usize, j: usize| cond_index(n, i, j);
    // Conditional probabilities p_{j|i}, dense row storage.
    let mut cond = vec![0.0; n * n];
    for i in 0..n {
        // Shift distances by the row minimum before exponentiating: the
        // conditional distribution is invariant to the shift, and without
        // it exp(−β·d²) underflows to an all-zero row on high-dimensional
        // inputs (the paper's 64,620-feature vectors have d² in the
        // thousands).
        let mut d_min = f64::INFINITY;
        for j in 0..n {
            if j != i {
                d_min = d_min.min(d2[cond_idx(i.min(j), i.max(j))]);
            }
        }
        if !d_min.is_finite() {
            return Err(EmbeddingError::PerplexityCalibration { point: i });
        }
        // Binary search beta = 1/(2σ²).
        let mut beta = 1.0;
        let mut beta_min = f64::NEG_INFINITY;
        let mut beta_max = f64::INFINITY;
        let mut ok = false;
        for _ in 0..64 {
            // Compute entropy and row probabilities at this beta.
            let mut sum = 0.0;
            let mut dsum = 0.0; // Σ p·(d−d_min) for entropy
            for j in 0..n {
                if j == i {
                    continue;
                }
                let d = d2[cond_idx(i.min(j), i.max(j))] - d_min;
                let pj = (-beta * d).exp();
                cond[i * n + j] = pj;
                sum += pj;
                dsum += pj * d;
            }
            if sum <= 0.0 {
                break; // all neighbours infinitely far: calibration fails
            }
            // Shannon entropy H = ln(sum) + beta * E[d].
            let h = sum.ln() + beta * dsum / sum;
            let diff = h - log_perp;
            if diff.abs() < 1e-5 {
                ok = true;
                // Normalize row in place.
                for j in 0..n {
                    if j != i {
                        cond[i * n + j] /= sum;
                    }
                }
                break;
            }
            if diff > 0.0 {
                beta_min = beta;
                beta = if beta_max.is_finite() {
                    (beta + beta_max) / 2.0
                } else {
                    beta * 2.0
                };
            } else {
                beta_max = beta;
                beta = if beta_min.is_finite() {
                    (beta + beta_min) / 2.0
                } else {
                    beta / 2.0
                };
            }
            if !beta.is_finite() || beta <= 0.0 {
                break;
            }
        }
        if !ok {
            // Accept the last normalization if the entropy is merely close;
            // otherwise fail loudly (duplicate-point degenerate cloud).
            let sum: f64 = (0..n).filter(|&j| j != i).map(|j| cond[i * n + j]).sum();
            if sum <= 0.0 || !sum.is_finite() {
                return Err(EmbeddingError::PerplexityCalibration { point: i });
            }
            for j in 0..n {
                if j != i {
                    cond[i * n + j] /= sum;
                }
            }
        }
    }
    // Symmetrize into condensed storage: p_ij = (p_{j|i} + p_{i|j}) / 2n.
    let mut p = vec![0.0; n * (n - 1) / 2];
    let mut idx = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            p[idx] = (cond[i * n + j] + cond[j * n + i]) / (2.0 * n as f64);
            idx += 1;
        }
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated Gaussian blobs in 5-D, 12 points each.
    fn blobs() -> (Matrix, Vec<usize>) {
        let mut rng = Rng64::new(77);
        let centers = [
            [0.0, 0.0, 0.0, 0.0, 0.0],
            [20.0, 0.0, 0.0, 0.0, 0.0],
            [0.0, 20.0, 0.0, 0.0, 20.0],
        ];
        let mut pts = Matrix::zeros(36, 5);
        let mut labels = Vec::new();
        for (b, c) in centers.iter().enumerate() {
            for k in 0..12 {
                let r = b * 12 + k;
                for (col, &cc) in c.iter().enumerate() {
                    pts[(r, col)] = cc + rng.gaussian();
                }
                labels.push(b);
            }
        }
        (pts, labels)
    }

    fn quick_config() -> TsneConfig {
        TsneConfig {
            perplexity: 8.0,
            n_iter: 300,
            exaggeration_iters: 50,
            momentum_switch: 100,
            ..TsneConfig::default()
        }
    }

    #[test]
    fn joint_probabilities_sum_to_one() {
        let (pts, _) = blobs();
        let d2 = pairwise_squared_distances(&pts);
        let p = joint_probabilities(&d2, 36, 8.0).unwrap();
        let total: f64 = p.iter().sum::<f64>() * 2.0; // both triangles
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
        assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn every_point_controls_the_cost() {
        // The outlier-robustness property §3.1.3 symmetrization exists for:
        // Σⱼ p_ij ≥ 1/2n for every point i (each conditional row sums to 1,
        // so the symmetrized row sum is at least 1/2n).
        let (pts, _) = blobs();
        let d2 = pairwise_squared_distances(&pts);
        let n = 36;
        let p = joint_probabilities(&d2, n, 8.0).unwrap();
        let mut row_sum = vec![0.0; n];
        let mut idx = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                row_sum[i] += p[idx];
                row_sum[j] += p[idx];
                idx += 1;
            }
        }
        let floor = 1.0 / (2.0 * n as f64);
        for (i, &s) in row_sum.iter().enumerate() {
            assert!(s >= floor - 1e-9, "row {i}: {s} < {floor}");
        }
    }

    #[test]
    fn separates_blobs() {
        let (pts, labels) = blobs();
        let out = tsne(&pts, &quick_config()).unwrap();
        let y = &out.embedding;
        // Mean intra-cluster distance ≪ mean inter-cluster distance.
        let mut intra = 0.0;
        let mut intra_n = 0.0;
        let mut inter = 0.0;
        let mut inter_n = 0.0;
        for i in 0..36 {
            for j in (i + 1)..36 {
                let d = dist_sq(y.row(i), y.row(j)).sqrt();
                if labels[i] == labels[j] {
                    intra += d;
                    intra_n += 1.0;
                } else {
                    inter += d;
                    inter_n += 1.0;
                }
            }
        }
        let ratio = (inter / inter_n) / (intra / intra_n);
        assert!(ratio > 2.5, "separation ratio {ratio}");
    }

    #[test]
    fn kl_decreases_after_exaggeration() {
        let (pts, _) = blobs();
        let out = tsne(&pts, &quick_config()).unwrap();
        let h = &out.kl_history;
        // Compare KL right after exaggeration ends vs the final value.
        let after_ex = h[60];
        let final_kl = *h.last().unwrap();
        assert!(final_kl < after_ex, "KL {after_ex} -> {final_kl}");
        assert!(final_kl >= 0.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (pts, _) = blobs();
        let a = tsne(&pts, &quick_config()).unwrap();
        let b = tsne(&pts, &quick_config()).unwrap();
        assert!(a.embedding.sub(&b.embedding).unwrap().max_abs() < 1e-12);
        let mut cfg = quick_config();
        cfg.seed = 1;
        let c = tsne(&pts, &cfg).unwrap();
        assert!(a.embedding.sub(&c.embedding).unwrap().max_abs() > 1e-6);
    }

    #[test]
    fn embedding_is_centered() {
        let (pts, _) = blobs();
        let out = tsne(&pts, &quick_config()).unwrap();
        for d in 0..2 {
            let mean: f64 = (0..36).map(|i| out.embedding[(i, d)]).sum::<f64>() / 36.0;
            assert!(mean.abs() < 1e-9);
        }
    }

    #[test]
    fn validates_config() {
        let (pts, _) = blobs();
        let mut cfg = quick_config();
        cfg.perplexity = 100.0; // > n
        assert!(tsne(&pts, &cfg).is_err());
        let mut cfg = quick_config();
        cfg.output_dims = 0;
        assert!(tsne(&pts, &cfg).is_err());
        let tiny = Matrix::zeros(3, 2);
        assert!(tsne(&tiny, &quick_config()).is_err());
    }

    #[test]
    fn distance_buffer_length_checked() {
        let cfg = quick_config();
        assert!(tsne_from_distances(&[1.0; 5], 36, &cfg).is_err());
    }
}
