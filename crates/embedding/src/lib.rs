#![warn(missing_docs)]

//! # neurodeanon-embedding
//!
//! Non-linear dimensionality reduction for the task-identification attack
//! (§3.1.3 / §3.3.2 of the paper).
//!
//! * [`mod@tsne`] — exact t-distributed Stochastic Neighbor Embedding
//!   (Algorithm 2): Gaussian input affinities with per-point perplexity
//!   calibration, symmetrized `P`, Student-t output kernel, gradient descent
//!   with momentum and early exaggeration, KL-divergence tracking.
//! * [`mod@pca`] — principal component analysis via the in-workspace SVD, used
//!   both as a t-SNE initialization option and as the linear baseline the
//!   ablation benches compare against (DESIGN.md §4.4).
//! * [`quality`] — trustworthiness/continuity metrics that make the paper's
//!   "maintains pairwise distance well" claim for t-SNE measurable.

pub mod error;
pub mod pca;
pub mod quality;
pub mod tsne;

pub use error::EmbeddingError;
pub use pca::pca;
pub use tsne::{tsne, Tsne, TsneConfig};

/// Result alias for embedding operations.
pub type Result<T> = std::result::Result<T, EmbeddingError>;
