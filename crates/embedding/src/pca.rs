//! Principal component analysis.
//!
//! The paper (§3.1.2) contrasts row-sampling with PCA; the ablation benches
//! also use PCA-to-2D as the linear baseline for the t-SNE task clusters.
//! Implemented as SVD of the column-centered data matrix.

use crate::error::EmbeddingError;
use crate::Result;
use neurodeanon_linalg::svd::thin_svd;
use neurodeanon_linalg::Matrix;

/// Projects `points` (rows = samples, columns = features) onto the top
/// `k` principal components. Returns the `n × k` score matrix.
///
/// When the feature count exceeds the sample count the decomposition runs
/// on the transposed (n × d → Gram-sized) problem, so a 100 × 64,620 input
/// costs an SVD of 100 columns, not 64,620.
pub fn pca(points: &Matrix, k: usize) -> Result<Matrix> {
    let (n, d) = points.shape();
    if n < 2 {
        return Err(EmbeddingError::TooFewPoints {
            required: 2,
            got: n,
        });
    }
    if k == 0 || k > d.min(n) {
        return Err(EmbeddingError::InvalidParameter {
            name: "k",
            reason: "need 1 <= k <= min(samples, features)",
        });
    }
    // Center columns.
    let mut centered = points.clone();
    for c in 0..d {
        let mean: f64 = (0..n).map(|r| centered[(r, c)]).sum::<f64>() / n as f64;
        for r in 0..n {
            centered[(r, c)] -= mean;
        }
    }
    if d >= n {
        // Wide data: SVD of Xᵀ (d × n, tall) gives X = (V Σ Uᵀ)ᵀ; the score
        // matrix X·(top PCs) equals U_k Σ_k of X's own SVD = V_k Σ_k here.
        let svd = thin_svd(&centered.transpose())?;
        let idx: Vec<usize> = (0..k).collect();
        let vk = svd.v.select_cols(&idx)?; // n × k (right vectors of Xᵀ)
        let mut scores = vk;
        for c in 0..k {
            let s = svd.sigma[c];
            for r in 0..n {
                scores[(r, c)] *= s;
            }
        }
        Ok(scores)
    } else {
        // Tall data: straightforward X = U Σ Vᵀ, scores = U_k Σ_k.
        let svd = thin_svd(&centered)?;
        let idx: Vec<usize> = (0..k).collect();
        let uk = svd.u.select_cols(&idx)?;
        let mut scores = uk;
        for c in 0..k {
            let s = svd.sigma[c];
            for r in 0..n {
                scores[(r, c)] *= s;
            }
        }
        Ok(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_component_captures_dominant_direction() {
        // Points along (1, 1) with small orthogonal jitter.
        let pts = Matrix::from_fn(40, 2, |r, c| {
            let t = r as f64 - 20.0;
            let jitter = ((r * 7) % 5) as f64 * 0.01 - 0.02;
            if c == 0 {
                t + jitter
            } else {
                t - jitter
            }
        });
        let s = pca(&pts, 2).unwrap();
        // Variance of PC1 ≫ PC2.
        let var = |c: usize| -> f64 {
            let m: f64 = (0..40).map(|r| s[(r, c)]).sum::<f64>() / 40.0;
            (0..40).map(|r| (s[(r, c)] - m).powi(2)).sum::<f64>() / 40.0
        };
        assert!(var(0) > 100.0 * var(1));
    }

    #[test]
    fn scores_preserve_pairwise_distances_at_full_rank() {
        let pts = Matrix::from_fn(10, 3, |r, c| ((r * 5 + c * 3) % 7) as f64);
        let s = pca(&pts, 3).unwrap();
        for a in 0..10 {
            for b in 0..10 {
                let d_orig = neurodeanon_linalg::vector::dist_sq(pts.row(a), pts.row(b));
                let d_proj = neurodeanon_linalg::vector::dist_sq(s.row(a), s.row(b));
                assert!((d_orig - d_proj).abs() < 1e-6, "({a},{b})");
            }
        }
    }

    #[test]
    fn wide_and_tall_paths_agree() {
        // Same data, evaluated through both code paths by transposition
        // symmetry: a 6×9 (wide) input and its information-equivalent check
        // of distance preservation.
        let pts = Matrix::from_fn(6, 9, |r, c| ((r * 11 + c * 5) % 13) as f64 - 6.0);
        let s = pca(&pts, 2).unwrap();
        assert_eq!(s.shape(), (6, 2));
        // Scores are centered.
        for c in 0..2 {
            let m: f64 = (0..6).map(|r| s[(r, c)]).sum();
            assert!(m.abs() < 1e-8);
        }
    }

    #[test]
    fn validates_inputs() {
        let pts = Matrix::zeros(1, 5);
        assert!(pca(&pts, 1).is_err());
        let pts = Matrix::zeros(5, 3);
        assert!(pca(&pts, 0).is_err());
        assert!(pca(&pts, 4).is_err());
    }

    #[test]
    fn orthogonal_score_columns() {
        let pts = Matrix::from_fn(20, 5, |r, c| ((r * 3 + c * 7) % 11) as f64 * 0.5);
        let s = pca(&pts, 3).unwrap();
        for a in 0..3 {
            for b in (a + 1)..3 {
                let dot: f64 = (0..20).map(|r| s[(r, a)] * s[(r, b)]).sum();
                assert!(dot.abs() < 1e-6, "cols {a},{b} dot {dot}");
            }
        }
    }
}
