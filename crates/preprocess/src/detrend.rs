//! Polynomial detrending.
//!
//! The paper's temporal pipeline starts with "a minimal high pass filter …
//! so as to achieve de-trending of data". Scanner drift in the synthetic
//! model is linear + quadratic per voxel, so least-squares removal of a
//! low-order polynomial per series is the matching cleaner.

use crate::error::PreprocessError;
use crate::Result;
use neurodeanon_linalg::qr::qr;
use neurodeanon_linalg::Matrix;

/// Removes the best-fit polynomial of the given `degree` from each row of
/// `ts` in place. `degree = 0` removes the mean, `degree = 1` a linear
/// trend, `degree = 2` the quadratic drift of the synthetic scanner.
///
/// The fit basis is shared across rows, so the (tiny) QR factorization of
/// the Vandermonde matrix is computed once.
pub fn detrend_rows(ts: &mut Matrix, degree: usize) -> Result<()> {
    let t = ts.cols();
    if degree + 2 > t {
        return Err(PreprocessError::SeriesTooShort {
            required: degree + 2,
            got: t,
        });
    }
    if degree > 8 {
        return Err(PreprocessError::InvalidParameter {
            name: "degree",
            reason: "polynomial degree above 8 is numerically fragile; use the bandpass filter",
        });
    }
    // Vandermonde basis on normalized time τ ∈ [-1, 1] for conditioning.
    let basis = Matrix::from_fn(t, degree + 1, |i, d| {
        let tau = 2.0 * i as f64 / (t - 1).max(1) as f64 - 1.0;
        tau.powi(d as i32)
    });
    let f = qr(&basis)?;
    // Projection of each series y: y_hat = Q Qᵀ y. Compute row-block-wise:
    // coefficients-free form avoids solving R c = Qᵀ y explicitly.
    let qt = f.q.transpose();
    // ts is rows × t; we need for each row y: y - Q (Qᵀ y).
    // Stack as matrix ops: Y' = Y - (Y Q) Qᵀ  where Y is rows × t.
    let yq = ts.matmul(&f.q)?; // rows × (degree+1)
    let proj = yq.matmul(&qt)?; // rows × t
    let cleaned = ts.sub(&proj)?;
    *ts = cleaned;
    Ok(())
}

/// Fits and returns the polynomial trend coefficients (in the normalized
/// τ-basis) for one series — exposed for QC diagnostics.
pub fn fit_trend(series: &[f64], degree: usize) -> Result<Vec<f64>> {
    let t = series.len();
    if degree + 2 > t {
        return Err(PreprocessError::SeriesTooShort {
            required: degree + 2,
            got: t,
        });
    }
    let basis = Matrix::from_fn(t, degree + 1, |i, d| {
        let tau = 2.0 * i as f64 / (t - 1).max(1) as f64 - 1.0;
        tau.powi(d as i32)
    });
    let f = qr(&basis)?;
    let y = Matrix::from_vec(t, 1, series.to_vec())?;
    let qty = f.q.transpose().matmul(&y)?; // (degree+1) × 1
                                           // Back-substitute R c = Qᵀ y.
    let k = degree + 1;
    let mut c = vec![0.0; k];
    for i in (0..k).rev() {
        let mut s = qty[(i, 0)];
        for j in (i + 1)..k {
            s -= f.r[(i, j)] * c[j];
        }
        let d = f.r[(i, i)];
        if d.abs() < 1e-300 {
            return Err(PreprocessError::Linalg(
                neurodeanon_linalg::LinalgError::Singular { op: "fit_trend" },
            ));
        }
        c[i] = s / d;
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_mean_at_degree_zero() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]).unwrap();
        detrend_rows(&mut m, 0).unwrap();
        let s: f64 = m.row(0).iter().sum();
        assert!(s.abs() < 1e-10);
    }

    #[test]
    fn removes_linear_trend_exactly() {
        let t = 50;
        let mut m = Matrix::from_fn(3, t, |r, i| 2.0 * i as f64 + r as f64 * 5.0);
        detrend_rows(&mut m, 1).unwrap();
        assert!(m.max_abs() < 1e-9, "residual {}", m.max_abs());
    }

    #[test]
    fn removes_quadratic_preserves_high_frequency() {
        let t = 200;
        let signal: Vec<f64> = (0..t).map(|i| (i as f64 * 0.9).sin()).collect();
        let mut m = Matrix::from_fn(1, t, |_, i| {
            let tau = i as f64 / (t - 1) as f64;
            signal[i] + 3.0 * tau + 2.0 * tau * tau + 7.0
        });
        detrend_rows(&mut m, 2).unwrap();
        // Residual ≈ the oscillation (which a degree-2 fit barely touches).
        let mut err = 0.0;
        let mean_sig: f64 = signal.iter().sum::<f64>() / t as f64;
        for i in 0..t {
            err += (m[(0, i)] - (signal[i] - mean_sig)).powi(2);
        }
        assert!((err / t as f64).sqrt() < 0.1);
    }

    #[test]
    fn rejects_short_series_and_big_degree() {
        let mut m = Matrix::zeros(1, 3);
        assert!(detrend_rows(&mut m, 2).is_err());
        let mut m = Matrix::zeros(1, 100);
        assert!(detrend_rows(&mut m, 9).is_err());
    }

    #[test]
    fn fit_trend_recovers_coefficients() {
        let t = 40;
        // y = 5 + 3τ in the normalized basis.
        let series: Vec<f64> = (0..t)
            .map(|i| {
                let tau = 2.0 * i as f64 / (t - 1) as f64 - 1.0;
                5.0 + 3.0 * tau
            })
            .collect();
        let c = fit_trend(&series, 1).unwrap();
        assert!((c[0] - 5.0).abs() < 1e-9);
        assert!((c[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn detrend_is_idempotent() {
        let mut m = Matrix::from_fn(2, 60, |r, i| {
            ((i + r) as f64 * 0.37).sin() + i as f64 * 0.05
        });
        detrend_rows(&mut m, 2).unwrap();
        let once = m.clone();
        detrend_rows(&mut m, 2).unwrap();
        assert!(m.sub(&once).unwrap().max_abs() < 1e-9);
    }
}
