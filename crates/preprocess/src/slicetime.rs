//! Slice-time correction.
//!
//! The paper's Figure 4 discussion: "sometimes extra steps such as
//! slice-time correction may be added, depending on the quality of images
//! and the acquisition protocols." EPI acquires one z-slice at a time, so
//! slice `z` of an `nz`-slice volume is sampled `z/nz` of a repetition time
//! later than slice 0; every voxel's series is therefore shifted by a
//! slice-dependent sub-TR offset. Correction resamples each series back to
//! the slice-0 reference time by linear interpolation — the standard
//! first-order slice-timing fix.
//!
//! The synthetic scanner reproduces the acquisition offset when
//! `ScannerConfig::slice_timing` is enabled; this stage inverts it.

use crate::error::PreprocessError;
use crate::Result;
use neurodeanon_fmri::Volume4D;

/// Corrects slice-timing offsets in place, assuming ascending sequential
/// acquisition (slice `z` sampled at fraction `z/nz` of the TR).
///
/// A series sampled at `t + f` is mapped back to integer grid times by
/// `corrected[t] = f·v[t−1] + (1−f)·v[t]` (with the first frame clamped).
pub fn slice_time_correct(vol: &mut Volume4D) -> Result<()> {
    let (nx, ny, nz) = vol.dims();
    let t = vol.time_points();
    if t < 2 {
        return Err(PreprocessError::SeriesTooShort {
            required: 2,
            got: t,
        });
    }
    for z in 0..nz {
        let f = z as f64 / nz as f64;
        if f == 0.0 {
            continue; // reference slice
        }
        for y in 0..ny {
            for x in 0..nx {
                let v = x + nx * (y + ny * z);
                let ts = vol.voxel_ts_mut(v);
                // Walk backwards so ts[i-1] is still the original sample.
                for i in (1..t).rev() {
                    ts[i] = f * ts[i - 1] + (1.0 - f) * ts[i];
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurodeanon_atlas::{grown_atlas, region_average, VoxelGrid};
    use neurodeanon_fmri::scanner::{Scanner, ScannerConfig};
    use neurodeanon_linalg::stats::pearson;
    use neurodeanon_linalg::{Matrix, Rng64};

    /// Smooth region signals (AR-like) for fidelity comparisons.
    fn latent(n: usize, t: usize, seed: u64) -> Matrix {
        let mut rng = Rng64::new(seed);
        let mut m = Matrix::zeros(n, t);
        for r in 0..n {
            let mut prev = rng.gaussian();
            for i in 0..t {
                prev = 0.8 * prev + 0.6 * rng.gaussian();
                m[(r, i)] = prev;
            }
        }
        m
    }

    #[test]
    fn correction_restores_shifted_series() {
        // Build a volume whose slice-z voxels carry a series shifted by
        // z/nz (the scanner's slice-timing model), then correct.
        let (nx, ny, nz) = (4, 4, 8);
        let t = 120;
        let base = latent(1, t + 1, 5);
        let mut vol = Volume4D::zeros(nx, ny, nz, t).unwrap();
        for z in 0..nz {
            let f = z as f64 / nz as f64;
            for y in 0..ny {
                for x in 0..nx {
                    let v = x + nx * (y + ny * z);
                    for i in 0..t {
                        // Sample the latent signal at time i + f.
                        let s = (1.0 - f) * base[(0, i)] + f * base[(0, i + 1)];
                        vol.voxel_ts_mut(v)[i] = s;
                    }
                }
            }
        }
        // Before correction, a slice-7 voxel disagrees with slice 0.
        let v0 = 0;
        let v7 = 4 * (4 * 7);
        let before: f64 = (1..t)
            .map(|i| (vol.sample(v0, i) - vol.sample(v7, i)).abs())
            .sum();
        slice_time_correct(&mut vol).unwrap();
        let after: f64 = (1..t)
            .map(|i| (vol.sample(v0, i) - vol.sample(v7, i)).abs())
            .sum();
        assert!(
            after < before * 0.5,
            "correction did not align slices: {before} -> {after}"
        );
    }

    #[test]
    fn reference_slice_untouched() {
        let mut vol = Volume4D::zeros(3, 3, 4, 10).unwrap();
        let mut rng = Rng64::new(2);
        for v in 0..vol.n_voxels() {
            for s in vol.voxel_ts_mut(v) {
                *s = rng.gaussian();
            }
        }
        let z0_before: Vec<f64> = (0..9).flat_map(|v| vol.voxel_ts(v).to_vec()).collect();
        slice_time_correct(&mut vol).unwrap();
        let z0_after: Vec<f64> = (0..9).flat_map(|v| vol.voxel_ts(v).to_vec()).collect();
        assert_eq!(z0_before, z0_after);
    }

    #[test]
    fn improves_connectome_fidelity_on_scanner_output() {
        // Scanner with slice timing enabled: corrected volumes reproduce
        // the latent correlation structure better than uncorrected ones.
        let parc = grown_atlas("st", VoxelGrid::new(10, 10, 10).unwrap(), 8, 3).unwrap();
        let lat = latent(8, 200, 9);
        let cfg = ScannerConfig {
            voxel_noise: 0.1,
            slice_timing: true,
            ..ScannerConfig::clean()
        };
        let scanner = Scanner::new(cfg).unwrap();
        let vol_raw = scanner.acquire(&lat, &parc, &mut Rng64::new(4)).unwrap();
        let mut vol_fix = vol_raw.clone();
        slice_time_correct(&mut vol_fix).unwrap();

        let corr_of = |vol: &Volume4D| {
            let reduced = region_average(&parc, vol.as_matrix()).unwrap();
            let mut acc = 0.0;
            for r in 0..8 {
                acc += pearson(reduced.row(r), lat.row(r)).unwrap();
            }
            acc / 8.0
        };
        let raw = corr_of(&vol_raw);
        let fixed = corr_of(&vol_fix);
        assert!(
            fixed >= raw,
            "slice-time correction reduced fidelity: {raw} -> {fixed}"
        );
        assert!(fixed > 0.9, "corrected fidelity {fixed}");
    }

    #[test]
    fn rejects_single_frame() {
        let mut vol = Volume4D::zeros(2, 2, 2, 1).unwrap();
        assert!(slice_time_correct(&mut vol).is_err());
    }
}
