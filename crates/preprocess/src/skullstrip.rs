//! Skull stripping: classify voxels as brain / non-brain and mask the
//! latter (§2 of the paper describes the classic procedure; here the
//! classifier uses temporal variance — brain voxels fluctuate with neural
//! signal, skull voxels are static apart from thermal noise).

use crate::error::PreprocessError;
use crate::Result;
use neurodeanon_fmri::Volume4D;

/// The brain mask produced by skull stripping.
#[derive(Debug, Clone)]
pub struct BrainMask {
    /// Per-voxel flag, flat voxel order.
    pub is_brain: Vec<bool>,
}

impl BrainMask {
    /// Number of voxels classified as brain.
    pub fn brain_count(&self) -> usize {
        self.is_brain.iter().filter(|&&b| b).count()
    }
}

/// Classifies voxels by temporal variance using a two-class threshold (Otsu
/// on the log-variance histogram) and zeroes the non-brain voxels in place.
///
/// Returns the mask. Works because skull voxels in the synthetic scanner
/// have near-constant intensity while brain voxels carry BOLD fluctuation;
/// the same contrast drives intensity-based strippers on real data.
pub fn skull_strip(vol: &mut Volume4D) -> Result<BrainMask> {
    let n = vol.n_voxels();
    let t = vol.time_points();
    if t < 2 {
        return Err(PreprocessError::SeriesTooShort {
            required: 2,
            got: t,
        });
    }
    // Log temporal variance per voxel (log separates the two clusters far
    // better than raw variance, which spans orders of magnitude).
    let mut logvar = vec![0.0_f64; n];
    for (v, lv) in logvar.iter_mut().enumerate() {
        let ts = vol.voxel_ts(v);
        let mean = ts.iter().sum::<f64>() / t as f64;
        let var = ts.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / t as f64;
        *lv = (var + 1e-12).ln();
    }
    let threshold = otsu_threshold(&logvar);
    let is_brain: Vec<bool> = logvar.iter().map(|&lv| lv > threshold).collect();
    for (v, &keep) in is_brain.iter().enumerate() {
        if !keep {
            for s in vol.voxel_ts_mut(v) {
                *s = 0.0;
            }
        }
    }
    Ok(BrainMask { is_brain })
}

/// Otsu's method on a 256-bin histogram: the threshold maximizing
/// between-class variance.
fn otsu_threshold(values: &[f64]) -> f64 {
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !(hi > lo) {
        return lo; // constant input: everything above lo is "brain" (none)
    }
    const BINS: usize = 256;
    let mut hist = [0usize; BINS];
    let scale = (BINS as f64 - 1.0) / (hi - lo);
    for &v in values {
        let b = ((v - lo) * scale) as usize;
        hist[b.min(BINS - 1)] += 1;
    }
    let total = values.len() as f64;
    let total_mean: f64 = hist
        .iter()
        .enumerate()
        .map(|(i, &c)| i as f64 * c as f64)
        .sum::<f64>()
        / total;
    let mut best_sigma = -1.0;
    let mut best_bin = 0;
    let mut w0 = 0.0;
    let mut sum0 = 0.0;
    for (bin, &c) in hist.iter().enumerate().take(BINS - 1) {
        w0 += c as f64 / total;
        sum0 += bin as f64 * c as f64 / total;
        if w0 <= 0.0 || w0 >= 1.0 {
            continue;
        }
        let mu0 = sum0 / w0;
        let mu1 = (total_mean - sum0) / (1.0 - w0);
        let sigma = w0 * (1.0 - w0) * (mu0 - mu1) * (mu0 - mu1);
        if sigma > best_sigma {
            best_sigma = sigma;
            best_bin = bin;
        }
    }
    lo + (best_bin as f64 + 0.5) / scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurodeanon_atlas::{grown_atlas, VoxelGrid};
    use neurodeanon_fmri::scanner::{Scanner, ScannerConfig};
    use neurodeanon_linalg::{Matrix, Rng64};

    #[test]
    fn strips_synthetic_skull() {
        let parc = grown_atlas("s", VoxelGrid::new(12, 12, 12).unwrap(), 8, 5).unwrap();
        let ts = Matrix::from_fn(8, 60, |r, c| ((c as f64 * 0.3 + r as f64).sin()) * 2.0);
        let mut cfg = ScannerConfig::clean();
        cfg.skull_intensity = 3.0; // static bright skull
        cfg.voxel_noise = 0.1;
        let scanner = Scanner::new(cfg).unwrap();
        let mut vol = scanner.acquire(&ts, &parc, &mut Rng64::new(2)).unwrap();
        let mask = skull_strip(&mut vol).unwrap();
        // Agreement with the true brain mask from the parcellation.
        let mut agree = 0usize;
        for v in 0..vol.n_voxels() {
            let truth = parc.region_of(v).is_some();
            if mask.is_brain[v] == truth {
                agree += 1;
            }
        }
        let acc = agree as f64 / vol.n_voxels() as f64;
        assert!(acc > 0.95, "mask accuracy {acc}");
        // Non-brain voxels were zeroed.
        for v in 0..vol.n_voxels() {
            if !mask.is_brain[v] {
                assert!(vol.voxel_ts(v).iter().all(|&x| x == 0.0));
            }
        }
    }

    #[test]
    fn otsu_separates_two_clusters() {
        let mut values = vec![0.0; 100];
        values.extend(vec![10.0; 100]);
        let t = otsu_threshold(&values);
        // Any threshold strictly between the clusters separates them.
        assert!((0.0..10.0).contains(&t), "threshold {t}");
        let above = values.iter().filter(|&&v| v > t).count();
        assert_eq!(above, 100);
    }

    #[test]
    fn otsu_constant_input() {
        let t = otsu_threshold(&[5.0; 10]);
        assert_eq!(t, 5.0);
    }

    #[test]
    fn rejects_single_frame() {
        let mut vol = Volume4D::zeros(4, 4, 4, 1).unwrap();
        assert!(skull_strip(&mut vol).is_err());
    }

    #[test]
    fn mask_count_consistent() {
        let mut vol = Volume4D::zeros(4, 4, 4, 8).unwrap();
        // Half the voxels fluctuate.
        let mut rng = Rng64::new(1);
        for v in 0..32 {
            for s in vol.voxel_ts_mut(v) {
                *s = rng.gaussian();
            }
        }
        let mask = skull_strip(&mut vol).unwrap();
        assert_eq!(
            mask.brain_count(),
            mask.is_brain.iter().filter(|&&b| b).count()
        );
        assert!(
            (28..=36).contains(&mask.brain_count()),
            "{}",
            mask.brain_count()
        );
    }
}
