//! Preprocessing error type.

use std::fmt;

/// Errors from preprocessing stages.
#[derive(Debug, Clone, PartialEq)]
pub enum PreprocessError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint description.
        reason: &'static str,
    },
    /// The series is too short for the requested operation (e.g. polynomial
    /// detrend of degree ≥ length, or filtering a 1-sample series).
    SeriesTooShort {
        /// Required minimum length.
        required: usize,
        /// Actual length.
        got: usize,
    },
    /// Error propagated from the linear-algebra layer.
    Linalg(neurodeanon_linalg::LinalgError),
    /// Error propagated from the atlas layer.
    Atlas(neurodeanon_atlas::AtlasError),
    /// Error propagated from the fMRI layer.
    Fmri(neurodeanon_fmri::FmriError),
}

impl fmt::Display for PreprocessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PreprocessError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            PreprocessError::SeriesTooShort { required, got } => {
                write!(f, "series too short: need {required} samples, got {got}")
            }
            PreprocessError::Linalg(e) => write!(f, "linalg error: {e}"),
            PreprocessError::Atlas(e) => write!(f, "atlas error: {e}"),
            PreprocessError::Fmri(e) => write!(f, "fmri error: {e}"),
        }
    }
}

impl std::error::Error for PreprocessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PreprocessError::Linalg(e) => Some(e),
            PreprocessError::Atlas(e) => Some(e),
            PreprocessError::Fmri(e) => Some(e),
            _ => None,
        }
    }
}

impl From<neurodeanon_linalg::LinalgError> for PreprocessError {
    fn from(e: neurodeanon_linalg::LinalgError) -> Self {
        PreprocessError::Linalg(e)
    }
}

impl From<neurodeanon_atlas::AtlasError> for PreprocessError {
    fn from(e: neurodeanon_atlas::AtlasError) -> Self {
        PreprocessError::Atlas(e)
    }
}

impl From<neurodeanon_fmri::FmriError> for PreprocessError {
    fn from(e: neurodeanon_fmri::FmriError) -> Self {
        PreprocessError::Fmri(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = PreprocessError::SeriesTooShort {
            required: 8,
            got: 2,
        };
        assert!(e.to_string().contains('8'));
        let e = PreprocessError::InvalidParameter {
            name: "band",
            reason: "bad",
        };
        assert!(e.to_string().contains("band"));
    }

    #[test]
    fn conversions_preserve_source() {
        let inner = neurodeanon_linalg::LinalgError::EmptyMatrix { op: "t" };
        let e: PreprocessError = inner.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
