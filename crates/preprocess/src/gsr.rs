//! Global signal regression (GSR).
//!
//! §3.2.1: "We also apply global signal regression on resting state data.
//! This procedure removes signal-components that are expressed uniformly
//! throughout the brain." The global regressor is the mean time series over
//! all rows; each row is replaced by its residual after projecting out the
//! (centered) global signal.

use crate::error::PreprocessError;
use crate::Result;
use neurodeanon_linalg::Matrix;

/// Removes the global mean signal from every row of `ts` in place.
///
/// Returns the fraction of total variance removed — a useful QC number
/// (large values indicate a strong shared component, exactly what the
/// synthetic scanner's `global_signal` knob injects).
pub fn global_signal_regression(ts: &mut Matrix) -> Result<f64> {
    let (rows, t) = ts.shape();
    if rows == 0 || t < 2 {
        return Err(PreprocessError::SeriesTooShort {
            required: 2,
            got: t,
        });
    }
    // Global signal: mean over rows at each time point, then centered.
    let mut g = vec![0.0; t];
    for r in 0..rows {
        for (gi, &x) in g.iter_mut().zip(ts.row(r)) {
            *gi += x;
        }
    }
    let inv_rows = 1.0 / rows as f64;
    for gi in &mut g {
        *gi *= inv_rows;
    }
    let gmean = g.iter().sum::<f64>() / t as f64;
    for gi in &mut g {
        *gi -= gmean;
    }
    let gg: f64 = g.iter().map(|x| x * x).sum();
    if gg <= f64::EPSILON {
        // No global component to remove (e.g. already regressed).
        return Ok(0.0);
    }

    let mut total_var = 0.0;
    let mut removed_var = 0.0;
    for r in 0..rows {
        let row = ts.row_mut(r);
        let rmean = row.iter().sum::<f64>() / t as f64;
        // beta = <x - x̄, g> / <g, g>
        let mut beta = 0.0;
        for (x, gi) in row.iter().zip(&g) {
            beta += (x - rmean) * gi;
        }
        beta /= gg;
        for (x, gi) in row.iter_mut().zip(&g) {
            let before = *x - rmean;
            total_var += before * before;
            *x -= beta * gi;
            let after = *x - rmean;
            removed_var += before * before - after * after;
        }
    }
    Ok(if total_var > 0.0 {
        (removed_var / total_var).clamp(0.0, 1.0)
    } else {
        0.0
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurodeanon_linalg::Rng64;

    #[test]
    fn removes_pure_shared_component() {
        let t = 64;
        let shared: Vec<f64> = (0..t).map(|i| (i as f64 * 0.4).sin()).collect();
        let mut m = Matrix::from_fn(5, t, |r, i| shared[i] * (1.0 + r as f64 * 0.5));
        let frac = global_signal_regression(&mut m).unwrap();
        // Everything was the shared signal ⇒ nearly all variance removed.
        // (GSR preserves row means, so check residual variance, not values.)
        assert!(frac > 0.99, "removed {frac}");
        for r in 0..5 {
            let row = m.row(r);
            let mean: f64 = row.iter().sum::<f64>() / t as f64;
            let var: f64 = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / t as f64;
            assert!(var < 1e-12, "row {r} residual var {var}");
        }
    }

    #[test]
    fn preserves_orthogonal_components() {
        // Exact Fourier tones on the grid: shared at 4 cycles, row tones at
        // 8 + r cycles — mutually orthogonal, so GSR's behaviour is exact.
        let t = 256;
        let cycles =
            |k: usize, i: usize| (std::f64::consts::TAU * k as f64 * i as f64 / t as f64).sin();
        let shared: Vec<f64> = (0..t).map(|i| cycles(4, i)).collect();
        let mut m = Matrix::from_fn(4, t, |r, i| shared[i] + cycles(8 + r, i));
        global_signal_regression(&mut m).unwrap();
        // Row-specific parts survive.
        for r in 0..4 {
            let tone: Vec<f64> = (0..t).map(|i| cycles(8 + r, i)).collect();
            let corr = neurodeanon_linalg::stats::pearson(m.row(r), &tone).unwrap();
            assert!(corr > 0.8, "row {r} corr {corr}");
        }
        // The shared component is gone from the residual mean series.
        let mut g = vec![0.0; t];
        for r in 0..4 {
            for (gi, &x) in g.iter_mut().zip(m.row(r)) {
                *gi += x / 4.0;
            }
        }
        // With orthogonal tones beta is exactly 1 for every row, so the
        // residual mean is identically zero up to rounding.
        let amp = g.iter().fold(0.0_f64, |m, x| m.max(x.abs()));
        assert!(amp < 1e-9, "residual mean amplitude {amp}");
    }

    #[test]
    fn no_global_component_is_noop() {
        // Antisymmetric rows: global mean is exactly zero.
        let t = 32;
        let base: Vec<f64> = (0..t).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut m = Matrix::zeros(2, t);
        m.set_row(0, &base).unwrap();
        let neg: Vec<f64> = base.iter().map(|x| -x).collect();
        m.set_row(1, &neg).unwrap();
        let orig = m.clone();
        let frac = global_signal_regression(&mut m).unwrap();
        assert_eq!(frac, 0.0);
        assert!(m.sub(&orig).unwrap().max_abs() < 1e-12);
    }

    #[test]
    fn reports_partial_removal_fraction() {
        let t = 500;
        let mut rng = Rng64::new(3);
        let shared: Vec<f64> = (0..t).map(|i| (i as f64 * 0.05).sin() * 2.0).collect();
        let mut m = Matrix::from_fn(6, t, |_, i| shared[i]);
        // Add independent noise of similar scale.
        for r in 0..6 {
            for x in m.row_mut(r) {
                *x += rng.gaussian() * 2.0;
            }
        }
        let frac = global_signal_regression(&mut m).unwrap();
        assert!((0.15..0.65).contains(&frac), "frac {frac}");
    }

    #[test]
    fn rejects_degenerate() {
        let mut m = Matrix::zeros(3, 1);
        assert!(global_signal_regression(&mut m).is_err());
    }
}
